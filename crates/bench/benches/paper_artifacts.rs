//! Criterion benches: one group per paper artifact, exercising the same
//! machinery as the `experiments` binary at reduced scale so regressions
//! in any experiment's critical path are caught quickly.
//!
//! The full-scale reports are produced by `cargo run --release -p
//! sparseweaver-bench --bin experiments`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sparseweaver_core::algorithms::{Algorithm, Bfs, ConnectedComponents, Gcn, PageRank, Sssp};
use sparseweaver_core::{analytic, autotune, Schedule, Session};
use sparseweaver_graph::{generators, Csr, Direction};
use sparseweaver_isa::{encode, Instr, Reg};
use sparseweaver_mem::{Hierarchy, HierarchyConfig};
use sparseweaver_sim::GpuConfig;
use sparseweaver_weaver::{area, SparseTable, StEntry, WeaverFsm};

fn small_graph() -> Csr {
    generators::with_random_weights(&generators::powerlaw(150, 900, 1.9, 7), 32, 1)
}

fn bench_session() -> Session {
    Session::new(GpuConfig::small_test())
}

fn run_pr(schedule: Schedule) -> u64 {
    let g = small_graph();
    let mut s = bench_session();
    s.run(&g, &PageRank::new(2), schedule).expect("run").cycles
}

/// Table I + Fig. 2: the analytic models.
fn analytic_models(c: &mut Criterion) {
    let g = small_graph();
    c.bench_function("table1_scheme_analysis", |b| {
        b.iter(|| black_box(analytic::scheme_table()))
    });
    c.bench_function("fig2_warp_iteration_model", |b| {
        b.iter(|| {
            for s in [Schedule::Svm, Schedule::Sem, Schedule::Swm] {
                black_box(analytic::expected_warp_iterations(&g, s, 32, 512));
            }
        })
    });
}

/// Table II: ISA encode/decode.
fn isa_encoding(c: &mut Criterion) {
    let instrs = [
        Instr::WeaverReg {
            vid: Reg(1),
            loc: Reg(2),
            deg: Reg(3),
        },
        Instr::WeaverDecId { rd: Reg(4) },
        Instr::WeaverDecLoc { rd: Reg(5) },
        Instr::WeaverSkip { vid: Reg(6) },
    ];
    c.bench_function("table2_weaver_isa_encode", |b| {
        b.iter(|| {
            for i in &instrs {
                let w = encode::encode_weaver(i).expect("weaver");
                black_box(encode::decode_weaver(w).expect("decode"));
            }
        })
    });
}

/// Table III: dataset stand-in generation.
fn dataset_generation(c: &mut Criterion) {
    c.bench_function("table3_powerlaw_generation", |b| {
        b.iter(|| black_box(generators::powerlaw(500, 4000, 1.8, 3)))
    });
    c.bench_function("table3_rmat_generation", |b| {
        b.iter(|| black_box(generators::rmat(8, 2000, 0.57, 0.19, 0.19, 3)))
    });
}

/// Figs. 3/4/10: PR under each scheduling scheme (the main sweep's inner
/// loop).
fn fig10_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_pagerank_schedules");
    group.sample_size(10);
    for s in Schedule::ALL {
        group.bench_function(s.paper_name(), |b| b.iter(|| black_box(run_pr(s))));
    }
    group.finish();
}

/// Fig. 10's other algorithms at reduced scale.
fn fig10_algorithms(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig10_algorithms_sparseweaver");
    group.sample_size(10);
    group.bench_function("bfs", |b| {
        b.iter_batched(
            bench_session,
            |mut s| {
                black_box(
                    s.run(&g, &Bfs::new(0), Schedule::SparseWeaver)
                        .expect("run"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sssp", |b| {
        b.iter_batched(
            bench_session,
            |mut s| {
                black_box(
                    s.run(&g, &Sssp::new(0), Schedule::SparseWeaver)
                        .expect("run"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cc", |b| {
        b.iter_batched(
            bench_session,
            |mut s| {
                black_box(
                    s.run(&g, &ConnectedComponents::new(), Schedule::SparseWeaver)
                        .expect("run"),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Fig. 11: skew sweep generation + one run.
fn fig11_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_skew_sensitivity");
    group.sample_size(10);
    for nv in [100usize, 400] {
        group.bench_function(format!("v{nv}"), |b| {
            b.iter(|| {
                let g = generators::powerlaw(nv, 1200, 2.0, 5);
                let mut s = bench_session();
                black_box(
                    s.run(&g, &PageRank::new(1), Schedule::SparseWeaver)
                        .expect("run"),
                )
            })
        });
    }
    group.finish();
}

/// Figs. 12/14/15: the memory hierarchy under sweep configurations.
fn memory_sweeps(c: &mut Criterion) {
    c.bench_function("fig12_dram_ratio_access_path", |b| {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.dram_freq_ratio = 6;
        let mut h = Hierarchy::new(cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(h.access(0, (t * 64) % 100_000, false, t))
        })
    });
    c.bench_function("fig15_cache_sweep_run", |b| {
        b.iter(|| {
            let mut cfg = GpuConfig::small_test();
            cfg.hierarchy.l1 = sparseweaver_mem::CacheConfig::new(2048, 4);
            let g = small_graph();
            let mut s = Session::new(cfg);
            black_box(
                s.run(&g, &PageRank::new(1), Schedule::SparseWeaver)
                    .expect("run"),
            )
        })
    });
}

/// Fig. 13: the Weaver unit's decode throughput at high table latency.
fn fig13_weaver_unit(c: &mut Criterion) {
    c.bench_function("fig13_fsm_decode_throughput", |b| {
        b.iter_batched(
            || {
                let mut st = SparseTable::new(256);
                for i in 0..256 {
                    st.register(
                        i,
                        StEntry {
                            vid: i as u32,
                            loc: (i * 4) as u32,
                            deg: (i % 9) as u32,
                        },
                    );
                }
                let mut fsm = WeaverFsm::new(32);
                fsm.load(st);
                fsm
            },
            |mut fsm| black_box(fsm.drain_all()),
            BatchSize::SmallInput,
        )
    });
}

/// Table IV / Fig. 16: the area model.
fn area_model(c: &mut Criterion) {
    c.bench_function("table4_area_model", |b| {
        b.iter(|| {
            black_box(area::table_iv(&[1, 16]));
            black_box(area::block_breakdown(16, true))
        })
    });
}

/// Figs. 17/18: phase-attributed runs (push/pull and EGHW).
fn phase_breakdowns(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig17_18_breakdowns");
    group.sample_size(10);
    group.bench_function("fig17_pr_push", |b| {
        b.iter(|| {
            let s = bench_session();
            let mut rt = s
                .runtime(&g, Direction::Push, Schedule::SparseWeaver)
                .expect("rt");
            black_box(PageRank::new(1).run(&mut rt).expect("run"))
        })
    });
    group.bench_function("fig18_pr_eghw", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(s.run(&g, &PageRank::new(1), Schedule::Eghw).expect("run"))
        })
    });
    group.finish();
}

/// Fig. 19: the GCN operators.
fn fig19_gcn(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig19_gcn");
    group.sample_size(10);
    for (name, weight_parallel) in [("weight_parallel", true), ("sparseweaver", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = bench_session();
                let sched = if weight_parallel {
                    Schedule::Svm
                } else {
                    Schedule::SparseWeaver
                };
                let mut rt = s.runtime(&g, Direction::Pull, sched).expect("rt");
                black_box(Gcn::new(4).run(&mut rt, weight_parallel).expect("run"))
            })
        });
    }
    group.finish();
}

/// New-component benches: S_twc, SpMV, worklist SSSP, vertex splitting.
fn extensions(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("stwc_pagerank", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(s.run(&g, &PageRank::new(1), Schedule::Stwc).expect("run"))
        })
    });
    group.bench_function("spmv_sparseweaver", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(
                s.run(
                    &g,
                    &sparseweaver_core::algorithms::Spmv::new(),
                    Schedule::SparseWeaver,
                )
                .expect("run"),
            )
        })
    });
    group.bench_function("sssp_worklist", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(
                s.run(
                    &g,
                    &Sssp::new(0).with_worklist(true),
                    Schedule::SparseWeaver,
                )
                .expect("run"),
            )
        })
    });
    group.bench_function("vertex_split_transform", |b| {
        b.iter(|| black_box(sparseweaver_graph::transform::split_vertices(&g, 8)))
    });
    group.finish();
}

/// Observability overhead: the disabled-by-default tracer hooks must not
/// cost measurable simulation time, and enabled tracing should stay cheap.
fn trace_overhead(c: &mut Criterion) {
    use sparseweaver_trace::TraceConfig;

    let g = small_graph();
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.bench_function("tracing_off", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(
                s.run(&g, &PageRank::new(1), Schedule::SparseWeaver)
                    .expect("run"),
            )
        })
    });
    group.bench_function("tracing_on", |b| {
        b.iter(|| {
            let mut s = bench_session();
            s.trace = Some(TraceConfig {
                sample_every: 1000,
                ..TraceConfig::default()
            });
            black_box(
                s.run(&g, &PageRank::new(1), Schedule::SparseWeaver)
                    .expect("run"),
            )
        })
    });
    group.finish();
}

/// The fast-path engine's hot loop: full simulated runs (BFS and SSSP,
/// SparseWeaver and `S_wm` schedules) on a mid-size synthetic graph,
/// the same runs with idle-cycle fast-forward disabled, and a small
/// fault campaign through the parallel driver. `scripts/check_sim_speed.sh`
/// gates on this group and renders it into `BENCH_sim.json`.
fn sim_hot_loop(c: &mut Criterion) {
    use sparseweaver_core::campaign::{run_campaign, CampaignConfig};
    use sparseweaver_fault::FaultSpec;

    let g = generators::with_random_weights(&generators::powerlaw(400, 2400, 1.9, 7), 64, 1);
    let mut group = c.benchmark_group("sim_hot_loop");
    group.sample_size(10);
    for (name, schedule) in [("weaver", Schedule::SparseWeaver), ("swm", Schedule::Swm)] {
        group.bench_function(format!("bfs_{name}"), |b| {
            b.iter(|| {
                let mut s = bench_session();
                black_box(s.run(&g, &Bfs::new(0), schedule).expect("run"))
            })
        });
        group.bench_function(format!("sssp_{name}"), |b| {
            b.iter(|| {
                let mut s = bench_session();
                black_box(s.run(&g, &Sssp::new(0), schedule).expect("run"))
            })
        });
    }
    // The self-baselining pair for the CI gate: the same BFS run with the
    // per-core blocked cache disabled must not be *faster* than the
    // fast-forwarding engine.
    group.bench_function("bfs_weaver_fastforward_off", |b| {
        b.iter(|| {
            let mut s = bench_session();
            s.fast_forward = false;
            black_box(
                s.run(&g, &Bfs::new(0), Schedule::SparseWeaver)
                    .expect("run"),
            )
        })
    });
    group.bench_function("campaign_20runs", |b| {
        let small = generators::with_random_weights(&generators::uniform(24, 72, 7), 64, 0xC11);
        let campaign = CampaignConfig::new(
            FaultSpec::parse("reg=0.001,mem=0.0005").expect("spec"),
            2025,
            20,
        );
        b.iter(|| {
            black_box(
                run_campaign(
                    &GpuConfig::small_test(),
                    &small,
                    &Bfs::new(0),
                    Schedule::SparseWeaver,
                    &campaign,
                )
                .expect("campaign"),
            )
        })
    });
    group.finish();
}

/// Table V: the auto-tuner search.
fn table5_autotune(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("table5_autotune");
    group.sample_size(10);
    group.bench_function("exhaustive_search", |b| {
        b.iter(|| {
            let mut s = bench_session();
            black_box(autotune::autotune(&mut s, &g, &PageRank::new(1)).expect("autotune"))
        })
    });
    group.finish();
}

criterion_group!(
    artifacts,
    analytic_models,
    isa_encoding,
    dataset_generation,
    fig10_schedules,
    fig10_algorithms,
    fig11_skew,
    memory_sweeps,
    fig13_weaver_unit,
    area_model,
    phase_breakdowns,
    fig19_gcn,
    table5_autotune,
    extensions,
    trace_overhead,
    sim_hot_loop,
);
criterion_main!(artifacts);
