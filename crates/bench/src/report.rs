//! Plain-text report formatting.

/// A simple aligned-column table builder for experiment reports.
///
/// # Examples
///
/// ```
/// use sparseweaver_bench::Table;
///
/// let mut t = Table::new(&["graph", "speedup"]);
/// t.row(&["D_hw", "2.36"]);
/// let s = t.to_string();
/// assert!(s.contains("D_hw"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[c])?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        for (c, w) in widths.iter().enumerate() {
            let _ = c;
            write!(f, "{}  ", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Geometric mean of a sequence (1.0 for an empty sequence).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-300).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xx", "1"]);
        t.row(&["y", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("--"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
