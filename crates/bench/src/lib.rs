//! The SparseWeaver experiment harness.
//!
//! One function per table/figure of the paper's evaluation (Section V),
//! each returning a plain-text report with the same rows/series the paper
//! plots. The `experiments` binary drives them from the command line;
//! the Criterion benches in `benches/` track the underlying machinery for
//! regressions at reduced scale.
//!
//! Absolute numbers differ from the paper (our substrate is a from-scratch
//! simulator on scaled dataset stand-ins — see `DESIGN.md`); the *shape* —
//! who wins, by roughly what factor, where crossovers fall — is what each
//! report reproduces, and `EXPERIMENTS.md` records paper-vs-measured for
//! every artifact.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Table;
