//! One function per paper artifact (table/figure). See `DESIGN.md` §5 for
//! the experiment index and `EXPERIMENTS.md` for paper-vs-measured notes.

use sparseweaver_core::algorithms::{
    Algorithm, Bfs, ConnectedComponents, Gcn, PageRank, Spmv, Sssp,
};
use sparseweaver_core::{analytic, autotune, Schedule, Session};
use sparseweaver_graph::datasets::all_datasets;
use sparseweaver_graph::{dataset, generators, Csr, DatasetId, DegreeStats, Direction};
use sparseweaver_isa::{encode, Instr, Reg};
use sparseweaver_mem::CacheConfig;
use sparseweaver_sim::{GpuConfig, Phase};
use sparseweaver_weaver::area;

use rayon::prelude::*;

use crate::report::{geomean, Table};

/// Order-preserving parallel map over the ambient rayon pool: the sweep
/// primitive behind the dataset/scale loops and the `experiments --jobs`
/// flag. Results are collected by input index, so artifact text is
/// byte-identical at every worker count; outside a pool it degenerates
/// to a plain serial map.
pub fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    items.into_par_iter().map(f).collect()
}

/// PageRank iterations used throughout the evaluation sweeps.
pub const PR_ITERS: u32 = 5;

/// Vortex core clock assumed when converting cycles to milliseconds.
pub const CLOCK_MHZ: f64 = 500.0;

fn bfs_source(g: &Csr) -> u32 {
    (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0)
}

fn fig10_datasets(quick: bool) -> Vec<DatasetId> {
    if quick {
        vec![
            DatasetId::BioHuman,
            DatasetId::Graph500,
            DatasetId::Hollywood,
        ]
    } else {
        DatasetId::ALL.to_vec()
    }
}

/// Table I: implementation comparison of the scheduling schemes.
pub fn table1() -> String {
    let mut t = Table::new(&[
        "scheme",
        "granularity",
        "imbalance",
        "edge mem",
        "shared mem",
        "global mem",
        "reg (sync,kern,atom,shfl)",
        "dist (bsearch,atom,sync)",
        "locality",
    ]);
    for r in analytic::scheme_table() {
        t.row(&[
            r.name,
            r.granularity,
            r.imbalance,
            r.edge_mem_access,
            r.shared_mem,
            r.global_mem,
            r.registration,
            r.distribution,
            r.locality,
        ]);
    }
    format!("Table I: scheduling-scheme comparison\n\n{t}")
}

/// Table II: the Weaver ISA extension with its RISC-V encodings.
pub fn table2() -> String {
    let mut t = Table::new(&[
        "instruction",
        "type",
        "opcode",
        "funct",
        "encoding",
        "description",
    ]);
    let rows: [(Instr, &str, &str, u32, &str); 4] = [
        (
            Instr::WeaverReg {
                vid: Reg(10),
                loc: Reg(11),
                deg: Reg(12),
            },
            "C",
            "CUSTOM1",
            encode::FUNCT_WEAVER_REG,
            "Register VID, loc, deg",
        ),
        (
            Instr::WeaverDecId { rd: Reg(10) },
            "R",
            "CUSTOM0",
            encode::FUNCT_WEAVER_DEC_ID,
            "Return VID of next workload",
        ),
        (
            Instr::WeaverDecLoc { rd: Reg(10) },
            "R",
            "CUSTOM0",
            encode::FUNCT_WEAVER_DEC_LOC,
            "Return EID of next workload",
        ),
        (
            Instr::WeaverSkip { vid: Reg(10) },
            "C",
            "CUSTOM1",
            encode::FUNCT_WEAVER_SKIP,
            "Send skip signal using VID",
        ),
    ];
    for (i, ty, opc, funct, desc) in rows {
        let word = encode::encode_weaver(&i).expect("weaver instruction");
        t.row_owned(vec![
            i.to_string(),
            ty.to_string(),
            opc.to_string(),
            funct.to_string(),
            format!("{word:#010x}"),
            desc.to_string(),
        ]);
    }
    format!("Table II: SparseWeaver instructions\n\n{t}")
}

/// Table III: dataset inventory — paper sizes and the scaled stand-ins.
pub fn table3() -> String {
    let mut t = Table::new(&[
        "graph",
        "paper |V|",
        "paper |E|",
        "scaled |V|",
        "scaled |E|",
        "mean deg",
        "cv",
        "max deg",
    ]);
    for d in all_datasets() {
        let (pv, pe) = d.id.paper_size();
        let s = DegreeStats::of(&d.graph);
        t.row_owned(vec![
            format!("{} ({})", d.id.full_name(), d.id),
            pv.to_string(),
            pe.to_string(),
            d.num_vertices().to_string(),
            d.num_edges().to_string(),
            format!("{:.1}", s.mean),
            format!("{:.2}", s.cv),
            s.max.to_string(),
        ]);
    }
    format!("Table III: graph datasets (scaled stand-ins, see DESIGN.md)\n\n{t}")
}

/// Fig. 2: expected warp iterations (analytic) and measured speedups for
/// `S_vm`/`S_em`/`S_wm` with PageRank on `D_bh` and `D_g500`.
pub fn fig2() -> String {
    let mut out = String::new();
    let mut ta = Table::new(&["graph", "S_vm iters", "S_em iters", "S_wm iters"]);
    let mut tb = Table::new(&["graph", "S_vm", "S_em speedup", "S_wm speedup"]);
    for id in [DatasetId::BioHuman, DatasetId::Graph500] {
        let d = dataset(id);
        let view = d.graph.reverse(); // PR gathers over incoming edges
        let cfg = GpuConfig::evaluation_default();
        let block = cfg.threads_per_core();
        let svm = analytic::expected_warp_iterations(&view, Schedule::Svm, 32, block);
        let sem = analytic::expected_warp_iterations(&view, Schedule::Sem, 32, block);
        let swm = analytic::expected_warp_iterations(&view, Schedule::Swm, 32, block);
        ta.row_owned(vec![
            id.to_string(),
            svm.to_string(),
            sem.to_string(),
            swm.to_string(),
        ]);
        let mut session = Session::new(cfg);
        let pr = PageRank::new(PR_ITERS);
        let base = session.run(&d.graph, &pr, Schedule::Svm).expect("svm");
        let em = session.run(&d.graph, &pr, Schedule::Sem).expect("sem");
        let wm = session.run(&d.graph, &pr, Schedule::Swm).expect("swm");
        tb.row_owned(vec![
            id.to_string(),
            "1.00".into(),
            format!("{:.2}", em.speedup_over(&base)),
            format!("{:.2}", wm.speedup_over(&base)),
        ]);
    }
    out.push_str("Fig. 2a: expected warp iterations for edge gathering (PR)\n\n");
    out.push_str(&ta.to_string());
    out.push_str("\nFig. 2b: measured speedup over S_vm (PR)\n\n");
    out.push_str(&tb.to_string());
    out
}

/// Fig. 3: software-scheduling speedups on two larger GPU configurations
/// (Nvidia A30/RTX4090 stand-ins; see DESIGN.md substitution 3).
pub fn fig3() -> String {
    let mut out = String::new();
    for (cname, cfg) in [
        ("ampere-like (A30 stand-in)", GpuConfig::ampere_like()),
        ("ada-like (RTX4090 stand-in)", GpuConfig::ada_like()),
    ] {
        let mut t = Table::new(&["graph", "S_vm", "S_em", "S_wm", "S_cm", "S_twc"]);
        for id in [DatasetId::Hollywood, DatasetId::WebUk] {
            let d = dataset(id);
            let mut session = Session::new(cfg);
            let pr = PageRank::new(PR_ITERS);
            let base = session.run(&d.graph, &pr, Schedule::Svm).expect("svm");
            let mut cells = vec![id.to_string(), "1.00".to_string()];
            for s in [Schedule::Sem, Schedule::Swm, Schedule::Scm, Schedule::Stwc] {
                let r = session.run(&d.graph, &pr, s).expect("run");
                cells.push(format!("{:.2}", r.speedup_over(&base)));
            }
            t.row_owned(cells);
        }
        out.push_str(&format!("Fig. 3 ({cname}): PR speedup over S_vm\n\n{t}\n"));
    }
    out
}

/// Fig. 4: stall breakdown and warps-per-instruction for PR on `D_hw`.
pub fn fig4() -> String {
    let d = dataset(DatasetId::Hollywood);
    let mut session = Session::new(GpuConfig::ampere_like());
    let pr = PageRank::new(PR_ITERS);
    let mut t = Table::new(&[
        "scheme",
        "memory%",
        "shared%",
        "exec-dep%",
        "weaver%",
        "L1-queue/access",
        "warp/instr",
    ]);
    for s in [
        Schedule::Svm,
        Schedule::Sem,
        Schedule::Swm,
        Schedule::Scm,
        Schedule::Stwc,
        Schedule::SparseWeaver,
    ] {
        let r = session.run(&d.graph, &pr, s).expect("run");
        let total = (r.stats.stalls.total()).max(1) as f64;
        let pct = |x: u64| format!("{:.1}", 100.0 * x as f64 / total);
        let l1q_per_access = r.stats.stalls.l1_queue as f64 / r.stats.mem.l1.accesses.max(1) as f64;
        t.row_owned(vec![
            s.to_string(),
            pct(r.stats.stalls.memory),
            pct(r.stats.stalls.shared),
            pct(r.stats.stalls.exec_dep),
            pct(r.stats.stalls.weaver),
            format!("{l1q_per_access:.1}"),
            format!("{:.1}", r.stats.warps_per_instruction()),
        ]);
    }
    format!(
        "Fig. 4: stall breakdown (share of stall cycles) and warp/instruction, PR on D_hw\n\n{t}"
    )
}

/// Fig. 10: the main result — four algorithms on nine graphs under the
/// four software schemes and SparseWeaver, as speedups over `S_vm`.
pub fn fig10(quick: bool) -> String {
    let mut out = String::new();
    let datasets = fig10_datasets(quick);
    let mut grand: Vec<f64> = Vec::new();
    let mut per_scheme_all: std::collections::HashMap<Schedule, Vec<f64>> = Default::default();
    for aname in algo_list() {
        let mut t = Table::new(&["graph", "S_vm", "S_em", "S_wm", "S_cm", "SparseWeaver"]);
        let mut sw_speedups = Vec::new();
        // Each dataset owns its Session, so the 9-graph sweep fans out
        // across the ambient pool; rows fold back in dataset order.
        let rows = par_map(datasets.clone(), |id| {
            let d = dataset(id);
            let algo = make_algo(aname, &d.graph);
            let mut session = Session::new(GpuConfig::evaluation_default());
            let base = session
                .run(&d.graph, algo.as_ref(), Schedule::Svm)
                .expect("svm");
            let mut cells = vec![id.to_string(), "1.00".to_string()];
            let mut speedups = Vec::new();
            for s in [
                Schedule::Sem,
                Schedule::Swm,
                Schedule::Scm,
                Schedule::SparseWeaver,
            ] {
                let r = session.run(&d.graph, algo.as_ref(), s).expect("run");
                let sp = r.speedup_over(&base);
                speedups.push((s, sp));
                cells.push(format!("{sp:.2}"));
            }
            (cells, speedups)
        });
        for (cells, speedups) in rows {
            for (s, sp) in speedups {
                per_scheme_all.entry(s).or_default().push(sp);
                if s == Schedule::SparseWeaver {
                    sw_speedups.push(sp);
                    grand.push(sp);
                }
            }
            t.row_owned(cells);
        }
        out.push_str(&format!(
            "Fig. 10 ({aname}): speedup over S_vm\n\n{t}\ngeomean SparseWeaver speedup ({aname}): {:.2}\n\n",
            geomean(sw_speedups.iter().copied())
        ));
    }
    out.push_str(&format!(
        "Overall geomean SparseWeaver speedup over S_vm: {:.2} (paper: 2.36)\n",
        geomean(grand.iter().copied())
    ));
    if let Some(em) = per_scheme_all.get(&Schedule::Sem) {
        let em_geo = geomean(em.iter().copied());
        let sw_geo = geomean(grand.iter().copied());
        out.push_str(&format!(
            "Overall geomean SparseWeaver speedup over S_em: {:.2} (paper: 2.63)\n",
            sw_geo / em_geo
        ));
    }
    out
}

fn algo_list() -> [&'static str; 4] {
    ["BFS", "SSSP", "PR", "CC"]
}

fn make_algo(name: &str, g: &Csr) -> Box<dyn Algorithm> {
    match name {
        "PR" => Box::new(PageRank::new(PR_ITERS)),
        "BFS" => Box::new(Bfs::new(bfs_source(g))),
        "SSSP" => Box::new(Sssp::new(bfs_source(g))),
        "CC" => Box::new(ConnectedComponents::new()),
        _ => unreachable!("unknown algorithm {name}"),
    }
}

/// Fig. 11: skewness sensitivity — power-law graphs with a fixed edge
/// budget and growing vertex counts, PR speedups over `S_vm`.
pub fn fig11() -> String {
    let vertex_counts = [500usize, 600, 800, 1_000, 2_000, 4_000];
    let edges = 45_000; // fixed budget (scaled from the paper's 1.9M)
    let mut ta = Table::new(&["graph", "|V|", "|E|", "max deg", "cv(deg)"]);
    let mut tb = Table::new(&["graph", "S_vm", "S_em", "SparseWeaver"]);
    // Skewness grows along the sweep: more vertices under a fixed edge
    // budget AND a steeper popularity exponent (the paper's generator
    // naturally widens the tail as |V| grows; at our scale the exponent
    // must assist, or even "G1" saturates into a hub).
    let alphas = [0.2f64, 0.6, 1.0, 1.4, 1.8, 2.2];
    for (i, &nv) in vertex_counts.iter().enumerate() {
        let g = generators::with_random_weights(
            &generators::powerlaw(nv, edges, alphas[i], 0x516 + i as u64),
            64,
            i as u64,
        );
        let s = DegreeStats::of(&g);
        ta.row_owned(vec![
            format!("G{}", i + 1),
            nv.to_string(),
            g.num_edges().to_string(),
            s.max.to_string(),
            format!("{:.2}", s.cv),
        ]);
        let mut session = Session::new(GpuConfig::evaluation_default());
        let pr = PageRank::new(PR_ITERS);
        let base = session.run(&g, &pr, Schedule::Svm).expect("svm");
        let em = session.run(&g, &pr, Schedule::Sem).expect("sem");
        let sw = session.run(&g, &pr, Schedule::SparseWeaver).expect("sw");
        tb.row_owned(vec![
            format!("G{}", i + 1),
            "1.00".into(),
            format!("{:.2}", em.speedup_over(&base)),
            format!("{:.2}", sw.speedup_over(&base)),
        ]);
    }
    format!(
        "Fig. 11a: degree distributions of the skewness sweep\n\n{ta}\n\
         Fig. 11b: PR speedup over S_vm as skewness grows\n\n{tb}"
    )
}

/// Fig. 12: execution cycles vs the GPU:DRAM frequency ratio (1–6),
/// normalized to `S_vm` at ratio 1.
pub fn fig12() -> String {
    let d = dataset(DatasetId::Graph500);
    let pr = PageRank::new(PR_ITERS);
    let mut rows: Vec<(u64, Vec<u64>)> = Vec::new();
    for ratio in 1..=6u64 {
        let mut cfg = GpuConfig::evaluation_default();
        cfg.hierarchy.dram_freq_ratio = ratio;
        let mut session = Session::new(cfg);
        let mut cells = Vec::new();
        for s in [Schedule::Svm, Schedule::Sem, Schedule::SparseWeaver] {
            cells.push(session.run(&d.graph, &pr, s).expect("run").cycles);
        }
        rows.push((ratio, cells));
    }
    let norm = rows[0].1[0] as f64;
    let mut t = Table::new(&["ratio", "S_vm", "S_em", "SparseWeaver"]);
    for (ratio, cells) in rows {
        t.row_owned(vec![
            ratio.to_string(),
            format!("{:.2}", cells[0] as f64 / norm),
            format!("{:.2}", cells[1] as f64 / norm),
            format!("{:.2}", cells[2] as f64 / norm),
        ]);
    }
    format!("Fig. 12: normalized cycles vs GPU:DRAM frequency ratio (PR, D_g500)\n\n{t}")
}

/// Fig. 13: SparseWeaver cycles vs the work-table read overhead
/// (10–160 cycles) on the 8-core configuration.
pub fn fig13() -> String {
    let d = dataset(DatasetId::Graph500);
    let pr = PageRank::new(PR_ITERS);
    let mut t = Table::new(&["table latency", "cycles", "normalized"]);
    let mut first = 0u64;
    for lat in [10u64, 20, 40, 80, 160] {
        let mut cfg = GpuConfig::eight_core();
        cfg.weaver.table_latency = lat;
        let mut session = Session::new(cfg);
        let r = session
            .run(&d.graph, &pr, Schedule::SparseWeaver)
            .expect("run");
        if first == 0 {
            first = r.cycles;
        }
        t.row_owned(vec![
            lat.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.cycles as f64 / first as f64),
        ]);
    }
    format!(
        "Fig. 13: SparseWeaver cycles vs ST/DT shared-memory read overhead (PR, 8 cores)\n\
         (flat = the GPU pipeline conceals the table latency)\n\n{t}"
    )
}

/// Fig. 14: effect of an L3 cache (PR, speedup over `S_vm` with L1&L2).
pub fn fig14(quick: bool) -> String {
    let mut t = Table::new(&["graph", "S_vm L2", "SW L2", "S_vm L2+L3", "SW L2+L3"]);
    for id in fig10_datasets(quick) {
        let d = dataset(id);
        let pr = PageRank::new(PR_ITERS);
        let base_cfg = GpuConfig::evaluation_default();
        let mut l3_cfg = base_cfg;
        l3_cfg.hierarchy.l3 = Some(CacheConfig::new(512 * 1024, 16)); // scaled with the data
        let mut s_base = Session::new(base_cfg);
        let mut s_l3 = Session::new(l3_cfg);
        let svm = s_base.run(&d.graph, &pr, Schedule::Svm).expect("svm");
        let sw = s_base
            .run(&d.graph, &pr, Schedule::SparseWeaver)
            .expect("sw");
        let svm3 = s_l3.run(&d.graph, &pr, Schedule::Svm).expect("svm l3");
        let sw3 = s_l3
            .run(&d.graph, &pr, Schedule::SparseWeaver)
            .expect("sw l3");
        let b = svm.cycles as f64;
        t.row_owned(vec![
            id.to_string(),
            "1.00".into(),
            format!("{:.2}", b / sw.cycles.max(1) as f64),
            format!("{:.2}", b / svm3.cycles.max(1) as f64),
            format!("{:.2}", b / sw3.cycles.max(1) as f64),
        ]);
    }
    format!("Fig. 14: L1&L2 vs L1&L2&L3 (PR), speedups over S_vm with L1&L2\n\n{t}")
}

/// Fig. 15: L1 (16/32/64KB) x L2 (0.25–8MB) sweep, speedups over `S_vm`
/// at 16KB/1MB.
pub fn fig15() -> String {
    // The paper sweeps 16/32/64KB L1 and 0.25-8MB L2 on full-size graphs;
    // the scaled stand-ins get the same 3x6 sweep scaled by the same
    // factor as the datasets (DESIGN.md, substitution 2).
    let l1s = [2 * 1024u64, 4 * 1024, 8 * 1024];
    let l2s = [
        32 * 1024u64,
        64 * 1024,
        128 * 1024,
        256 * 1024,
        512 * 1024,
        1024 * 1024,
    ];
    let mut out = String::new();
    for id in [DatasetId::BioHuman, DatasetId::Graph500] {
        let d = dataset(id);
        let pr = PageRank::new(PR_ITERS);
        // Baseline: S_vm at the smallest L1 / middle L2 (the paper's
        // 16KB/1MB reference point, scaled).
        let mut base_cfg = GpuConfig::evaluation_default();
        base_cfg.hierarchy.l1 = CacheConfig::new(2 * 1024, 4);
        base_cfg.hierarchy.l2 = CacheConfig::new(128 * 1024, 8);
        let mut bs = Session::new(base_cfg);
        let base = bs.run(&d.graph, &pr, Schedule::Svm).expect("svm").cycles as f64;
        let mut t = Table::new(&["L1 \\ L2", "32K", "64K", "128K", "256K", "512K", "1M"]);
        for l1 in l1s {
            let mut cells = vec![format!("{}K", l1 / 1024)];
            for l2 in l2s {
                let mut cfg = GpuConfig::evaluation_default();
                cfg.hierarchy.l1 = CacheConfig::new(l1, 4);
                cfg.hierarchy.l2 = CacheConfig::new(l2, 8);
                let mut session = Session::new(cfg);
                let r = session
                    .run(&d.graph, &pr, Schedule::SparseWeaver)
                    .expect("run");
                cells.push(format!("{:.2}", base / r.cycles.max(1) as f64));
            }
            t.row_owned(cells);
        }
        out.push_str(&format!(
            "Fig. 15 ({id}): SparseWeaver speedup over S_vm@16K/1M across cache sizes\n\n{t}\n"
        ));
    }
    out
}

/// Table IV: FPGA area overhead (calibrated model, see DESIGN.md).
pub fn table4() -> String {
    let mut t = Table::new(&[
        "configuration",
        "total ALMs",
        "ALM increase",
        "block mem",
        "RAM",
        "DSP",
    ]);
    for r in area::table_iv(&[1, 16]) {
        t.row_owned(vec![
            r.config.clone(),
            r.total_alms.to_string(),
            format!("{:.2}%", r.alm_increase_pct),
            "0%".into(),
            "0%".into(),
            "0%".into(),
        ]);
    }
    format!(
        "Table IV: FPGA area overhead\n\n{t}\n\
         dedicated logic registers: +{} per core ({:.3}% of the core)\n\
         SystemVerilog: +{} lines over {} ({:.3}%)\n",
        area::calibration::WEAVER_REGS_PER_CORE,
        area::register_overhead_pct(1),
        area::calibration::SV_LINES_ADDED,
        area::calibration::SV_LINES_BASE,
        100.0 * area::calibration::SV_LINES_ADDED as f64 / area::calibration::SV_LINES_BASE as f64,
    )
}

/// Fig. 16: per-module block-utilization breakdown.
pub fn fig16() -> String {
    let mut out = String::new();
    for (label, cores, weaver) in [
        ("(a) 1-core GPU", 1u32, false),
        ("(b) 1-core GPU w/ SparseWeaver", 1, true),
        ("(c) 16-core GPU", 16, false),
        ("(d) 16-core GPU w/ SparseWeaver", 16, true),
    ] {
        let b = area::block_breakdown(cores, weaver);
        let mut t = Table::new(&["module", "ALMs", "added by SparseWeaver"]);
        for (name, alms, added) in &b.modules {
            t.row_owned(vec![
                name.clone(),
                alms.to_string(),
                if *added { "yes" } else { "" }.into(),
            ]);
        }
        out.push_str(&format!(
            "Fig. 16 {label}: total {} ALMs\n\n{t}\n",
            b.total()
        ));
    }
    out
}

fn phase_row(label: String, phases: &[u64; Phase::COUNT], norm: f64) -> Vec<String> {
    let mut cells = vec![label];
    for p in Phase::ALL {
        cells.push(format!("{:.3}", phases[p as usize] as f64 / norm));
    }
    cells
}

/// Fig. 17: push vs pull execution-cycle breakdown of the gather process
/// (PR, SparseWeaver).
pub fn fig17(quick: bool) -> String {
    let mut t = Table::new(&[
        "graph/direction",
        "init",
        "registration",
        "work-id calc",
        "edge info",
        "gather&sum",
        "other",
    ]);
    for id in fig10_datasets(quick) {
        let d = dataset(id);
        let mut norm = 1.0;
        // Pull first: both rows are normalized to the pull total so the
        // push/pull bars are directly comparable (as in the paper).
        for dir in [Direction::Pull, Direction::Push] {
            let session = Session::new(GpuConfig::evaluation_default());
            let mut rt = session
                .runtime(&d.graph, dir, Schedule::SparseWeaver)
                .expect("runtime");
            let pr = PageRank::new(PR_ITERS).with_direction(dir);
            let _ = pr.run(&mut rt).expect("pr run");
            let stats = rt.total_stats().clone();
            if dir == Direction::Pull {
                norm = stats.phase_cycles.iter().sum::<u64>().max(1) as f64;
            }
            t.row_owned(phase_row(format!("{id}/{dir}"), &stats.phase_cycles, norm));
        }
    }
    format!(
        "Fig. 17: gather-cycle breakdown, Push vs Pull (PR, SparseWeaver), fractions of total\n\n{t}"
    )
}

/// Fig. 18: EGHW vs SparseWeaver execution-cycle breakdown (PR),
/// normalized to SparseWeaver's total.
pub fn fig18(quick: bool) -> String {
    let mut t = Table::new(&[
        "graph/scheme",
        "init",
        "registration",
        "work-id calc",
        "edge info",
        "gather&sum",
        "other",
    ]);
    let mut speedups = Vec::new();
    for id in fig10_datasets(quick) {
        let d = dataset(id);
        let pr = PageRank::new(PR_ITERS);
        let mut session = Session::new(GpuConfig::evaluation_default());
        let sw = session
            .run(&d.graph, &pr, Schedule::SparseWeaver)
            .expect("sw");
        let eghw = session.run(&d.graph, &pr, Schedule::Eghw).expect("eghw");
        let norm = sw.stats.phase_cycles.iter().sum::<u64>().max(1) as f64;
        t.row_owned(phase_row(format!("{id}/SW"), &sw.stats.phase_cycles, norm));
        t.row_owned(phase_row(
            format!("{id}/EGHW"),
            &eghw.stats.phase_cycles,
            norm,
        ));
        speedups.push(eghw.cycles as f64 / sw.cycles.max(1) as f64);
    }
    format!(
        "Fig. 18: EGHW vs SparseWeaver cycle breakdown (PR), normalized to SparseWeaver\n\n{t}\n\
         geomean SparseWeaver speedup over EGHW: {:.2} (paper: 3.64)\n",
        geomean(speedups.iter().copied())
    )
}

/// Fig. 19: GCN operators across weight-dimension sizes — weight-parallel
/// `S_vm` baseline vs SparseWeaver.
pub fn fig19(quick: bool) -> String {
    let g = generators::powerlaw(1_500, 18_000, 1.8, 0x6c9);
    let dims: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        (1..=16).collect()
    };
    let mut t = Table::new(&[
        "K",
        "base init",
        "base graphsum",
        "base spmm",
        "SW init",
        "SW graphsum",
        "SW spmm",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for &k in &dims {
        let gcn = Gcn::new(k);
        let session = Session::new(GpuConfig::evaluation_default());
        let mut rt_base = session
            .runtime(&g, Direction::Pull, Schedule::Svm)
            .expect("runtime");
        let base = gcn.run(&mut rt_base, true).expect("baseline");
        let mut rt_sw = session
            .runtime(&g, Direction::Pull, Schedule::SparseWeaver)
            .expect("runtime");
        let sw = gcn.run(&mut rt_sw, false).expect("sw");
        // Outputs must agree.
        let max_diff = base
            .output
            .iter()
            .zip(&sw.output)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "GCN outputs diverged by {max_diff}");
        let sp = base.total_cycles as f64 / sw.total_cycles.max(1) as f64;
        speedups.push(sp);
        t.row_owned(vec![
            k.to_string(),
            base.init_cycles.to_string(),
            base.graphsum_cycles.to_string(),
            base.spmm_cycles.to_string(),
            sw.init_cycles.to_string(),
            sw.graphsum_cycles.to_string(),
            sw.spmm_cycles.to_string(),
            format!("{sp:.2}"),
        ]);
    }
    format!(
        "Fig. 19: GCN operators vs weight dimension (cycles; speedup = S_vm-weight / SparseWeaver)\n\n{t}\n\
         geomean SparseWeaver speedup: {:.2} (paper: 6.15)\n",
        geomean(speedups.iter().copied())
    )
}

/// Table V: auto-tuner comparison (PR).
pub fn table5() -> String {
    let mut t = Table::new(&[
        "graph",
        "tuning (ms)",
        "S_vm (ms)",
        "best (ms)",
        "best scheme",
        "tuned speedup",
        "SW (ms)",
        "SW speedup",
    ]);
    for id in [
        DatasetId::Hollywood,
        DatasetId::WebUk,
        DatasetId::Collab,
        DatasetId::RoadNetCa,
    ] {
        let d = dataset(id);
        let mut session = Session::new(GpuConfig::evaluation_default());
        let r =
            autotune::autotune(&mut session, &d.graph, &PageRank::new(PR_ITERS)).expect("autotune");
        t.row_owned(vec![
            id.to_string(),
            format!("{:.2}", autotune::cycles_to_ms(r.tuning_cycles, CLOCK_MHZ)),
            format!("{:.2}", autotune::cycles_to_ms(r.svm_cycles, CLOCK_MHZ)),
            format!("{:.2}", autotune::cycles_to_ms(r.best_cycles, CLOCK_MHZ)),
            r.best.to_string(),
            format!("{:.2}", r.tuned_speedup()),
            format!(
                "{:.2}",
                autotune::cycles_to_ms(r.sparseweaver_cycles, CLOCK_MHZ)
            ),
            format!("{:.2}", r.sparseweaver_speedup()),
        ]);
    }
    format!("Table V: auto-tuner (exhaustive software-schedule search) vs SparseWeaver (PR)\n\n{t}")
}

/// Ablations of the Section III-C design decisions (beyond the paper):
/// the hardware thread mask, the ST capacity, and the L1 penalty.
pub fn ablations() -> String {
    let d = dataset(DatasetId::Hollywood);
    let pr = PageRank::new(PR_ITERS);
    let mut t = Table::new(&["variant", "cycles", "vs default"]);
    let mut base_cycles = 0u64;
    let run = |label: &str, cfg: GpuConfig, l1_penalty: bool| -> (String, u64) {
        let mut s = Session::new(cfg);
        s.l1_penalty = l1_penalty;
        let r = s
            .run(&d.graph, &pr, Schedule::SparseWeaver)
            .expect("ablation run");
        (label.to_string(), r.cycles)
    };
    let default_cfg = GpuConfig::evaluation_default();
    let rows = {
        let mut rows = Vec::new();
        rows.push(run(
            "default (mask on, ST 512, L1 penalty)",
            default_cfg,
            true,
        ));
        let mut no_mask = default_cfg;
        no_mask.weaver.auto_mask = false;
        rows.push(run(
            "thread-mask pass off (software split/join)",
            no_mask,
            true,
        ));
        for cap in [64usize, 128, 256, 1024] {
            let mut cfg = default_cfg;
            cfg.weaver.st_capacity = cap;
            rows.push(run(&format!("ST capacity {cap}"), cfg, true));
        }
        rows.push(run("no L1 penalty (full 8KB L1)", default_cfg, false));
        rows
    };
    // Frontier representation (SSSP): Fig. 9's `wset` vs scan-and-filter.
    let wl_rows = {
        let road = dataset(DatasetId::RoadNetCa);
        let src = bfs_source(&road.graph);
        let mut s = Session::new(default_cfg);
        let scan = s
            .run(&road.graph, &Sssp::new(src), Schedule::SparseWeaver)
            .expect("scan sssp");
        let wl = s
            .run(
                &road.graph,
                &Sssp::new(src).with_worklist(true),
                Schedule::SparseWeaver,
            )
            .expect("worklist sssp");
        vec![
            (
                "SSSP frontier: scan-and-filter (D_rn)".to_string(),
                scan.cycles,
            ),
            ("SSSP frontier: worklist/wset (D_rn)".to_string(), wl.cycles),
        ]
    };
    for (i, (label, cycles)) in rows.iter().enumerate() {
        if i == 0 {
            base_cycles = *cycles;
        }
        t.row_owned(vec![
            label.clone(),
            cycles.to_string(),
            format!(
                "{:+.1}%",
                100.0 * (*cycles as f64 / base_cycles as f64 - 1.0)
            ),
        ]);
    }
    let wl_base = wl_rows[0].1;
    for (label, cycles) in &wl_rows {
        t.row_owned(vec![
            label.clone(),
            cycles.to_string(),
            format!("{:+.1}%", 100.0 * (*cycles as f64 / wl_base as f64 - 1.0)),
        ]);
    }
    format!("Ablations (PR on D_hw, SparseWeaver): Section III-C design decisions\n\n{t}")
}

/// Discussion VII-A: SpMV (one of the "other sparse applications" the
/// paper argues SparseWeaver generalizes to) across every schedule.
pub fn discussion_spmv(quick: bool) -> String {
    let mut t = Table::new(&["graph", "S_vm", "S_em", "S_wm", "S_cm", "SparseWeaver"]);
    let mut sw = Vec::new();
    for id in fig10_datasets(quick) {
        let d = dataset(id);
        let mut session = Session::new(GpuConfig::evaluation_default());
        let base = session
            .run(&d.graph, &Spmv::new(), Schedule::Svm)
            .expect("svm");
        let mut cells = vec![id.to_string(), "1.00".to_string()];
        for s in [
            Schedule::Sem,
            Schedule::Swm,
            Schedule::Scm,
            Schedule::SparseWeaver,
        ] {
            let r = session.run(&d.graph, &Spmv::new(), s).expect("run");
            let sp = r.speedup_over(&base);
            if s == Schedule::SparseWeaver {
                sw.push(sp);
            }
            cells.push(format!("{sp:.2}"));
        }
        t.row_owned(cells);
    }
    format!(
        "Discussion VII-A: SpMV (y = Ax over CSR) speedup over S_vm

{t}
         geomean SparseWeaver speedup: {:.2}
",
        geomean(sw.iter().copied())
    )
}

/// Scale study (beyond the paper): how the SparseWeaver-vs-`S_em`
/// ordering depends on the graph:cache ratio. At 1x our stand-ins are
/// partially cache-resident and `S_em`'s doubled edge traffic is cheap;
/// as the data outgrows the caches (the paper's regime — its graphs are
/// ~1000x the L2), SparseWeaver pulls ahead, toward the paper's 2.63x.
pub fn scaling(quick: bool) -> String {
    let mut t = Table::new(&[
        "scale",
        "|E|",
        "S_em cycles",
        "SW cycles",
        "SW speedup over S_em",
    ]);
    let scales: &[(&str, usize, usize)] = if quick {
        &[("1x", 4_300, 60_000), ("4x", 17_200, 240_000)]
    } else {
        &[
            ("1x", 4_300, 60_000),
            ("2x", 8_600, 120_000),
            ("4x", 17_200, 240_000),
            ("8x", 34_400, 480_000),
        ]
    };
    // Each scale point is an independent graph + Session; run the sweep
    // on the ambient pool and fold rows back in scale order.
    for row in par_map(scales.to_vec(), |(label, v, e)| {
        let g = generators::with_random_weights(&generators::powerlaw(v, e, 1.8, 6), 64, 1);
        let mut s = Session::new(GpuConfig::evaluation_default());
        let pr = PageRank::new(PR_ITERS);
        let em = s.run(&g, &pr, Schedule::Sem).expect("sem");
        let sw = s.run(&g, &pr, Schedule::SparseWeaver).expect("sw");
        vec![
            label.to_string(),
            g.num_edges().to_string(),
            em.cycles.to_string(),
            sw.cycles.to_string(),
            format!("{:.2}", em.cycles as f64 / sw.cycles.max(1) as f64),
        ]
    }) {
        t.row_owned(row);
    }
    format!(
        "Scale study: SparseWeaver vs S_em as the data outgrows the caches (PR)

{t}"
    )
}

/// Every experiment, in paper order: `(id, description, function)`.
#[allow(clippy::type_complexity)]
pub fn catalog() -> Vec<(&'static str, &'static str, fn(bool) -> String)> {
    vec![
        ("table1", "scheduling-scheme comparison", |_q| table1()),
        ("fig2", "expected warp iterations + speedups", |_q| fig2()),
        ("fig3", "larger-GPU scheduling comparison", |_q| fig3()),
        ("fig4", "stall breakdown", |_q| fig4()),
        ("table2", "Weaver ISA", |_q| table2()),
        ("table3", "dataset inventory", |_q| table3()),
        ("fig10", "main result: 4 algorithms x 9 graphs", fig10),
        ("fig11", "skewness sensitivity", |_q| fig11()),
        ("fig12", "memory:GPU frequency ratio", |_q| fig12()),
        ("fig13", "work-table access latency", |_q| fig13()),
        ("fig14", "L3 cache effect", fig14),
        ("fig15", "L1/L2 size sweep", |_q| fig15()),
        ("table4", "FPGA area overhead", |_q| table4()),
        ("fig16", "block utilization", |_q| fig16()),
        ("fig17", "push/pull breakdown", fig17),
        ("fig18", "EGHW comparison", fig18),
        ("fig19", "GCN operators", fig19),
        ("table5", "auto-tuner comparison", |_q| table5()),
        ("ablations", "design-decision ablations", |_q| ablations()),
        ("spmv", "Discussion VII-A: SpMV generality", discussion_spmv),
        (
            "scaling",
            "S_em vs SparseWeaver across data scales",
            scaling,
        ),
    ]
}
