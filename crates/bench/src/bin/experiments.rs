//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--jobs N] [--out DIR] [all | <id>...]
//! ```
//!
//! With `all` (the default) every artifact is regenerated in paper order;
//! `--quick` shrinks the sweeps (3 datasets, 3 GCN dims) for smoke runs;
//! `--jobs N` runs artifacts (and their internal dataset/scale sweeps) on
//! N worker threads — output order and bytes are identical at any N;
//! `--out DIR` additionally writes one text file per artifact.

use rayon::ThreadPoolBuilder;
use sparseweaver_bench::experiments::par_map;

fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = value_of(&args, "--out");
    let jobs: usize = match value_of(&args, "--jobs") {
        None => 1,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs expects a number, got `{v}`");
            std::process::exit(2)
        }),
    };
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    if jobs > hardware {
        eprintln!(
            "warning: --jobs {jobs} exceeds the {hardware} hardware thread(s) available — \
             extra workers only add contention"
        );
    }
    let flag_values: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, _)| *i > 0 && matches!(args[i - 1].as_str(), "--out" | "--jobs"))
        .map(|(_, a)| a)
        .collect();
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.contains(a))
        .cloned()
        .collect();

    let catalog = sparseweaver_bench::experiments::catalog();
    if selected.iter().any(|s| s == "list") {
        for (id, desc, _) in &catalog {
            println!("{id:8}  {desc}");
        }
        return;
    }
    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    #[allow(clippy::type_complexity)] // same shape as `catalog()`'s rows
    let to_run: Vec<(&str, &str, fn(bool) -> String)> = catalog
        .into_iter()
        .filter(|(id, _, _)| run_all || selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("unknown experiment id; use `experiments list`");
        std::process::exit(2);
    }

    let run_one = |(id, desc, f): (&str, &str, fn(bool) -> String)| {
        eprintln!("== running {id}: {desc} ==");
        let started = std::time::Instant::now();
        let report = f(quick);
        eprintln!("== {id} done in {:?} ==", started.elapsed());
        report
    };
    // Collect reports by catalog index, then print in catalog order —
    // stdout is byte-identical whether jobs is 1 or 16. A single selected
    // artifact runs on the installing thread, so its *internal* dataset
    // and scale sweeps inherit the pool instead.
    let reports: Vec<String> = if jobs > 1 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .expect("experiments thread pool");
        pool.install(|| par_map(to_run.clone(), run_one))
    } else {
        to_run.iter().map(|e| run_one(*e)).collect()
    };
    for ((id, _, _), report) in to_run.iter().zip(&reports) {
        println!("{report}");
        println!("{}", "=".repeat(78));
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.txt");
            sparseweaver_core::checkpoint::write_atomic(
                std::path::Path::new(&path),
                report.as_bytes(),
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot write report to {path}: {e}");
                std::process::exit(1)
            });
        }
    }
}
