//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--out DIR] [all | <id>...]
//! ```
//!
//! With `all` (the default) every artifact is regenerated in paper order;
//! `--quick` shrinks the sweeps (3 datasets, 3 GCN dims) for smoke runs;
//! `--out DIR` additionally writes one text file per artifact.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != out_dir.as_deref())
        .cloned()
        .collect();

    let catalog = sparseweaver_bench::experiments::catalog();
    if selected.iter().any(|s| s == "list") {
        for (id, desc, _) in &catalog {
            println!("{id:8}  {desc}");
        }
        return;
    }
    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut ran = 0;
    for (id, desc, f) in &catalog {
        if !run_all && !selected.iter().any(|s| s == id) {
            continue;
        }
        eprintln!("== running {id}: {desc} ==");
        let started = std::time::Instant::now();
        let report = f(quick);
        eprintln!("== {id} done in {:?} ==", started.elapsed());
        println!("{report}");
        println!("{}", "=".repeat(78));
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.txt");
            let mut file = std::fs::File::create(&path).expect("create report file");
            file.write_all(report.as_bytes()).expect("write report");
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id; use `experiments list`");
        std::process::exit(2);
    }
}
