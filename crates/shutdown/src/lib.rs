//! Cooperative shutdown plumbing for SparseWeaver binaries.
//!
//! The simulator and campaign runner stop at deterministic boundaries (kernel
//! launches, completed campaign runs) rather than dying mid-write. This crate
//! owns the two ways a stop can be requested from the outside:
//!
//! - **Signals.** [`install_signal_handler`] registers a SIGINT/SIGTERM
//!   handler that sets a shared [`AtomicBool`]. The handler only stores to an
//!   atomic, which is async-signal-safe.
//! - **Wall clock.** [`spawn_watchdog`] starts a detached thread that sets the
//!   same flag once a wall-clock budget expires.
//!
//! Everything that consumes the flag lives elsewhere; the rest of the
//! workspace stays `#![forbid(unsafe_code)]` and this crate contains the only
//! `unsafe` in the project (the raw `signal(2)` binding).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Shared stop flag: set by signal handlers or the watchdog, polled by the
/// simulator at launch boundaries and by the campaign runner between runs.
pub type StopFlag = Arc<AtomicBool>;

/// Creates a fresh, unset stop flag.
pub fn stop_flag() -> StopFlag {
    Arc::new(AtomicBool::new(false))
}

/// The flag the installed signal handler stores into. Signal handlers cannot
/// carry closures, so the target lives in a process-wide cell.
static SIGNAL_TARGET: OnceLock<StopFlag> = OnceLock::new();

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a relaxed store to an atomic, nothing else.
    if let Some(flag) = SIGNAL_TARGET.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Routes SIGINT and SIGTERM to `flag`: the first signal sets the flag so the
/// caller can stop at the next safe boundary.
///
/// Only the first installation wins; later calls with a different flag return
/// `false` and leave the original target in place (the handler can only ever
/// observe one cell for the lifetime of the process).
pub fn install_signal_handler(flag: &StopFlag) -> bool {
    let installed = SIGNAL_TARGET.get_or_init(|| Arc::clone(flag));
    if !Arc::ptr_eq(installed, flag) {
        return false;
    }
    // SAFETY: `on_signal` is an `extern "C" fn(i32)` that only performs an
    // atomic store, which is async-signal-safe. `signal` is the libc binding.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
    true
}

/// Spawns a detached watchdog thread that sets `flag` after `max_wall_secs`
/// seconds. The thread holds only a weak-free clone of the flag and exits
/// after firing; there is nothing to join.
pub fn spawn_watchdog(flag: &StopFlag, max_wall_secs: u64) {
    let flag = Arc::clone(flag);
    std::thread::Builder::new()
        .name("sw-watchdog".into())
        .spawn(move || {
            std::thread::sleep(Duration::from_secs(max_wall_secs));
            flag.store(true, Ordering::Relaxed);
        })
        .expect("spawn watchdog thread");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_flag_is_unset() {
        assert!(!stop_flag().load(Ordering::Relaxed));
    }

    #[test]
    fn watchdog_sets_flag() {
        let flag = stop_flag();
        spawn_watchdog(&flag, 0);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !flag.load(Ordering::Relaxed) {
            assert!(std::time::Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn signal_handler_installs_once() {
        let first = stop_flag();
        assert!(install_signal_handler(&first));
        // Re-installing the same flag is fine; a different flag is refused.
        assert!(install_signal_handler(&first));
        let second = stop_flag();
        assert!(!install_signal_handler(&second));
    }
}
