//! Algorithm result values (vertex properties).

/// The vertex-property vector an algorithm produces.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoOutput {
    /// Floating-point properties (PageRank ranks, GCN features).
    F64(Vec<f64>),
    /// Integer properties (BFS/SSSP distances, component labels).
    U64(Vec<u64>),
}

impl AlgoOutput {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            AlgoOutput::F64(v) => v.len(),
            AlgoOutput::U64(v) => v.len(),
        }
    }

    /// Whether the output is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The float vector.
    ///
    /// # Panics
    ///
    /// Panics if the output holds integers.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            AlgoOutput::F64(v) => v,
            AlgoOutput::U64(_) => panic!("expected f64 output"),
        }
    }

    /// The integer vector.
    ///
    /// # Panics
    ///
    /// Panics if the output holds floats.
    pub fn as_u64(&self) -> &[u64] {
        match self {
            AlgoOutput::U64(v) => v,
            AlgoOutput::F64(_) => panic!("expected u64 output"),
        }
    }

    /// Compares against `other`: exact for integers, within `tol`
    /// (absolute or relative, whichever is looser) for floats. Returns the
    /// first mismatching index.
    pub fn mismatch(&self, other: &AlgoOutput, tol: f64) -> Option<usize> {
        match (self, other) {
            (AlgoOutput::U64(a), AlgoOutput::U64(b)) => {
                if a.len() != b.len() {
                    return Some(a.len().min(b.len()));
                }
                a.iter().zip(b).position(|(x, y)| x != y)
            }
            (AlgoOutput::F64(a), AlgoOutput::F64(b)) => {
                if a.len() != b.len() {
                    return Some(a.len().min(b.len()));
                }
                a.iter().zip(b).position(|(x, y)| {
                    let diff = (x - y).abs();
                    diff > tol && diff > tol * x.abs().max(y.abs())
                })
            }
            _ => Some(0),
        }
    }

    /// Whether the outputs agree (see [`AlgoOutput::mismatch`]).
    pub fn approx_eq(&self, other: &AlgoOutput, tol: f64) -> bool {
        self.mismatch(other, tol).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_comparison_is_exact() {
        let a = AlgoOutput::U64(vec![1, 2, 3]);
        let b = AlgoOutput::U64(vec![1, 2, 4]);
        assert_eq!(a.mismatch(&b, 0.0), Some(2));
        assert!(a.approx_eq(&a.clone(), 0.0));
    }

    #[test]
    fn float_comparison_uses_tolerance() {
        let a = AlgoOutput::F64(vec![1.0, 2.0]);
        let b = AlgoOutput::F64(vec![1.0 + 1e-12, 2.0]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = AlgoOutput::F64(vec![1.5, 2.0]);
        assert_eq!(a.mismatch(&c, 1e-9), Some(0));
    }

    #[test]
    fn type_mismatch_is_mismatch() {
        let a = AlgoOutput::F64(vec![1.0]);
        let b = AlgoOutput::U64(vec![1]);
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn length_mismatch_detected() {
        let a = AlgoOutput::U64(vec![1, 2]);
        let b = AlgoOutput::U64(vec![1]);
        assert_eq!(a.mismatch(&b, 0.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "expected f64")]
    fn wrong_accessor_panics() {
        AlgoOutput::U64(vec![1]).as_f64();
    }
}
