//! The host runtime: device memory layout, uploads, kernel launches.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sparseweaver_fault::FaultHandle;
use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::Program;
use sparseweaver_sim::{Gpu, KernelStats, SimError};
use sparseweaver_trace::{CounterSnapshot, EventData, ProfileHandle, TraceHandle};
use sparseweaver_weaver::eghw::EghwLayout;

use sparseweaver_lint::LintLevel;

use crate::checkpoint::{Checkpoint, CheckpointError, HostEvent};
use crate::compiler::Compiler;
use crate::schedule::Schedule;
use crate::FrameworkError;

/// Kernel-argument indices shared by every schedule template.
pub mod args {
    /// Number of vertices.
    pub const NUM_VERTICES: u8 = 0;
    /// Offsets array base (direction view).
    pub const OFFSETS: u8 = 1;
    /// Edge (other-endpoint) array base.
    pub const EDGES: u8 = 2;
    /// Edge weight array base.
    pub const WEIGHTS: u8 = 3;
    /// Per-edge base-vertex array (edge mapping's second endpoint read).
    pub const SRCS: u8 = 4;
    /// Number of edges in the view.
    pub const NUM_EDGES: u8 = 5;
    /// Registration chunk size (Weaver ST capacity clamp).
    pub const ST_CHUNK: u8 = 6;
    /// EGHW staging-buffer base in shared memory.
    pub const EGHW_STAGING: u8 = 7;
    /// First algorithm-owned argument index.
    pub const ALGO0: u8 = 8;
    /// Number of common arguments.
    pub const COMMON: usize = 8;
}

/// Default bound on launch retries after a Weaver response timeout.
pub const DEFAULT_WEAVER_RETRIES: u32 = 2;

/// Checkpoint and early-stop policy for one run, built by
/// [`crate::session::Session`] from the CLI flags.
///
/// Checkpoints are taken at kernel-launch boundaries: after a launch's
/// statistics are folded into the run totals, the runtime snapshots the
/// complete machine and host state. A run stopped by the cooperative
/// `stop` flag (signal handler or wall-clock watchdog) or by the
/// deterministic `stop_after_launches` bound writes a final checkpoint
/// (when `out` is set) and returns [`FrameworkError::Interrupted`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointCtl {
    /// Where checkpoints are written (atomically: temp file + rename).
    /// `None` disables checkpointing; the stop knobs still work.
    pub out: Option<PathBuf>,
    /// Write a checkpoint every `every` completed launches; 0 means only
    /// when stopping.
    pub every: u64,
    /// The original `swsim run` argument vector, embedded so `swsim
    /// resume` can rebuild the session.
    pub argv: Vec<String>,
    /// FNV-1a fingerprint of the effective GPU configuration.
    pub config_fp: u64,
    /// FNV-1a fingerprint of the input graph.
    pub graph_fp: u64,
    /// Fallback provenance, set by the session on an `S_wm` re-run after
    /// Weaver retry exhaustion.
    pub fell_back_from: Option<(Schedule, String)>,
    /// Cooperative stop flag, set by the signal handler or watchdog.
    pub stop: Option<Arc<AtomicBool>>,
    /// Deterministic stop bound for CI: behave exactly like a stop
    /// request once this many launches have completed.
    pub stop_after_launches: Option<u64>,
}

/// Host-interaction bookkeeping for checkpoint record/replay.
#[derive(Debug, Default)]
struct HostState {
    /// Record host events into `log` (on whenever checkpointing is on).
    recording: bool,
    /// The full, ordered host-event history since run start. On resume
    /// this is seeded from the checkpoint so later checkpoints keep the
    /// complete history.
    log: Vec<HostEvent>,
    /// Events still to be replayed on a resumed run; empty in live mode.
    replay: VecDeque<HostEvent>,
    /// The checkpointed allocator cursor, verified when `replay` drains.
    verify_alloc: Option<u64>,
}

/// Addresses of the uploaded graph view.
#[derive(Debug, Clone, Copy)]
pub struct DeviceGraph {
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count of the view.
    pub num_edges: u64,
    /// Offsets base address.
    pub offsets: u64,
    /// Edge-target base address.
    pub edges: u64,
    /// Weight base address.
    pub weights: u64,
    /// Per-edge base-vertex array address.
    pub srcs: u64,
}

/// The per-run host runtime an [`crate::algorithms::Algorithm`] drives.
///
/// Owns the simulated GPU for one `(graph, algorithm, schedule)` run:
/// uploads the direction view, allocates property buffers, compiles and
/// launches kernels, and accumulates per-kernel statistics.
pub struct Runtime<'a> {
    gpu: Gpu,
    /// The original input graph.
    pub graph: &'a Csr,
    /// The direction view kernels traverse (original for push, reverse
    /// for pull).
    pub view: Csr,
    /// Uploaded graph addresses.
    pub device: DeviceGraph,
    schedule: Schedule,
    direction: Direction,
    next_alloc: u64,
    per_kernel: Vec<(String, KernelStats)>,
    total: KernelStats,
    compiler: Compiler,
    tracer: Option<TraceHandle>,
    profiler: Option<ProfileHandle>,
    fault: Option<FaultHandle>,
    max_weaver_retries: u32,
    weaver_retries: u64,
    launches: u64,
    ckpt: Option<CheckpointCtl>,
    host: RefCell<HostState>,
}

impl<'a> Runtime<'a> {
    /// Creates a runtime: builds the `direction` view of `graph` and
    /// uploads its CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::GraphTooLarge`] if counts exceed `u32`.
    pub fn new(
        mut gpu: Gpu,
        graph: &'a Csr,
        direction: Direction,
        schedule: Schedule,
    ) -> Result<Self, FrameworkError> {
        if graph.num_edges() > u32::MAX as usize / 2 {
            return Err(FrameworkError::GraphTooLarge {
                what: format!("{} edges", graph.num_edges()),
            });
        }
        let view = graph.view(direction);
        let mut rt = Runtime {
            device: DeviceGraph {
                num_vertices: view.num_vertices() as u64,
                num_edges: view.num_edges() as u64,
                offsets: 0,
                edges: 0,
                weights: 0,
                srcs: 0,
            },
            gpu: {
                gpu.mem_mut().grow_to(1 << 20);
                gpu
            },
            graph,
            view,
            schedule,
            direction,
            next_alloc: 64,
            per_kernel: Vec::new(),
            total: KernelStats::default(),
            compiler: Compiler::default(),
            tracer: None,
            profiler: None,
            fault: None,
            max_weaver_retries: DEFAULT_WEAVER_RETRIES,
            weaver_retries: 0,
            launches: 0,
            ckpt: None,
            host: RefCell::new(HostState::default()),
        };
        rt.device.offsets = rt.upload_u32(rt.view.offsets().to_vec().as_slice());
        rt.device.edges = rt.upload_u32(rt.view.targets().to_vec().as_slice());
        rt.device.weights = rt.upload_u32(rt.view.weights().to_vec().as_slice());
        rt.device.srcs = rt.upload_u32(rt.view.sources().to_vec().as_slice());
        if schedule == Schedule::Eghw {
            let layout = EghwLayout {
                offsets_base: rt.device.offsets,
                edges_base: rt.device.edges,
                weights_base: rt.device.weights,
            };
            rt.gpu.set_eghw_layout(layout);
        }
        Ok(rt)
    }

    /// The schedule this runtime compiles for.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The gather direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The simulated GPU.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Attaches (or detaches) a structured-event tracer on the GPU; all
    /// subsequent launches through this runtime are traced.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.gpu.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches (or detaches) a latency profiler on the GPU; all
    /// subsequent launches through this runtime feed its histograms. A
    /// retried launch (after a Weaver timeout) keeps recording into the
    /// same profiler: the retry's work is part of the run's cost.
    pub fn set_profiler(&mut self, profiler: Option<ProfileHandle>) {
        self.gpu.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Attaches (or detaches) a memory-trace recorder on the GPU; all
    /// subsequent launches through this runtime append `swmtrace-v1`
    /// records (hierarchy requests in service order, kernel launches,
    /// barrier arrivals) into it. A retried launch keeps recording into
    /// the same capture: the retry's traffic is part of the run's memory
    /// behavior.
    pub fn set_mem_recorder(&mut self, recorder: Option<sparseweaver_mem::MemRecorderHandle>) {
        self.gpu.set_mem_recorder(recorder);
    }

    /// Attaches (or detaches) a deterministic fault injector on the GPU.
    ///
    /// With an injector whose spec can drop Weaver responses, every launch
    /// snapshots device memory first, so a [`SimError::WeaverTimeout`] can
    /// be retried from a clean functional state (see
    /// [`Runtime::set_max_weaver_retries`]).
    pub fn set_fault_injector(&mut self, fault: Option<FaultHandle>) {
        self.gpu.set_fault_injector(fault.clone());
        self.fault = fault;
    }

    /// Bounds how many times a launch is retried after a Weaver response
    /// timeout before the error propagates (default
    /// [`DEFAULT_WEAVER_RETRIES`]).
    pub fn set_max_weaver_retries(&mut self, retries: u32) {
        self.max_weaver_retries = retries;
    }

    /// Launch retries performed after Weaver timeouts so far.
    pub fn weaver_retries(&self) -> u64 {
        self.weaver_retries
    }

    /// Kernel launches completed so far (replayed launches included).
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Installs the checkpoint/early-stop policy. With a policy whose
    /// `out` is set, the runtime records every host/device interaction so
    /// checkpoints can be resumed deterministically.
    pub fn set_checkpoint_ctl(&mut self, ctl: Option<CheckpointCtl>) {
        self.host.borrow_mut().recording = ctl.as_ref().is_some_and(|c| c.out.is_some());
        self.ckpt = ctl;
    }

    /// Restores a checkpoint into this runtime: the complete machine
    /// state, the accumulated statistics, and the host-event log. The
    /// algorithm driver then re-runs from its start in *replay* mode (no
    /// simulation, reads served from the log, writes suppressed) until
    /// the log drains at the checkpoint boundary, at which point live
    /// simulation continues bit-identically to an uninterrupted run.
    ///
    /// Must be called after the tracer/profiler/fault handles are
    /// attached and before the algorithm runs. The caller is responsible
    /// for fingerprint verification ([`Checkpoint::verify`]).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Checkpoint`] when the snapshot does not fit the
    /// rebuilt machine or the attached instrumentation does not match
    /// the checkpointed instrumentation.
    pub fn resume_from(&mut self, ck: &Checkpoint) -> Result<(), FrameworkError> {
        let restore = |what: String| FrameworkError::Checkpoint(CheckpointError::Restore { what });
        self.gpu.restore_state(&ck.gpu).map_err(restore)?;
        match (&self.tracer, &ck.tracer) {
            (Some(t), Some(state)) => t
                .restore_state(state)
                .map_err(|e| restore(format!("tracer: {e}")))?,
            (None, None) => {}
            (have, _) => {
                return Err(restore(format!(
                    "tracer mismatch: checkpoint {} tracer state but the rebuilt \
                     session {} a tracer",
                    if ck.tracer.is_some() { "has" } else { "has no" },
                    if have.is_some() {
                        "attached"
                    } else {
                        "did not attach"
                    },
                )))
            }
        }
        match (&self.profiler, &ck.profile) {
            (Some(p), Some(report)) => p.restore_state(report),
            (None, None) => {}
            (have, _) => {
                return Err(restore(format!(
                    "profiler mismatch: checkpoint {} profiler state but the rebuilt \
                     session {} a profiler",
                    if ck.profile.is_some() {
                        "has"
                    } else {
                        "has no"
                    },
                    if have.is_some() {
                        "attached"
                    } else {
                        "did not attach"
                    },
                )))
            }
        }
        match (&self.fault, &ck.fault) {
            (Some(f), Some(state)) => f.restore_state(state),
            (None, None) => {}
            (have, _) => {
                return Err(restore(format!(
                    "fault-injector mismatch: checkpoint {} injector state but the \
                     rebuilt session {} an injector",
                    if ck.fault.is_some() { "has" } else { "has no" },
                    if have.is_some() {
                        "attached"
                    } else {
                        "did not attach"
                    },
                )))
            }
        }
        self.launches = ck.launches;
        self.weaver_retries = ck.weaver_retries;
        self.total = ck.total.clone();
        self.per_kernel = ck.per_kernel.clone();
        let mut host = self.host.borrow_mut();
        host.log = ck.host_log.clone();
        host.replay = ck.host_log.iter().cloned().collect();
        host.verify_alloc = Some(ck.next_alloc);
        Ok(())
    }

    /// Whether the runtime is still replaying a restored host-event log.
    fn replaying(&self) -> bool {
        !self.host.borrow().replay.is_empty()
    }

    /// Pops the next replayed host read, or `None` in live mode.
    ///
    /// # Panics
    ///
    /// Panics on host-replay divergence: the algorithm driver performed
    /// a read where the recorded run performed a launch. Drivers are
    /// deterministic functions of their read results, so this indicates
    /// a corrupted checkpoint payload or a driver/runtime mismatch.
    fn replay_read(&self) -> Option<u64> {
        let mut host = self.host.borrow_mut();
        if host.replay.is_empty() {
            return None;
        }
        match host.replay.pop_front() {
            Some(HostEvent::Read(bits)) => Some(bits),
            other => panic!(
                "checkpoint host-replay divergence: expected a recorded host read, \
                 found {other:?}"
            ),
        }
    }

    /// Records a live host read when checkpoint recording is on.
    fn record_read(&self, bits: u64) {
        let mut host = self.host.borrow_mut();
        if host.recording {
            host.log.push(HostEvent::Read(bits));
        }
    }

    /// Assembles a complete checkpoint of the current (launch-boundary)
    /// state under the policy `ctl`.
    fn make_checkpoint(&self, ctl: &CheckpointCtl) -> Checkpoint {
        Checkpoint {
            config_fp: ctl.config_fp,
            graph_fp: ctl.graph_fp,
            argv: ctl.argv.clone(),
            schedule: self.schedule,
            fell_back_from: ctl.fell_back_from.clone(),
            launches: self.launches,
            next_alloc: self.next_alloc,
            weaver_retries: self.weaver_retries,
            total: self.total.clone(),
            per_kernel: self.per_kernel.clone(),
            host_log: self.host.borrow().log.clone(),
            gpu: self.gpu.save_state(),
            tracer: self.tracer.as_ref().map(|t| t.save_state()),
            profile: self.profiler.as_ref().map(|p| p.save_state()),
            fault: self.fault.as_ref().map(|f| f.save_state()),
        }
    }

    /// Launch-boundary policy hook: periodic checkpoints, cooperative
    /// stop, and the deterministic `--stop-after-launches` bound.
    fn after_launch(&self) -> Result<(), FrameworkError> {
        let Some(ctl) = &self.ckpt else {
            return Ok(());
        };
        let stop_hit = ctl.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst));
        let bound_hit = ctl.stop_after_launches.is_some_and(|n| self.launches >= n);
        let cadence_hit = ctl.every > 0 && self.launches.is_multiple_of(ctl.every);
        if let Some(out) = &ctl.out {
            if cadence_hit || stop_hit || bound_hit {
                self.make_checkpoint(ctl).save(out)?;
            }
        }
        if stop_hit || bound_hit {
            let saved = match &ctl.out {
                Some(out) => format!("checkpoint written to {}", out.display()),
                None => "no --checkpoint-out configured, state discarded".to_string(),
            };
            let why = if stop_hit {
                "stop requested (signal or wall-clock watchdog)"
            } else {
                "--stop-after-launches bound reached"
            };
            return Err(FrameworkError::Interrupted {
                what: format!(
                    "{why} at launch boundary {launches}; {saved}",
                    launches = self.launches
                ),
            });
        }
        Ok(())
    }

    /// Enables or disables the simulator's idle-cycle fast-forward cache
    /// for subsequent launches (default on; bit-identical either way —
    /// see [`Gpu::set_fast_forward`]).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.gpu.set_fast_forward(on);
    }

    /// Sets how the static verifier reacts to kernel findings (default:
    /// [`LintLevel::Deny`]). Resets the verdict cache; the register
    /// allocation and analyzer settings carry over.
    pub fn set_lint(&mut self, level: LintLevel) {
        let regalloc = self.compiler.regalloc();
        let analyze = self.compiler.analyze_geom();
        self.compiler = Compiler::new(level);
        self.compiler.set_regalloc(regalloc);
        self.compiler.set_analyze(analyze);
    }

    /// Enables or disables the opt-in SW-L5xx abstract-interpretation
    /// gate for subsequent launches (default: off). `Some(geom)` runs
    /// the analyzer against that launch geometry alongside the
    /// structural lints (see `Compiler::set_analyze`).
    pub fn set_analyze(&mut self, geom: Option<sparseweaver_lint::AnalyzeGeom>) {
        self.compiler.set_analyze(geom);
    }

    /// The analyzer's launch geometry, if the gate is enabled.
    pub fn analyze_geom(&self) -> Option<sparseweaver_lint::AnalyzeGeom> {
        self.compiler.analyze_geom()
    }

    /// The active lint enforcement level.
    pub fn lint_level(&self) -> LintLevel {
        self.compiler.level()
    }

    /// Enables or disables the compiler's register-allocation pass for
    /// subsequent launches (default: enabled).
    pub fn set_regalloc(&mut self, enabled: bool) {
        self.compiler.set_regalloc(enabled);
    }

    /// Whether the register-allocation pass is enabled.
    pub fn regalloc(&self) -> bool {
        self.compiler.regalloc()
    }

    /// Runs the compiler pipeline over `program` without launching it,
    /// returning the kernel that [`Runtime::launch`] would execute.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Lint`] when the verifier rejects the
    /// kernel (before or after register allocation).
    pub fn compile(&mut self, program: &Program) -> Result<Program, FrameworkError> {
        self.compiler.process(program)
    }

    /// Allocates `bytes` of device memory (64-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc;
        self.next_alloc = (self.next_alloc + bytes + 63) & !63;
        self.gpu.mem_mut().grow_to(self.next_alloc as usize);
        base
    }

    /// Uploads a `u32` slice; returns its device address.
    pub fn upload_u32(&mut self, data: &[u32]) -> u64 {
        let base = self.alloc(4 * data.len() as u64);
        if !self.replaying() {
            self.gpu.mem_mut().write_u32_slice(base, data);
        }
        base
    }

    /// Uploads an `f64` slice; returns its device address.
    pub fn upload_f64(&mut self, data: &[f64]) -> u64 {
        let base = self.alloc(8 * data.len() as u64);
        if !self.replaying() {
            self.gpu.mem_mut().write_f64_slice(base, data);
        }
        base
    }

    /// Allocates `count` `f64`s initialized to `fill`.
    pub fn alloc_f64(&mut self, count: usize, fill: f64) -> u64 {
        self.upload_f64(&vec![fill; count])
    }

    /// Allocates `count` `u64`s initialized to `fill`.
    pub fn alloc_u64(&mut self, count: usize, fill: u64) -> u64 {
        let base = self.alloc(8 * count as u64);
        if !self.replaying() {
            for i in 0..count {
                self.gpu.mem_mut().write(base + 8 * i as u64, fill, 8);
            }
        }
        base
    }

    /// Allocates `count` bytes initialized to `fill`.
    pub fn alloc_u8(&mut self, count: usize, fill: u8) -> u64 {
        let base = self.alloc(count as u64);
        if !self.replaying() {
            for i in 0..count {
                self.gpu.mem_mut().write(base + i as u64, fill as u64, 1);
            }
        }
        base
    }

    /// Reads one 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        if let Some(bits) = self.replay_read() {
            return bits;
        }
        let v = self.gpu.mem().read(addr, 8);
        self.record_read(v);
        v
    }

    /// Reads one 32-bit word.
    pub fn read_u32(&self, addr: u64) -> u32 {
        if let Some(bits) = self.replay_read() {
            return bits as u32;
        }
        let v = self.gpu.mem().read(addr, 4);
        self.record_read(v);
        v as u32
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        if let Some(bits) = self.replay_read() {
            return bits as u8;
        }
        let v = self.gpu.mem().read(addr, 1);
        self.record_read(v);
        v as u8
    }

    /// Writes one 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        if !self.replaying() {
            self.gpu.mem_mut().write(addr, value, 8);
        }
    }

    /// Writes one 32-bit word.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        if !self.replaying() {
            self.gpu.mem_mut().write(addr, value as u64, 4);
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        if !self.replaying() {
            self.gpu.mem_mut().write(addr, value as u64, 1);
        }
    }

    /// Reads `count` f64s.
    pub fn read_f64_vec(&self, addr: u64, count: usize) -> Vec<f64> {
        if self.replaying() {
            return (0..count)
                .map(|_| {
                    f64::from_bits(
                        self.replay_read()
                            .expect("checkpoint host-replay divergence: f64 read past end of log"),
                    )
                })
                .collect();
        }
        let v = self.gpu.mem().read_f64_slice(addr, count);
        for x in &v {
            self.record_read(x.to_bits());
        }
        v
    }

    /// Reads `count` u64s.
    pub fn read_u64_vec(&self, addr: u64, count: usize) -> Vec<u64> {
        (0..count)
            .map(|i| self.read_u64(addr + 8 * i as u64))
            .collect()
    }

    /// Host-side copy of `count` bytes (frontier swaps).
    pub fn copy_bytes(&mut self, src: u64, dst: u64, count: usize) {
        // The internal reads are device-side bookkeeping, not driver
        // decisions, so they are not recorded; in replay mode the whole
        // copy is suppressed (device memory already holds the result).
        if self.replaying() {
            return;
        }
        for i in 0..count as u64 {
            let v = self.gpu.mem().read(src + i, 1);
            self.gpu.mem_mut().write(dst + i, v, 1);
        }
    }

    /// Fills `count` bytes with `value`.
    pub fn fill_bytes(&mut self, addr: u64, value: u8, count: usize) {
        if self.replaying() {
            return;
        }
        for i in 0..count as u64 {
            self.gpu.mem_mut().write(addr + i, value as u64, 1);
        }
    }

    /// The common argument vector every template expects.
    pub fn common_args(&self) -> Vec<u64> {
        let cfg = self.gpu.config();
        let tpc = cfg.threads_per_core() as u64;
        let st_chunk = match self.schedule {
            Schedule::SparseWeaver => (cfg.weaver.st_capacity as u64).min(tpc),
            _ => tpc,
        };
        let staging = sparseweaver_sim::core::eghw_staging_base(
            cfg.shared_mem_bytes,
            cfg.warps_per_core,
            cfg.threads_per_warp,
        );
        vec![
            self.device.num_vertices,
            self.device.offsets,
            self.device.edges,
            self.device.weights,
            self.device.srcs,
            self.device.num_edges,
            st_chunk,
            staging,
        ]
    }

    /// Launches `program` with the common arguments plus `extra` (starting
    /// at [`args::ALGO0`]), recording stats under the program's name.
    ///
    /// Before the first launch of each kernel name, the program passes
    /// through the compiler pipeline: the static verifier according to
    /// [`Runtime::lint_level`], then (when enabled) register allocation
    /// with a re-lint of the rewritten stream. The rewritten kernel is
    /// what actually executes.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors, and [`FrameworkError::Lint`] when the
    /// verifier rejects the kernel.
    pub fn launch(
        &mut self,
        program: &Program,
        extra: &[u64],
    ) -> Result<KernelStats, FrameworkError> {
        if self.replaying() {
            return Ok(self.replay_launch(program));
        }
        let program = self.compiler.process(program)?;
        let mut argv = self.common_args();
        argv.extend_from_slice(extra);
        // With an injector that can drop Weaver responses, keep a
        // functional-memory snapshot so the launch can be retried from
        // clean state after a timeout.
        let snapshot = self
            .fault
            .as_ref()
            .filter(|f| f.spec().weaver_drop_rate > 0.0)
            .map(|_| self.gpu.mem().clone());
        let mut attempt: u32 = 0;
        let stats = loop {
            match self.gpu.launch(&program, &argv) {
                Ok(stats) => break stats,
                Err(SimError::WeaverTimeout { kernel, .. })
                    if snapshot.is_some() && attempt < self.max_weaver_retries =>
                {
                    attempt += 1;
                    self.weaver_retries += 1;
                    if let Some(m) = &snapshot {
                        *self.gpu.mem_mut() = m.clone();
                    }
                    if let Some(f) = &self.fault {
                        f.clear_weaver_faulty();
                    }
                    if let Some(tr) = &self.tracer {
                        tr.emit(0, 0, EventData::WeaverRetry { kernel, attempt });
                        tr.add_totals(&CounterSnapshot {
                            weaver_retries: 1,
                            ..CounterSnapshot::default()
                        });
                    }
                }
                Err(e) => return Err(e.into()),
            }
        };
        self.total.accumulate(&stats);
        if let Some((_, agg)) = self
            .per_kernel
            .iter_mut()
            .find(|(n, _)| n == program.name())
        {
            agg.accumulate(&stats);
        } else {
            self.per_kernel
                .push((program.name().to_string(), stats.clone()));
        }
        self.launches += 1;
        {
            let mut host = self.host.borrow_mut();
            if host.recording {
                host.log.push(HostEvent::LaunchDone(stats.clone()));
            }
        }
        self.after_launch()?;
        Ok(stats)
    }

    /// A launch during host-log replay: no compilation, no simulation, no
    /// re-accumulation (the restored totals already include it) — the
    /// recorded statistics are returned so the driver sees what it saw.
    ///
    /// # Panics
    ///
    /// Panics on host-replay divergence (the recorded run read here
    /// instead of launching, or the allocator cursor drifted) — see
    /// [`Runtime::replay_read`].
    fn replay_launch(&mut self, program: &Program) -> KernelStats {
        let mut host = self.host.borrow_mut();
        let stats = match host.replay.pop_front() {
            Some(HostEvent::LaunchDone(stats)) => stats,
            other => panic!(
                "checkpoint host-replay divergence: expected a recorded launch of \
                 kernel `{}`, found {other:?}",
                program.name()
            ),
        };
        if host.replay.is_empty() {
            // The log drained at the checkpoint boundary: verify the
            // bump allocator re-derived the checkpointed cursor before
            // switching back to live simulation.
            if let Some(expected) = host.verify_alloc.take() {
                assert_eq!(
                    self.next_alloc, expected,
                    "checkpoint host-replay divergence: allocator cursor {} after \
                     replay, checkpoint recorded {expected}",
                    self.next_alloc
                );
            }
        }
        stats
    }

    /// Accumulated stats across all launches so far.
    pub fn total_stats(&self) -> &KernelStats {
        &self.total
    }

    /// Per-kernel accumulated stats, in first-launch order.
    pub fn per_kernel_stats(&self) -> &[(String, KernelStats)] {
        &self.per_kernel
    }

    /// Consumes the runtime, returning `(total, per-kernel)` stats.
    pub fn into_stats(self) -> (KernelStats, Vec<(String, KernelStats)>) {
        (self.total, self.per_kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_graph::generators;
    use sparseweaver_sim::{Gpu, GpuConfig};

    fn rt(schedule: Schedule) -> (sparseweaver_graph::Csr, Runtime<'static>) {
        // Leak the graph for a 'static runtime in tests only.
        let g: &'static Csr = Box::leak(Box::new(generators::uniform(30, 120, 9)));
        let gpu = Gpu::new(GpuConfig::small_test());
        let rt = Runtime::new(gpu, g, Direction::Pull, schedule).unwrap();
        (g.clone(), rt)
    }

    #[test]
    fn graph_arrays_uploaded_correctly() {
        let (g, rt) = rt(Schedule::Svm);
        let view = g.view(Direction::Pull);
        let offs = rt
            .gpu()
            .mem()
            .read_u32_slice(rt.device.offsets, view.num_vertices() + 1);
        assert_eq!(offs, view.offsets());
        let edges = rt
            .gpu()
            .mem()
            .read_u32_slice(rt.device.edges, view.num_edges());
        assert_eq!(edges, view.targets());
        assert_eq!(rt.device.num_edges, view.num_edges() as u64);
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let (_, mut rt) = rt(Schedule::Svm);
        let a = rt.alloc(100);
        let b = rt.alloc(1);
        let c = rt.alloc(64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(c % 64, 0);
        assert!(b >= a + 100);
        assert!(c > b);
    }

    #[test]
    fn common_args_layout() {
        let (_, rt) = rt(Schedule::SparseWeaver);
        let args_v = rt.common_args();
        assert_eq!(args_v.len(), args::COMMON);
        assert_eq!(args_v[args::NUM_VERTICES as usize], rt.device.num_vertices);
        assert_eq!(args_v[args::OFFSETS as usize], rt.device.offsets);
        // The weaver chunk is clamped to the ST capacity.
        let cfg = rt.gpu().config();
        assert_eq!(
            args_v[args::ST_CHUNK as usize],
            (cfg.weaver.st_capacity as u64).min(cfg.threads_per_core() as u64)
        );
    }

    #[test]
    fn fill_and_copy_bytes() {
        let (_, mut rt) = rt(Schedule::Svm);
        let a = rt.alloc_u8(16, 7);
        let b = rt.alloc_u8(16, 0);
        rt.copy_bytes(a, b, 16);
        for i in 0..16 {
            assert_eq!(rt.gpu().mem().read(b + i, 1), 7);
        }
        rt.fill_bytes(b, 0, 16);
        assert_eq!(rt.gpu().mem().read(b + 3, 1), 0);
    }

    #[test]
    fn per_kernel_stats_aggregate_by_name() {
        let (_, mut rt) = rt(Schedule::Svm);
        let mut a = sparseweaver_isa::Asm::new("k1");
        a.halt();
        let p = a.finish();
        rt.launch(&p, &[]).unwrap();
        rt.launch(&p, &[]).unwrap();
        let per = rt.per_kernel_stats();
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].0, "k1");
        assert_eq!(per[0].1.launches, 2);
        assert_eq!(rt.total_stats().launches, 2);
    }

    #[test]
    fn lint_deny_rejects_ill_formed_kernel_unless_off() {
        let (_, mut rt) = rt(Schedule::Svm);
        assert_eq!(rt.lint_level(), LintLevel::Deny);
        let fixtures = sparseweaver_lint::fixtures::ill_formed();
        let (program, rule) = &fixtures[0];
        let err = rt.launch(program, &[]).unwrap_err();
        match err {
            FrameworkError::Lint {
                kernel,
                errors,
                details,
            } => {
                assert_eq!(&kernel, program.name());
                assert!(errors > 0);
                assert!(details.contains(rule), "{details}");
            }
            other => panic!("expected a lint rejection, got {other}"),
        }
        // Opting out lets the same kernel through to the simulator.
        rt.set_lint(LintLevel::Off);
        rt.launch(program, &[]).unwrap();
    }

    #[test]
    fn oversized_graph_rejected() {
        // A graph with too many edges must be rejected up front; fabricate
        // via the edge-count check by constructing a large fake... the
        // builder cannot reach u32::MAX/2 edges in a test, so this is a
        // compile-time documented boundary; assert the small case passes.
        let (_, rt) = rt(Schedule::Svm);
        assert!(rt.device.num_edges < u32::MAX as u64 / 2);
    }
}
