//! Breadth-first search (pull direction, level-synchronous).
//!
//! BFS has both a destination filter (only unvisited vertices gather) and
//! a source filter (only frontier neighbors count), and it exits a
//! vertex's gather as soon as one frontier parent is found — the
//! early-exit pattern `WEAVER_SKIP` exists for ("algorithms like BFS that
//! do not need to process remaining neighbors during gather processing
//! once the needed information has been collected", Section III-C).

use sparseweaver_graph::{Csr, Direction, VertexId};
use sparseweaver_isa::{Asm, Program, Reg, Width};
use sparseweaver_sim::GpuConfig;

use crate::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
use crate::output::AlgoOutput;
use crate::runtime::{args, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

use super::{Algorithm, INF};

/// Level-synchronous BFS from a source vertex.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// The search root.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

const A_DIST: u8 = args::ALGO0;
const A_CUR: u8 = args::ALGO0 + 1;
const A_NEXT: u8 = args::ALGO0 + 2;
const A_LEVEL: u8 = args::ALGO0 + 3;

struct BfsGather;

impl GatherOps for BfsGather {
    fn has_early_exit(&self) -> bool {
        true
    }

    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let dist = a.reg();
        let cur = a.reg();
        let next = a.reg();
        let level = a.reg();
        a.ldarg(dist, A_DIST);
        a.ldarg(cur, A_CUR);
        a.ldarg(next, A_NEXT);
        a.ldarg(level, A_LEVEL);
        vec![dist, cur, next, level]
    }

    /// Destination filter: gather only into unvisited vertices.
    fn emit_base_filter(&self, a: &mut Asm, pro: &[Reg], vid: Reg, out: Reg) -> bool {
        let addr = a.reg();
        a.slli(addr, vid, 3);
        a.add(addr, addr, pro[0]);
        a.ldg(out, addr, 0, Width::B8);
        a.seqi(out, out, -1); // dist == INF
        a.free(addr);
        true
    }

    /// Source filter: only frontier neighbors contribute.
    fn emit_other_filter(&self, a: &mut Asm, pro: &[Reg], other: Reg, out: Reg) -> bool {
        let addr = a.reg();
        a.add(addr, other, pro[1]);
        a.ldg(out, addr, 0, Width::B1);
        a.free(addr);
        true
    }

    /// A vertex is satisfied once its distance is set.
    fn emit_satisfied(&self, a: &mut Asm, pro: &[Reg], base: Reg, out: Reg) {
        let addr = a.reg();
        a.slli(addr, base, 3);
        a.add(addr, addr, pro[0]);
        a.ldg(out, addr, 0, Width::B8);
        a.snei(out, out, -1); // satisfied when dist != INF
        a.free(addr);
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _exclusive: bool) {
        // dist[base] = level; next[base] = 1 (idempotent: racing writers
        // in the same level store the same value).
        let addr = a.reg();
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[0]);
        a.stg(pro[3], addr, 0, Width::B8);
        a.add(addr, e.base, pro[2]);
        let one = a.reg();
        a.li(one, 1);
        a.stg(one, addr, 0, Width::B1);
        a.free(one);
        a.free(addr);
        if let Some(sat) = e.satisfied {
            a.li(sat, 1); // break the vertex-mapped inner loop
        }
    }
}

impl Algorithm for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn direction(&self) -> Direction {
        Direction::Pull
    }

    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError> {
        let nv = rt.graph.num_vertices();
        if nv == 0 {
            return Ok(AlgoOutput::U64(Vec::new()));
        }
        assert!((self.source as usize) < nv, "BFS source out of range");
        let dist = rt.alloc_u64(nv, INF);
        let cur = rt.alloc_u8(nv, 0);
        let next = rt.alloc_u8(nv, 0);
        rt.write_u64(dist + 8 * self.source as u64, 0);
        rt.write_u8(cur + self.source as u64, 1);

        let gather = build_gather_kernel("bfs", &BfsGather, rt.schedule(), rt.gpu().config());
        let mut level: u64 = 1;
        loop {
            rt.launch(&gather, &[dist, cur, next, level])?;
            // Host-side frontier swap (device-visible state only).
            let next_bytes: Vec<u64> = (0..nv as u64)
                .map(|i| rt.read_u8(next + i) as u64)
                .collect();
            if next_bytes.iter().all(|&b| b == 0) {
                break;
            }
            rt.copy_bytes(next, cur, nv);
            rt.fill_bytes(next, 0, nv);
            level += 1;
            if level > nv as u64 + 1 {
                return Err(FrameworkError::NoConvergence {
                    algorithm: "bfs".into(),
                    iterations: level,
                });
            }
        }
        Ok(AlgoOutput::U64(rt.read_u64_vec(dist, nv)))
    }

    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        vec![build_gather_kernel("bfs", &BfsGather, schedule, cfg)]
    }

    fn reference(&self, graph: &Csr) -> AlgoOutput {
        let nv = graph.num_vertices();
        let mut dist = vec![INF; nv];
        if nv == 0 {
            return AlgoOutput::U64(dist);
        }
        let mut queue = std::collections::VecDeque::new();
        dist[self.source as usize] = 0;
        queue.push_back(self.source);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if dist[v as usize] == INF {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        AlgoOutput::U64(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_on_path() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = Bfs::new(0).reference(&g);
        assert_eq!(d.as_u64(), &[0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = Csr::from_edges(3, &[(0, 1)]);
        let d = Bfs::new(0).reference(&g);
        assert_eq!(d.as_u64()[2], INF);
    }

    #[test]
    fn reference_takes_shortest_levels() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3: dist(3) = 2 either way; plus 0 -> 3.
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let d = Bfs::new(0).reference(&g);
        assert_eq!(d.as_u64()[3], 1);
    }
}
