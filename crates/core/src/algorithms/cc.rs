//! Connected components (pull-direction min-label propagation with a
//! shortcutting apply kernel).
//!
//! Every vertex starts labeled with its own ID; the gather stage pulls the
//! minimum neighbor label, and the apply stage additionally shortcuts
//! through the label graph (`label[v] = label[label[v]]`) — the paper's
//! "apply kernel to rapidly propagate connection IDs among connected
//! components" (Section V-A).

use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::{Asm, AtomOp, Program, Reg, Width};
use sparseweaver_sim::{GpuConfig, Phase};

use crate::compiler::{build_gather_kernel, build_vertex_kernel, EdgeRegs, GatherOps};
use crate::output::AlgoOutput;
use crate::runtime::{args, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

use super::Algorithm;

/// Min-label connected components. The converged label of every vertex is
/// the smallest vertex ID in its (weakly, on symmetric graphs) connected
/// component.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ConnectedComponents
    }

    // Shortcutting apply: label[v] = min(label[v], label[label[v]]).
    fn build_apply(&self) -> Program {
        build_vertex_kernel(
            "cc_apply",
            Phase::Other,
            |a| {
                let label = a.reg();
                let changed = a.reg();
                a.ldarg(label, A_LABEL);
                a.ldarg(changed, A_CHANGED);
                vec![label, changed]
            },
            |a, _c, v, pro| {
                let addr = a.reg();
                let l = a.reg();
                let ll = a.reg();
                a.slli(addr, v, 3);
                a.add(addr, addr, pro[0]);
                a.ldg(l, addr, 0, Width::B8);
                let laddr = a.reg();
                a.slli(laddr, l, 3);
                a.add(laddr, laddr, pro[0]);
                a.ldg(ll, laddr, 0, Width::B8);
                let imp = a.reg();
                a.sltu(imp, ll, l);
                a.if_nonzero(imp, |a| {
                    a.stg(ll, addr, 0, Width::B8);
                    let one = a.reg();
                    a.li(one, 1);
                    a.stg(one, pro[1], 0, Width::B1);
                    a.free(one);
                });
                a.free(imp);
                a.free(laddr);
                a.free(ll);
                a.free(l);
                a.free(addr);
            },
        )
    }
}

const A_LABEL: u8 = args::ALGO0;
const A_CHANGED: u8 = args::ALGO0 + 1;

struct CcGather;

impl GatherOps for CcGather {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let label = a.reg();
        let changed = a.reg();
        a.ldarg(label, A_LABEL);
        a.ldarg(changed, A_CHANGED);
        vec![label, changed]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, exclusive_base: bool) {
        let (label, changed) = (pro[0], pro[1]);
        let lv = a.reg();
        let addr = a.reg();
        a.slli(addr, e.other, 3);
        a.add(addr, addr, label);
        a.ldg(lv, addr, 0, Width::B8);
        a.slli(addr, e.base, 3);
        a.add(addr, addr, label);
        let imp = a.reg();
        if exclusive_base {
            let lb = a.reg();
            a.ldg(lb, addr, 0, Width::B8);
            a.sltu(imp, lv, lb);
            a.if_nonzero(imp, |a| {
                a.stg(lv, addr, 0, Width::B8);
            });
            a.free(lb);
        } else {
            let old = a.reg();
            a.atom(AtomOp::MinU, old, addr, lv);
            a.sltu(imp, lv, old);
            a.free(old);
        }
        a.if_nonzero(imp, |a| {
            let one = a.reg();
            a.li(one, 1);
            a.stg(one, changed, 0, Width::B1);
            a.free(one);
        });
        a.free(imp);
        a.free(addr);
        a.free(lv);
    }
}

impl Algorithm for ConnectedComponents {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn direction(&self) -> Direction {
        Direction::Pull
    }

    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError> {
        let nv = rt.graph.num_vertices();
        if nv == 0 {
            return Ok(AlgoOutput::U64(Vec::new()));
        }
        let label = rt.alloc(8 * nv as u64);
        for v in 0..nv as u64 {
            rt.write_u64(label + 8 * v, v);
        }
        let changed = rt.alloc_u8(64, 0);

        let gather = build_gather_kernel("cc", &CcGather, rt.schedule(), rt.gpu().config());
        let apply = self.build_apply();

        let mut rounds: u64 = 0;
        loop {
            rt.write_u8(changed, 0);
            rt.launch(&gather, &[label, changed])?;
            rt.launch(&apply, &[label, changed])?;
            if rt.read_u8(changed) == 0 {
                break;
            }
            rounds += 1;
            if rounds > nv as u64 + 1 {
                return Err(FrameworkError::NoConvergence {
                    algorithm: "cc".into(),
                    iterations: rounds,
                });
            }
        }
        Ok(AlgoOutput::U64(rt.read_u64_vec(label, nv)))
    }

    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        vec![
            build_gather_kernel("cc", &CcGather, schedule, cfg),
            self.build_apply(),
        ]
    }

    fn reference(&self, graph: &Csr) -> AlgoOutput {
        // Union-find, then canonicalize to the minimum vertex ID per
        // component (treating edges as undirected, as label propagation on
        // a symmetric graph does).
        let nv = graph.num_vertices();
        let mut parent: Vec<usize> = (0..nv).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != c {
                let n = parent[c];
                parent[c] = r;
                c = n;
            }
            r
        }
        for (s, d, _) in graph.iter_edges() {
            let a = find(&mut parent, s as usize);
            let b = find(&mut parent, d as usize);
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut min_of = vec![u64::MAX; nv];
        for v in 0..nv {
            let r = find(&mut parent, v);
            min_of[r] = min_of[r].min(v as u64);
        }
        let labels = (0..nv)
            .map(|v| {
                let r = find(&mut parent, v);
                min_of[r]
            })
            .collect();
        AlgoOutput::U64(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_two_components() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (3, 4), (4, 3)]);
        let l = ConnectedComponents::new().reference(&g);
        assert_eq!(l.as_u64(), &[0, 0, 2, 3, 3]);
    }

    #[test]
    fn reference_chain_collapses_to_zero() {
        let edges: Vec<(u32, u32)> = (0..9u32).flat_map(|v| [(v, v + 1), (v + 1, v)]).collect();
        let g = Csr::from_edges(10, &edges);
        let l = ConnectedComponents::new().reference(&g);
        assert!(l.as_u64().iter().all(|&x| x == 0));
    }

    #[test]
    fn isolated_vertices_keep_their_ids() {
        let g = Csr::from_edges(3, &[]);
        let l = ConnectedComponents::new().reference(&g);
        assert_eq!(l.as_u64(), &[0, 1, 2]);
    }
}
