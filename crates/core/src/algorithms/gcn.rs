//! The GCN operators of Case Study 2: SpMM and mean aggregation
//! (GraphSum), swept over weight-dimension sizes.
//!
//! The baseline "changes `S_vm` mapping to first parallelize the weight
//! dimension and [then] the vertex dimension ... so each thread gathers a
//! specific weight across the size of the vertex's neighbor list and can
//! remove atomic [operations] for weight update. On the other hand, our
//! method continues to parallelize edge updates by iterating through the
//! weight dimension using atomic operation" (Section V-I).
//!
//! The decisive asymmetry the paper calls out: GraphSum's aggregation
//! coefficient is "determined by the degree of the source and destination
//! vertices" — the weight-parallel baseline recomputes it per *(edge,
//! weight-dim)* pair, while the edge-parallel SparseWeaver mapping
//! computes it once per edge and amortizes it across the weight loop.

use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::{Asm, AtomOp, CsrKind, Reg, VoteOp, Width};
use sparseweaver_sim::KernelStats;

use crate::compiler::{build_gather_kernel, emit_prologue, EdgeRegs, GatherOps};
use crate::runtime::{args, Runtime};
use crate::FrameworkError;

const A_H: u8 = args::ALGO0;
const A_AGG: u8 = args::ALGO0 + 1;
const A_Y: u8 = args::ALGO0 + 2;
const A_W: u8 = args::ALGO0 + 3;

/// One GCN layer's worth of operators over `dim` weight dimensions.
#[derive(Debug, Clone, Copy)]
pub struct Gcn {
    /// The weight dimension `K` (the paper sweeps 16 sizes).
    pub dim: usize,
}

/// Results of a GCN run.
#[derive(Debug, Clone)]
pub struct GcnReport {
    /// Cycles spent in the initialization kernel.
    pub init_cycles: u64,
    /// Cycles spent in the aggregation (GraphSum) kernel.
    pub graphsum_cycles: u64,
    /// Cycles spent in the dense SpMM kernel.
    pub spmm_cycles: u64,
    /// Total cycles across all kernels.
    pub total_cycles: u64,
    /// The layer output `y` (`V x K`, row-major).
    pub output: Vec<f64>,
    /// Accumulated stats.
    pub stats: KernelStats,
}

/// Emits `coef <- 1 / ((deg(base) + 1) * (deg(other) + 1))`, reading both
/// degrees from the offsets array — the per-edge coefficient computation
/// whose cost drives the Fig. 19 comparison.
fn emit_coef(a: &mut Asm, off: Reg, one: Reg, base: Reg, other: Reg, coef: Reg) {
    let t = a.reg();
    let lo = a.reg();
    let d = a.reg();
    for (i, v) in [base, other].into_iter().enumerate() {
        a.slli(t, v, 2);
        a.add(t, t, off);
        a.ldg(lo, t, 0, Width::B4);
        a.ldg(d, t, 4, Width::B4);
        a.sub(d, d, lo);
        a.addi(d, d, 1);
        a.i2f(d, d);
        if i == 0 {
            a.mv(coef, d);
        } else {
            a.fmul(coef, coef, d);
        }
    }
    a.fdiv(coef, one, coef);
    a.free(d);
    a.free(lo);
    a.free(t);
}

struct GcnGather {
    dim: usize,
}

impl GatherOps for GcnGather {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let h = a.reg();
        let agg = a.reg();
        let off = a.reg();
        let one = a.reg();
        a.ldarg(h, A_H);
        a.ldarg(agg, A_AGG);
        a.ldarg(off, args::OFFSETS);
        a.lif(one, 1.0);
        vec![h, agg, off, one]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, exclusive_base: bool) {
        let (h, agg, off, one) = (pro[0], pro[1], pro[2], pro[3]);
        // Edge-parallel mapping: the coefficient is computed ONCE per edge
        // and reused across the whole weight loop below.
        let coef = a.reg();
        emit_coef(a, off, one, e.base, e.other, coef);
        // Row bases: h[other * K], agg[base * K].
        let hrow = a.reg();
        let arow = a.reg();
        a.muli(hrow, e.other, (self.dim * 8) as i64);
        a.add(hrow, hrow, h);
        a.muli(arow, e.base, (self.dim * 8) as i64);
        a.add(arow, arow, agg);
        let val = a.reg();
        let t = a.reg();
        for j in 0..self.dim {
            let offb = (j * 8) as i32;
            a.ldg(val, hrow, offb, Width::B8);
            a.fmul(val, val, coef);
            if exclusive_base {
                a.ldg(t, arow, offb, Width::B8);
                a.fadd(t, t, val);
                a.stg(t, arow, offb, Width::B8);
            } else {
                let addr = a.reg();
                a.addi(addr, arow, offb as i64);
                let old = a.reg();
                a.atom(AtomOp::FAdd, old, addr, val);
                a.free(old);
                a.free(addr);
            }
        }
        a.free(t);
        a.free(val);
        a.free(arow);
        a.free(hrow);
        a.free(coef);
    }
}

impl Gcn {
    /// A GCN layer with weight dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dim <= 16`.
    pub fn new(dim: usize) -> Self {
        assert!((1..=16).contains(&dim), "dim must be in 1..=16");
        Gcn { dim }
    }

    fn features(&self, nv: usize) -> Vec<f64> {
        (0..nv * self.dim)
            .map(|i| {
                let v = i / self.dim;
                let j = i % self.dim;
                ((v * 31 + j * 7) % 13) as f64 / 13.0
            })
            .collect()
    }

    fn weight_matrix(&self) -> Vec<f64> {
        (0..self.dim * self.dim)
            .map(|i| ((i % 5) as f64) / 5.0 - 0.4)
            .collect()
    }

    /// The `S_vm`-weight-parallel GraphSum baseline: thread per `(v, k)`,
    /// accumulating in a register, no atomics — but the degree coefficient
    /// is recomputed for every `(edge, k)` pair.
    fn build_weight_parallel_graphsum(&self) -> sparseweaver_isa::Program {
        let k = self.dim;
        let mut a = Asm::new("gcn_graphsum_wpar");
        let c = emit_prologue(&mut a);
        let h = a.reg();
        let agg = a.reg();
        let one = a.reg();
        a.ldarg(h, A_H);
        a.ldarg(agg, A_AGG);
        a.lif(one, 1.0);
        let tid = a.reg();
        let nt = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.csr(nt, CsrKind::NumThreads);
        let total = a.reg();
        a.muli(total, c.nv, k as i64);
        let idx = a.reg();
        a.mv(idx, tid);

        let top = a.new_label();
        let done = a.new_label();
        let cond = a.reg();
        let any = a.reg();
        a.bind(top);
        a.sltu(cond, idx, total);
        a.vote(VoteOp::Any, any, cond);
        a.beq(any, a.zero(), done);
        a.if_nonzero(cond, |a| {
            // "First parallelize the weight dimension": k-major mapping,
            // i.e. the whole vertex range is swept once per weight dim
            // (S_vm's structure replicated K times, without atomics).
            let v = a.reg();
            let j = a.reg();
            a.remu(v, idx, c.nv);
            a.divu(j, idx, c.nv);
            let (start, end) = crate::compiler::emit_get_neighbor(a, &c, v);
            let acc = a.reg();
            a.li(acc, 0); // 0.0 has an all-zero bit pattern
            let joff = a.reg();
            a.slli(joff, j, 3);
            let e = a.reg();
            a.mv(e, start);
            let t = a.reg();
            let itop = a.new_label();
            let idone = a.new_label();
            let icond = a.reg();
            let iany = a.reg();
            a.bind(itop);
            a.sltu(icond, e, end);
            a.vote(VoteOp::Any, iany, icond);
            a.beq(iany, a.zero(), idone);
            a.if_nonzero(icond, |a| {
                let other = a.reg();
                a.slli(t, e, 2);
                a.add(t, t, c.edg);
                a.ldg(other, t, 0, Width::B4);
                // Coefficient recomputed per (edge, k) — the baseline's
                // weakness the paper highlights.
                let coef = a.reg();
                emit_coef(a, c.off, one, v, other, coef);
                let hv = a.reg();
                a.muli(t, other, (k * 8) as i64);
                a.add(t, t, h);
                a.add(t, t, joff);
                a.ldg(hv, t, 0, Width::B8);
                a.fmul(hv, hv, coef);
                a.fadd(acc, acc, hv);
                a.free(hv);
                a.free(coef);
                a.free(other);
            });
            a.addi(e, e, 1);
            a.jmp(itop);
            a.bind(idone);
            // agg[v*K + j] = acc
            a.muli(t, v, (k * 8) as i64);
            a.add(t, t, agg);
            a.add(t, t, joff);
            a.stg(acc, t, 0, Width::B8);
            a.free(iany);
            a.free(icond);
            a.free(t);
            a.free(e);
            a.free(joff);
            a.free(acc);
            a.free(start);
            a.free(end);
            a.free(j);
            a.free(v);
        });
        a.add(idx, idx, nt);
        a.jmp(top);
        a.bind(done);
        a.halt();
        a.finish()
    }

    /// The initialization kernel: zeroes the `agg` and `y` matrices
    /// (the first of the case study's three kernels).
    fn build_init(&self) -> sparseweaver_isa::Program {
        let k = self.dim;
        crate::compiler::build_vertex_kernel(
            "gcn_init",
            sparseweaver_sim::Phase::Init,
            |a| {
                let agg = a.reg();
                let y = a.reg();
                a.ldarg(agg, A_AGG);
                a.ldarg(y, A_Y);
                vec![agg, y]
            },
            |a, _c, v, pro| {
                let row = a.reg();
                let t = a.reg();
                a.muli(row, v, (k * 8) as i64);
                for base in [pro[0], pro[1]] {
                    a.add(t, row, base);
                    for j in 0..k {
                        a.stg(a.zero(), t, (j * 8) as i32, Width::B8);
                    }
                }
                a.free(t);
                a.free(row);
            },
        )
    }

    /// The dense SpMM kernel `y = agg x W` (thread per `(v, k)`,
    /// schedule-independent).
    fn build_spmm(&self) -> sparseweaver_isa::Program {
        let k = self.dim;
        let mut a = Asm::new("gcn_spmm");
        let c = emit_prologue(&mut a);
        let agg = a.reg();
        let y = a.reg();
        let w = a.reg();
        a.ldarg(agg, A_AGG);
        a.ldarg(y, A_Y);
        a.ldarg(w, A_W);
        let tid = a.reg();
        let nt = a.reg();
        a.csr(tid, CsrKind::GlobalTid);
        a.csr(nt, CsrKind::NumThreads);
        let total = a.reg();
        a.muli(total, c.nv, k as i64);
        let idx = a.reg();
        a.mv(idx, tid);

        let top = a.new_label();
        let done = a.new_label();
        let cond = a.reg();
        let any = a.reg();
        a.bind(top);
        a.sltu(cond, idx, total);
        a.vote(VoteOp::Any, any, cond);
        a.beq(any, a.zero(), done);
        a.if_nonzero(cond, |a| {
            let v = a.reg();
            let col = a.reg();
            let kreg = a.reg();
            a.li(kreg, k as i64);
            a.divu(v, idx, kreg);
            a.remu(col, idx, kreg);
            a.free(kreg);
            let arow = a.reg();
            a.muli(arow, v, (k * 8) as i64);
            a.add(arow, arow, agg);
            let wcol = a.reg();
            a.slli(wcol, col, 3);
            a.add(wcol, wcol, w);
            let acc = a.reg();
            a.li(acc, 0);
            let av = a.reg();
            let wv = a.reg();
            for j in 0..k {
                a.ldg(av, arow, (j * 8) as i32, Width::B8);
                a.ldg(wv, wcol, (j * k * 8) as i32, Width::B8);
                a.fmul(av, av, wv);
                a.fadd(acc, acc, av);
            }
            let t = a.reg();
            a.muli(t, v, (k * 8) as i64);
            a.add(t, t, y);
            let coff = a.reg();
            a.slli(coff, col, 3);
            a.add(t, t, coff);
            a.stg(acc, t, 0, Width::B8);
            a.free(coff);
            a.free(t);
            a.free(wv);
            a.free(av);
            a.free(acc);
            a.free(wcol);
            a.free(arow);
            a.free(col);
            a.free(v);
        });
        a.add(idx, idx, nt);
        a.jmp(top);
        a.bind(done);
        a.halt();
        a.finish()
    }

    /// Compiles every kernel this layer can launch under `schedule` —
    /// init, both GraphSum variants (schedule-driven and the
    /// weight-parallel baseline), and SpMM — without touching a device.
    /// The enumeration surface behind `swlint`.
    pub fn kernels(
        &self,
        schedule: crate::Schedule,
        cfg: &sparseweaver_sim::GpuConfig,
    ) -> Vec<sparseweaver_isa::Program> {
        vec![
            self.build_init(),
            build_gather_kernel("gcn_graphsum", &GcnGather { dim: self.dim }, schedule, cfg),
            self.build_weight_parallel_graphsum(),
            self.build_spmm(),
        ]
    }

    /// Runs the layer. With `weight_parallel` the GraphSum stage uses the
    /// `S_vm`-weight baseline kernel; otherwise it goes through the
    /// runtime's scheduling scheme (the SparseWeaver path in the paper's
    /// comparison).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(
        &self,
        rt: &mut Runtime<'_>,
        weight_parallel: bool,
    ) -> Result<GcnReport, FrameworkError> {
        let nv = rt.graph.num_vertices();
        let k = self.dim;
        let h = self.features(nv);
        let wmat = self.weight_matrix();
        let h_dev = rt.upload_f64(&h);
        let agg_dev = rt.alloc_f64(nv * k, 0.0);
        let y_dev = rt.alloc_f64(nv * k, 0.0);
        let w_dev = rt.upload_f64(&wmat);
        let extra = [h_dev, agg_dev, y_dev, w_dev];

        let init = self.build_init();
        let init_stats = rt.launch(&init, &extra)?;
        let gs_stats = if weight_parallel {
            let gs = self.build_weight_parallel_graphsum();
            rt.launch(&gs, &extra)?
        } else {
            let gs = build_gather_kernel(
                "gcn_graphsum",
                &GcnGather { dim: k },
                rt.schedule(),
                rt.gpu().config(),
            );
            rt.launch(&gs, &extra)?
        };
        let spmm = self.build_spmm();
        let spmm_stats = rt.launch(&spmm, &extra)?;

        let output = rt.read_f64_vec(y_dev, nv * k);
        Ok(GcnReport {
            init_cycles: init_stats.cycles,
            graphsum_cycles: gs_stats.cycles,
            spmm_cycles: spmm_stats.cycles,
            total_cycles: rt.total_stats().cycles,
            output,
            stats: rt.total_stats().clone(),
        })
    }

    /// Host-side reference: `y = (C ⊙ A) h W` over the gather view, with
    /// `C[u, v] = 1 / ((deg(u)+1)(deg(v)+1))`.
    pub fn reference(&self, graph: &Csr, direction: Direction) -> Vec<f64> {
        let view = graph.view(direction);
        let nv = view.num_vertices();
        let k = self.dim;
        let h = self.features(nv);
        let wmat = self.weight_matrix();
        let deg1: Vec<f64> = (0..nv as u32)
            .map(|v| view.degree(v) as f64 + 1.0)
            .collect();
        let mut agg = vec![0.0; nv * k];
        for (base, list) in (0..nv as u32).map(|v| (v, view.neighbors(v))) {
            for &other in list {
                let coef = 1.0 / (deg1[base as usize] * deg1[other as usize]);
                for j in 0..k {
                    agg[base as usize * k + j] += coef * h[other as usize * k + j];
                }
            }
        }
        let mut y = vec![0.0; nv * k];
        for v in 0..nv {
            for col in 0..k {
                let mut acc = 0.0;
                for j in 0..k {
                    acc += agg[v * k + j] * wmat[j * k + col];
                }
                y[v * k + col] = acc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_inputs() {
        let g = Gcn::new(4);
        assert_eq!(g.features(10), g.features(10));
        assert_eq!(g.weight_matrix().len(), 16);
    }

    #[test]
    fn reference_zero_for_isolated_graph() {
        let g = Csr::from_edges(4, &[]);
        let y = Gcn::new(2).reference(&g, Direction::Pull);
        assert!(y.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reference_mean_aggregation_shape() {
        // Star into vertex 0: agg[0] gets contributions from every leaf.
        let edges: Vec<(u32, u32)> = (1..5u32).map(|v| (v, 0)).collect();
        let g = Csr::from_edges(5, &edges);
        let y = Gcn::new(1).reference(&g, Direction::Pull);
        assert!(y[0].abs() > 0.0);
        // Leaves have no in-neighbors in the pull view.
        for &leaf in &y[1..5] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dim must be")]
    fn dim_bounds_checked() {
        let _ = Gcn::new(0);
    }
}
