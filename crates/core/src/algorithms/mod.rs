//! The graph algorithms of the evaluation: PageRank, BFS, SSSP,
//! Connected Components (Fig. 10) and the GCN operators (Case Study 2).
//!
//! Each algorithm is expressed the way the paper's framework expects:
//! init / gather / apply / filter user-defined functions, compiled against
//! any [`crate::Schedule`]. Each also carries a host-side reference
//! implementation; the test suite checks that *every schedule produces
//! the reference answer* — the correctness oracle of the reproduction.

mod bfs;
mod cc;
mod gcn;
mod pagerank;
mod spmv;
mod sssp;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use gcn::{Gcn, GcnReport};
pub use pagerank::PageRank;
pub use spmv::Spmv;
pub use sssp::Sssp;

use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::Program;
use sparseweaver_sim::GpuConfig;

use crate::output::AlgoOutput;
use crate::runtime::Runtime;
use crate::schedule::Schedule;
use crate::FrameworkError;

/// A graph algorithm runnable under any scheduling scheme.
///
/// `Sync` is a supertrait so campaign and sweep runners can share one
/// `&dyn Algorithm` across worker threads; implementations are plain
/// parameter structs, so the bound costs nothing.
pub trait Algorithm: Sync {
    /// The algorithm's short name (used in kernel names and reports).
    fn name(&self) -> &'static str;

    /// The gather direction the algorithm uses by default.
    fn direction(&self) -> Direction;

    /// Drives the full algorithm on the device: allocates properties,
    /// compiles kernels for the runtime's schedule, launches supersteps
    /// until convergence, and returns the final vertex properties.
    ///
    /// # Errors
    ///
    /// Returns simulator errors or [`FrameworkError::NoConvergence`].
    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError>;

    /// The host-side reference implementation (correctness oracle).
    fn reference(&self, graph: &Csr) -> AlgoOutput;

    /// Compiles the kernels [`Algorithm::run`] would launch under
    /// `schedule` on a machine described by `cfg`, without touching a
    /// device — the enumeration surface behind `swlint` and the kernel
    /// lint tests. The default returns an empty list (for algorithms
    /// driven entirely through custom runtimes).
    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        let _ = (schedule, cfg);
        Vec::new()
    }
}

/// Distance value for unreached vertices (BFS/SSSP).
pub const INF: u64 = u64::MAX;
