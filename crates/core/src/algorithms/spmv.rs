//! Sparse matrix-vector multiplication (`y = A x`) over the CSR graph.
//!
//! Discussion VII-A argues SparseWeaver generalizes "to other sparse
//! applications, particularly those originally using the CSR format, such
//! as ... sparse matrix multiplication": the offset array *is* the sparse
//! workload information. SpMV is the cleanest instance — one weighted
//! gather, no filters, no iteration — and doubles as a single-superstep
//! microbenchmark of the pure distribution machinery.

use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::{Asm, AtomOp, Program, Reg, Width};
use sparseweaver_sim::GpuConfig;

use crate::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
use crate::output::AlgoOutput;
use crate::runtime::{args, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

use super::Algorithm;

/// `y[v] = Σ_{(u,v) ∈ E} A[v,u] · x[u]`, with the edge weights as matrix
/// entries and a deterministic input vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spmv;

impl Spmv {
    /// Creates the operator.
    pub fn new() -> Self {
        Spmv
    }

    /// The deterministic input vector (`x[u] = ((u * 7) % 19 + 1) / 19`).
    pub fn input_vector(nv: usize) -> Vec<f64> {
        (0..nv).map(|u| ((u * 7) % 19 + 1) as f64 / 19.0).collect()
    }
}

const A_X: u8 = args::ALGO0;
const A_Y: u8 = args::ALGO0 + 1;

struct SpmvGather;

impl GatherOps for SpmvGather {
    fn uses_weight(&self) -> bool {
        true
    }

    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let x = a.reg();
        let y = a.reg();
        a.ldarg(x, A_X);
        a.ldarg(y, A_Y);
        vec![x, y]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, exclusive_base: bool) {
        let w = e.weight.expect("SpMV uses matrix values");
        let xv = a.reg();
        let addr = a.reg();
        a.slli(addr, e.other, 3);
        a.add(addr, addr, pro[0]);
        a.ldg(xv, addr, 0, Width::B8);
        let wf = a.reg();
        a.i2f(wf, w);
        a.fmul(xv, xv, wf);
        a.free(wf);
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[1]);
        if exclusive_base {
            let acc = a.reg();
            a.ldg(acc, addr, 0, Width::B8);
            a.fadd(acc, acc, xv);
            a.stg(acc, addr, 0, Width::B8);
            a.free(acc);
        } else {
            let old = a.reg();
            a.atom(AtomOp::FAdd, old, addr, xv);
            a.free(old);
        }
        a.free(addr);
        a.free(xv);
    }
}

impl Algorithm for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn direction(&self) -> Direction {
        Direction::Pull
    }

    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError> {
        let nv = rt.graph.num_vertices();
        if nv == 0 {
            return Ok(AlgoOutput::F64(Vec::new()));
        }
        let x = Spmv::input_vector(nv);
        let x_dev = rt.upload_f64(&x);
        let y_dev = rt.alloc_f64(nv, 0.0);
        let gather = build_gather_kernel("spmv", &SpmvGather, rt.schedule(), rt.gpu().config());
        rt.launch(&gather, &[x_dev, y_dev])?;
        Ok(AlgoOutput::F64(rt.read_f64_vec(y_dev, nv)))
    }

    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        vec![build_gather_kernel("spmv", &SpmvGather, schedule, cfg)]
    }

    fn reference(&self, graph: &Csr) -> AlgoOutput {
        let nv = graph.num_vertices();
        let x = Spmv::input_vector(nv);
        let mut y = vec![0.0; nv];
        // Pull view: row v gathers from its in-neighbors.
        for (u, v, w) in graph.iter_edges() {
            y[v as usize] += w as f64 * x[u as usize];
        }
        AlgoOutput::F64(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_identity_like_matrix() {
        // A self-inverse permutation "matrix": y[v] = w * x[src(v)].
        let g = Csr::from_weighted_edges(3, &[(0, 1, 2), (1, 0, 2), (2, 2, 3)]);
        let y = Spmv::new().reference(&g);
        let x = Spmv::input_vector(3);
        assert_eq!(y.as_f64()[1], 2.0 * x[0]);
        assert_eq!(y.as_f64()[0], 2.0 * x[1]);
        assert_eq!(y.as_f64()[2], 3.0 * x[2]);
    }

    #[test]
    fn empty_rows_are_zero() {
        let g = Csr::from_weighted_edges(4, &[(0, 1, 5)]);
        let y = Spmv::new().reference(&g);
        assert_eq!(y.as_f64()[0], 0.0);
        assert_eq!(y.as_f64()[2], 0.0);
    }

    #[test]
    fn input_vector_is_deterministic_and_positive() {
        let x = Spmv::input_vector(50);
        assert_eq!(x, Spmv::input_vector(50));
        assert!(x.iter().all(|&v| v > 0.0));
    }
}
