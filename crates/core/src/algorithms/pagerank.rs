//! PageRank (pull direction, fixed iteration count).
//!
//! `rank'[v] = (1 - d)/N + d * Σ_{u -> v} rank[u] / outdeg[u]`
//!
//! The gather stage accumulates neighbor contributions; the apply stage
//! folds in damping and refreshes each vertex's contribution. PR "performs
//! for all edges in the gather step, resulting in better opportunities to
//! benefit from workload balance" (Section V-A) — it is the paper's
//! primary sweep workload.

use sparseweaver_graph::{Csr, Direction};
use sparseweaver_isa::{Asm, AtomOp, Program, Reg, Width};
use sparseweaver_sim::{GpuConfig, Phase};

use crate::compiler::{build_gather_kernel, build_vertex_kernel, EdgeRegs, GatherOps};
use crate::output::AlgoOutput;
use crate::runtime::{args, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

use super::Algorithm;

/// PageRank with a fixed number of power iterations.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Number of iterations (the paper's gather/apply supersteps).
    pub iterations: u32,
    /// Damping factor `d` (0.85 by convention).
    pub damping: f64,
    /// Gather direction. Pull gathers `contrib[other]` into the owned
    /// base vertex; push scatters `contrib[base]` into `accum[other]`
    /// with atomics — the asymmetry behind the Fig. 17 breakdown.
    pub direction: Direction,
}

impl PageRank {
    /// PageRank with `iterations` supersteps and damping 0.85 (pull).
    pub fn new(iterations: u32) -> Self {
        PageRank {
            iterations,
            damping: 0.85,
            direction: Direction::Pull,
        }
    }

    /// Selects the gather direction (Fig. 17 runs both).
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    // init: rank = 1/N, contrib = rank * invod, accum = 0.
    fn build_init(&self) -> Program {
        build_vertex_kernel(
            "pagerank_init",
            Phase::Init,
            |a| {
                let regs: Vec<Reg> = (0..4).map(|_| a.reg()).collect();
                a.ldarg(regs[0], A_RANK);
                a.ldarg(regs[1], A_CONTRIB);
                a.ldarg(regs[2], A_INVOD);
                a.ldarg(regs[3], A_INIT_RANK);
                regs
            },
            |a, _c, v, pro| {
                let addr = a.reg();
                let val = a.reg();
                a.slli(addr, v, 3);
                let r0 = a.reg();
                a.add(r0, addr, pro[0]);
                a.stg(pro[3], r0, 0, Width::B8);
                a.add(r0, addr, pro[2]);
                a.ldg(val, r0, 0, Width::B8);
                a.fmul(val, val, pro[3]);
                a.add(r0, addr, pro[1]);
                a.stg(val, r0, 0, Width::B8);
                a.free(r0);
                a.free(val);
                a.free(addr);
            },
        )
    }

    // apply: rank = base + d * accum; contrib = rank * invod; accum = 0.
    fn build_apply(&self) -> Program {
        build_vertex_kernel(
            "pagerank_apply",
            Phase::Other,
            |a| {
                let regs: Vec<Reg> = (0..6).map(|_| a.reg()).collect();
                a.ldarg(regs[0], A_RANK);
                a.ldarg(regs[1], A_CONTRIB);
                a.ldarg(regs[2], A_ACCUM);
                a.ldarg(regs[3], A_INVOD);
                a.ldarg(regs[4], A_BASE_SCORE);
                a.ldarg(regs[5], A_DAMPING);
                regs
            },
            |a, _c, v, pro| {
                let addr = a.reg();
                let acc = a.reg();
                let t = a.reg();
                a.slli(addr, v, 3);
                let p = a.reg();
                a.add(p, addr, pro[2]);
                a.ldg(acc, p, 0, Width::B8);
                // rank = base + d * acc
                a.fmul(acc, acc, pro[5]);
                a.fadd(acc, acc, pro[4]);
                a.add(p, addr, pro[0]);
                a.stg(acc, p, 0, Width::B8);
                // contrib = rank * invod
                a.add(p, addr, pro[3]);
                a.ldg(t, p, 0, Width::B8);
                a.fmul(t, t, acc);
                a.add(p, addr, pro[1]);
                a.stg(t, p, 0, Width::B8);
                // accum = 0
                a.li(t, 0);
                a.add(p, addr, pro[2]);
                a.stg(t, p, 0, Width::B8);
                a.free(p);
                a.free(t);
                a.free(acc);
                a.free(addr);
            },
        )
    }

    fn build_gather(&self, push: bool, schedule: Schedule, cfg: &GpuConfig) -> Program {
        build_gather_kernel("pagerank", &PrGather { push }, schedule, cfg)
    }
}

// Argument indices owned by PageRank (starting at args::ALGO0).
const A_RANK: u8 = args::ALGO0;
const A_CONTRIB: u8 = args::ALGO0 + 1;
const A_ACCUM: u8 = args::ALGO0 + 2;
const A_INVOD: u8 = args::ALGO0 + 3;
const A_BASE_SCORE: u8 = args::ALGO0 + 4; // (1-d)/N as f64 bits
const A_DAMPING: u8 = args::ALGO0 + 5; // d as f64 bits
const A_INIT_RANK: u8 = args::ALGO0 + 6; // 1/N as f64 bits

struct PrGather {
    push: bool,
}

impl GatherOps for PrGather {
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let contrib = a.reg();
        let accum = a.reg();
        a.ldarg(contrib, A_CONTRIB);
        a.ldarg(accum, A_ACCUM);
        vec![contrib, accum]
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, exclusive_base: bool) {
        let (contrib, accum) = (pro[0], pro[1]);
        let (src, dst) = if self.push {
            (e.base, e.other) // scatter: contributions flow out of base
        } else {
            (e.other, e.base) // gather: contributions flow into base
        };
        let cv = a.reg();
        let addr = a.reg();
        a.slli(addr, src, 3);
        a.add(addr, addr, contrib);
        a.ldg(cv, addr, 0, Width::B8);
        a.slli(addr, dst, 3);
        a.add(addr, addr, accum);
        if exclusive_base && !self.push {
            // Pull under vertex mapping owns the base vertex: plain
            // read-modify-write. Push always scatters into shared
            // destinations and needs atomics.
            let av = a.reg();
            a.ldg(av, addr, 0, Width::B8);
            a.fadd(av, av, cv);
            a.stg(av, addr, 0, Width::B8);
            a.free(av);
        } else {
            let old = a.reg();
            a.atom(AtomOp::FAdd, old, addr, cv);
            a.free(old);
        }
        a.free(addr);
        a.free(cv);
    }
}

impl Algorithm for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn direction(&self) -> Direction {
        self.direction
    }

    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError> {
        let nv = rt.graph.num_vertices();
        if nv == 0 {
            return Ok(AlgoOutput::F64(Vec::new()));
        }
        // Inverse out-degree of the ORIGINAL graph (contributions divide
        // by out-degree regardless of gather direction).
        let invod: Vec<f64> = (0..nv as u32)
            .map(|v| {
                let d = rt.graph.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        let rank = rt.alloc_f64(nv, 0.0);
        let contrib = rt.alloc_f64(nv, 0.0);
        let accum = rt.alloc_f64(nv, 0.0);
        let invod_dev = rt.upload_f64(&invod);
        let base_score = ((1.0 - self.damping) / nv as f64).to_bits();
        let init_rank = (1.0 / nv as f64).to_bits();
        let extra = [
            rank,
            contrib,
            accum,
            invod_dev,
            base_score,
            self.damping.to_bits(),
            init_rank,
        ];

        let init = self.build_init();
        let apply = self.build_apply();
        let gather = self.build_gather(
            rt.direction() == Direction::Push,
            rt.schedule(),
            rt.gpu().config(),
        );

        rt.launch(&init, &extra)?;
        for _ in 0..self.iterations {
            rt.launch(&gather, &extra)?;
            rt.launch(&apply, &extra)?;
        }
        Ok(AlgoOutput::F64(rt.read_f64_vec(rank, nv)))
    }

    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        vec![
            self.build_init(),
            self.build_gather(self.direction == Direction::Push, schedule, cfg),
            self.build_apply(),
        ]
    }

    fn reference(&self, graph: &Csr) -> AlgoOutput {
        let nv = graph.num_vertices();
        if nv == 0 {
            return AlgoOutput::F64(Vec::new());
        }
        let n = nv as f64;
        let mut rank = vec![1.0 / n; nv];
        let base = (1.0 - self.damping) / n;
        for _ in 0..self.iterations {
            let contrib: Vec<f64> = (0..nv as u32)
                .map(|v| {
                    let d = graph.degree(v);
                    if d == 0 {
                        0.0
                    } else {
                        rank[v as usize] / d as f64
                    }
                })
                .collect();
            let mut accum = vec![0.0; nv];
            for (s, d, _) in graph.iter_edges() {
                accum[d as usize] += contrib[s as usize];
            }
            for v in 0..nv {
                rank[v] = base + self.damping * accum[v];
            }
        }
        AlgoOutput::F64(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sums_to_less_than_one() {
        // With dangling vertices mass leaks, but stays bounded by 1.
        let g = sparseweaver_graph::generators::uniform(50, 200, 3);
        let r = PageRank::new(5).reference(&g);
        let sum: f64 = r.as_f64().iter().sum();
        assert!(sum > 0.1 && sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    #[test]
    fn reference_uniform_on_cycle() {
        // A directed cycle: stationary distribution is uniform.
        let edges: Vec<(u32, u32)> = (0..8u32).map(|v| (v, (v + 1) % 8)).collect();
        let g = Csr::from_edges(8, &edges);
        let r = PageRank::new(30).reference(&g);
        for &x in r.as_f64() {
            assert!((x - 0.125).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star pointing at vertex 0.
        let edges: Vec<(u32, u32)> = (1..20u32).map(|v| (v, 0)).collect();
        let g = Csr::from_edges(20, &edges);
        let r = PageRank::new(10).reference(&g);
        let ranks = r.as_f64();
        assert!(ranks[0] > ranks[1] * 5.0);
    }
}
