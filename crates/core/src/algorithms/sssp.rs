//! Single-source shortest paths (push direction, frontier Bellman-Ford).
//!
//! Frontier vertices relax their outgoing edges with an atomic minimum on
//! the destination distance; improved destinations form the next
//! frontier. SSSP has a source filter (frontier membership) and uses edge
//! weights — which is why the paper sees slightly less speedup than BFS
//! ("BFS shows more speedup than SSSP because it does not use edge weight
//! information", Section V-A).
//!
//! Two frontier representations are provided:
//!
//! - **scan** (default): a byte flag per vertex; every round scans all
//!   vertices and filters (the registration-filter pattern of Fig. 9);
//! - **worklist**: a compacted `wset` of active vertex IDs, appended on
//!   the device with atomics and handed to the kernel as Fig. 9's `wset`
//!   — registration then touches exactly the active vertices.

use sparseweaver_graph::{Csr, Direction, VertexId};
use sparseweaver_isa::{Asm, AtomOp, Program, Reg, Width};
use sparseweaver_sim::GpuConfig;

use crate::compiler::{build_gather_kernel, EdgeRegs, GatherOps};
use crate::output::AlgoOutput;
use crate::runtime::{args, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

use super::{Algorithm, INF};

/// Frontier-based SSSP from a source vertex, with `u32` edge weights.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
    /// Use a compacted device worklist (`wset`) instead of a scan-and-
    /// filter frontier.
    pub worklist: bool,
}

impl Sssp {
    /// SSSP from `source` with the scan-based frontier.
    pub fn new(source: VertexId) -> Self {
        Sssp {
            source,
            worklist: false,
        }
    }

    /// Switches to the compacted-worklist frontier (Fig. 9's `wset`).
    pub fn with_worklist(mut self, yes: bool) -> Self {
        self.worklist = yes;
        self
    }
}

const A_DIST: u8 = args::ALGO0;
const A_CUR: u8 = args::ALGO0 + 1;
const A_NEXT: u8 = args::ALGO0 + 2;
// Worklist mode only:
const A_WLEN: u8 = args::ALGO0 + 3;
const A_NEXT_CNT: u8 = args::ALGO0 + 4;
const A_IN_NEXT: u8 = args::ALGO0 + 5;

struct SsspGather {
    worklist: bool,
}

impl GatherOps for SsspGather {
    fn uses_weight(&self) -> bool {
        true
    }

    fn worklist_args(&self) -> Option<(u8, u8)> {
        if self.worklist {
            Some((A_CUR, A_WLEN))
        } else {
            None
        }
    }

    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let dist = a.reg();
        let cur = a.reg();
        let next = a.reg();
        a.ldarg(dist, A_DIST);
        a.ldarg(cur, A_CUR);
        a.ldarg(next, A_NEXT);
        let mut pro = vec![dist, cur, next];
        if self.worklist {
            let cnt = a.reg();
            let in_next = a.reg();
            a.ldarg(cnt, A_NEXT_CNT);
            a.ldarg(in_next, A_IN_NEXT);
            pro.push(cnt);
            pro.push(in_next);
        }
        pro
    }

    /// Source filter (scan mode): frontier membership byte. The worklist
    /// mode needs no filter — the `wset` contains exactly the frontier.
    fn emit_base_filter(&self, a: &mut Asm, pro: &[Reg], vid: Reg, out: Reg) -> bool {
        if self.worklist {
            return false;
        }
        let addr = a.reg();
        a.add(addr, vid, pro[1]);
        a.ldg(out, addr, 0, Width::B1);
        a.free(addr);
        true
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _exclusive: bool) {
        let w = e.weight.expect("SSSP uses weights");
        // cand = dist[base] + w
        let cand = a.reg();
        let addr = a.reg();
        a.slli(addr, e.base, 3);
        a.add(addr, addr, pro[0]);
        a.ldg(cand, addr, 0, Width::B8);
        // Saturating add: an unreached base (dist = INF = u64::MAX) must
        // stay INF rather than wrap. Edge mapping reaches this code for
        // every edge (it has no worklist), so the guard is load-bearing.
        let db = a.reg();
        a.mv(db, cand);
        a.add(cand, cand, w);
        let wrapped = a.reg();
        a.sltu(wrapped, cand, db);
        a.sub(wrapped, a.zero(), wrapped); // 0 or all-ones
        a.or(cand, cand, wrapped);
        a.free(wrapped);
        a.free(db);
        // old = atomic-min(dist[other], cand)
        a.slli(addr, e.other, 3);
        a.add(addr, addr, pro[0]);
        let old = a.reg();
        a.atom(AtomOp::MinU, old, addr, cand);
        let imp = a.reg();
        a.sltu(imp, cand, old);
        if self.worklist {
            // Improved: enqueue `other` once (atomic test-and-set on the
            // in_next flag, then an atomic slot grab).
            let (cnt, in_next) = (pro[3], pro[4]);
            a.if_nonzero(imp, |a| {
                let flag_addr = a.reg();
                a.slli(flag_addr, e.other, 3);
                a.add(flag_addr, flag_addr, in_next);
                let one = a.reg();
                let was = a.reg();
                a.li(one, 1);
                a.atom(AtomOp::Exch, was, flag_addr, one);
                let fresh = a.reg();
                a.seqi(fresh, was, 0);
                a.if_nonzero(fresh, |a| {
                    let slot = a.reg();
                    a.atom(AtomOp::Add, slot, cnt, one);
                    let dst = a.reg();
                    a.slli(dst, slot, 2);
                    a.add(dst, dst, pro[2]);
                    a.stg(e.other, dst, 0, Width::B4);
                    a.free(dst);
                    a.free(slot);
                });
                a.free(fresh);
                a.free(was);
                a.free(one);
                a.free(flag_addr);
            });
        } else {
            a.if_nonzero(imp, |a| {
                let naddr = a.reg();
                a.add(naddr, e.other, pro[2]);
                let one = a.reg();
                a.li(one, 1);
                a.stg(one, naddr, 0, Width::B1);
                a.free(one);
                a.free(naddr);
            });
        }
        a.free(imp);
        a.free(old);
        a.free(addr);
        a.free(cand);
    }
}

impl Algorithm for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn direction(&self) -> Direction {
        Direction::Push
    }

    fn run(&self, rt: &mut Runtime<'_>) -> Result<AlgoOutput, FrameworkError> {
        let nv = rt.graph.num_vertices();
        if nv == 0 {
            return Ok(AlgoOutput::U64(Vec::new()));
        }
        assert!((self.source as usize) < nv, "SSSP source out of range");
        if self.worklist {
            self.run_worklist(rt, nv)
        } else {
            self.run_scan(rt, nv)
        }
    }

    fn kernels(&self, schedule: Schedule, cfg: &GpuConfig) -> Vec<Program> {
        vec![self.build_gather(schedule, cfg)]
    }

    fn reference(&self, graph: &Csr) -> AlgoOutput {
        // Dijkstra with a binary heap (weights are positive).
        let nv = graph.num_vertices();
        let mut dist = vec![INF; nv];
        if nv == 0 {
            return AlgoOutput::U64(dist);
        }
        let mut heap = std::collections::BinaryHeap::new();
        dist[self.source as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, self.source)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            let ws = graph.neighbor_weights(u);
            for (i, &v) in graph.neighbors(u).iter().enumerate() {
                let cand = d + ws[i] as u64;
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    heap.push(std::cmp::Reverse((cand, v)));
                }
            }
        }
        AlgoOutput::U64(dist)
    }
}

impl Sssp {
    fn build_gather(&self, schedule: Schedule, cfg: &GpuConfig) -> Program {
        let name = if self.worklist { "sssp_wl" } else { "sssp" };
        build_gather_kernel(
            name,
            &SsspGather {
                worklist: self.worklist,
            },
            schedule,
            cfg,
        )
    }

    fn run_scan(&self, rt: &mut Runtime<'_>, nv: usize) -> Result<AlgoOutput, FrameworkError> {
        let dist = rt.alloc_u64(nv, INF);
        let cur = rt.alloc_u8(nv, 0);
        let next = rt.alloc_u8(nv, 0);
        rt.write_u64(dist + 8 * self.source as u64, 0);
        rt.write_u8(cur + self.source as u64, 1);

        let gather = self.build_gather(rt.schedule(), rt.gpu().config());
        let mut rounds: u64 = 0;
        loop {
            rt.launch(&gather, &[dist, cur, next])?;
            let changed = (0..nv as u64).any(|i| rt.read_u8(next + i) != 0);
            if !changed {
                break;
            }
            rt.copy_bytes(next, cur, nv);
            rt.fill_bytes(next, 0, nv);
            rounds += 1;
            if rounds > nv as u64 + 1 {
                return Err(FrameworkError::NoConvergence {
                    algorithm: "sssp".into(),
                    iterations: rounds,
                });
            }
        }
        Ok(AlgoOutput::U64(rt.read_u64_vec(dist, nv)))
    }

    fn run_worklist(&self, rt: &mut Runtime<'_>, nv: usize) -> Result<AlgoOutput, FrameworkError> {
        let dist = rt.alloc_u64(nv, INF);
        let list_a = rt.alloc(4 * nv as u64);
        let list_b = rt.alloc(4 * nv as u64);
        let next_cnt = rt.alloc_u64(1, 0);
        let in_next = rt.alloc_u64(nv, 0);
        rt.write_u64(dist + 8 * self.source as u64, 0);
        rt.write_u32(list_a, self.source);

        let gather = self.build_gather(rt.schedule(), rt.gpu().config());
        let (mut cur_list, mut next_list) = (list_a, list_b);
        let mut wlen: u64 = 1;
        let mut rounds: u64 = 0;
        while wlen > 0 {
            rt.write_u64(next_cnt, 0);
            rt.launch(
                &gather,
                &[dist, cur_list, next_list, wlen, next_cnt, in_next],
            )?;
            wlen = rt.read_u64(next_cnt);
            // Clear the membership flags for the vertices just queued.
            for i in 0..wlen {
                let v = rt.read_u32(next_list + 4 * i) as u64;
                rt.write_u64(in_next + 8 * v, 0);
            }
            std::mem::swap(&mut cur_list, &mut next_list);
            rounds += 1;
            if rounds > nv as u64 + 1 {
                return Err(FrameworkError::NoConvergence {
                    algorithm: "sssp".into(),
                    iterations: rounds,
                });
            }
        }
        Ok(AlgoOutput::U64(rt.read_u64_vec(dist, nv)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_prefers_lighter_path() {
        // 0 -(10)-> 2 and 0 -(1)-> 1 -(2)-> 2.
        let g = Csr::from_weighted_edges(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 2)]);
        let d = Sssp::new(0).reference(&g);
        assert_eq!(d.as_u64(), &[0, 1, 3]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 5)]);
        let d = Sssp::new(0).reference(&g);
        assert_eq!(d.as_u64()[2], INF);
    }

    #[test]
    fn zero_distance_at_source() {
        let g = Csr::from_weighted_edges(2, &[(0, 1, 7)]);
        let d = Sssp::new(1).reference(&g);
        assert_eq!(d.as_u64(), &[INF, 0]);
    }

    #[test]
    fn worklist_flag_is_builder_style() {
        let s = Sssp::new(3).with_worklist(true);
        assert!(s.worklist);
        assert_eq!(s.source, 3);
        assert!(!Sssp::new(3).worklist);
    }
}
