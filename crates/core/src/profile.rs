//! The `profile.json` artifact: a self-contained, byte-deterministic
//! snapshot of one run's performance profile.
//!
//! A profile artifact bundles, in one file:
//!
//! - a **fingerprint** of the machine configuration and the graph, so two
//!   artifacts can be checked for comparability before their numbers are;
//! - **top-down cycle accounting** in the style of the paper's Fig. 4:
//!   every issue slot of the run is attributed to issued instructions, to
//!   one of the issue-slot stall categories of
//!   [`sparseweaver_sim::StallBreakdown`], or to idle;
//! - **per-kernel tables** with per-phase cycle attribution;
//! - the profiler's **latency histograms** (per memory level, Weaver
//!   request round-trips, gather-loop iteration gaps) with p50/p90/p99;
//! - **load-imbalance summaries** across cores and warps.
//!
//! Everything in the artifact is integer arithmetic over deterministic
//! simulator counters, so the rendered bytes are identical across
//! `--jobs` settings and with the fast-forward engine on or off. The
//! companion `swprof` binary renders reports and run-to-run diffs from
//! these files; [`flat_metrics`], [`diff`] and [`regressions`] are the
//! library half of that tool.

use sparseweaver_graph::Csr;
use sparseweaver_sim::{GpuConfig, KernelStats, Phase};
use sparseweaver_trace::json::{escape, Value};
use sparseweaver_trace::{LatencyHistogram, ProfileReport};

use crate::session::RunReport;

/// Schema identifier written into every artifact.
pub const PROFILE_SCHEMA: &str = "sparseweaver-profile-v1";

/// A 64-bit FNV-1a hasher — tiny, stable across platforms, and good
/// enough to detect "these two profiles came from different inputs".
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// Folds a byte slice into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprints a machine configuration. The full `Debug` rendering is
/// hashed so every field (including nested hierarchy and Weaver
/// parameters) participates without this module chasing struct changes.
pub fn config_fingerprint(cfg: &GpuConfig) -> u64 {
    let mut h = Fnv64::default();
    h.write(format!("{cfg:?}").as_bytes());
    h.finish()
}

/// Fingerprints a graph: vertex/edge counts plus the raw CSR arrays.
pub fn graph_fingerprint(graph: &Csr) -> u64 {
    let mut h = Fnv64::default();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for &o in graph.offsets() {
        h.write(&o.to_le_bytes());
    }
    for &t in graph.targets() {
        h.write(&t.to_le_bytes());
    }
    for &w in graph.weights() {
        h.write(&w.to_le_bytes());
    }
    h.finish()
}

fn histogram_json(h: &LatencyHistogram) -> String {
    let mut buckets = String::new();
    for (i, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !buckets.is_empty() {
            buckets.push(',');
        }
        buckets.push_str(&format!(
            "[{},{}]",
            LatencyHistogram::bucket_upper(i),
            count
        ));
    }
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.min_or_zero(),
        h.max,
        h.p50(),
        h.p90(),
        h.p99(),
        buckets
    )
}

fn stalls_json(s: &sparseweaver_sim::StallBreakdown) -> String {
    format!(
        "{{\"memory\":{},\"shared\":{},\"exec_dep\":{},\"weaver\":{},\"total\":{}}}",
        s.memory,
        s.shared,
        s.exec_dep,
        s.weaver,
        s.total()
    )
}

fn phases_json(phase_cycles: &[u64; Phase::COUNT]) -> String {
    let mut out = String::from("{");
    for (i, phase) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{}",
            escape(phase.label()),
            phase_cycles[i]
        ));
    }
    out.push('}');
    out
}

fn kernel_json(name: &str, stats: &KernelStats) -> String {
    format!(
        "{{\"name\":\"{}\",\"launches\":{},\"cycles\":{},\"instructions\":{},\
         \"phases\":{},\"stalls\":{},\
         \"other_units\":{{\"l1_queue\":{},\"barrier\":{}}}}}",
        escape(name),
        stats.launches,
        stats.cycles,
        stats.instructions,
        phases_json(&stats.phase_cycles),
        stalls_json(&stats.stalls),
        stats.stalls.l1_queue,
        stats.stalls.barrier,
    )
}

fn imbalance_json(s: &sparseweaver_trace::ImbalanceSummary) -> String {
    format!(
        "{{\"entities\":{},\"min\":{},\"max\":{},\"mean\":{},\"imbalance_permille\":{}}}",
        s.entities, s.min, s.max, s.mean, s.imbalance_permille
    )
}

/// Renders the `profile.json` artifact for one run.
///
/// The output is a complete JSON document, all-integer and
/// byte-deterministic for a given `(report, cfg, graph)` triple. When
/// the run was executed without [`crate::Session::profile`], the
/// histogram and imbalance sections are present but empty — the cycle
/// accounting comes from [`KernelStats`], which is always collected.
pub fn render(report: &RunReport, cfg: &GpuConfig, graph: &Csr) -> String {
    let empty = ProfileReport::default();
    let prof = report.profile.as_ref().unwrap_or(&empty);
    let stats = &report.stats;

    // Top-down accounting (Fig. 4): each core offers one issue slot per
    // cycle; a slot was spent issuing, stalled for an issue-slot cause,
    // or idle (no resident warp ready — includes drained tail cycles).
    let issue_slots = report.cycles.saturating_mul(cfg.num_cores as u64);
    let idle = issue_slots.saturating_sub(stats.instructions + stats.stalls.total());

    let mut kernels = String::new();
    for (i, (name, ks)) in report.per_kernel.iter().enumerate() {
        if i > 0 {
            kernels.push(',');
        }
        kernels.push_str(&kernel_json(name, ks));
    }

    let fell_back = match report.fell_back_from {
        Some(s) => format!("\"{}\"", escape(&s.to_string())),
        None => "null".to_string(),
    };

    let mut hists = String::new();
    for (i, h) in prof.mem.iter().enumerate() {
        hists.push_str(&format!(
            "    \"mem_{}\": {},\n",
            ProfileReport::mem_level_label(i),
            histogram_json(h)
        ));
    }
    hists.push_str(&format!(
        "    \"weaver_latency\": {},\n",
        histogram_json(&prof.weaver)
    ));
    hists.push_str(&format!(
        "    \"gather_iteration\": {}",
        histogram_json(&prof.gather_iteration)
    ));

    format!(
        "{{\n\
         \x20 \"schema\": \"{schema}\",\n\
         \x20 \"schedule\": \"{schedule}\",\n\
         \x20 \"algorithm\": \"{algorithm}\",\n\
         \x20 \"fell_back_from\": {fell_back},\n\
         \x20 \"config\": {{\"cores\":{cores},\"warps_per_core\":{wpc},\
         \"threads_per_warp\":{tpw},\"fingerprint\":\"{cfp:016x}\"}},\n\
         \x20 \"graph\": {{\"vertices\":{nv},\"edges\":{ne},\
         \"fingerprint\":\"{gfp:016x}\"}},\n\
         \x20 \"totals\": {{\n\
         \x20   \"cycles\": {cycles},\n\
         \x20   \"issue_slots\": {issue_slots},\n\
         \x20   \"issued\": {issued},\n\
         \x20   \"thread_instructions\": {ti},\n\
         \x20   \"stalls\": {stalls},\n\
         \x20   \"idle\": {idle},\n\
         \x20   \"other_units\": {{\"l1_queue\":{l1q},\"barrier\":{bar}}}\n\
         \x20 }},\n\
         \x20 \"per_kernel\": [{kernels}],\n\
         \x20 \"histograms\": {{\n{hists}\n\x20 }},\n\
         \x20 \"imbalance\": {{\n\
         \x20   \"core_issue\": {core_imb},\n\
         \x20   \"warp_issue\": {warp_imb}\n\
         \x20 }}\n\
         }}\n",
        schema = PROFILE_SCHEMA,
        schedule = escape(&report.schedule.to_string()),
        algorithm = escape(&report.algorithm),
        fell_back = fell_back,
        cores = cfg.num_cores,
        wpc = cfg.warps_per_core,
        tpw = cfg.threads_per_warp,
        cfp = config_fingerprint(cfg),
        nv = graph.num_vertices(),
        ne = graph.num_edges(),
        gfp = graph_fingerprint(graph),
        cycles = report.cycles,
        issue_slots = issue_slots,
        issued = stats.instructions,
        ti = stats.thread_instructions,
        stalls = stalls_json(&stats.stalls),
        idle = idle,
        l1q = stats.stalls.l1_queue,
        bar = stats.stalls.barrier,
        kernels = kernels,
        hists = hists,
        core_imb = imbalance_json(&prof.core_imbalance()),
        warp_imb = imbalance_json(&prof.warp_imbalance()),
    )
}

/// One named scalar metric extracted from a profile document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted metric path, e.g. `totals.stalls.memory`.
    pub name: String,
    /// Value in the first (baseline) profile, if present.
    pub a: Option<f64>,
    /// Value in the second (candidate) profile, if present.
    pub b: Option<f64>,
}

impl MetricDelta {
    /// `b - a` when both sides are present.
    pub fn delta(&self) -> Option<f64> {
        Some(self.b? - self.a?)
    }

    /// Percent change relative to the baseline, when defined.
    pub fn pct(&self) -> Option<f64> {
        let (a, b) = (self.a?, self.b?);
        if a == 0.0 {
            None
        } else {
            Some((b - a) / a * 100.0)
        }
    }
}

fn flatten_into(prefix: &str, v: &Value, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((prefix.to_string(), *n)),
        Value::Obj(map) => {
            for (k, child) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, child, out);
            }
        }
        Value::Arr(items) => {
            // Arrays of named objects (per_kernel) flatten by name;
            // anonymous arrays (histogram buckets) are summarized by
            // their quantile fields already and are skipped.
            for item in items {
                if let Some(name) = item.get("name").and_then(Value::as_str) {
                    flatten_into(&format!("{prefix}.{name}"), item, out);
                }
            }
        }
        _ => {}
    }
}

/// Extracts every numeric metric from a parsed profile document as
/// `(dotted_path, value)` pairs in a deterministic (sorted) order.
/// Histogram bucket arrays are skipped — their content is summarized by
/// the `count`/`sum`/`p*` fields.
pub fn flat_metrics(doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into("", doc, &mut out);
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

/// Whether a metric regressing *upward* is bad. Cycle counts, stall
/// attributions, idle slots, latency quantiles and imbalance ratios are
/// lower-is-better; raw event counts are neutral (a different schedule
/// legitimately issues a different number of instructions).
pub fn lower_is_better(name: &str) -> bool {
    if name.ends_with(".name") {
        return false;
    }
    name.contains(".stalls.")
        || name.ends_with(".idle")
        || name == "totals.cycles"
        || name.ends_with(".cycles")
        || name.ends_with(".p50")
        || name.ends_with(".p90")
        || name.ends_with(".p99")
        || name.ends_with(".imbalance_permille")
}

/// Computes per-metric deltas between two parsed profile documents.
/// The result covers the union of both metric sets, sorted by name;
/// a metric missing on one side has `None` there.
pub fn diff(a: &Value, b: &Value) -> Vec<MetricDelta> {
    let fa = flat_metrics(a);
    let fb = flat_metrics(b);
    let mut names: Vec<&String> = fa.iter().map(|(n, _)| n).collect();
    names.extend(fb.iter().map(|(n, _)| n));
    names.sort();
    names.dedup();
    let lookup = |set: &[(String, f64)], name: &str| {
        set.binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| set[i].1)
    };
    names
        .into_iter()
        .map(|name| MetricDelta {
            name: name.clone(),
            a: lookup(&fa, name),
            b: lookup(&fb, name),
        })
        .collect()
}

/// Filters `deltas` down to regressions: lower-is-better metrics whose
/// candidate value exceeds the baseline by more than `tolerance_pct`
/// percent (a baseline of zero regresses on any positive candidate).
pub fn regressions(deltas: &[MetricDelta], tolerance_pct: f64) -> Vec<MetricDelta> {
    deltas
        .iter()
        .filter(|d| lower_is_better(&d.name))
        .filter(|d| match (d.a, d.b) {
            (Some(a), Some(b)) => b > a + a.abs() * tolerance_pct / 100.0 && b > a,
            _ => false,
        })
        .cloned()
        .collect()
}

/// Checks that two profiles describe comparable experiments: same
/// schema, same config fingerprint, same graph fingerprint. Returns a
/// human-readable list of mismatches (empty means comparable).
pub fn comparability_issues(a: &Value, b: &Value) -> Vec<String> {
    let mut issues = Vec::new();
    let field = |doc: &Value, path: &[&str]| -> Option<String> {
        let mut v = doc;
        for p in path {
            v = v.get(p)?;
        }
        v.as_str().map(str::to_string)
    };
    for (label, path) in [
        ("schema", &["schema"] as &[&str]),
        ("config fingerprint", &["config", "fingerprint"]),
        ("graph fingerprint", &["graph", "fingerprint"]),
    ] {
        let va = field(a, path);
        let vb = field(b, path);
        if va != vb {
            issues.push(format!(
                "{label} differs: {} vs {}",
                va.as_deref().unwrap_or("<missing>"),
                vb.as_deref().unwrap_or("<missing>")
            ));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PageRank;
    use crate::schedule::Schedule;
    use crate::session::Session;
    use sparseweaver_trace::json;

    fn profiled_run() -> (RunReport, GpuConfig, Csr) {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let cfg = GpuConfig::small_test();
        let mut s = Session::new(cfg);
        s.profile = true;
        let r = s
            .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
            .unwrap();
        (r, cfg, g)
    }

    #[test]
    fn fingerprints_separate_different_inputs() {
        let cfg_a = GpuConfig::small_test();
        let mut cfg_b = GpuConfig::small_test();
        cfg_b.num_cores += 1;
        assert_eq!(config_fingerprint(&cfg_a), config_fingerprint(&cfg_a));
        assert_ne!(config_fingerprint(&cfg_a), config_fingerprint(&cfg_b));

        let g_a = sparseweaver_graph::generators::uniform(30, 90, 7);
        let g_b = sparseweaver_graph::generators::uniform(30, 90, 8);
        assert_eq!(graph_fingerprint(&g_a), graph_fingerprint(&g_a));
        assert_ne!(graph_fingerprint(&g_a), graph_fingerprint(&g_b));
    }

    #[test]
    fn rendered_profile_parses_and_balances() {
        let (r, cfg, g) = profiled_run();
        let text = render(&r, &cfg, &g);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(PROFILE_SCHEMA)
        );
        let totals = doc.get("totals").expect("totals");
        let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_num).unwrap() as u64;
        let slots = num(totals, "issue_slots");
        let issued = num(totals, "issued");
        let idle = num(totals, "idle");
        let stall_total = num(totals.get("stalls").unwrap(), "total");
        // Top-down accounting closes: every slot is attributed.
        assert_eq!(slots, issued + stall_total + idle);
        assert_eq!(slots, num(totals, "cycles") * cfg.num_cores as u64);
        // Histograms made it into the artifact.
        let weaver = doc
            .get("histograms")
            .unwrap()
            .get("weaver_latency")
            .unwrap();
        assert!(num(weaver, "count") > 0);
        assert!(num(weaver, "p99") >= num(weaver, "p50"));
    }

    #[test]
    fn render_is_deterministic() {
        let (r, cfg, g) = profiled_run();
        assert_eq!(render(&r, &cfg, &g), render(&r, &cfg, &g));
        let (r2, cfg2, g2) = profiled_run();
        assert_eq!(render(&r, &cfg, &g), render(&r2, &cfg2, &g2));
    }

    #[test]
    fn flat_metrics_cover_kernels_by_name() {
        let (r, cfg, g) = profiled_run();
        let doc = json::parse(&render(&r, &cfg, &g)).unwrap();
        let metrics = flat_metrics(&doc);
        assert!(
            metrics.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted, unique"
        );
        assert!(metrics.iter().any(|(n, _)| n == "totals.stalls.memory"));
        assert!(metrics
            .iter()
            .any(|(n, _)| n.starts_with("per_kernel.") && n.ends_with(".cycles")));
        assert!(metrics
            .iter()
            .any(|(n, _)| n == "histograms.weaver_latency.p99"));
        // Bucket arrays are summarized, not flattened.
        assert!(!metrics.iter().any(|(n, _)| n.contains("buckets")));
    }

    #[test]
    fn diff_flags_only_lower_is_better_regressions() {
        let a = json::parse(
            r#"{"totals":{"cycles":100,"issued":50,"stalls":{"memory":10}},
                "histograms":{"mem_l1":{"count":5,"p99":8}}}"#,
        )
        .unwrap();
        let b = json::parse(
            r#"{"totals":{"cycles":120,"issued":70,"stalls":{"memory":10}},
                "histograms":{"mem_l1":{"count":9,"p99":8}}}"#,
        )
        .unwrap();
        let deltas = diff(&a, &b);
        let cycles = deltas.iter().find(|d| d.name == "totals.cycles").unwrap();
        assert_eq!(cycles.delta(), Some(20.0));
        assert_eq!(cycles.pct(), Some(20.0));
        // 20% growth in cycles regresses at 5% tolerance but not at 25%.
        let regs = regressions(&deltas, 5.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "totals.cycles");
        assert!(regressions(&deltas, 25.0).is_empty());
        // issued and count grew too, but they are neutral metrics.
        assert!(!lower_is_better("totals.issued"));
        assert!(!lower_is_better("histograms.mem_l1.count"));
        assert!(lower_is_better("histograms.mem_l1.p99"));
        assert!(lower_is_better("imbalance.core_issue.imbalance_permille"));
    }

    #[test]
    fn comparability_checks_fingerprints() {
        let (r, cfg, g) = profiled_run();
        let doc = json::parse(&render(&r, &cfg, &g)).unwrap();
        assert!(comparability_issues(&doc, &doc).is_empty());
        let mut cfg2 = cfg;
        cfg2.num_cores += 2;
        let other = json::parse(&render(&r, &cfg2, &g)).unwrap();
        let issues = comparability_issues(&doc, &other);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].contains("config fingerprint"));
    }

    #[test]
    fn unprofiled_report_still_renders() {
        let g = sparseweaver_graph::generators::uniform(30, 90, 3);
        let cfg = GpuConfig::small_test();
        let mut s = Session::new(cfg);
        let r = s.run(&g, &PageRank::new(1), Schedule::Svm).unwrap();
        assert!(r.profile.is_none());
        let doc = json::parse(&render(&r, &cfg, &g)).unwrap();
        let weaver = doc
            .get("histograms")
            .unwrap()
            .get("weaver_latency")
            .unwrap();
        assert_eq!(weaver.get("count").and_then(Value::as_num), Some(0.0));
    }
}
