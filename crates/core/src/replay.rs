//! The `replay.json` artifact: a byte-deterministic cache sweep driven
//! by a captured `swmtrace-v1` memory trace.
//!
//! The offline half of the memory-study mode. A live run captures its
//! hierarchy request stream once (`swsim run --mem-trace-out`); this
//! module replays that stream against a grid of alternative cache
//! geometries — no cores, no decode, no Weaver — and renders the
//! per-configuration [`LevelStats`] under the same artifact discipline
//! as `profile.json`: all-integer JSON, FNV-1a fingerprints, identical
//! bytes across `--jobs` settings. The capture configuration itself is
//! always replayed first and checked bit-for-bit against the live stats
//! in the trace footer, so every sweep carries its own correctness
//! anchor.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use sparseweaver_mem::mtrace::MemTrace;
use sparseweaver_mem::replay::{replay, verify, ReplayError};
use sparseweaver_mem::{CacheConfig, CacheStats, HierarchyConfig, LevelStats};

use crate::profile::Fnv64;

/// Schema identifier written into every `replay.json` artifact.
pub const REPLAY_SCHEMA: &str = "sparseweaver-replay-v1";

/// The sweep grid: the capture configuration with its L1 geometry
/// replaced by each `(size, ways)` pair of the cross product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// L1 sizes to sweep, in bytes.
    pub l1_sizes: Vec<u64>,
    /// L1 associativities to sweep.
    pub ways: Vec<u32>,
    /// Worker threads (`1` = fully serial). Output bytes are identical
    /// for any value: results are collected in grid order.
    pub jobs: usize,
}

/// A sweep rejected before any replay ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The grid is empty (no sizes or no way counts).
    EmptyGrid,
    /// One grid point has an invalid cache geometry — the typed surface
    /// of the set-aliasing bug: a non-power-of-two set count is refused
    /// up front, never silently masked into the wrong set.
    BadGridPoint {
        /// The offending point's label (`l1=<size>x<ways>`).
        label: String,
        /// The underlying geometry error.
        source: sparseweaver_mem::CacheConfigError,
    },
    /// Replaying failed (bad capture header or core mismatch).
    Replay(ReplayError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyGrid => write!(f, "sweep grid is empty"),
            SweepError::BadGridPoint { label, source } => {
                write!(f, "invalid sweep point {label}: {source}")
            }
            SweepError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ReplayError> for SweepError {
    fn from(e: ReplayError) -> Self {
        SweepError::Replay(e)
    }
}

/// One grid point's replayed outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    /// Human-readable point label (`l1=<size>x<ways>`).
    pub label: String,
    /// The full hierarchy configuration replayed.
    pub config: HierarchyConfig,
    /// FNV-1a fingerprint of the configuration's `Debug` rendering.
    pub fingerprint: u64,
    /// Replayed cumulative stats under this configuration.
    pub stats: LevelStats,
}

/// The whole sweep: the self-check against the live run plus every grid
/// point, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// FNV-1a fingerprint of the raw trace file bytes.
    pub trace_fingerprint: u64,
    /// The capture configuration (from the trace header).
    pub capture_config: HierarchyConfig,
    /// The live run's stats (from the trace footer).
    pub live: LevelStats,
    /// Stats from replaying under the capture configuration.
    pub replayed: LevelStats,
    /// Grid results, one per `(size, ways)` pair in `l1_sizes` x `ways`
    /// order.
    pub entries: Vec<SweepEntry>,
}

impl SweepResult {
    /// Whether the capture-config replay reproduced the live run bit for
    /// bit — the precondition for trusting the swept numbers.
    pub fn verified(&self) -> bool {
        self.replayed == self.live
    }
}

fn config_label(size: u64, ways: u32) -> String {
    format!("l1={size}x{ways}")
}

fn hierarchy_fingerprint(cfg: &HierarchyConfig) -> u64 {
    let mut h = Fnv64::default();
    h.write(format!("{cfg:?}").as_bytes());
    h.finish()
}

/// Replays `trace` against the `spec` grid.
///
/// Every grid geometry is validated up front ([`CacheConfig::checked`]),
/// then the capture-config self-check and all grid points fan out on the
/// thread pool when `spec.jobs > 1`. Results are collected in grid
/// order, so the rendered artifact is byte-identical for any job count.
///
/// # Errors
///
/// Returns a [`SweepError`] on an empty grid, an invalid grid geometry,
/// or a trace whose own capture configuration cannot be replayed.
pub fn sweep(
    trace: &MemTrace,
    trace_fingerprint: u64,
    spec: &SweepSpec,
) -> Result<SweepResult, SweepError> {
    if spec.l1_sizes.is_empty() || spec.ways.is_empty() {
        return Err(SweepError::EmptyGrid);
    }
    let mut grid: Vec<(String, HierarchyConfig)> = Vec::new();
    for &size in &spec.l1_sizes {
        for &ways in &spec.ways {
            let label = config_label(size, ways);
            let l1 =
                CacheConfig::checked(size, ways).map_err(|source| SweepError::BadGridPoint {
                    label: label.clone(),
                    source,
                })?;
            let mut cfg = trace.config;
            cfg.l1 = l1;
            grid.push((label, cfg));
        }
    }

    let outcome = verify(trace)?;
    let run_point = |(label, cfg): &(String, HierarchyConfig)| -> Result<SweepEntry, SweepError> {
        let stats = replay(trace, cfg)?;
        Ok(SweepEntry {
            label: label.clone(),
            config: *cfg,
            fingerprint: hierarchy_fingerprint(cfg),
            stats,
        })
    };
    let results: Vec<Result<SweepEntry, SweepError>> = if spec.jobs > 1 && grid.len() > 1 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(spec.jobs)
            .build()
            .expect("sweep thread pool");
        pool.install(|| {
            (0..grid.len())
                .into_par_iter()
                .map(|i| run_point(&grid[i]))
                .collect()
        })
    } else {
        grid.iter().map(run_point).collect()
    };
    let entries = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SweepResult {
        trace_fingerprint,
        capture_config: trace.config,
        live: trace.live_stats,
        replayed: outcome.replayed,
        entries,
    })
}

fn cache_stats_json(s: &CacheStats) -> String {
    format!(
        "{{\"accesses\":{},\"hits\":{},\"misses\":{},\"writebacks\":{}}}",
        s.accesses, s.hits, s.misses, s.writebacks
    )
}

fn level_stats_json(s: &LevelStats) -> String {
    let l3 = match &s.l3 {
        Some(l3) => cache_stats_json(l3),
        None => "null".to_string(),
    };
    format!(
        "{{\"l1\":{},\"l2\":{},\"l3\":{},\"dram_accesses\":{}}}",
        cache_stats_json(&s.l1),
        cache_stats_json(&s.l2),
        l3,
        s.dram_accesses
    )
}

fn hierarchy_json(cfg: &HierarchyConfig, fingerprint: u64) -> String {
    let l3 = match &cfg.l3 {
        Some(l3) => format!("{{\"bytes\":{},\"ways\":{}}}", l3.size_bytes, l3.ways),
        None => "null".to_string(),
    };
    format!(
        "{{\"cores\":{},\"l1_bytes\":{},\"l1_ways\":{},\"l2_bytes\":{},\"l2_ways\":{},\
         \"l3\":{},\"dram_freq_ratio\":{},\"fingerprint\":\"{:016x}\"}}",
        cfg.num_cores,
        cfg.l1.size_bytes,
        cfg.l1.ways,
        cfg.l2.size_bytes,
        cfg.l2.ways,
        l3,
        cfg.dram_freq_ratio,
        fingerprint
    )
}

/// Renders the `replay.json` artifact.
///
/// All-integer and byte-deterministic for a given `(trace, result)`
/// pair; `counts` is the trace's per-kind record census
/// ([`MemTrace::counts`]).
pub fn render(result: &SweepResult, trace: &MemTrace) -> String {
    let (kernels, accesses, unqueued, atomics, barriers) = trace.counts();
    let mut entries = String::new();
    for (i, e) in result.entries.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"label\":\"{}\",\"config\":{},\"stats\":{}}}",
            e.label,
            hierarchy_json(&e.config, e.fingerprint),
            level_stats_json(&e.stats)
        ));
    }
    format!(
        "{{\n\
         \x20 \"schema\": \"{schema}\",\n\
         \x20 \"trace\": {{\"fingerprint\":\"{tfp:016x}\",\"records\":{records},\
         \"kernels\":{kernels},\"accesses\":{accesses},\"unqueued\":{unqueued},\
         \"atomics\":{atomics},\"barriers\":{barriers}}},\n\
         \x20 \"capture\": {{\n\
         \x20   \"config\": {capture_cfg},\n\
         \x20   \"live\": {live},\n\
         \x20   \"replayed\": {replayed},\n\
         \x20   \"verified\": {verified}\n\
         \x20 }},\n\
         \x20 \"sweep\": [\n{entries}\n\x20 ]\n\
         }}\n",
        schema = REPLAY_SCHEMA,
        tfp = result.trace_fingerprint,
        records = trace.records.len(),
        kernels = kernels,
        accesses = accesses,
        unqueued = unqueued,
        atomics = atomics,
        barriers = barriers,
        capture_cfg = hierarchy_json(
            &result.capture_config,
            hierarchy_fingerprint(&result.capture_config)
        ),
        live = level_stats_json(&result.live),
        replayed = level_stats_json(&result.replayed),
        verified = result.verified(),
        entries = entries,
    )
}

/// Fingerprints raw trace-file bytes (FNV-1a), for the artifact header.
pub fn trace_fingerprint(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_mem::mtrace::{parse, MemRecorderHandle};
    use sparseweaver_mem::Hierarchy;

    fn captured() -> (Vec<u8>, MemTrace) {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l1 = CacheConfig::new(1024, 2);
        cfg.l2 = CacheConfig::new(8192, 4);
        let mut live = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        live.set_recorder(Some(rec.clone()));
        rec.kernel_launch("k");
        for i in 0..400u64 {
            rec.set_warp((i % 4) as u32);
            live.access((i % 2) as usize, (i * 192) % 16384, i % 5 == 0, i * 2);
            if i % 13 == 0 {
                live.atomic(1, (i * 64) % 4096, i * 2);
            }
        }
        rec.finalize(&live.stats());
        let bytes = rec.take_bytes().unwrap();
        let trace = parse(&bytes).unwrap();
        (bytes, trace)
    }

    fn spec(jobs: usize) -> SweepSpec {
        SweepSpec {
            l1_sizes: vec![512, 1024, 4096, 16384],
            ways: vec![2, 4],
            jobs,
        }
    }

    #[test]
    fn sweep_verifies_and_orders_entries() {
        let (bytes, trace) = captured();
        let result = sweep(&trace, trace_fingerprint(&bytes), &spec(1)).unwrap();
        assert!(result.verified());
        assert_eq!(result.entries.len(), 8);
        assert_eq!(result.entries[0].label, "l1=512x2");
        assert_eq!(result.entries[7].label, "l1=16384x4");
        // The grid point matching the capture config reproduces it.
        let same = &result.entries[2];
        assert_eq!(same.label, "l1=1024x2");
        assert_eq!(same.stats, result.live);
    }

    #[test]
    fn rendered_artifact_is_jobs_invariant() {
        let (bytes, trace) = captured();
        let fp = trace_fingerprint(&bytes);
        let serial = render(&sweep(&trace, fp, &spec(1)).unwrap(), &trace);
        let parallel = render(&sweep(&trace, fp, &spec(8)).unwrap(), &trace);
        assert_eq!(serial, parallel, "replay.json must not depend on --jobs");
        assert!(serial.contains(REPLAY_SCHEMA));
        assert!(serial.contains("\"verified\": true"));
    }

    #[test]
    fn bad_grid_point_is_typed_up_front() {
        let (bytes, trace) = captured();
        let bad = SweepSpec {
            l1_sizes: vec![192],
            ways: vec![1],
            jobs: 1,
        };
        let e = sweep(&trace, trace_fingerprint(&bytes), &bad).expect_err("non-pow2 sets");
        match &e {
            SweepError::BadGridPoint { label, .. } => assert_eq!(label, "l1=192x1"),
            other => panic!("expected BadGridPoint, got {other:?}"),
        }
        assert!(e.to_string().contains("power of two"), "{e}");
    }

    #[test]
    fn empty_grid_is_typed() {
        let (bytes, trace) = captured();
        let empty = SweepSpec {
            l1_sizes: vec![],
            ways: vec![2],
            jobs: 1,
        };
        assert_eq!(
            sweep(&trace, trace_fingerprint(&bytes), &empty),
            Err(SweepError::EmptyGrid)
        );
    }
}
