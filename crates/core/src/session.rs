//! Top-level entry point: run an algorithm on a graph under a schedule.

use std::path::PathBuf;

use sparseweaver_fault::{FaultCounts, FaultHandle, FaultInjector, FaultSpec};
use sparseweaver_graph::{Csr, Direction};
use sparseweaver_lint::{AnalyzeGeom, LintLevel};
use sparseweaver_sim::{Gpu, GpuConfig, KernelStats, Occupancy, SimError, WeaverMode};
use sparseweaver_trace::{
    CounterSnapshot, EventData, FileSink, ProfileHandle, ProfileReport, TraceConfig, TraceHandle,
    TraceReport,
};

use crate::algorithms::Algorithm;
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::compiler::Compiler;
use crate::output::AlgoOutput;
use crate::runtime::{CheckpointCtl, Runtime};
use crate::schedule::Schedule;
use crate::FrameworkError;

/// The result of one `(graph, algorithm, schedule)` run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The schedule that produced this run.
    pub schedule: Schedule,
    /// The algorithm's name.
    pub algorithm: String,
    /// Total simulated cycles across all kernel launches.
    pub cycles: u64,
    /// Accumulated statistics.
    pub stats: KernelStats,
    /// Per-kernel accumulated statistics.
    pub per_kernel: Vec<(String, KernelStats)>,
    /// The final vertex properties.
    pub output: AlgoOutput,
    /// Structured trace + metrics, when [`Session::trace`] was set.
    pub trace: Option<TraceReport>,
    /// Latency histograms and load-imbalance counters, when
    /// [`Session::profile`] was set. Render with
    /// [`crate::profile::render`].
    pub profile: Option<ProfileReport>,
    /// The first I/O error hit while streaming the trace to
    /// [`Session::trace_out`], if any: the file on disk is missing
    /// events and must not be presented as a complete timeline.
    pub sink_error: Option<std::io::ErrorKind>,
    /// The lint enforcement level that vetted this run's kernels.
    pub lint: LintLevel,
    /// Register-file occupancy of the machine that ran this report
    /// (`resident < configured` means the register file capped
    /// parallelism).
    pub occupancy: Occupancy,
    /// Launch retries performed after Weaver response timeouts.
    pub weaver_retries: u64,
    /// When the run degraded to a software schedule after retry
    /// exhaustion, the schedule originally requested;
    /// [`RunReport::schedule`] is what actually executed.
    pub fell_back_from: Option<Schedule>,
    /// Injection counters, when a fault injector was attached.
    pub faults: Option<FaultCounts>,
    /// Capture summary (records, bytes, latched sink error) of the
    /// memory trace streamed to [`Session::mem_trace_out`], if set. A
    /// non-`None` `sink_error` means the file on disk is truncated and
    /// must not be presented as a complete capture.
    pub mem_trace: Option<sparseweaver_mem::RecorderSummary>,
}

impl RunReport {
    /// Speedup of this run over `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }
}

/// A session: a machine configuration under which runs are executed.
///
/// Each run gets a *fresh* GPU (cold caches) so schedules are compared
/// fairly; the SparseWeaver/EGHW runs apply the paper's L1 penalty (the
/// 512-entry ST/DT tables halve the L1, Section V) unless
/// [`Session::l1_penalty`] is disabled.
///
/// # Examples
///
/// ```
/// use sparseweaver_core::prelude::*;
///
/// let graph = sparseweaver_graph::generators::powerlaw(64, 400, 1.8, 1);
/// let mut session = Session::new(GpuConfig::small_test());
/// let svm = session.run(&graph, &PageRank::new(2), Schedule::Svm)?;
/// let sw = session.run(&graph, &PageRank::new(2), Schedule::SparseWeaver)?;
/// assert!(svm.output.approx_eq(&sw.output, 1e-9));
/// # Ok::<(), FrameworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    cfg: GpuConfig,
    /// Apply the halved-L1 penalty to unit-backed schedules (default on).
    pub l1_penalty: bool,
    /// When set, every [`Session::run`] attaches a tracer with this
    /// configuration and the resulting [`RunReport::trace`] is populated.
    pub trace: Option<TraceConfig>,
    /// When set, traced events stream to this `.jsonl` file (one JSON
    /// object per line) instead of the in-memory ring — nothing is
    /// evicted, so arbitrarily long runs keep their full event timeline.
    /// Implies tracing with [`Session::trace`]'s configuration (or the
    /// default one when `trace` is unset).
    pub trace_out: Option<PathBuf>,
    /// When set, every [`Session::run`] attaches a latency profiler and
    /// [`RunReport::profile`] is populated (default off). Profiling is
    /// independent of tracing and adds no events — just deterministic
    /// histograms and issue counters.
    pub profile: bool,
    /// How the static verifier treats kernel findings before each launch
    /// (default: [`LintLevel::Deny`]).
    pub lint: LintLevel,
    /// Whether the abstract-interpretation analyzer (SW-L5xx: value
    /// ranges, static OOB/race proofs, coalescing advisories) also runs
    /// before each launch (default off). Analyzer *errors* (`SW-L501`,
    /// proved out-of-bounds) reject the kernel under
    /// [`LintLevel::Deny`]; warnings and advisories never block.
    pub analyze: bool,
    /// Whether kernels pass through liveness-based register allocation
    /// before launch (default on). Turning it off runs template output
    /// verbatim — useful for A/B-ing the pass.
    pub regalloc: bool,
    /// Deterministic fault-injection spec applied to every run (`None` =
    /// fault-free machine).
    pub inject: Option<FaultSpec>,
    /// Seed for the injector's RNG stream.
    pub inject_seed: u64,
    /// Bound on launch retries after a Weaver response timeout, before
    /// the run degrades to the software `S_wm` schedule.
    pub max_weaver_retries: u32,
    /// Whether a run whose retries are exhausted degrades to `S_wm`
    /// (default on). Turning it off surfaces the Weaver timeout as an
    /// error instead — useful for capturing a hang report of the faulty
    /// machine rather than masking it.
    pub fallback: bool,
    /// Whether the simulator's idle-cycle fast-forward cache is enabled
    /// (default on). Both settings are bit-identical by contract
    /// ([`sparseweaver_sim::Gpu::set_fast_forward`]); the off switch
    /// exists for determinism cross-checks and perf A/B runs.
    pub fast_forward: bool,
    /// When set, every [`Session::run`] streams a binary `swmtrace-v1`
    /// memory-access trace to this file (`-` for stdout) for offline
    /// replay with `swreplay`; [`RunReport::mem_trace`] summarizes the
    /// capture. On a graceful-degradation fallback the file is recreated
    /// for the re-run, so the capture always describes the schedule that
    /// actually executed.
    pub mem_trace_out: Option<PathBuf>,
    /// Checkpoint and early-stop policy applied to every run (default
    /// `None`). The session fills in the config/graph fingerprints and
    /// fallback provenance per run; callers set the output path, cadence,
    /// embedded argv, and stop knobs. Incompatible with
    /// [`Session::mem_trace_out`] (the memory-trace recorder is not part
    /// of the checkpointed state) and with a `-` (stdout)
    /// [`Session::trace_out`] — the CLI rejects both combinations.
    pub checkpoint: Option<CheckpointCtl>,
    /// Injection counters of the most recent [`Session::run`], kept even
    /// when the run errored (the [`RunReport`] is lost on that path).
    last_faults: Option<FaultCounts>,
}

impl Session {
    /// Creates a session on the given machine configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate();
        Session {
            cfg,
            l1_penalty: true,
            trace: None,
            trace_out: None,
            profile: false,
            lint: LintLevel::default(),
            analyze: false,
            regalloc: true,
            inject: None,
            inject_seed: 0,
            max_weaver_retries: crate::runtime::DEFAULT_WEAVER_RETRIES,
            fallback: true,
            fast_forward: true,
            mem_trace_out: None,
            checkpoint: None,
            last_faults: None,
        }
    }

    /// Injection counters of the most recent [`Session::run`] (also
    /// populated when the run returned an error), or `None` when no
    /// injector was attached.
    pub fn last_faults(&self) -> Option<FaultCounts> {
        self.last_faults
    }

    /// The base machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Mutable access to the base configuration (for sweeps).
    pub fn config_mut(&mut self) -> &mut GpuConfig {
        &mut self.cfg
    }

    /// The effective configuration used for `schedule`.
    pub fn config_for(&self, schedule: Schedule) -> GpuConfig {
        let mut cfg = self.cfg;
        cfg.weaver_mode = match schedule {
            Schedule::Eghw => WeaverMode::Eghw,
            _ => WeaverMode::Weaver,
        };
        if schedule.uses_unit() && self.l1_penalty {
            cfg.hierarchy.l1 = sparseweaver_mem::CacheConfig::new(
                cfg.hierarchy.l1.size_bytes / 2,
                cfg.hierarchy.l1.ways,
            );
        }
        cfg
    }

    /// Creates a runtime for custom driving (e.g. the GCN case study).
    ///
    /// # Errors
    ///
    /// Returns an error if the graph does not fit the device model.
    pub fn runtime<'g>(
        &self,
        graph: &'g Csr,
        direction: Direction,
        schedule: Schedule,
    ) -> Result<Runtime<'g>, FrameworkError> {
        let cfg = self.config_for(schedule);
        let gpu = Gpu::new(cfg);
        let mut rt = Runtime::new(gpu, graph, direction, schedule)?;
        rt.set_lint(self.lint);
        if self.analyze {
            rt.set_analyze(Some(geom_of(&cfg)));
        }
        rt.set_regalloc(self.regalloc);
        rt.set_fast_forward(self.fast_forward);
        Ok(rt)
    }

    /// Runs the abstract-interpretation analyzer over every kernel
    /// `algorithm` generates under `schedule`, without executing
    /// anything. Kernels are generated at the same occupancy-clamped
    /// geometry a [`Session::run`] would use, so shared-memory layouts
    /// and geometry CSR facts match the machine that would execute them.
    /// Each returned report carries its kernel name and schedule.
    pub fn analyze_kernels(
        &self,
        algorithm: &dyn Algorithm,
        schedule: Schedule,
    ) -> Result<Vec<sparseweaver_lint::LintReport>, FrameworkError> {
        let (eff, _) = self.clamped_config(algorithm, schedule)?;
        let geom = geom_of(&eff);
        Ok(algorithm
            .kernels(schedule, &eff)
            .iter()
            .map(|k| {
                sparseweaver_lint::analyze(k, &geom).with_context(k.name(), schedule.paper_name())
            })
            .collect())
    }

    /// The effective configuration for running `algorithm` under
    /// `schedule`, with `warps_per_core` pre-clamped to the register-file
    /// occupancy cap of the algorithm's hungriest (post-allocation)
    /// kernel. Returns the clamped config and the originally configured
    /// warp count.
    ///
    /// The clamp happens *before* the machine is built because the
    /// schedule templates bake thread geometry into kernels at code
    /// generation (shared-memory layouts, scan widths): compile geometry,
    /// physical warps, and the geometry CSRs must all describe the same
    /// machine. Warp counts stay a power of two (the `S_cm` core-wide
    /// scan requires it), and kernel generation re-runs after each shrink
    /// until the cap stops binding.
    fn clamped_config(
        &self,
        algorithm: &dyn Algorithm,
        schedule: Schedule,
    ) -> Result<(GpuConfig, usize), FrameworkError> {
        let mut eff = self.config_for(schedule);
        let configured = eff.warps_per_core;
        loop {
            let kernels = algorithm.kernels(schedule, &eff);
            if kernels.is_empty() {
                // Custom-runtime algorithm: nothing to pre-compile, the
                // launch-time cap inside the GPU still applies.
                break;
            }
            // Fresh compiler per iteration: kernels regenerate under the
            // shrunken geometry and must not hit a stale per-name cache.
            let mut compiler = Compiler::new(self.lint);
            compiler.set_regalloc(self.regalloc);
            let mut max_hw = 0;
            for k in &kernels {
                max_hw = max_hw.max(compiler.process(k)?.register_high_water());
            }
            let cap = eff.occupancy_cap(max_hw);
            if cap >= eff.warps_per_core {
                break;
            }
            let shrunk = prev_power_of_two(cap);
            if shrunk == eff.warps_per_core {
                break;
            }
            eff.warps_per_core = shrunk;
        }
        Ok((eff, configured))
    }

    /// Runs `algorithm` on `graph` under `schedule`.
    ///
    /// With [`Session::inject`] set, the run executes on a faulty machine:
    /// a deterministic injector seeded with [`Session::inject_seed`] is
    /// attached to the GPU. A launch whose Weaver response is dropped is
    /// retried up to [`Session::max_weaver_retries`] times from a
    /// restored memory snapshot; when retries are exhausted the Weaver
    /// unit is considered faulty and the whole run degrades to the
    /// software `S_wm` schedule (graceful degradation —
    /// [`RunReport::fell_back_from`] records the original request).
    ///
    /// # Errors
    ///
    /// Propagates compiler/simulator/convergence errors.
    pub fn run(
        &mut self,
        graph: &Csr,
        algorithm: &dyn Algorithm,
        schedule: Schedule,
    ) -> Result<RunReport, FrameworkError> {
        let fault = self
            .inject
            .filter(|s| s.is_active())
            .map(|spec| FaultHandle::new(FaultInjector::new(spec, self.inject_seed)));
        let result = match self.run_once(graph, algorithm, schedule, fault.clone(), None, None) {
            Err(FrameworkError::Sim(SimError::WeaverTimeout { kernel, .. }))
                if self.fallback && schedule.uses_unit() =>
            {
                // Retries exhausted: the Weaver unit is faulty. Re-run the
                // whole algorithm under the software warp-mapping schedule
                // on the same (still-faulty) machine — it never consults
                // the unit, so dropped responses cannot recur.
                self.run_once(
                    graph,
                    algorithm,
                    Schedule::Swm,
                    fault.clone(),
                    Some((schedule, kernel)),
                    None,
                )
                .map(|mut report| {
                    // The launch that exhausted its budget retried exactly
                    // this many times before the fallback.
                    report.weaver_retries += self.max_weaver_retries as u64;
                    report
                })
            }
            other => other,
        };
        self.last_faults = fault.map(|f| f.counts());
        result
    }

    /// Resumes a run from a checkpoint written by an earlier, interrupted
    /// invocation with the same session settings, graph, and algorithm.
    ///
    /// The machine is rebuilt exactly as [`Session::run`] builds it —
    /// including entering the graceful-degradation re-run directly when
    /// the checkpoint records one — the checkpointed state is restored
    /// into it, and the recorded host-side decisions are replayed up to
    /// the interruption point, after which simulation continues live. The
    /// final [`RunReport`] is bit-identical to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ConfigMismatch`] /
    /// [`CheckpointError::GraphMismatch`] (wrapped in
    /// [`FrameworkError::Checkpoint`]) when the rebuilt machine or graph
    /// does not match the checkpoint's fingerprints, plus everything
    /// [`Session::run`] can return.
    pub fn resume(
        &mut self,
        graph: &Csr,
        algorithm: &dyn Algorithm,
        ck: &Checkpoint,
    ) -> Result<RunReport, FrameworkError> {
        let fault = self
            .inject
            .filter(|s| s.is_active())
            .map(|spec| FaultHandle::new(FaultInjector::new(spec, self.inject_seed)));
        let fallback_from = ck.fell_back_from.clone();
        let result = match self.run_once(
            graph,
            algorithm,
            ck.schedule,
            fault.clone(),
            fallback_from.clone(),
            Some(ck),
        ) {
            Err(FrameworkError::Sim(SimError::WeaverTimeout { kernel, .. }))
                if self.fallback && ck.schedule.uses_unit() && fallback_from.is_none() =>
            {
                // The resumed attempt exhausted its retries after the
                // checkpoint: degrade exactly as the uninterrupted run
                // would, with a fresh (non-resumed) software re-run.
                self.run_once(
                    graph,
                    algorithm,
                    Schedule::Swm,
                    fault.clone(),
                    Some((ck.schedule, kernel)),
                    None,
                )
                .map(|mut report| {
                    report.weaver_retries += self.max_weaver_retries as u64;
                    report
                })
            }
            other => other,
        };
        let result = result.map(|mut report| {
            if fallback_from.is_some() {
                // [`Session::run`] applies this adjustment when it enters
                // the fallback re-run; the checkpoint was taken inside
                // that re-run, so re-apply it here.
                report.weaver_retries += self.max_weaver_retries as u64;
            }
            report
        });
        self.last_faults = fault.map(|f| f.counts());
        result
    }

    /// One attempt of [`Session::run`] under exactly `schedule`.
    /// `fallback_from` marks this as the graceful-degradation re-run:
    /// `(originally requested schedule, kernel that exhausted retries)`.
    /// With `resume` set, the machine is restored from that checkpoint
    /// after all observability handles are attached, and the side effects
    /// that the restored state already contains (the fallback-entry trace
    /// event and totals) are not re-applied.
    fn run_once(
        &mut self,
        graph: &Csr,
        algorithm: &dyn Algorithm,
        schedule: Schedule,
        fault: Option<FaultHandle>,
        fallback_from: Option<(Schedule, String)>,
        resume: Option<&Checkpoint>,
    ) -> Result<RunReport, FrameworkError> {
        let (eff, configured) = self.clamped_config(algorithm, schedule)?;
        // Fingerprint the *effective* (clamped, penalty-applied) config —
        // the machine that actually runs — matching what
        // `crate::profile::render` stamps into `metrics.json`.
        let fps = (resume.is_some() || self.checkpoint.is_some()).then(|| {
            (
                crate::profile::config_fingerprint(&eff),
                crate::profile::graph_fingerprint(graph),
            )
        });
        if let (Some(ck), Some((cfp, gfp))) = (resume, fps) {
            ck.verify(cfp, gfp)?;
        }
        if resume.is_some() && self.mem_trace_out.is_some() {
            return Err(CheckpointError::Restore {
                what: "memory-trace capture (--mem-trace-out) is not part of the \
                       checkpointed state and cannot be resumed"
                    .to_string(),
            }
            .into());
        }
        let mut gpu = Gpu::new(eff);
        gpu.set_configured_warps_per_core(configured);
        let mut rt = Runtime::new(gpu, graph, algorithm.direction(), schedule)?;
        rt.set_lint(self.lint);
        if self.analyze {
            rt.set_analyze(Some(geom_of(&eff)));
        }
        rt.set_regalloc(self.regalloc);
        let tracer = match &self.trace_out {
            Some(path) => {
                let cfg = self.trace.unwrap_or_default();
                // A resume appends to the existing trace file: the restored
                // sink state truncates it back to the checkpointed byte
                // count, while `create` would wipe the pre-interruption
                // events.
                let sink = if resume.is_some() {
                    FileSink::reopen(path)
                } else {
                    FileSink::create(path)
                }
                .map_err(|e| FrameworkError::Io {
                    what: format!("creating trace file {}: {e}", path.display()),
                })?;
                Some(TraceHandle::with_sink(cfg, Box::new(sink)))
            }
            None => self.trace.map(TraceHandle::new),
        };
        rt.set_tracer(tracer.clone());
        // The fallback re-run gets its own fresh profiler (only the
        // schedule that actually executed is profiled): the failed
        // attempt's handle died with its runtime.
        let profiler = self.profile.then(ProfileHandle::new);
        rt.set_profiler(profiler.clone());
        rt.set_fault_injector(fault.clone());
        rt.set_max_weaver_retries(self.max_weaver_retries);
        rt.set_fast_forward(self.fast_forward);
        // Created after the machine: the capture header carries the
        // effective (clamped, penalty-applied) hierarchy configuration,
        // which is what a replay must rebuild for bit-identity.
        let recorder = match &self.mem_trace_out {
            Some(path) => Some(
                sparseweaver_mem::MemRecorderHandle::create(path, &eff.hierarchy).map_err(|e| {
                    FrameworkError::Io {
                        what: format!("creating memory trace file {}: {e}", path.display()),
                    }
                })?,
            ),
            None => None,
        };
        rt.set_mem_recorder(recorder.clone());
        if let Some(policy) = &self.checkpoint {
            let mut ctl = policy.clone();
            let (cfp, gfp) = fps.expect("fingerprints computed when a policy is set");
            ctl.config_fp = cfp;
            ctl.graph_fp = gfp;
            ctl.fell_back_from = fallback_from.clone();
            rt.set_checkpoint_ctl(Some(ctl));
        }
        // On a resume the restored tracer state already contains the
        // fallback-entry event and totals — re-applying them here would
        // double-count the degradation.
        if resume.is_none() {
            if let (Some(tr), Some((from, kernel))) = (&tracer, &fallback_from) {
                tr.emit(
                    0,
                    0,
                    EventData::WeaverFallback {
                        kernel: kernel.clone(),
                        schedule: schedule.paper_name().to_string(),
                    },
                );
                // The failed attempt's tracer died with it; carry what the
                // injector did to that run (the drops that exhausted the
                // retry budget) into this run's totals so `metrics.json`
                // explains the fallback it reports.
                let pre = fault.as_ref().map(|f| f.counts()).unwrap_or_default();
                tr.add_totals(&CounterSnapshot {
                    faults_injected: pre.total(),
                    weaver_drops: pre.weaver_drops,
                    weaver_retries: self.max_weaver_retries as u64,
                    weaver_fallbacks: 1,
                    ..CounterSnapshot::default()
                });
                let _ = from;
            }
        }
        if let Some(ck) = resume {
            rt.resume_from(ck)?;
        }
        let output = algorithm.run(&mut rt)?;
        let occupancy = rt.gpu().occupancy();
        let mem_trace = recorder.map(|r| r.finalize(&rt.gpu().mem_stats()));
        let weaver_retries = rt.weaver_retries();
        let (stats, per_kernel) = rt.into_stats();
        let trace = tracer.map(|t| t.report());
        let sink_error = trace.as_ref().and_then(|t| t.sink_error);
        let profile = profiler.map(|p| p.report());
        Ok(RunReport {
            schedule,
            algorithm: algorithm.name().to_string(),
            cycles: stats.cycles,
            stats,
            per_kernel,
            output,
            trace,
            profile,
            sink_error,
            lint: self.lint,
            occupancy,
            weaver_retries,
            fell_back_from: fallback_from.map(|(from, _)| from),
            faults: fault.map(|f| f.counts()),
            mem_trace,
        })
    }
}

/// The analyzer's view of a machine configuration: the geometry CSRs
/// and the shared-memory capacity, nothing else.
fn geom_of(cfg: &GpuConfig) -> AnalyzeGeom {
    AnalyzeGeom {
        num_cores: cfg.num_cores as u64,
        warps_per_core: cfg.warps_per_core as u64,
        threads_per_warp: cfg.threads_per_warp as u64,
        shared_mem_bytes: cfg.shared_mem_bytes as u64,
    }
}

/// Largest power of two `<= n` (1 for `n == 0`).
fn prev_power_of_two(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PageRank;

    #[test]
    fn l1_penalty_applies_only_to_unit_schedules() {
        let s = Session::new(GpuConfig::small_test());
        let base = s.config_for(Schedule::Svm).hierarchy.l1.size_bytes;
        let sw = s.config_for(Schedule::SparseWeaver).hierarchy.l1.size_bytes;
        assert_eq!(sw * 2, base);
        let mut s2 = s.clone();
        s2.l1_penalty = false;
        assert_eq!(
            s2.config_for(Schedule::SparseWeaver)
                .hierarchy
                .l1
                .size_bytes,
            base
        );
    }

    #[test]
    fn eghw_selects_eghw_mode() {
        let s = Session::new(GpuConfig::small_test());
        assert_eq!(s.config_for(Schedule::Eghw).weaver_mode, WeaverMode::Eghw);
        assert_eq!(s.config_for(Schedule::Svm).weaver_mode, WeaverMode::Weaver);
    }

    #[test]
    fn run_produces_report() {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let mut s = Session::new(GpuConfig::small_test());
        let r = s.run(&g, &PageRank::new(2), Schedule::Svm).unwrap();
        assert!(r.cycles > 0);
        assert_eq!(r.algorithm, "pagerank");
        assert_eq!(r.output.len(), 40);
        assert!(r.trace.is_none());
    }

    #[test]
    fn regalloc_toggle_does_not_change_results() {
        let g = sparseweaver_graph::generators::powerlaw(48, 240, 1.8, 3);
        for schedule in [Schedule::Svm, Schedule::SparseWeaver, Schedule::Scm] {
            let mut on = Session::new(GpuConfig::small_test());
            let mut off = Session::new(GpuConfig::small_test());
            off.regalloc = false;
            let r_on = on.run(&g, &PageRank::new(2), schedule).unwrap();
            let r_off = off.run(&g, &PageRank::new(2), schedule).unwrap();
            assert!(
                r_on.output.approx_eq(&r_off.output, 1e-12),
                "allocation changed {schedule:?} results"
            );
        }
    }

    #[test]
    fn register_file_cap_clamps_the_machine() {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let mut s = Session::new(GpuConfig::regfile_limited());
        let r = s.run(&g, &PageRank::new(2), Schedule::Svm).unwrap();
        let occ = r.occupancy;
        assert!(occ.kernel_high_water > 8, "hw {}", occ.kernel_high_water);
        assert!(
            occ.resident < occ.configured,
            "expected a binding cap: {occ:?}"
        );
        assert_eq!(occ.configured, 4);
        // The clamped machine still computes the right answer.
        assert!(r.output.approx_eq(&PageRank::new(2).reference(&g), 1e-9));
    }

    #[test]
    fn uncapped_machine_reports_full_occupancy() {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let mut s = Session::new(GpuConfig::small_test());
        let r = s.run(&g, &PageRank::new(2), Schedule::Svm).unwrap();
        assert_eq!(r.occupancy.resident, 4);
        assert_eq!(r.occupancy.configured, 4);
        assert!(r.sink_error.is_none());
    }

    #[test]
    fn trace_out_streams_events_to_jsonl() {
        let g = sparseweaver_graph::generators::uniform(30, 90, 11);
        let path = std::env::temp_dir().join("sw_session_trace_out.jsonl");
        let mut s = Session::new(GpuConfig::small_test());
        s.trace_out = Some(path.clone());
        let r = s.run(&g, &PageRank::new(1), Schedule::Svm).unwrap();
        // The report exists, but its events streamed to disk.
        let report = r.trace.expect("trace collected");
        assert!(report.events.is_empty());
        assert_eq!(report.dropped, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "expected a populated trace file");
        assert!(lines.iter().any(|l| l.contains("kernel_launch")));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn traced_run_collects_report_without_changing_stats() {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let mut s = Session::new(GpuConfig::small_test());
        let plain = s
            .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
            .unwrap();
        s.trace = Some(TraceConfig {
            sample_every: 500,
            ..TraceConfig::default()
        });
        let traced = s
            .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
            .unwrap();
        // Observability must not perturb the cycle model.
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.per_kernel, traced.per_kernel);
        let report = traced.trace.expect("trace collected");
        // One kernel span per launch, spanning the whole run.
        assert_eq!(
            report.kernels.iter().map(|k| k.cycles).sum::<u64>(),
            traced.cycles
        );
        assert_eq!(report.total_cycles, traced.cycles);
        assert!(!report.samples.is_empty());
        assert_eq!(report.totals.instructions, traced.stats.instructions);
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let g = sparseweaver_graph::generators::powerlaw(48, 240, 1.8, 7);
        let algo = PageRank::new(4);
        let mut plain = Session::new(GpuConfig::small_test());
        plain.trace = Some(TraceConfig::default());
        plain.profile = true;
        let golden = plain.run(&g, &algo, Schedule::SparseWeaver).unwrap();

        let path = std::env::temp_dir().join("sw_session_resume.swckpt");
        let mut s = plain.clone();
        s.checkpoint = Some(CheckpointCtl {
            out: Some(path.clone()),
            every: 1,
            stop_after_launches: Some(3),
            ..CheckpointCtl::default()
        });
        match s.run(&g, &algo, Schedule::SparseWeaver) {
            Err(FrameworkError::Interrupted { .. }) => {}
            other => panic!("expected an interrupted run, got {other:?}"),
        }
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.launches, 3);
        // Clear the stop bound: the resumed run goes to completion (still
        // writing checkpoints on the way).
        s.checkpoint.as_mut().unwrap().stop_after_launches = None;
        let resumed = s.resume(&g, &algo, &ck).unwrap();
        assert_eq!(golden.stats, resumed.stats);
        assert_eq!(golden.per_kernel, resumed.per_kernel);
        assert_eq!(golden.cycles, resumed.cycles);
        assert!(golden.output.approx_eq(&resumed.output, 0.0));
        assert_eq!(golden.occupancy, resumed.occupancy);
        let (gt, rt) = (golden.trace.unwrap(), resumed.trace.unwrap());
        assert_eq!(gt.totals, rt.totals);
        assert_eq!(gt.samples, rt.samples);
        assert_eq!(gt.kernels, rt.kernels);
        assert_eq!(golden.profile, resumed.profile);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_refuses_fingerprint_mismatch() {
        let g = sparseweaver_graph::generators::uniform(30, 90, 11);
        let algo = PageRank::new(2);
        let path = std::env::temp_dir().join("sw_session_resume_mismatch.swckpt");
        let mut s = Session::new(GpuConfig::small_test());
        s.checkpoint = Some(CheckpointCtl {
            out: Some(path.clone()),
            every: 1,
            stop_after_launches: Some(2),
            ..CheckpointCtl::default()
        });
        match s.run(&g, &algo, Schedule::Svm) {
            Err(FrameworkError::Interrupted { .. }) => {}
            other => panic!("expected an interrupted run, got {other:?}"),
        }
        let ck = Checkpoint::load(&path).unwrap();
        // A different graph must be rejected up front.
        let other = sparseweaver_graph::generators::uniform(31, 90, 11);
        match s.resume(&other, &algo, &ck) {
            Err(FrameworkError::Checkpoint(CheckpointError::GraphMismatch { .. })) => {}
            r => panic!("expected a graph mismatch, got {r:?}"),
        }
        // So must a different machine configuration.
        let mut s2 = s.clone();
        s2.config_mut().warps_per_core *= 2;
        match s2.resume(&g, &algo, &ck) {
            Err(FrameworkError::Checkpoint(CheckpointError::ConfigMismatch { .. })) => {}
            r => panic!("expected a config mismatch, got {r:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn profiled_run_collects_report_without_changing_stats() {
        let g = sparseweaver_graph::generators::uniform(40, 160, 5);
        let mut s = Session::new(GpuConfig::small_test());
        let plain = s
            .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
            .unwrap();
        assert!(plain.profile.is_none());
        s.profile = true;
        let profiled = s
            .run(&g, &PageRank::new(2), Schedule::SparseWeaver)
            .unwrap();
        // Profiling must not perturb the cycle model either.
        assert_eq!(plain.stats, profiled.stats);
        assert_eq!(plain.per_kernel, profiled.per_kernel);
        assert_eq!(plain.cycles, profiled.cycles);
        let prof = profiled.profile.expect("profile collected");
        // Every issued instruction was counted against a warp slot.
        assert_eq!(
            prof.core_issues.iter().sum::<u64>(),
            profiled.stats.instructions
        );
        // A SparseWeaver schedule exercises the Weaver path.
        assert!(prof.weaver.count > 0, "weaver histogram populated");
        let mem_accesses: u64 = prof.mem.iter().map(|h| h.count).sum();
        assert!(mem_accesses > 0, "memory histograms populated");
    }
}
