//! Analytic models: expected warp iterations (Fig. 2a) and the
//! scheduling-scheme comparison of Table I.

use sparseweaver_graph::Csr;

use crate::schedule::Schedule;

/// Expected number of warp iterations for the edge-gathering process under
/// `schedule` with `tpw`-lane warps (the model behind Fig. 2a).
///
/// - vertex mapping: each warp iterates as long as its highest-degree
///   vertex (lockstep);
/// - edge mapping: edges divide evenly across all threads;
/// - warp mapping: each warp's edges divide evenly across its lanes;
/// - CTA mapping and SparseWeaver: a whole block's edges divide evenly
///   (block-level balancing), modeled with `block` threads per block.
pub fn expected_warp_iterations(view: &Csr, schedule: Schedule, tpw: usize, block: usize) -> u64 {
    let nv = view.num_vertices();
    let ne = view.num_edges() as u64;
    if nv == 0 {
        return 0;
    }
    let degs: Vec<u64> = (0..nv as u32).map(|v| view.degree(v) as u64).collect();
    match schedule {
        Schedule::Svm => degs
            .chunks(tpw)
            .map(|w| w.iter().copied().max().unwrap_or(0))
            .sum(),
        Schedule::Sem => ne.div_ceil(tpw as u64),
        Schedule::Swm => degs
            .chunks(tpw)
            .map(|w| w.iter().sum::<u64>().div_ceil(tpw as u64))
            .sum(),
        Schedule::Stwc | Schedule::Scm | Schedule::SparseWeaver | Schedule::Eghw => degs
            .chunks(block)
            .map(|b| b.iter().sum::<u64>().div_ceil(tpw as u64))
            .sum(),
    }
}

/// One row of Table I: the implementation characteristics of a scheduling
/// scheme. `|V|`, `|E|`, `|B|` appear symbolically as in the paper.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SchemeRow {
    /// Scheme name in paper notation.
    pub name: &'static str,
    /// Sharing granularity.
    pub granularity: &'static str,
    /// Residual imbalance level.
    pub imbalance: &'static str,
    /// Edge memory accesses.
    pub edge_mem_access: &'static str,
    /// Shared-memory footprint.
    pub shared_mem: &'static str,
    /// Global-memory footprint.
    pub global_mem: &'static str,
    /// Registration complexity `(sync, added kernels, atomics, warp shuffles)`.
    pub registration: &'static str,
    /// Distribution complexity `(binary searches, atomics, syncs)`.
    pub distribution: &'static str,
    /// Edge access locality.
    pub locality: &'static str,
}

/// Generates Table I.
pub fn scheme_table() -> Vec<SchemeRow> {
    vec![
        SchemeRow {
            name: "S_vm",
            granularity: "Thread",
            imbalance: "high",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "-",
            global_mem: "-",
            registration: "0, 0, 0, 0",
            distribution: "0, 0, 0",
            locality: "low",
        },
        SchemeRow {
            name: "S_em",
            granularity: "Kernel",
            imbalance: "low",
            edge_mem_access: "2|E|",
            shared_mem: "-",
            global_mem: "-",
            registration: "0, 0, 0, 0",
            distribution: "0, 0, 0",
            locality: "high",
        },
        SchemeRow {
            name: "S_wm",
            granularity: "Warp",
            imbalance: "mid",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "3|B|",
            global_mem: "-",
            registration: "1, 0, 0, 6",
            distribution: "|E|, 0, 0",
            locality: "mid",
        },
        SchemeRow {
            name: "S_cm",
            granularity: "Block",
            imbalance: "low",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "3|B|",
            global_mem: "-",
            registration: "17, 0, 0, 15",
            distribution: "|E|, 0, 0",
            locality: "high",
        },
        SchemeRow {
            name: "S_twc",
            granularity: "T, W, B",
            imbalance: "low",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "3|B|",
            global_mem: "3|V|",
            registration: "1, 0, 3|V|, 6",
            distribution: "|E|, 0, 0",
            locality: "mid",
        },
        SchemeRow {
            name: "S_twce",
            granularity: "T, W, B",
            imbalance: "mid",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "6|B|",
            global_mem: "-",
            registration: "1, 3, 2|V|, 0",
            distribution: "0, a|E|, a|E|",
            locality: "mid",
        },
        SchemeRow {
            name: "S_strict",
            granularity: "Kernel",
            imbalance: "low",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "3|B|",
            global_mem: "3|V|",
            registration: "17, 3, 0, 15",
            distribution: "|E|, 0, 0",
            locality: "high",
        },
        SchemeRow {
            name: "SparseWeaver",
            granularity: "Block",
            imbalance: "low",
            edge_mem_access: "2|V| + |E|",
            shared_mem: "4|B|",
            global_mem: "-",
            registration: "1, 0, 0, 0",
            distribution: "0, 0, 0",
            locality: "high",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_graph::generators;

    #[test]
    fn svm_dominated_by_max_degree() {
        // Vertex 0 has degree 7; everything else degree <= 1; 4-lane warps.
        let edges: Vec<(u32, u32)> = (1..8u32).map(|d| (0, d)).chain([(5, 6)]).collect();
        let g = Csr::from_edges(8, &edges);
        let svm = expected_warp_iterations(&g, Schedule::Svm, 4, 16);
        let swm = expected_warp_iterations(&g, Schedule::Swm, 4, 16);
        assert!(svm >= swm, "svm {svm} >= swm {swm}");
        // Warp 0 iterates 7 times (vertex 0); warp 1 once (vertex 5).
        assert_eq!(svm, 8);
    }

    #[test]
    fn em_is_edge_count_over_width() {
        let g = generators::uniform(100, 400, 1);
        let it = expected_warp_iterations(&g, Schedule::Sem, 32, 1024);
        assert_eq!(it, (g.num_edges() as u64).div_ceil(32));
    }

    #[test]
    fn skewed_graph_orders_svm_gt_swm_gt_block() {
        let g = generators::powerlaw(512, 4096, 2.0, 11);
        let svm = expected_warp_iterations(&g, Schedule::Svm, 32, 512);
        let swm = expected_warp_iterations(&g, Schedule::Swm, 32, 512);
        let blk = expected_warp_iterations(&g, Schedule::SparseWeaver, 32, 512);
        assert!(svm > swm, "svm {svm} > swm {swm}");
        assert!(swm >= blk, "swm {swm} >= block {blk}");
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(expected_warp_iterations(&g, Schedule::Svm, 32, 512), 0);
    }

    #[test]
    fn table_i_shape() {
        let t = scheme_table();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name, "S_vm");
        assert_eq!(t[7].name, "SparseWeaver");
        // SparseWeaver's key property: no binary searches, atomics or
        // distribution syncs, one registration sync.
        assert_eq!(t[7].distribution, "0, 0, 0");
        assert_eq!(t[7].registration, "1, 0, 0, 0");
    }
}
