//! The SparseWeaver compiler (Section IV-B).
//!
//! The frontend combines a *schedule template* with the algorithm's
//! user-defined snippets (filters and the gather computation) and the
//! storage-format interface (`getNeighbor` = two offset loads, `getEdge` =
//! edge/weight loads) into a complete gather kernel — the analog of the
//! paper's "Graph Kernel Generation". The backend concern, thread-mask
//! activation around the distribution loop, is folded into the Weaver
//! template (`tmc` + the hardware mask from `WEAVER_DEC_ID`).

pub mod regalloc;
mod software;
mod vertex;
pub mod virtualize;
mod weaver;

pub use regalloc::RegAlloc;
pub use vertex::build_vertex_kernel;
pub use virtualize::VirtualizedOps;

use std::collections::{HashMap, HashSet};

use sparseweaver_isa::{Asm, CsrKind, Program, Reg, Width};
use sparseweaver_lint::{AnalyzeGeom, LintLevel};
use sparseweaver_sim::{GpuConfig, Phase};

use crate::runtime::args;
use crate::schedule::Schedule;
use crate::FrameworkError;

/// The compilation pipeline's verification and optimization stage.
///
/// Every kernel the runtime launches passes through this hook first —
/// the analog of a mandatory compiler pass. Under [`LintLevel::Deny`]
/// (the default) a kernel with any error-severity finding from the
/// [`sparseweaver_lint`] verifier is rejected with
/// [`FrameworkError::Lint`]; under [`LintLevel::Warn`] findings are
/// printed to stderr but the launch proceeds; [`LintLevel::Off`] skips
/// the pass entirely. Verdicts are cached by kernel name, so iterative
/// algorithms re-launching the same kernel pay the analysis once.
///
/// When register allocation is enabled (the default), [`Compiler::process`]
/// additionally runs the [`regalloc`] pass over each verified kernel and
/// re-lints the rewritten stream before handing it to the simulator, so a
/// miscompile in the allocator is rejected rather than silently executed.
#[derive(Debug)]
pub struct Compiler {
    level: LintLevel,
    regalloc: bool,
    analyze: Option<AnalyzeGeom>,
    checked: HashSet<String>,
    processed: HashMap<String, Program>,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new(LintLevel::default())
    }
}

impl Compiler {
    /// Creates a pipeline enforcing `level`, with register allocation on
    /// and the abstract-interpretation analyzer off.
    pub fn new(level: LintLevel) -> Self {
        Compiler {
            level,
            regalloc: true,
            analyze: None,
            checked: HashSet::new(),
            processed: HashMap::new(),
        }
    }

    /// The enforcement level.
    pub fn level(&self) -> LintLevel {
        self.level
    }

    /// The launch geometry the opt-in SW-L5xx analyzer checks against,
    /// if enabled.
    pub fn analyze_geom(&self) -> Option<AnalyzeGeom> {
        self.analyze
    }

    /// Enables (`Some(geom)`) or disables (`None`) the opt-in
    /// abstract-interpretation gate that runs alongside the structural
    /// lints: under [`LintLevel::Deny`] a kernel with a *proved*
    /// violation (SW-L501) is rejected; warnings and advisories are
    /// printed under [`LintLevel::Warn`]. Clears the verdict cache so
    /// the change applies to kernels already seen.
    pub fn set_analyze(&mut self, geom: Option<AnalyzeGeom>) {
        if self.analyze != geom {
            self.analyze = geom;
            self.checked.clear();
            self.processed.clear();
        }
    }

    /// Whether the register-allocation pass runs in [`Compiler::process`].
    pub fn regalloc(&self) -> bool {
        self.regalloc
    }

    /// Enables or disables the register-allocation pass. Clears the
    /// processed-kernel cache so the change applies to kernels already
    /// seen.
    pub fn set_regalloc(&mut self, enabled: bool) {
        if self.regalloc != enabled {
            self.regalloc = enabled;
            self.processed.clear();
        }
    }

    /// Runs the static verifier over `program` (cached by kernel name),
    /// plus the SW-L5xx abstract-interpretation gate when enabled via
    /// [`Compiler::set_analyze`].
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Lint`] under [`LintLevel::Deny`] when
    /// the program has error-severity findings (structural, or a proved
    /// SW-L501 bounds violation from the analyzer).
    pub fn check(&mut self, program: &Program) -> Result<(), FrameworkError> {
        if self.level == LintLevel::Off || self.checked.contains(program.name()) {
            return Ok(());
        }
        let mut report = sparseweaver_lint::lint(program);
        if let Some(geom) = self.analyze {
            report
                .diagnostics
                .extend(sparseweaver_lint::analyze(program, &geom).diagnostics);
        }
        match self.level {
            LintLevel::Off => {}
            LintLevel::Warn => {
                if !report.diagnostics.is_empty() {
                    eprintln!("{}", report.to_text());
                }
            }
            LintLevel::Deny => {
                if !report.is_clean() {
                    return Err(FrameworkError::Lint {
                        kernel: program.name().to_string(),
                        errors: report.error_count(),
                        details: report.to_text(),
                    });
                }
            }
        }
        self.checked.insert(program.name().to_string());
        Ok(())
    }

    /// Runs the full pipeline over `program`: verification ([`Compiler::check`])
    /// followed by register allocation, returning the kernel the runtime
    /// should launch. Results are cached by kernel name, like verdicts.
    ///
    /// The rewritten stream is re-linted before being accepted: under
    /// [`LintLevel::Deny`] an allocator output with error-severity
    /// findings is rejected, and under any level a rewritten kernel whose
    /// re-lint reports errors falls back to the (already verified)
    /// original rather than executing unproven code.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Lint`] when the input fails
    /// [`Compiler::check`], or when the rewritten stream fails the
    /// re-lint under [`LintLevel::Deny`].
    pub fn process(&mut self, program: &Program) -> Result<Program, FrameworkError> {
        if let Some(done) = self.processed.get(program.name()) {
            return Ok(done.clone());
        }
        self.check(program)?;
        let out = if self.regalloc {
            let result = regalloc::allocate(program);
            if !result.applied {
                program.clone()
            } else {
                let report = sparseweaver_lint::lint(&result.program);
                if report.is_clean() {
                    result.program
                } else if self.level == LintLevel::Deny {
                    return Err(FrameworkError::Lint {
                        kernel: program.name().to_string(),
                        errors: report.error_count(),
                        details: format!("after register allocation:\n{}", report.to_text()),
                    });
                } else {
                    // Warn/Off: the original stream already passed (or
                    // skipped) the gate; never launch a rewrite that
                    // regressed it.
                    program.clone()
                }
            }
        } else {
            program.clone()
        };
        self.processed
            .insert(program.name().to_string(), out.clone());
        Ok(out)
    }
}

/// Registers holding the common kernel arguments, loaded by the template
/// prologue.
#[derive(Debug, Clone, Copy)]
pub struct CommonRegs {
    /// Vertex count.
    pub nv: Reg,
    /// Offsets base.
    pub off: Reg,
    /// Edge-target base.
    pub edg: Reg,
    /// Weight base.
    pub wgt: Reg,
    /// Per-edge base-vertex array base.
    pub srcs: Reg,
    /// Edge count.
    pub ne: Reg,
}

/// Registers describing one edge work item inside the gather body.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRegs {
    /// The base vertex (destination in pull, source in push).
    pub base: Reg,
    /// The opposite endpoint.
    pub other: Reg,
    /// The edge index.
    pub eid: Reg,
    /// The edge weight, when the algorithm uses weights.
    pub weight: Option<Reg>,
    /// Early-exit flag the computation may set (vertex-mapped schedules
    /// break their inner loop on it; Weaver sends `WEAVER_SKIP`).
    pub satisfied: Option<Reg>,
}

/// The user-defined parts of a gather operation (the paper's UDFs).
///
/// Every emit hook receives the prologue registers it created in
/// [`GatherOps::emit_pro`] (pointer arguments hoisted out of the loops).
pub trait GatherOps {
    /// Whether `getEdge` should load the edge weight.
    fn uses_weight(&self) -> bool {
        false
    }

    /// Whether the algorithm stops gathering into a base vertex once
    /// satisfied (BFS-style early exit; drives `WEAVER_SKIP`).
    fn has_early_exit(&self) -> bool {
        false
    }

    /// Loads algorithm arguments into registers, once, before the loops.
    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let _ = a;
        Vec::new()
    }

    /// Emits the registration-time base-vertex filter: write 1 to `out`
    /// if `vid` should be processed. Returns false when there is no
    /// filter (then `out` is unused).
    fn emit_base_filter(&self, a: &mut Asm, pro: &[Reg], vid: Reg, out: Reg) -> bool {
        let _ = (a, pro, vid, out);
        false
    }

    /// Emits the other-endpoint (source in pull) filter: write 1 to `out`
    /// if the edge should be processed. Returns false when there is no
    /// filter.
    fn emit_other_filter(&self, a: &mut Asm, pro: &[Reg], other: Reg, out: Reg) -> bool {
        let _ = (a, pro, other, out);
        false
    }

    /// For early-exit algorithms: write 1 to `out` if `base` no longer
    /// needs edges (checked per edge during distribution; the Weaver
    /// template follows it with `WEAVER_SKIP`).
    fn emit_satisfied(&self, a: &mut Asm, pro: &[Reg], base: Reg, out: Reg) {
        let _ = (pro, base);
        a.li(out, 0);
    }

    /// Emits the per-edge gather-and-sum computation. `exclusive_base` is
    /// true only under vertex mapping, where the thread owns the base
    /// vertex and may update it without atomics.
    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, exclusive_base: bool);

    /// Optional worklist (the paper's `wset` of Fig. 9): when
    /// `Some((ptr_arg, len_arg))`, vertex-mapped templates iterate over
    /// worklist *indices* and fetch `vid = getFrontier(id)` from the
    /// `u32` array at kernel argument `ptr_arg`, whose length is kernel
    /// argument `len_arg`. Edge mapping ignores the worklist (it scans
    /// all edges and relies on [`GatherOps::emit_base_filter`] — exactly
    /// why it loses on frontier algorithms).
    fn worklist_args(&self) -> Option<(u8, u8)> {
        None
    }
}

/// Registers describing the iteration domain: either all vertices or a
/// worklist (`wset`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Domain {
    /// Number of work items (vertex count or worklist length).
    pub bound: Reg,
    /// Worklist base pointer, when iterating a worklist.
    pub wset: Option<Reg>,
}

impl Domain {
    /// Loads the iteration domain for `ops` (worklist or whole graph).
    pub(crate) fn emit(a: &mut Asm, c: &CommonRegs, ops: &dyn GatherOps) -> Domain {
        match ops.worklist_args() {
            Some((ptr_arg, len_arg)) => {
                let wset = a.reg();
                let bound = a.reg();
                a.ldarg(wset, ptr_arg);
                a.ldarg(bound, len_arg);
                Domain {
                    bound,
                    wset: Some(wset),
                }
            }
            None => Domain {
                bound: c.nv,
                wset: None,
            },
        }
    }

    /// Emits `vid <- getFrontier(id)` into a fresh register: a worklist
    /// load, or the identity when iterating all vertices.
    pub(crate) fn emit_get_frontier(&self, a: &mut Asm, id: Reg) -> Reg {
        let vid = a.reg();
        match self.wset {
            Some(wset) => {
                let addr = a.reg();
                a.slli(addr, id, 2);
                a.add(addr, addr, wset);
                a.ldg(vid, addr, 0, Width::B4);
                a.free(addr);
            }
            None => a.mv(vid, id),
        }
        vid
    }
}

/// Where `getEdge` reads the opposite endpoint and weight from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EdgeSource {
    /// Ordinary global loads from the CSR arrays (all GPU-side schemes).
    Global,
    /// The EGHW shared-memory staging buffer: `(staging base, core tid)`.
    Staging(Reg, Reg),
}

/// Emits the prologue shared by every template: loads the common argument
/// registers.
pub(crate) fn emit_prologue(a: &mut Asm) -> CommonRegs {
    a.phase(Phase::Init as u8);
    let c = CommonRegs {
        nv: a.reg(),
        off: a.reg(),
        edg: a.reg(),
        wgt: a.reg(),
        srcs: a.reg(),
        ne: a.reg(),
    };
    a.ldarg(c.nv, args::NUM_VERTICES);
    a.ldarg(c.off, args::OFFSETS);
    a.ldarg(c.edg, args::EDGES);
    a.ldarg(c.wgt, args::WEIGHTS);
    a.ldarg(c.srcs, args::SRCS);
    a.ldarg(c.ne, args::NUM_EDGES);
    c
}

/// Emits `getNeighbor`: loads `off[v]` and `off[v+1]` into fresh
/// `(start, end)` registers (the storage-format interface).
pub(crate) fn emit_get_neighbor(a: &mut Asm, c: &CommonRegs, v: Reg) -> (Reg, Reg) {
    let addr = a.reg();
    let start = a.reg();
    let end = a.reg();
    a.slli(addr, v, 2);
    a.add(addr, addr, c.off);
    a.ldg(start, addr, 0, Width::B4);
    a.ldg(end, addr, 4, Width::B4);
    a.free(addr);
    (start, end)
}

/// Emits `getEdge` + other-filter + compute for one edge work item:
/// the shared tail of every schedule template.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_edge_body(
    a: &mut Asm,
    ops: &dyn GatherOps,
    c: &CommonRegs,
    pro: &[Reg],
    base: Reg,
    eid: Reg,
    exclusive_base: bool,
    satisfied: Option<Reg>,
    source: EdgeSource,
) {
    a.phase(Phase::EdgeInfoAccess as u8);
    let other = a.reg();
    let weight = if ops.uses_weight() {
        Some(a.reg())
    } else {
        None
    };
    match source {
        EdgeSource::Global => {
            let addr = a.reg();
            a.slli(addr, eid, 2);
            a.add(addr, addr, c.edg);
            a.ldg(other, addr, 0, Width::B4);
            if let Some(w) = weight {
                a.slli(addr, eid, 2);
                a.add(addr, addr, c.wgt);
                a.ldg(w, addr, 0, Width::B4);
            }
            a.free(addr);
        }
        EdgeSource::Staging(staging, ctid) => {
            let addr = a.reg();
            a.slli(addr, ctid, 3);
            a.add(addr, addr, staging);
            a.lds(other, addr, 0, Width::B4);
            if let Some(w) = weight {
                a.lds(w, addr, 4, Width::B4);
            }
            a.free(addr);
        }
    }
    let e = EdgeRegs {
        base,
        other,
        eid,
        weight,
        satisfied,
    };
    let of = a.reg();
    let filtered = ops.emit_other_filter(a, pro, other, of);
    if filtered {
        a.if_nonzero(of, |a| {
            a.phase(Phase::GatherSum as u8);
            ops.emit_compute(a, pro, &e, exclusive_base);
            a.phase(Phase::EdgeInfoAccess as u8);
        });
    } else {
        a.phase(Phase::GatherSum as u8);
        ops.emit_compute(a, pro, &e, exclusive_base);
    }
    a.free(of);
    a.free(other);
    if let Some(w) = weight {
        a.free(w);
    }
}

/// Compiles the gather kernel for `(ops, schedule)` on `cfg`.
///
/// This is the frontend compiler's entry point: the returned [`Program`]
/// is the complete kernel of Fig. 9 (for [`Schedule::SparseWeaver`]) or
/// the corresponding software-scheme kernel.
pub fn build_gather_kernel(
    name: &str,
    ops: &dyn GatherOps,
    schedule: Schedule,
    cfg: &GpuConfig,
) -> Program {
    match schedule {
        Schedule::Svm => software::build_svm(name, ops),
        Schedule::Sem => software::build_sem(name, ops),
        Schedule::Swm => software::build_swm(name, ops, cfg),
        Schedule::Scm => software::build_scm(name, ops, cfg),
        Schedule::Stwc => software::build_stwc(name, ops, cfg),
        Schedule::SparseWeaver => weaver::build_weaver(name, ops, cfg),
        Schedule::Eghw => weaver::build_eghw(name, ops, cfg),
    }
}

/// Emits a global thread-ID register and the total thread count.
pub(crate) fn emit_tid_nt(a: &mut Asm) -> (Reg, Reg) {
    let tid = a.reg();
    let nt = a.reg();
    a.csr(tid, CsrKind::GlobalTid);
    a.csr(nt, CsrKind::NumThreads);
    (tid, nt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::AtomOp;

    /// A minimal gather: count[base] += 1 per edge (weighted variant adds
    /// the weight) — enough to exercise every template end to end.
    pub(crate) struct CountOps {
        pub weighted: bool,
    }

    impl GatherOps for CountOps {
        fn uses_weight(&self) -> bool {
            self.weighted
        }

        fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
            let count = a.reg();
            a.ldarg(count, args::ALGO0);
            vec![count]
        }

        fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _exclusive: bool) {
            let addr = a.reg();
            let val = a.reg();
            a.slli(addr, e.base, 3);
            a.add(addr, addr, pro[0]);
            match e.weight {
                Some(w) => a.mv(val, w),
                None => a.li(val, 1),
            }
            let old = a.reg();
            a.atom(AtomOp::Add, old, addr, val);
            a.free(old);
            a.free(addr);
            a.free(val);
        }
    }

    #[test]
    fn all_templates_compile() {
        let cfg = GpuConfig::small_test();
        for s in Schedule::ALL {
            let p = build_gather_kernel("count", &CountOps { weighted: false }, s, &cfg);
            assert!(!p.is_empty(), "{s} produced an empty kernel");
        }
    }

    #[test]
    fn all_templates_lint_clean() {
        let mut no_mask = GpuConfig::small_test();
        no_mask.weaver.auto_mask = false;
        for cfg in [GpuConfig::small_test(), no_mask] {
            for s in Schedule::ALL {
                for weighted in [false, true] {
                    let p = build_gather_kernel("count", &CountOps { weighted }, s, &cfg);
                    let report = sparseweaver_lint::lint(&p);
                    assert!(
                        report.is_clean() && report.warning_count() == 0,
                        "{s} (weighted={weighted}, auto_mask={}):\n{}",
                        cfg.weaver.auto_mask,
                        report.to_text()
                    );
                }
            }
        }
    }

    #[test]
    fn weaver_kernel_contains_weaver_instructions() {
        let cfg = GpuConfig::small_test();
        let p = build_gather_kernel(
            "count",
            &CountOps { weighted: false },
            Schedule::SparseWeaver,
            &cfg,
        );
        assert!(p.weaver_instr_count() >= 3, "reg + dec_id + dec_loc");
    }

    #[test]
    fn software_kernels_have_no_weaver_instructions() {
        let cfg = GpuConfig::small_test();
        for s in [Schedule::Svm, Schedule::Sem, Schedule::Swm, Schedule::Scm] {
            let p = build_gather_kernel("count", &CountOps { weighted: false }, s, &cfg);
            assert_eq!(p.weaver_instr_count(), 0, "{s}");
        }
    }

    #[test]
    fn every_template_counts_degrees() {
        use crate::runtime::Runtime;
        use sparseweaver_graph::Direction;
        use sparseweaver_sim::Gpu;

        // count[base] += 1 per edge => count[v] must equal degree(v) in
        // the view, under every schedule.
        let g = sparseweaver_graph::generators::powerlaw(40, 200, 1.8, 3);
        for s in Schedule::ALL {
            let mut cfg = GpuConfig::small_test();
            if s == Schedule::Eghw {
                cfg.weaver_mode = crate::session::Session::new(cfg)
                    .config_for(Schedule::Eghw)
                    .weaver_mode;
            }
            let gpu = Gpu::new(cfg);
            let mut rt = Runtime::new(gpu, &g, Direction::Push, s).unwrap();
            let count = rt.alloc_u64(g.num_vertices(), 0);
            let k = build_gather_kernel("count", &CountOps { weighted: false }, s, &cfg);
            rt.launch(&k, &[count]).unwrap();
            let got = rt.read_u64_vec(count, g.num_vertices());
            for (v, &c) in got.iter().enumerate() {
                assert_eq!(c, g.degree(v as u32) as u64, "{s}: count[{v}]");
            }
        }
    }

    #[test]
    fn weighted_kernels_load_weights() {
        let cfg = GpuConfig::small_test();
        let unweighted =
            build_gather_kernel("c", &CountOps { weighted: false }, Schedule::Svm, &cfg);
        let weighted = build_gather_kernel("c", &CountOps { weighted: true }, Schedule::Svm, &cfg);
        assert!(weighted.len() > unweighted.len());
    }
}
