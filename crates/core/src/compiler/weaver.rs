//! The SparseWeaver template (Fig. 9) and the EGHW baseline template.

use sparseweaver_isa::{Asm, CsrKind, Program, VoteOp};
use sparseweaver_sim::{GpuConfig, Phase};

use super::{emit_edge_body, emit_get_neighbor, emit_prologue, Domain, EdgeSource, GatherOps};
use crate::runtime::args;

struct UnitTemplate<'a> {
    ops: &'a dyn GatherOps,
    cfg: &'a GpuConfig,
    eghw: bool,
}

/// Emits the shared registration + synchronization + distribution
/// structure of Fig. 9, chunked to the ST capacity.
fn build_unit_kernel(name: &str, t: UnitTemplate<'_>) -> Program {
    let mut a = Asm::new(name.to_string());
    let c = emit_prologue(&mut a);
    let pro = t.ops.emit_pro(&mut a);
    let dom = Domain::emit(&mut a, &c, t.ops);
    let auto_mask = t.cfg.weaver.auto_mask;

    let ctid = a.reg();
    let cid = a.reg();
    let ncores = a.reg();
    a.csr(ctid, CsrKind::CoreTid);
    a.csr(cid, CsrKind::CoreId);
    a.csr(ncores, CsrKind::NumCores);
    let chunk = a.reg();
    a.ldarg(chunk, args::ST_CHUNK);
    // Only EGHW reads edge records out of the shared staging buffer; the
    // plain SparseWeaver kernel never touches it.
    let staging = if t.eghw {
        let s = a.reg();
        a.ldarg(s, args::EGHW_STAGING);
        s
    } else {
        a.zero()
    };

    // Block-level balancing: each core owns a contiguous vertex range
    // (Section III-A: "we aim to design hardware that achieves block-level
    // workload balancing").
    let per = a.reg();
    a.add(per, dom.bound, ncores);
    a.addi(per, per, -1);
    a.divu(per, per, ncores);
    let lo = a.reg();
    let hi = a.reg();
    a.mul(lo, cid, per);
    a.add(hi, lo, per);
    a.alu(sparseweaver_isa::AluOp::MinU, hi, hi, dom.bound);
    a.free(per);
    a.free(ncores);
    a.free(cid);

    // Full-thread-mask constant for the backend's mask restore. Only the
    // hardware-masked variant restores via `tmc`; computing it in the
    // ablation would be a dead write.
    let fm = if auto_mask {
        let fm = a.reg();
        let one = a.reg();
        let tpw = a.reg();
        a.csr(tpw, CsrKind::ThreadsPerWarp);
        a.li(one, 1);
        a.alu(sparseweaver_isa::AluOp::Sll, fm, one, tpw);
        a.addi(fm, fm, -1);
        a.free(one);
        a.free(tpw);
        Some(fm)
    } else {
        None
    };

    let cb = a.reg();
    a.mv(cb, lo);
    a.free(lo);

    let top = a.new_label();
    let done = a.new_label();
    a.bind(top);
    a.bgeu(cb, hi, done); // cb/hi are core-uniform

    // --- Registration stage (Fig. 9 lines 4-9) ---
    a.phase(Phase::Registration as u8);
    let idx = a.reg();
    a.add(idx, cb, ctid);
    let valid = a.reg();
    {
        let in_chunk = a.reg();
        a.sltu(in_chunk, ctid, chunk);
        a.sltu(valid, idx, hi);
        a.and(valid, valid, in_chunk);
        a.free(in_chunk);
    }
    a.if_nonzero(valid, |a| {
        // vid = getFrontier(id) (Fig. 9 line 5).
        let v = dom.emit_get_frontier(a, idx);
        let rf = a.reg();
        let has_filter = t.ops.emit_base_filter(a, &pro, v, rf);
        // Filtered vertices skip topology access and registration
        // entirely — Fig. 9 lines 6-7 `continue`; their ST slot stays
        // invalid, which the FSM scan steps over.
        let register = |a: &mut Asm| {
            if t.eghw {
                // EGHW receives only vids; it reads topology itself.
                a.weaver_reg(v, a.zero(), a.zero());
            } else {
                let (start, end) = emit_get_neighbor(a, &c, v);
                let deg = a.reg();
                a.sub(deg, end, start);
                a.weaver_reg(v, start, deg);
                a.free(deg);
                a.free(start);
                a.free(end);
            }
        };
        if has_filter {
            a.if_nonzero(rf, register);
        } else {
            register(a);
        }
        a.free(rf);
        a.free(v);
    });
    a.free(valid);
    a.free(idx);

    // --- Synchronization between registration and distribution ---
    a.bar();

    // --- Distribution stage (Fig. 9 lines 11-22) ---
    let dtop = a.new_label();
    let ddone = a.new_label();
    let wv = a.reg();
    let we = a.reg();
    let has = a.reg();
    let any = a.reg();
    a.bind(dtop);
    a.phase(Phase::EdgeSchedule as u8);
    a.weaver_dec_id(wv);
    a.snei(has, wv, -1);
    a.vote(VoteOp::Any, any, has);
    a.beq(any, a.zero(), ddone);
    a.weaver_dec_loc(we);

    let source = if t.eghw {
        EdgeSource::Staging(staging, ctid)
    } else {
        EdgeSource::Global
    };
    let body = |a: &mut Asm| {
        if t.ops.has_early_exit() {
            // Dynamic base filter + skip signal (Fig. 9 lines 17-18).
            let sat = a.reg();
            t.ops.emit_satisfied(a, &pro, wv, sat);
            if !t.eghw {
                a.if_nonzero(sat, |a| a.weaver_skip(wv));
            }
            let notsat = a.reg();
            a.seqi(notsat, sat, 0);
            a.if_nonzero(notsat, |a| {
                emit_edge_body(a, t.ops, &c, &pro, wv, we, false, None, source);
            });
            a.free(notsat);
            a.free(sat);
        } else {
            emit_edge_body(a, t.ops, &c, &pro, wv, we, false, None, source);
        }
    };
    if auto_mask {
        // The backend's hardware-controlled thread activation: the mask
        // installed by WEAVER_DEC_ID predicates the body.
        body(&mut a);
    } else {
        a.if_nonzero(has, body);
    }
    a.jmp(dtop);
    a.bind(ddone);
    if let Some(fm) = fm {
        a.tmc(fm); // restore the saved full mask (backend pass)
    }
    a.bar();

    a.add(cb, cb, chunk);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// The SparseWeaver gather kernel of Fig. 9.
pub(crate) fn build_weaver(name: &str, ops: &dyn GatherOps, cfg: &GpuConfig) -> Program {
    build_unit_kernel(
        &format!("{name}_weaver"),
        UnitTemplate {
            ops,
            cfg,
            eghw: false,
        },
    )
}

/// The EGHW gather kernel of Case Study 1: the unit reads topology and
/// edge info itself; the GPU reads staged records from shared memory.
pub(crate) fn build_eghw(name: &str, ops: &dyn GatherOps, cfg: &GpuConfig) -> Program {
    build_unit_kernel(
        &format!("{name}_eghw"),
        UnitTemplate {
            ops,
            cfg,
            eghw: true,
        },
    )
}
