//! Dense vertex-parallel kernels (init and apply stages).
//!
//! The first step of edge access — and the whole apply stage — is "a dense
//! operation on vertices and can be easily parallelized across threads"
//! (Section II-A), so one strided template serves every algorithm's init
//! and apply kernels.

use sparseweaver_isa::{Asm, Program, Reg, VoteOp};
use sparseweaver_sim::Phase;

use super::{emit_prologue, emit_tid_nt, CommonRegs};

/// Builds a vertex-parallel kernel: every thread processes vertices
/// `tid, tid + nthreads, ...`, with `body` emitted under the bounds
/// predicate.
///
/// `pro` loads algorithm arguments once; `body` receives the common
/// registers, the vertex register, and the prologue registers.
///
/// # Examples
///
/// ```
/// use sparseweaver_core::compiler::build_vertex_kernel;
/// use sparseweaver_isa::Width;
/// use sparseweaver_sim::Phase;
///
/// // out[v] = v (identity property).
/// let k = build_vertex_kernel(
///     "iota",
///     Phase::Init,
///     |a| {
///         let out = a.reg();
///         a.ldarg(out, 8);
///         vec![out]
///     },
///     |a, _c, v, pro| {
///         let addr = a.reg();
///         a.slli(addr, v, 3);
///         a.add(addr, addr, pro[0]);
///         a.stg(v, addr, 0, Width::B8);
///         a.free(addr);
///     },
/// );
/// assert!(k.len() > 5);
/// ```
pub fn build_vertex_kernel<F, B>(name: &str, phase: Phase, pro: F, body: B) -> Program
where
    F: FnOnce(&mut Asm) -> Vec<Reg>,
    B: FnOnce(&mut Asm, &CommonRegs, Reg, &[Reg]),
{
    let mut a = Asm::new(name.to_string());
    let c = emit_prologue(&mut a);
    let pro_regs = pro(&mut a);
    a.phase(phase as u8);
    let (tid, nt) = emit_tid_nt(&mut a);
    let v = a.reg();
    a.mv(v, tid);

    let top = a.new_label();
    let done = a.new_label();
    let cond = a.reg();
    let any = a.reg();
    a.bind(top);
    a.sltu(cond, v, c.nv);
    a.vote(VoteOp::Any, any, cond);
    a.beq(any, a.zero(), done);
    a.if_nonzero(cond, |a| {
        body(a, &c, v, &pro_regs);
    });
    a.add(v, v, nt);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}
