//! Liveness-based register allocation over the lint dataflow facts.
//!
//! The schedule templates allocate architectural registers with the
//! assembler's LIFO pool, which is simple but leaks pressure two ways:
//! values freed out of LIFO order strand high register indices, and any
//! write whose value a later edit made unreadable survives as an SW-L103
//! dead write. This pass rebuilds the register assignment from the same
//! dataflow engine the verifier uses ([`DataflowFacts`]):
//!
//! 1. **Dead-write elimination** — pure writes (the SW-L103 class) whose
//!    destination is dead are deleted and branch/split targets remapped,
//!    iterated to a fixpoint.
//! 2. **Def-use webs** — every use is merged with all of its reaching
//!    definitions (union-find); uses reached by the kernel-entry value
//!    join a per-register entry web (the simulator zero-fills the file,
//!    so launch-time values survive renaming).
//! 3. **Live intervals** — each web's interval spans its mentions and,
//!    crucially, every pc where the architectural register is live with
//!    one of the web's definitions reaching it. That extension is what
//!    keeps loop-carried values alive across pcs that never name them.
//!    Webs of the same architectural register with overlapping intervals
//!    are merged (always semantics-preserving: they then behave exactly
//!    like the original register), which also bounds the number of
//!    simultaneously live webs by the number of distinct source
//!    registers.
//! 4. **Linear scan** — webs sorted by interval start take the smallest
//!    free register `>= x1`. Together with step 3's bound this
//!    guarantees the rewritten kernel's high-water never exceeds the
//!    original's.
//!
//! The pass refuses to touch anything it cannot prove safe: programs the
//! CFG builder rejects, registers outside the 64-entry file, and
//! unreachable instructions (left verbatim) all fall back to the
//! identity. The compiler pipeline re-lints the rewritten stream, so
//! even a bug here fails loudly instead of producing silent corruption.

use std::collections::{BTreeMap, HashMap};

use sparseweaver_isa::{Instr, Program, Reg, NUM_REGS, ZERO};
use sparseweaver_lint::facts::{is_pure_write, reg_bit};
use sparseweaver_lint::DataflowFacts;

/// Outcome of running the allocator over one kernel.
#[derive(Debug, Clone)]
pub struct RegAlloc {
    /// The (possibly rewritten) kernel.
    pub program: Program,
    /// Whether the pass transformed the kernel. `false` means the input
    /// is returned verbatim (malformed program or nothing to do).
    pub applied: bool,
    /// Register high-water of the input kernel.
    pub pre_high_water: usize,
    /// Register high-water of the output kernel (`== pre_high_water`
    /// when not applied; never greater).
    pub post_high_water: usize,
    /// Dead pure writes (SW-L103 sites) deleted by the pass.
    pub dead_writes_removed: usize,
}

/// Runs dead-write elimination and linear-scan register reassignment
/// over `program`.
///
/// Falls back to the identity (with `applied: false`) when the program
/// is malformed or mentions registers outside the architectural file —
/// the caller's lint gate owns rejecting those.
pub fn allocate(program: &Program) -> RegAlloc {
    let pre = program.register_high_water();
    let identity = || RegAlloc {
        program: program.clone(),
        applied: false,
        pre_high_water: pre,
        post_high_water: pre,
        dead_writes_removed: 0,
    };
    if pre >= NUM_REGS {
        return identity();
    }
    let Some((program, removed)) = try_allocate(program) else {
        return identity();
    };
    let post = program.register_high_water();
    if post > pre {
        // The interval model should make this impossible; refuse to ship
        // a kernel that needs *more* register-file space than its input.
        return identity();
    }
    RegAlloc {
        program,
        applied: true,
        pre_high_water: pre,
        post_high_water: post,
        dead_writes_removed: removed,
    }
}

fn try_allocate(program: &Program) -> Option<(Program, usize)> {
    let (program, removed) = eliminate_dead_writes(program)?;
    let facts = DataflowFacts::compute(&program)?;
    let program = reassign(&program, &facts)?;
    Some((program, removed))
}

/// Deletes reachable pure writes whose destination is dead, remapping
/// branch/split targets past the removed instructions. Iterates to a
/// fixpoint: deleting one write can kill the writes feeding it.
fn eliminate_dead_writes(program: &Program) -> Option<(Program, usize)> {
    let mut prog = program.clone();
    let mut removed = 0usize;
    loop {
        let facts = DataflowFacts::compute(&prog)?;
        let keep: Vec<bool> = prog
            .instrs()
            .iter()
            .enumerate()
            .map(|(pc, i)| {
                let pc = pc as u32;
                let dead = facts.is_reachable(pc)
                    && is_pure_write(i)
                    && i.dest()
                        .is_some_and(|d| d != ZERO && facts.live_out(pc) & reg_bit(d) == 0);
                !dead
            })
            .collect();
        if keep.iter().all(|&k| k) {
            return Some((prog, removed));
        }
        removed += keep.iter().filter(|&&k| !k).count();
        // kept_before[t] = number of surviving instructions with pc < t;
        // a target of `len` (one past the end, a legal halt) maps to the
        // new length.
        let mut kept_before = vec![0u32; keep.len() + 1];
        for (pc, &k) in keep.iter().enumerate() {
            kept_before[pc + 1] = kept_before[pc] + k as u32;
        }
        let remap = |t: u32| kept_before[t as usize];
        let instrs: Vec<Instr> = prog
            .instrs()
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(i, _)| match *i {
                Instr::Br {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Instr::Br {
                    cond,
                    rs1,
                    rs2,
                    target: remap(target),
                },
                Instr::Jmp { target } => Instr::Jmp {
                    target: remap(target),
                },
                Instr::Split {
                    rs1,
                    else_target,
                    end_target,
                } => Instr::Split {
                    rs1,
                    else_target: remap(else_target),
                    end_target: remap(end_target),
                },
                other => other,
            })
            .collect();
        prog = Program::new(prog.name().to_string(), instrs);
    }
}

/// Plain union-find with path halving.
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Builds def-use webs and live intervals, then linear-scans them onto
/// the smallest free registers and rewrites the stream.
fn reassign(program: &Program, facts: &DataflowFacts) -> Option<Program> {
    let instrs = program.instrs();
    let reachable: Vec<u32> = (0..instrs.len() as u32)
        .filter(|&pc| facts.is_reachable(pc))
        .collect();

    // Web nodes: 0..NUM_REGS are per-register entry pseudo-definitions
    // (the launch-time zero-filled value); one node per definition site
    // follows.
    let mut def_node: BTreeMap<(u32, u8), usize> = BTreeMap::new();
    let mut node_reg: Vec<u8> = (0..NUM_REGS as u8).collect();
    for &pc in &reachable {
        if let Some(d) = instrs[pc as usize].dest() {
            if d != ZERO {
                def_node.insert((pc, d.0), node_reg.len());
                node_reg.push(d.0);
            }
        }
    }
    let mut uf = Uf::new(node_reg.len());

    // Each use merges all of its reaching definitions into one web.
    let mut use_node: BTreeMap<(u32, u8), usize> = BTreeMap::new();
    for &pc in &reachable {
        for src in instrs[pc as usize].sources() {
            if src == ZERO || use_node.contains_key(&(pc, src.0)) {
                continue;
            }
            let (defs, from_entry) = facts.reaching_defs(pc, src);
            let mut rep = if from_entry || defs.is_empty() {
                src.0 as usize // the entry pseudo-def node
            } else {
                def_node[&(defs[0], src.0)]
            };
            for &dpc in &defs {
                let n = def_node[&(dpc, src.0)];
                uf.union(rep, n);
                rep = n;
            }
            use_node.insert((pc, src.0), rep);
        }
    }

    // Interval atoms: every pc a web must cover. Mentions first, then
    // every live pc attributed to the web(s) whose definitions reach it
    // — the extension that keeps loop-carried values covered between
    // their textual mentions.
    let mut atoms: Vec<(usize, u32)> = Vec::new();
    for (&(pc, _), &n) in &def_node {
        atoms.push((n, pc));
    }
    for (&(pc, _), &n) in &use_node {
        atoms.push((n, pc));
    }
    for &pc in &reachable {
        let live = facts.live_in(pc);
        for r in 1..NUM_REGS as u8 {
            if live & reg_bit(Reg(r)) == 0 {
                continue;
            }
            let (defs, from_entry) = facts.reaching_defs(pc, Reg(r));
            if from_entry || defs.is_empty() {
                atoms.push((r as usize, pc));
            }
            for &dpc in &defs {
                atoms.push((def_node[&(dpc, r)], pc));
            }
        }
    }

    // Webs of the same architectural register with overlapping intervals
    // collapse into one (then they behave exactly like the original
    // register); iterate because merging widens intervals.
    let intervals = loop {
        let mut intervals: BTreeMap<usize, (u32, u32)> = BTreeMap::new();
        for &(n, pc) in &atoms {
            let root = uf.find(n);
            let e = intervals.entry(root).or_insert((pc, pc));
            e.0 = e.0.min(pc);
            e.1 = e.1.max(pc);
        }
        let mut by_reg: BTreeMap<u8, Vec<(u32, u32, usize)>> = BTreeMap::new();
        for (&root, &(start, end)) in &intervals {
            by_reg
                .entry(node_reg[root])
                .or_default()
                .push((start, end, root));
        }
        let mut merged = false;
        for webs in by_reg.values_mut() {
            webs.sort_unstable();
            for w in webs.windows(2) {
                if w[1].0 <= w[0].1 {
                    uf.union(w[0].2, w[1].2);
                    merged = true;
                }
            }
        }
        if !merged {
            break intervals;
        }
    };

    // Linear scan: smallest free register wins. Same-register webs are
    // now interval-disjoint, so at any pc the active webs name distinct
    // architectural registers — the scan can never need more registers
    // than the input used, and never runs dry.
    let mut order: Vec<(u32, u32, usize)> = intervals
        .iter()
        .map(|(&root, &(start, end))| (start, end, root))
        .collect();
    order.sort_unstable();
    let mut free = [true; NUM_REGS];
    free[0] = false; // x0 is hardwired
    let mut active: Vec<(u32, u8)> = Vec::new();
    let mut assign: HashMap<usize, u8> = HashMap::new();
    for (start, end, root) in order {
        active.retain(|&(aend, phys)| {
            if aend < start {
                free[phys as usize] = true;
                false
            } else {
                true
            }
        });
        let phys = (1..NUM_REGS).find(|&i| free[i])? as u8;
        free[phys as usize] = false;
        active.push((end, phys));
        assign.insert(root, phys);
    }

    // Resolve the per-site maps up front so the rewrite closures only
    // borrow immutable data.
    let use_phys: HashMap<(u32, u8), Reg> = use_node
        .iter()
        .map(|(&k, &n)| (k, Reg(assign[&uf.find(n)])))
        .collect();
    let def_phys: HashMap<(u32, u8), Reg> = def_node
        .iter()
        .map(|(&k, &n)| (k, Reg(assign[&uf.find(n)])))
        .collect();

    let rewritten: Vec<Instr> = instrs
        .iter()
        .enumerate()
        .map(|(pc, i)| {
            let pc = pc as u32;
            if !facts.is_reachable(pc) {
                return *i; // never executes; leave it verbatim
            }
            i.map_regs(
                |s| if s == ZERO { s } else { use_phys[&(pc, s.0)] },
                |d| if d == ZERO { d } else { def_phys[&(pc, d.0)] },
            )
        })
        .collect();
    Some(Program::new(program.name().to_string(), rewritten))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{build_gather_kernel, tests::CountOps};
    use crate::schedule::Schedule;
    use sparseweaver_isa::Asm;
    use sparseweaver_sim::GpuConfig;

    #[test]
    fn dead_writes_are_removed_and_targets_remapped() {
        let mut a = Asm::new("dce");
        let x = a.reg(); // x1
        let d = a.reg(); // x2
        a.li(x, 1); // 0
        let end = a.new_label();
        a.bltu(ZERO, x, end); // 1: always taken, but pc 2 stays reachable
        a.li(d, 9); // 2: dead pure write
        a.nop(); // 3
        a.bind(end);
        a.tmc(x); // 4
        a.halt(); // 5
        let r = allocate(&a.finish());
        assert!(r.applied);
        assert_eq!(r.dead_writes_removed, 1);
        assert_eq!(r.program.len(), 5);
        let Instr::Br { target, .. } = r.program.instrs()[1] else {
            panic!("expected branch, got {}", r.program.instrs()[1]);
        };
        assert_eq!(target, 3, "target past the removed write shifts down");
    }

    #[test]
    fn scattered_registers_are_compacted() {
        let p = Program::new(
            "scatter",
            vec![
                Instr::LdImm {
                    rd: Reg(40),
                    imm: 1,
                },
                Instr::Tmc { rs1: Reg(40) },
                Instr::Halt,
            ],
        );
        let r = allocate(&p);
        assert!(r.applied);
        assert_eq!(r.pre_high_water, 40);
        assert_eq!(r.post_high_water, 1);
        assert_eq!(r.program.instrs()[0], Instr::LdImm { rd: Reg(1), imm: 1 });
        assert_eq!(r.program.instrs()[1], Instr::Tmc { rs1: Reg(1) });
    }

    #[test]
    fn loop_carried_value_keeps_its_register_across_the_loop() {
        // `a` is defined before the loop and read at its top; `t` is
        // defined *after* that read. A naive min-mention/max-mention
        // interval would let `t` reuse `a`'s register and clobber it for
        // the next iteration — the liveness extension must prevent that.
        let mut a = Asm::new("loop_hazard");
        let va = a.reg(); // x1
        let vi = a.reg(); // x2
        let vs = a.reg(); // x3
        let vt = a.reg(); // x4
        a.li(va, 7); // 0
        a.li(vi, 0); // 1
        let top = a.new_label();
        a.bind(top);
        a.mv(vs, va); // 2: read of `a`, every iteration
        a.li(vt, 3); // 3: fresh value after `a`'s last textual mention
        a.addi(vi, vi, 1); // 4
        a.bltu(vi, vt, top); // 5
        a.tmc(vs); // 6
        a.halt(); // 7
        let r = allocate(&a.finish());
        assert!(r.applied);
        let read_a = r.program.instrs()[2].sources()[0];
        let def_t = r.program.instrs()[3].dest().unwrap();
        assert_ne!(read_a, def_t, "loop-carried `a` must survive `t`'s def");
        assert!(r.post_high_water <= r.pre_high_water);
    }

    #[test]
    fn malformed_programs_fall_back_to_identity() {
        let mut a = Asm::new("lone_join");
        a.emit(Instr::Join);
        a.halt();
        let p = a.finish();
        let r = allocate(&p);
        assert!(!r.applied);
        assert_eq!(r.program, p);
    }

    #[test]
    fn out_of_file_registers_fall_back_to_identity() {
        let p = Program::new("wild", vec![Instr::Tmc { rs1: Reg(64) }, Instr::Halt]);
        let r = allocate(&p);
        assert!(!r.applied);
        assert_eq!(r.program, p);
    }

    #[test]
    fn unreachable_instructions_are_left_verbatim() {
        let mut a = Asm::new("skip");
        let x = a.reg(); // x1
        let end = a.new_label();
        a.li(x, 5); // 0
        a.jmp(end); // 1
        a.tmc(x); // 2: unreachable
        a.bind(end);
        a.tmc(x); // 3
        a.halt(); // 4
        let r = allocate(&a.finish());
        assert!(r.applied);
        assert_eq!(r.program.instrs()[2], Instr::Tmc { rs1: Reg(1) });
    }

    #[test]
    fn all_templates_stay_clean_and_never_grow_pressure() {
        let cfg = GpuConfig::small_test();
        for s in Schedule::ALL {
            for weighted in [false, true] {
                let p = build_gather_kernel("count", &CountOps { weighted }, s, &cfg);
                let r = allocate(&p);
                assert!(r.applied, "{s}: templates are well-formed");
                assert!(
                    r.post_high_water <= r.pre_high_water,
                    "{s}: {} > {}",
                    r.post_high_water,
                    r.pre_high_water
                );
                let report = sparseweaver_lint::lint(&r.program);
                assert!(
                    report.is_clean() && report.warning_count() == 0,
                    "{s} (weighted={weighted}) after regalloc:\n{}",
                    report.to_text()
                );
            }
        }
    }

    #[test]
    fn allocation_is_idempotent_on_pressure() {
        let cfg = GpuConfig::small_test();
        let p = build_gather_kernel(
            "count",
            &CountOps { weighted: true },
            Schedule::SparseWeaver,
            &cfg,
        );
        let first = allocate(&p);
        let second = allocate(&first.program);
        assert_eq!(second.dead_writes_removed, 0);
        assert_eq!(second.post_high_water, first.post_high_water);
    }
}
