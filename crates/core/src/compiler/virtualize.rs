//! Virtual-vertex (Tigr/CR2-style) adaptation of gather operations.
//!
//! Section III-D: SparseWeaver "can accommodate non-consecutive labeling
//! by splitting vertices and registering split vertices as separate
//! entries". [`VirtualizedOps`] wraps any [`GatherOps`] so it runs on a
//! [`sparseweaver_graph::transform::VirtualGraph`]: the schedule
//! distributes work over *virtual* vertex IDs (bounded degree, so even
//! naive vertex mapping balances), and each filter/compute first maps the
//! virtual base back to its real vertex through the `real_of` array.

use sparseweaver_isa::{Asm, Reg, Width};

use super::{EdgeRegs, GatherOps};

/// Wraps a [`GatherOps`] for execution over a split (virtualized) graph.
///
/// The `real_of` mapping array (one `u32` per virtual vertex) must be
/// uploaded by the host and its address passed as kernel argument
/// `map_arg`. The wrapped operation sees only *real* vertex IDs; the one
/// extra load per work item is the classic cost of vertex virtualization.
pub struct VirtualizedOps<'a> {
    inner: &'a dyn GatherOps,
    map_arg: u8,
}

impl<'a> VirtualizedOps<'a> {
    /// Wraps `inner`; `map_arg` is the kernel-argument index of the
    /// uploaded `real_of` array.
    pub fn new(inner: &'a dyn GatherOps, map_arg: u8) -> Self {
        VirtualizedOps { inner, map_arg }
    }

    /// Emits `real <- real_of[virt]` (`pro[0]` holds the map base).
    fn emit_translate(&self, a: &mut Asm, map: Reg, virt: Reg, real: Reg) {
        let addr = a.reg();
        a.slli(addr, virt, 2);
        a.add(addr, addr, map);
        a.ldg(real, addr, 0, Width::B4);
        a.free(addr);
    }
}

impl GatherOps for VirtualizedOps<'_> {
    fn uses_weight(&self) -> bool {
        self.inner.uses_weight()
    }

    fn has_early_exit(&self) -> bool {
        // A skip would only drop the remainder of one virtual slice, not
        // the real vertex's other slices — early exit is disabled under
        // virtualization (correct, if less effective; Tigr makes slices
        // small, so there is little left to skip anyway).
        false
    }

    fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
        let map = a.reg();
        a.ldarg(map, self.map_arg);
        let mut pro = vec![map];
        pro.extend(self.inner.emit_pro(a));
        pro
    }

    fn emit_base_filter(&self, a: &mut Asm, pro: &[Reg], vid: Reg, out: Reg) -> bool {
        // Translate before filtering: the inner filter reasons about real
        // vertices. Each virtual slice is filtered independently.
        let real = a.reg();
        self.emit_translate(a, pro[0], vid, real);
        let has = self.inner.emit_base_filter(a, &pro[1..], real, out);
        a.free(real);
        has
    }

    fn emit_other_filter(&self, a: &mut Asm, pro: &[Reg], other: Reg, out: Reg) -> bool {
        // Edge targets are real vertex IDs already (only sources split).
        self.inner.emit_other_filter(a, &pro[1..], other, out)
    }

    fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _exclusive_base: bool) {
        let real = a.reg();
        self.emit_translate(a, pro[0], e.base, real);
        let translated = EdgeRegs {
            base: real,
            other: e.other,
            eid: e.eid,
            weight: e.weight,
            satisfied: e.satisfied,
        };
        // Virtual slices of one real vertex may run concurrently, so the
        // base is never exclusively owned — force the atomic path.
        self.inner.emit_compute(a, &pro[1..], &translated, false);
        a.free(real);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::build_gather_kernel;
    use crate::runtime::{args, Runtime};
    use crate::schedule::Schedule;
    use sparseweaver_graph::transform::split_vertices;
    use sparseweaver_graph::{generators, Direction};
    use sparseweaver_isa::AtomOp;
    use sparseweaver_sim::{Gpu, GpuConfig};

    /// count[real_base] += 1 per edge.
    struct CountOps;

    impl GatherOps for CountOps {
        fn emit_pro(&self, a: &mut Asm) -> Vec<Reg> {
            let count = a.reg();
            a.ldarg(count, args::ALGO0 + 1);
            vec![count]
        }

        fn emit_compute(&self, a: &mut Asm, pro: &[Reg], e: &EdgeRegs, _x: bool) {
            let addr = a.reg();
            let one = a.reg();
            let old = a.reg();
            a.slli(addr, e.base, 3);
            a.add(addr, addr, pro[0]);
            a.li(one, 1);
            a.atom(AtomOp::Add, old, addr, one);
            a.free(old);
            a.free(one);
            a.free(addr);
        }
    }

    #[test]
    fn virtualized_count_recovers_real_degrees_under_every_schedule() {
        let g = generators::powerlaw(60, 400, 2.0, 6);
        let vg = split_vertices(&g, 4);
        for schedule in Schedule::ALL {
            let session = crate::session::Session::new(GpuConfig::small_test());
            let gpu = Gpu::new(session.config_for(schedule));
            // The kernel runs over the VIRTUAL topology.
            let mut rt = Runtime::new(gpu, &vg.topology, Direction::Push, schedule).unwrap();
            let map = rt.upload_u32(&vg.real_of);
            let count = rt.alloc_u64(g.num_vertices(), 0);
            let ops = VirtualizedOps::new(&CountOps, args::ALGO0);
            let cfg = *rt.gpu().config();
            let k = build_gather_kernel("vcount", &ops, schedule, &cfg);
            rt.launch(&k, &[map, count]).unwrap();
            let got = rt.read_u64_vec(count, g.num_vertices());
            for (v, &c) in got.iter().enumerate() {
                assert_eq!(c, g.degree(v as u32) as u64, "{schedule}: real vertex {v}");
            }
        }
    }

    #[test]
    fn splitting_balances_even_vertex_mapping() {
        // A star graph is the worst case for S_vm; with a degree cap the
        // hub's slices spread across lanes and S_vm speeds up.
        let edges: Vec<(u32, u32)> = (1..400u32).map(|v| (0, v)).collect();
        let g = sparseweaver_graph::Csr::from_edges(400, &edges);
        let run = |topology: &sparseweaver_graph::Csr, map: &[u32]| -> u64 {
            let session = crate::session::Session::new(GpuConfig::small_test());
            let gpu = Gpu::new(session.config_for(Schedule::Svm));
            let mut rt = Runtime::new(gpu, topology, Direction::Push, Schedule::Svm).unwrap();
            let map_dev = rt.upload_u32(map);
            let count = rt.alloc_u64(400, 0);
            let ops = VirtualizedOps::new(&CountOps, args::ALGO0);
            let cfg = *rt.gpu().config();
            let k = build_gather_kernel("vcount", &ops, Schedule::Svm, &cfg);
            rt.launch(&k, &[map_dev, count]).unwrap();
            assert_eq!(rt.read_u64(count), 399);
            rt.total_stats().cycles
        };
        let identity: Vec<u32> = (0..400).collect();
        let baseline = run(&g, &identity);
        let vg = split_vertices(&g, 4);
        let split = run(&vg.topology, &vg.real_of);
        assert!(
            split * 2 < baseline,
            "splitting should at least halve the star's S_vm time: {split} vs {baseline}"
        );
    }
}
