//! The four software scheduling templates: `S_vm`, `S_em`, `S_wm`, `S_cm`.

use sparseweaver_isa::{Asm, CsrKind, Program, Reg, VoteOp, Width};
use sparseweaver_sim::{GpuConfig, Phase};

use super::{
    emit_edge_body, emit_get_neighbor, emit_prologue, emit_tid_nt, Domain, EdgeSource, GatherOps,
};

/// Vertex mapping: one thread per vertex, walking its whole neighbor list.
/// The warp's time is set by its highest-degree vertex — the imbalance of
/// Fig. 1.
pub(crate) fn build_svm(name: &str, ops: &dyn GatherOps) -> Program {
    let mut a = Asm::new(format!("{name}_svm"));
    let c = emit_prologue(&mut a);
    let pro = ops.emit_pro(&mut a);
    let dom = Domain::emit(&mut a, &c, ops);
    let (tid, nt) = emit_tid_nt(&mut a);
    let id = a.reg();
    a.mv(id, tid);

    let top = a.new_label();
    let done = a.new_label();
    let cond = a.reg();
    let any = a.reg();
    a.bind(top);
    a.sltu(cond, id, dom.bound);
    a.vote(VoteOp::Any, any, cond);
    a.beq(any, a.zero(), done);
    a.if_nonzero(cond, |a| {
        a.phase(Phase::Registration as u8);
        let v = dom.emit_get_frontier(a, id);
        let rf = a.reg();
        let has_filter = ops.emit_base_filter(a, &pro, v, rf);
        let body = |a: &mut Asm| {
            let (start, end) = emit_get_neighbor(a, &c, v);
            a.phase(Phase::EdgeSchedule as u8);
            let e = a.reg();
            a.mv(e, start);
            let sat = if ops.has_early_exit() {
                let s = a.reg();
                a.li(s, 0);
                Some(s)
            } else {
                None
            };
            let itop = a.new_label();
            let idone = a.new_label();
            let icond = a.reg();
            let iany = a.reg();
            a.bind(itop);
            a.phase(Phase::EdgeSchedule as u8);
            a.sltu(icond, e, end);
            if let Some(s) = sat {
                // Stop early once this lane's base vertex is satisfied.
                let ns = a.reg();
                a.seqi(ns, s, 0);
                a.and(icond, icond, ns);
                a.free(ns);
            }
            a.vote(VoteOp::Any, iany, icond);
            a.beq(iany, a.zero(), idone);
            a.if_nonzero(icond, |a| {
                emit_edge_body(a, ops, &c, &pro, v, e, true, sat, EdgeSource::Global);
            });
            a.addi(e, e, 1);
            a.jmp(itop);
            a.bind(idone);
            a.free(icond);
            a.free(iany);
            a.free(e);
            if let Some(s) = sat {
                a.free(s);
            }
            a.free(start);
            a.free(end);
        };
        if has_filter {
            a.if_nonzero(rf, body);
        } else {
            body(a);
        }
        a.free(rf);
        a.free(v);
    });
    a.add(id, id, nt);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// Edge mapping: one thread per edge. Balanced, but the base vertex must
/// be read from the per-edge array — the second of the "2|E|" edge memory
/// accesses Table I charges this scheme.
pub(crate) fn build_sem(name: &str, ops: &dyn GatherOps) -> Program {
    let mut a = Asm::new(format!("{name}_sem"));
    let c = emit_prologue(&mut a);
    let pro = ops.emit_pro(&mut a);
    let (tid, nt) = emit_tid_nt(&mut a);
    let e = a.reg();
    a.mv(e, tid);

    let top = a.new_label();
    let done = a.new_label();
    let cond = a.reg();
    let any = a.reg();
    a.bind(top);
    a.sltu(cond, e, c.ne);
    a.vote(VoteOp::Any, any, cond);
    a.beq(any, a.zero(), done);
    a.if_nonzero(cond, |a| {
        a.phase(Phase::EdgeInfoAccess as u8);
        let base = a.reg();
        let addr = a.reg();
        a.slli(addr, e, 2);
        a.add(addr, addr, c.srcs);
        a.ldg(base, addr, 0, Width::B4);
        a.free(addr);
        let rf = a.reg();
        let has_filter = ops.emit_base_filter(a, &pro, base, rf);
        let body = |a: &mut Asm| {
            emit_edge_body(a, ops, &c, &pro, base, e, false, None, EdgeSource::Global);
        };
        if has_filter {
            a.if_nonzero(rf, body);
        } else {
            body(a);
        }
        a.free(rf);
        a.free(base);
    });
    a.add(e, e, nt);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// Unrolled binary search over an inclusive prefix-sum array in shared
/// memory: returns the register holding the smallest `s` with
/// `pref[s] > i`. `n` must be a power of two.
fn emit_binary_search(a: &mut Asm, pref_base: Reg, i: Reg, n: usize) -> Reg {
    assert!(
        n.is_power_of_two(),
        "binary search needs a power-of-two size"
    );
    let lo = a.reg();
    let hi = a.reg();
    a.li(lo, 0);
    a.li(hi, n as i64);
    let t = a.reg();
    let pm = a.reg();
    let c2 = a.reg();
    let diff = a.reg();
    // `lo = mid + 1` steps shrink the span to `mid - lo`, so the interval
    // needs log2(n) + 1 halvings to be pinched to a single index.
    let rounds = n.trailing_zeros() + 1;
    for round in 0..rounds {
        a.add(t, lo, hi);
        a.srli(t, t, 1); // t = mid
        a.slli(pm, t, 3);
        a.add(pm, pm, pref_base);
        a.lds(pm, pm, 0, Width::B8); // pm = pref[mid]
        a.sltu(c2, i, pm);
        a.seqi(c2, c2, 0); // c2 = (pref[mid] <= i)
                           // lo = lo + c2 * (mid + 1 - lo)
        a.addi(diff, t, 1);
        a.sub(diff, diff, lo);
        a.mul(diff, diff, c2);
        a.add(lo, lo, diff);
        // hi = hi - (1 - c2) * (hi - mid); only lo survives the final
        // round, so the last hi update would be a dead write.
        if round + 1 < rounds {
            a.seqi(c2, c2, 0);
            a.sub(diff, hi, t);
            a.mul(diff, diff, c2);
            a.sub(hi, hi, diff);
        }
    }
    a.free(t);
    a.free(pm);
    a.free(c2);
    a.free(diff);
    a.free(hi);
    lo
}

/// Shared code of `S_wm`/`S_cm`: registration of `(deg, start)` into
/// shared arrays at `pref_base`/`start_base` for the chunk vertex
/// `v = cb + slot`, with the base filter folding into degree 0.
#[allow(clippy::too_many_arguments)]
fn emit_register_to_shared(
    a: &mut Asm,
    ops: &dyn GatherOps,
    c: &super::CommonRegs,
    pro: &[Reg],
    dom: &Domain,
    idx: Reg,
    slot: Reg,
    pref_base: Reg,
    start_base: Reg,
    vid_base: Option<Reg>,
) {
    a.phase(Phase::Registration as u8);
    let deg = a.reg();
    let st = a.reg();
    // Only worklist kernels store the registered VID; allocating (and
    // initializing) it unconditionally would be a dead write elsewhere.
    let vid_out = vid_base.map(|_| a.reg());
    let valid = a.reg();
    a.li(deg, 0);
    a.li(st, 0);
    if let Some(vo) = vid_out {
        a.li(vo, 0);
    }
    a.sltu(valid, idx, dom.bound);
    a.if_nonzero(valid, |a| {
        let v = dom.emit_get_frontier(a, idx);
        if let Some(vo) = vid_out {
            a.mv(vo, v);
        }
        let rf = a.reg();
        let has_filter = ops.emit_base_filter(a, pro, v, rf);
        let load = |a: &mut Asm| {
            let (s, e) = emit_get_neighbor(a, c, v);
            a.sub(deg, e, s);
            a.mv(st, s);
            a.free(s);
            a.free(e);
        };
        if has_filter {
            a.if_nonzero(rf, load);
        } else {
            load(a);
        }
        a.free(rf);
        a.free(v);
    });
    a.free(valid);
    let addr = a.reg();
    a.slli(addr, slot, 3);
    let tmp = a.reg();
    a.add(tmp, addr, pref_base);
    a.sts(deg, tmp, 0, Width::B8);
    a.add(tmp, addr, start_base);
    a.sts(st, tmp, 0, Width::B8);
    if let (Some(vb), Some(vo)) = (vid_base, vid_out) {
        a.add(tmp, addr, vb);
        a.sts(vo, tmp, 0, Width::B8);
    }
    a.free(tmp);
    a.free(addr);
    a.free(deg);
    a.free(st);
    if let Some(vo) = vid_out {
        a.free(vo);
    }
}

/// The shared distribution loop of `S_wm`/`S_cm`: edges `i = slot, slot +
/// n, ...` up to `total`, each resolved by binary search over the prefix
/// array.
#[allow(clippy::too_many_arguments)]
fn emit_distribute_from_shared(
    a: &mut Asm,
    ops: &dyn GatherOps,
    c: &super::CommonRegs,
    pro: &[Reg],
    cb: Reg,
    slot: Reg,
    pref_base: Reg,
    start_base: Reg,
    vid_base: Option<Reg>,
    total: Reg,
    n: usize,
) {
    let i = a.reg();
    a.mv(i, slot);
    let dtop = a.new_label();
    let ddone = a.new_label();
    let dcond = a.reg();
    let dany = a.reg();
    a.bind(dtop);
    a.phase(Phase::EdgeSchedule as u8);
    a.sltu(dcond, i, total);
    a.vote(VoteOp::Any, dany, dcond);
    a.beq(dany, a.zero(), ddone);
    a.if_nonzero(dcond, |a| {
        let s = emit_binary_search(a, pref_base, i, n);
        let base = a.reg();
        match vid_base {
            // Worklist: the registered VID lives in the shared vid array
            // (Table I's third shared buffer for S_wm/S_cm).
            Some(vb) => {
                a.slli(base, s, 3);
                a.add(base, base, vb);
                a.lds(base, base, 0, Width::B8);
            }
            None => a.add(base, cb, s),
        }
        // pprev = (s == 0) ? 0 : pref[s-1]
        let nz = a.reg();
        let pprev = a.reg();
        a.snei(nz, s, 0);
        a.addi(pprev, s, -1);
        a.mul(pprev, pprev, nz); // clamps the address to slot 0 when s == 0
        a.slli(pprev, pprev, 3);
        a.add(pprev, pprev, pref_base);
        a.lds(pprev, pprev, 0, Width::B8);
        a.mul(pprev, pprev, nz);
        // eid = start[s] + (i - pprev)
        let eid = a.reg();
        a.slli(eid, s, 3);
        a.add(eid, eid, start_base);
        a.lds(eid, eid, 0, Width::B8);
        let off_in_seg = a.reg();
        a.sub(off_in_seg, i, pprev);
        a.add(eid, eid, off_in_seg);
        a.free(off_in_seg);
        a.free(pprev);
        a.free(nz);
        emit_edge_body(a, ops, c, pro, base, eid, false, None, EdgeSource::Global);
        a.free(eid);
        a.free(base);
        a.free(s);
    });
    a.addi(i, i, n as i64);
    a.jmp(dtop);
    a.bind(ddone);
    a.free(dcond);
    a.free(dany);
    a.free(i);
}

/// Warp mapping (`S_wm` [33]): each warp takes 32 vertices, shares their
/// degrees through a warp-local prefix sum in shared memory, and each
/// lane binary-searches the prefix array per edge.
pub(crate) fn build_swm(name: &str, ops: &dyn GatherOps, cfg: &GpuConfig) -> Program {
    let tpw = cfg.threads_per_warp;
    let mut a = Asm::new(format!("{name}_swm"));
    let c = emit_prologue(&mut a);
    let pro = ops.emit_pro(&mut a);
    let dom = Domain::emit(&mut a, &c, ops);

    let lane = a.reg();
    let wid = a.reg();
    let cid = a.reg();
    let wpc = a.reg();
    let ncores = a.reg();
    a.csr(lane, CsrKind::LaneId);
    a.csr(wid, CsrKind::WarpId);
    a.csr(cid, CsrKind::CoreId);
    a.csr(wpc, CsrKind::WarpsPerCore);
    a.csr(ncores, CsrKind::NumCores);

    // Per-warp shared arrays: prefix at warp_base, starts at +tpw*8,
    // and (for worklist kernels) registered VIDs at +tpw*16.
    let stride = if ops.worklist_args().is_some() {
        24
    } else {
        16
    };
    let pref_base = a.reg();
    let start_base = a.reg();
    a.muli(pref_base, wid, (tpw * stride) as i64);
    a.addi(start_base, pref_base, (tpw * 8) as i64);
    let vid_base = ops.worklist_args().map(|_| {
        let vb = a.reg();
        a.addi(vb, pref_base, (tpw * 16) as i64);
        vb
    });

    // Global warp id and chunk stride.
    let gwid = a.reg();
    a.mul(gwid, cid, wpc);
    a.add(gwid, gwid, wid);
    let step = a.reg();
    a.mul(step, ncores, wpc);
    a.muli(step, step, tpw as i64);
    let cb = a.reg();
    a.muli(cb, gwid, tpw as i64);
    a.free(gwid);
    a.free(wpc);
    a.free(ncores);
    a.free(cid);
    a.free(wid);

    let top = a.new_label();
    let done = a.new_label();
    a.bind(top);
    a.bgeu(cb, dom.bound, done); // cb is warp-uniform

    // Registration: lane slot = lane, work item index = cb + lane.
    let idx = a.reg();
    a.add(idx, cb, lane);
    emit_register_to_shared(
        &mut a, ops, &c, &pro, &dom, idx, lane, pref_base, start_base, vid_base,
    );
    a.free(idx);

    // Warp-synchronous Hillis-Steele inclusive scan (lockstep: no sync).
    a.phase(Phase::EdgeSchedule as u8);
    let paddr = a.reg();
    a.slli(paddr, lane, 3);
    a.add(paddr, paddr, pref_base);
    let nb = a.reg();
    let own = a.reg();
    let cond = a.reg();
    let tmp = a.reg();
    let mut d = 1usize;
    while d < tpw {
        a.sltui(cond, lane, d as i64);
        a.seqi(cond, cond, 0); // cond = lane >= d
        a.li(nb, 0);
        a.if_nonzero(cond, |a| {
            a.addi(tmp, lane, -(d as i64));
            a.slli(tmp, tmp, 3);
            a.add(tmp, tmp, pref_base);
            a.lds(nb, tmp, 0, Width::B8);
        });
        a.lds(own, paddr, 0, Width::B8);
        a.add(own, own, nb);
        a.sts(own, paddr, 0, Width::B8);
        d *= 2;
    }
    a.free(tmp);
    a.free(cond);
    a.free(own);
    a.free(nb);
    a.free(paddr);
    let total = a.reg();
    a.li(total, ((tpw - 1) * 8) as i64);
    a.add(total, total, pref_base);
    a.lds(total, total, 0, Width::B8);

    emit_distribute_from_shared(
        &mut a, ops, &c, &pro, cb, lane, pref_base, start_base, vid_base, total, tpw,
    );
    a.free(total);

    a.add(cb, cb, step);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// CTA/core mapping (`S_cm` [33]): like `S_wm`, but the whole core shares
/// one prefix array, scanned with barrier-separated steps (the "17 syncs"
/// of Table I) and searched over the full block.
pub(crate) fn build_scm(name: &str, ops: &dyn GatherOps, cfg: &GpuConfig) -> Program {
    let n = cfg.threads_per_core();
    assert!(
        n.is_power_of_two(),
        "S_cm requires a power-of-two threads per core"
    );
    let mut a = Asm::new(format!("{name}_scm"));
    let c = emit_prologue(&mut a);
    let pro = ops.emit_pro(&mut a);
    let dom = Domain::emit(&mut a, &c, ops);

    let ctid = a.reg();
    let cid = a.reg();
    let ncores = a.reg();
    a.csr(ctid, CsrKind::CoreTid);
    a.csr(cid, CsrKind::CoreId);
    a.csr(ncores, CsrKind::NumCores);

    // Core-wide shared arrays: prefix at 0, starts at n*8, registered
    // VIDs (worklist kernels) at 2n*8.
    let pref_base = a.reg();
    let start_base = a.reg();
    a.li(pref_base, 0);
    a.li(start_base, (n * 8) as i64);
    let vid_base = ops.worklist_args().map(|_| {
        let vb = a.reg();
        a.li(vb, (2 * n * 8) as i64);
        vb
    });

    let cb = a.reg();
    a.muli(cb, cid, n as i64);
    let step = a.reg();
    a.muli(step, ncores, n as i64);
    a.free(ncores);
    a.free(cid);

    let top = a.new_label();
    let done = a.new_label();
    a.bind(top);
    a.bgeu(cb, dom.bound, done); // cb is core-uniform

    let idx = a.reg();
    a.add(idx, cb, ctid);
    emit_register_to_shared(
        &mut a, ops, &c, &pro, &dom, idx, ctid, pref_base, start_base, vid_base,
    );
    a.free(idx);
    a.bar();

    // Block-level Hillis-Steele scan: read, barrier, write, barrier.
    a.phase(Phase::EdgeSchedule as u8);
    let paddr = a.reg();
    a.slli(paddr, ctid, 3);
    a.add(paddr, paddr, pref_base);
    let nb = a.reg();
    let own = a.reg();
    let cond = a.reg();
    let tmp = a.reg();
    let mut d = 1usize;
    while d < n {
        a.sltui(cond, ctid, d as i64);
        a.seqi(cond, cond, 0);
        a.li(nb, 0);
        a.if_nonzero(cond, |a| {
            a.addi(tmp, ctid, -(d as i64));
            a.slli(tmp, tmp, 3);
            a.add(tmp, tmp, pref_base);
            a.lds(nb, tmp, 0, Width::B8);
        });
        a.lds(own, paddr, 0, Width::B8);
        a.add(own, own, nb);
        a.bar();
        a.sts(own, paddr, 0, Width::B8);
        a.bar();
        d *= 2;
    }
    a.free(tmp);
    a.free(cond);
    a.free(own);
    a.free(nb);
    a.free(paddr);
    let total = a.reg();
    a.li(total, ((n - 1) * 8) as i64);
    a.add(total, total, pref_base);
    a.lds(total, total, 0, Width::B8);

    emit_distribute_from_shared(
        &mut a, ops, &c, &pro, cb, ctid, pref_base, start_base, vid_base, total, n,
    );
    a.free(total);
    a.bar(); // shared arrays are reused next chunk

    a.add(cb, cb, step);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// Thread/warp/CTA dynamic mapping (`S_twc`, Merrill et al. [34]): each
/// chunk classifies vertices by degree — supernodes enter a block-wide
/// queue drained by the whole core, medium vertices enter per-warp queues
/// drained warp-wide, and small vertices are walked directly by their
/// owning thread (whose imbalance is bounded by the medium threshold).
///
/// The queues live in shared memory behind shared-memory atomic counters —
/// the "registration atomics" Table I charges this family of schemes.
pub(crate) fn build_stwc(name: &str, ops: &dyn GatherOps, cfg: &GpuConfig) -> Program {
    use sparseweaver_isa::AtomOp;

    let tpw = cfg.threads_per_warp;
    let n = cfg.threads_per_core();
    let warps = cfg.warps_per_core;
    let med_thresh = 4i64; // degree >= 4 -> warp queue
    let big_thresh = (4 * tpw) as i64; // degree >= 4*tpw -> block queue

    // Shared layout (all entries 8 bytes):
    //   [0]                  block-queue counter
    //   [64 ..)              block queue: vid[n], start[n], deg[n]
    //   [wq_cnt ..)          per-warp counters
    //   [wq ..)              warp queues: per warp, vid[tpw], start[tpw], deg[tpw]
    let bq_vid = 64i64;
    let bq_start = bq_vid + 8 * n as i64;
    let bq_deg = bq_start + 8 * n as i64;
    let wq_cnt = bq_deg + 8 * n as i64;
    let wq = wq_cnt + 8 * warps as i64;
    let wq_stride = 24 * tpw as i64;

    let mut a = Asm::new(format!("{name}_stwc"));
    let c = emit_prologue(&mut a);
    let pro = ops.emit_pro(&mut a);
    let dom = Domain::emit(&mut a, &c, ops);

    let ctid = a.reg();
    let cid = a.reg();
    let lane = a.reg();
    let wid = a.reg();
    let ncores = a.reg();
    a.csr(ctid, CsrKind::CoreTid);
    a.csr(cid, CsrKind::CoreId);
    a.csr(lane, CsrKind::LaneId);
    a.csr(wid, CsrKind::WarpId);
    a.csr(ncores, CsrKind::NumCores);

    let cb = a.reg();
    a.muli(cb, cid, n as i64);
    let step = a.reg();
    a.muli(step, ncores, n as i64);
    a.free(ncores);
    a.free(cid);

    // Per-warp queue base for this warp.
    let mywq = a.reg();
    a.muli(mywq, wid, wq_stride);
    a.addi(mywq, mywq, wq);
    let mywq_cnt = a.reg();
    a.slli(mywq_cnt, wid, 3);
    a.addi(mywq_cnt, mywq_cnt, wq_cnt);

    let top = a.new_label();
    let done = a.new_label();
    a.bind(top);
    a.bgeu(cb, dom.bound, done); // core-uniform

    // (1) Reset the queue counters.
    {
        let z = a.reg();
        let is0 = a.reg();
        a.li(z, 0);
        a.seqi(is0, ctid, 0);
        a.if_nonzero(is0, |a| {
            let bc = a.reg();
            a.li(bc, 0);
            a.sts(z, bc, 0, Width::B8);
            a.free(bc);
        });
        a.seqi(is0, lane, 0);
        a.if_nonzero(is0, |a| a.sts(z, mywq_cnt, 0, Width::B8));
        a.free(is0);
        a.free(z);
    }
    a.bar();

    // (2) Classification (+ direct processing of small vertices).
    a.phase(Phase::Registration as u8);
    let idx = a.reg();
    a.add(idx, cb, ctid);
    let valid = a.reg();
    a.sltu(valid, idx, dom.bound);
    a.if_nonzero(valid, |a| {
        let v = dom.emit_get_frontier(a, idx);
        let rf = a.reg();
        let has_filter = ops.emit_base_filter(a, &pro, v, rf);
        let classify = |a: &mut Asm| {
            let (start, end) = emit_get_neighbor(a, &c, v);
            let deg = a.reg();
            a.sub(deg, end, start);
            let t = a.reg();
            let isbig = a.reg();
            let ismed = a.reg();
            a.sltui(t, deg, big_thresh);
            a.seqi(isbig, t, 0); // deg >= big
            a.sltui(t, deg, med_thresh);
            a.seqi(ismed, t, 0); // deg >= med
            a.sub(ismed, ismed, isbig); // med only
            a.if_nonzero(isbig, |a| {
                // Block queue: slot = atomic add on the shared counter.
                let one = a.reg();
                let slot = a.reg();
                let qaddr = a.reg();
                a.li(one, 1);
                a.li(qaddr, 0);
                a.atom_shared(AtomOp::Add, slot, qaddr, one);
                a.slli(slot, slot, 3);
                a.addi(qaddr, slot, bq_vid);
                a.sts(v, qaddr, 0, Width::B8);
                a.addi(qaddr, slot, bq_start);
                a.sts(start, qaddr, 0, Width::B8);
                a.addi(qaddr, slot, bq_deg);
                a.sts(deg, qaddr, 0, Width::B8);
                a.free(qaddr);
                a.free(slot);
                a.free(one);
            });
            a.if_nonzero(ismed, |a| {
                let one = a.reg();
                let slot = a.reg();
                let qaddr = a.reg();
                a.li(one, 1);
                a.atom_shared(AtomOp::Add, slot, mywq_cnt, one);
                a.slli(slot, slot, 3);
                a.add(slot, slot, mywq);
                a.mv(qaddr, slot);
                a.sts(v, qaddr, 0, Width::B8);
                a.addi(qaddr, slot, 8 * tpw as i64);
                a.sts(start, qaddr, 0, Width::B8);
                a.addi(qaddr, slot, 16 * tpw as i64);
                a.sts(deg, qaddr, 0, Width::B8);
                a.free(qaddr);
                a.free(slot);
                a.free(one);
            });
            // Small vertices: walked directly (bounded imbalance).
            let issmall = a.reg();
            a.or(issmall, isbig, ismed);
            a.seqi(issmall, issmall, 0);
            let nz = a.reg();
            a.snei(nz, deg, 0);
            a.and(issmall, issmall, nz);
            a.free(nz);
            a.if_nonzero(issmall, |a| {
                let e = a.reg();
                a.mv(e, start);
                let itop = a.new_label();
                let idone = a.new_label();
                let icond = a.reg();
                let iany = a.reg();
                a.bind(itop);
                a.sltu(icond, e, end);
                a.vote(VoteOp::Any, iany, icond);
                a.beq(iany, a.zero(), idone);
                a.if_nonzero(icond, |a| {
                    emit_edge_body(a, ops, &c, &pro, v, e, false, None, EdgeSource::Global);
                });
                a.addi(e, e, 1);
                a.jmp(itop);
                a.bind(idone);
                a.free(iany);
                a.free(icond);
                a.free(e);
            });
            a.free(issmall);
            a.free(ismed);
            a.free(isbig);
            a.free(t);
            a.free(deg);
            a.free(start);
            a.free(end);
        };
        if has_filter {
            a.if_nonzero(rf, classify);
        } else {
            classify(a);
        }
        a.free(rf);
        a.free(v);
    });
    a.free(valid);
    a.free(idx);
    a.bar();

    // (3) Block-queue phase: the whole core strides each supernode.
    a.phase(Phase::EdgeSchedule as u8);
    {
        let bqc = a.reg();
        let zero_addr = a.reg();
        a.li(zero_addr, 0);
        a.lds(bqc, zero_addr, 0, Width::B8);
        a.free(zero_addr);
        let qi = a.reg();
        a.li(qi, 0);
        let qtop = a.new_label();
        let qdone = a.new_label();
        a.bind(qtop);
        a.bgeu(qi, bqc, qdone); // core-uniform
        let slot = a.reg();
        let vid = a.reg();
        let start = a.reg();
        let deg = a.reg();
        a.slli(slot, qi, 3);
        a.addi(slot, slot, 0);
        let t = a.reg();
        a.addi(t, slot, bq_vid);
        a.lds(vid, t, 0, Width::B8);
        a.addi(t, slot, bq_start);
        a.lds(start, t, 0, Width::B8);
        a.addi(t, slot, bq_deg);
        a.lds(deg, t, 0, Width::B8);
        a.free(t);
        let e = a.reg();
        let endv = a.reg();
        a.add(e, start, ctid);
        a.add(endv, start, deg);
        let itop = a.new_label();
        let idone = a.new_label();
        let icond = a.reg();
        let iany = a.reg();
        a.bind(itop);
        a.sltu(icond, e, endv);
        a.vote(VoteOp::Any, iany, icond);
        a.beq(iany, a.zero(), idone);
        a.if_nonzero(icond, |a| {
            emit_edge_body(a, ops, &c, &pro, vid, e, false, None, EdgeSource::Global);
        });
        a.addi(e, e, n as i64);
        a.jmp(itop);
        a.bind(idone);
        a.free(iany);
        a.free(icond);
        a.free(endv);
        a.free(e);
        a.free(deg);
        a.free(start);
        a.free(vid);
        a.free(slot);
        a.addi(qi, qi, 1);
        a.jmp(qtop);
        a.bind(qdone);
        a.free(qi);
        a.free(bqc);
    }

    // (4) Warp-queue phase: each warp strides its medium vertices.
    {
        let wqc = a.reg();
        a.lds(wqc, mywq_cnt, 0, Width::B8);
        let qi = a.reg();
        a.li(qi, 0);
        let qtop = a.new_label();
        let qdone = a.new_label();
        a.bind(qtop);
        a.bgeu(qi, wqc, qdone); // warp-uniform
        let slot = a.reg();
        let vid = a.reg();
        let start = a.reg();
        let deg = a.reg();
        a.slli(slot, qi, 3);
        a.add(slot, slot, mywq);
        a.lds(vid, slot, 0, Width::B8);
        let t = a.reg();
        a.addi(t, slot, 8 * tpw as i64);
        a.lds(start, t, 0, Width::B8);
        a.addi(t, slot, 16 * tpw as i64);
        a.lds(deg, t, 0, Width::B8);
        a.free(t);
        let e = a.reg();
        let endv = a.reg();
        a.add(e, start, lane);
        a.add(endv, start, deg);
        let itop = a.new_label();
        let idone = a.new_label();
        let icond = a.reg();
        let iany = a.reg();
        a.bind(itop);
        a.sltu(icond, e, endv);
        a.vote(VoteOp::Any, iany, icond);
        a.beq(iany, a.zero(), idone);
        a.if_nonzero(icond, |a| {
            emit_edge_body(a, ops, &c, &pro, vid, e, false, None, EdgeSource::Global);
        });
        a.addi(e, e, tpw as i64);
        a.jmp(itop);
        a.bind(idone);
        a.free(iany);
        a.free(icond);
        a.free(endv);
        a.free(e);
        a.free(deg);
        a.free(start);
        a.free(vid);
        a.free(slot);
        a.addi(qi, qi, 1);
        a.jmp(qtop);
        a.bind(qdone);
        a.free(qi);
        a.free(wqc);
    }
    a.bar(); // all queue entries consumed before the next chunk's reset

    a.add(cb, cb, step);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}
