//! The auto-tuner baseline of Case Study 3 (Table V).
//!
//! Auto-tuners for GPU graph processing search the space of software
//! schedules per (graph, algorithm) pair, paying a large one-off tuning
//! cost. SparseWeaver's point is that the hardware makes the search
//! unnecessary: a single SparseWeaver run "has better performance compared
//! to S_vm, even without requiring the tuning time that the Autotuner
//! demands".

use sparseweaver_graph::Csr;

use crate::algorithms::Algorithm;
use crate::schedule::Schedule;
use crate::session::Session;
use crate::FrameworkError;

/// The outcome of an exhaustive software-schedule search.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    /// Cycles per candidate schedule, in [`AutotuneResult::CANDIDATES`]
    /// order.
    pub candidate_cycles: Vec<(Schedule, u64)>,
    /// Total cycles spent searching (the tuning cost).
    pub tuning_cycles: u64,
    /// The best software schedule found.
    pub best: Schedule,
    /// Cycles of the best schedule.
    pub best_cycles: u64,
    /// Cycles of the `S_vm` baseline.
    pub svm_cycles: u64,
    /// Cycles of a single (untuned) SparseWeaver run.
    pub sparseweaver_cycles: u64,
}

impl AutotuneResult {
    /// The software schedules an auto-tuner searches over.
    pub const CANDIDATES: [Schedule; 4] =
        [Schedule::Svm, Schedule::Sem, Schedule::Swm, Schedule::Scm];

    /// Best-tuned speedup over `S_vm`.
    pub fn tuned_speedup(&self) -> f64 {
        self.svm_cycles as f64 / self.best_cycles.max(1) as f64
    }

    /// SparseWeaver's speedup over `S_vm` — no tuning required.
    pub fn sparseweaver_speedup(&self) -> f64 {
        self.svm_cycles as f64 / self.sparseweaver_cycles.max(1) as f64
    }
}

/// Exhaustively evaluates every software schedule (the tuning pass), then
/// runs SparseWeaver once for comparison.
///
/// # Errors
///
/// Propagates run errors.
pub fn autotune(
    session: &mut Session,
    graph: &Csr,
    algorithm: &dyn Algorithm,
) -> Result<AutotuneResult, FrameworkError> {
    let mut candidate_cycles = Vec::new();
    let mut tuning_cycles = 0u64;
    for s in AutotuneResult::CANDIDATES {
        let r = session.run(graph, algorithm, s)?;
        tuning_cycles += r.cycles;
        candidate_cycles.push((s, r.cycles));
    }
    let (&(best, best_cycles), _) = candidate_cycles
        .iter()
        .map(|c| (c, c.1))
        .min_by_key(|&(_, cy)| cy)
        .expect("non-empty candidates");
    let svm_cycles = candidate_cycles
        .iter()
        .find(|(s, _)| *s == Schedule::Svm)
        .expect("svm is a candidate")
        .1;
    let sw = session.run(graph, algorithm, Schedule::SparseWeaver)?;
    Ok(AutotuneResult {
        candidate_cycles,
        tuning_cycles,
        best,
        best_cycles,
        svm_cycles,
        sparseweaver_cycles: sw.cycles,
    })
}

/// Converts simulated cycles to milliseconds at the given core clock
/// (the paper reports Vortex numbers in ms).
pub fn cycles_to_ms(cycles: u64, clock_mhz: f64) -> f64 {
    cycles as f64 / (clock_mhz * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::PageRank;
    use sparseweaver_sim::GpuConfig;

    #[test]
    fn tuning_cost_exceeds_any_single_run() {
        let g = sparseweaver_graph::generators::powerlaw(64, 512, 1.8, 2);
        let mut s = Session::new(GpuConfig::small_test());
        let r = autotune(&mut s, &g, &PageRank::new(2)).unwrap();
        assert!(r.tuning_cycles > r.best_cycles);
        assert!(r.tuning_cycles > r.sparseweaver_cycles);
        assert!(r.best_cycles <= r.svm_cycles);
        assert_eq!(r.candidate_cycles.len(), 4);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        // 500k cycles at 500 MHz = 1 ms.
        assert!((cycles_to_ms(500_000, 500.0) - 1.0).abs() < 1e-12);
    }
}
