//! The SparseWeaver graph-processing framework (Section IV).
//!
//! This crate is the user-facing layer of the reproduction. Like the
//! paper's framework, it takes a graph algorithm expressed as user-defined
//! functions (init / gather / apply / filter), a graph in a storage format
//! with a `getNeighbor`/`getEdge` interface, and a gather direction — and
//! compiles GPU kernels for a chosen *scheduling scheme*:
//!
//! - [`Schedule::Svm`] — vertex mapping (the naive baseline);
//! - [`Schedule::Sem`] — edge mapping (balanced, but 2|E| edge reads);
//! - [`Schedule::Swm`] — warp mapping with shared-memory prefix sums and
//!   per-edge binary search;
//! - [`Schedule::Scm`] — CTA/core mapping, block-level balancing;
//! - [`Schedule::SparseWeaver`] — the paper's hardware/software co-design
//!   (Fig. 9 kernels driving the Weaver unit);
//! - [`Schedule::Eghw`] — the edge-generating-hardware baseline of Case
//!   Study 1.
//!
//! The [`compiler`] module is the analog of the paper's PoCL/LLVM
//! extensions: a frontend that stitches schedule templates together with
//! algorithm snippets, and a backend concern (thread-mask activation)
//! folded into the Weaver template. The [`runtime`] module is the host
//! runtime: device memory layout, kernel launches, convergence loops. The
//! [`algorithms`] module ships PageRank, BFS, SSSP, Connected Components
//! and the GCN operators used in the evaluation, each with a host-side
//! reference implementation that every schedule is checked against.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod analytic;
pub mod autotune;
pub mod campaign;
pub mod checkpoint;
pub mod compiler;
pub mod output;
pub mod profile;
pub mod replay;
pub mod runtime;
pub mod schedule;
pub mod session;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use output::AlgoOutput;
pub use runtime::Runtime;
pub use schedule::Schedule;
pub use session::{RunReport, Session};

/// Framework-level errors.
#[derive(Debug)]
pub enum FrameworkError {
    /// The simulator rejected a kernel (a compiler bug) or hit a limit.
    Sim(sparseweaver_sim::SimError),
    /// The static verifier rejected a kernel before launch (see the
    /// `sparseweaver-lint` crate and `docs/lint-rules.md`).
    Lint {
        /// Name of the rejected kernel.
        kernel: String,
        /// Number of error-severity findings.
        errors: usize,
        /// The rendered diagnostics.
        details: String,
    },
    /// Host-side I/O failed (e.g. creating a `--trace-out` file).
    Io {
        /// What was being done, plus the underlying error.
        what: String,
    },
    /// The graph does not fit the device model.
    GraphTooLarge {
        /// What overflowed.
        what: String,
    },
    /// An algorithm failed to converge within its iteration bound.
    NoConvergence {
        /// Algorithm name.
        algorithm: String,
        /// Iterations attempted.
        iterations: u64,
    },
    /// Writing, reading, or restoring a checkpoint failed (see
    /// [`checkpoint::CheckpointError`]).
    Checkpoint(checkpoint::CheckpointError),
    /// The run was stopped early by a signal, the wall-clock watchdog, or
    /// a `--stop-after-launches` bound. State up to the stop point was
    /// persisted (a final checkpoint or campaign-journal entry) so the
    /// run can be resumed.
    Interrupted {
        /// What stopped the run and where its state was saved.
        what: String,
    },
}

impl std::fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameworkError::Sim(e) => write!(f, "simulation error: {e}"),
            FrameworkError::Lint {
                kernel,
                errors,
                details,
            } => write!(
                f,
                "kernel `{kernel}` rejected by the static verifier \
                 ({errors} error(s)):\n{details}"
            ),
            FrameworkError::Io { what } => write!(f, "I/O error: {what}"),
            FrameworkError::GraphTooLarge { what } => {
                write!(f, "graph too large for the device model: {what}")
            }
            FrameworkError::NoConvergence {
                algorithm,
                iterations,
            } => write!(f, "{algorithm} did not converge in {iterations} iterations"),
            FrameworkError::Checkpoint(e) => write!(f, "{e}"),
            FrameworkError::Interrupted { what } => write!(f, "run interrupted: {what}"),
        }
    }
}

impl std::error::Error for FrameworkError {}

impl From<sparseweaver_sim::SimError> for FrameworkError {
    fn from(e: sparseweaver_sim::SimError) -> Self {
        FrameworkError::Sim(e)
    }
}

impl From<checkpoint::CheckpointError> for FrameworkError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        FrameworkError::Checkpoint(e)
    }
}

/// Convenient imports for framework users.
pub mod prelude {
    pub use crate::algorithms::{Bfs, ConnectedComponents, PageRank, Spmv, Sssp};
    pub use crate::output::AlgoOutput;
    pub use crate::schedule::Schedule;
    pub use crate::session::{RunReport, Session};
    pub use crate::FrameworkError;
    pub use sparseweaver_graph::Direction;
    pub use sparseweaver_lint::LintLevel;
    pub use sparseweaver_sim::GpuConfig;
}
