//! The scheduling schemes compared in the evaluation.

use std::fmt;

/// A workload-to-thread mapping scheme (Table I, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Schedule {
    /// Vertex mapping (`S_vm`): each thread owns a vertex and walks its
    /// whole neighbor list — the naive scheme whose warp time is set by
    /// the highest-degree vertex in the warp (Fig. 1).
    Svm,
    /// Edge mapping (`S_em`): each thread owns an edge. Balanced, but
    /// reads both endpoints per edge (2|E| edge memory accesses).
    Sem,
    /// Warp mapping (`S_wm`, Meng et al. \[33\]): a warp shares its 32 vertices' edges
    /// via a shared-memory degree prefix sum and per-edge binary search.
    Swm,
    /// CTA/core mapping (`S_cm`, Meng et al. \[33\]): like `S_wm` but balanced across
    /// the whole thread block, with block-wide scans and barriers.
    Scm,
    /// Thread/warp/CTA dynamic mapping (`S_twc`, Merrill et al. \[34\]):
    /// vertices are bucketed by degree — supernodes go to a block-wide
    /// queue, medium vertices to per-warp queues (shared-memory atomics),
    /// and small vertices are processed directly by their owning thread.
    Stwc,
    /// The SparseWeaver hardware/software co-design: registration +
    /// `WEAVER_DEC_*` distribution (Fig. 9).
    SparseWeaver,
    /// The edge-generating-hardware baseline of Case Study 1.
    Eghw,
}

impl Schedule {
    /// The four software schemes plus SparseWeaver, as in Fig. 10.
    pub const FIG10: [Schedule; 5] = [
        Schedule::Svm,
        Schedule::Sem,
        Schedule::Swm,
        Schedule::Scm,
        Schedule::SparseWeaver,
    ];

    /// All schemes.
    pub const ALL: [Schedule; 7] = [
        Schedule::Svm,
        Schedule::Sem,
        Schedule::Swm,
        Schedule::Scm,
        Schedule::Stwc,
        Schedule::SparseWeaver,
        Schedule::Eghw,
    ];

    /// Whether the schedule needs the Weaver/EGHW functional unit.
    pub fn uses_unit(self) -> bool {
        matches!(self, Schedule::SparseWeaver | Schedule::Eghw)
    }

    /// A stable numeric id for on-disk formats (the `swckpt-v1`
    /// checkpoint codec). Never renumber these: old checkpoints must
    /// keep decoding to the same scheme.
    pub fn stable_id(self) -> u8 {
        match self {
            Schedule::Svm => 0,
            Schedule::Sem => 1,
            Schedule::Swm => 2,
            Schedule::Scm => 3,
            Schedule::Stwc => 4,
            Schedule::SparseWeaver => 5,
            Schedule::Eghw => 6,
        }
    }

    /// Maps a [`Schedule::stable_id`] back to the scheme; `None` for
    /// unknown ids (a corrupt or future-format checkpoint).
    pub fn from_stable_id(id: u8) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|s| s.stable_id() == id)
    }

    /// The paper's notation for the scheme.
    pub fn paper_name(self) -> &'static str {
        match self {
            Schedule::Svm => "S_vm",
            Schedule::Sem => "S_em",
            Schedule::Swm => "S_wm",
            Schedule::Scm => "S_cm",
            Schedule::Stwc => "S_twc",
            Schedule::SparseWeaver => "SparseWeaver",
            Schedule::Eghw => "EGHW",
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(Schedule::Svm.to_string(), "S_vm");
        assert_eq!(Schedule::SparseWeaver.to_string(), "SparseWeaver");
    }

    #[test]
    fn unit_usage() {
        assert!(Schedule::SparseWeaver.uses_unit());
        assert!(Schedule::Eghw.uses_unit());
        assert!(!Schedule::Swm.uses_unit());
    }

    #[test]
    fn fig10_has_five_schemes() {
        assert_eq!(Schedule::FIG10.len(), 5);
        assert!(!Schedule::FIG10.contains(&Schedule::Eghw));
    }
}
