//! Crash-safe simulation checkpoints: the `swckpt-v1` binary format.
//!
//! A [`Checkpoint`] captures the complete mid-run state of a simulation at
//! a kernel-launch boundary — every warp context (PC, active mask,
//! divergence stack, registers, scoreboard), the cache arrays and port
//! clocks, the Weaver/EGHW unit state, device and scratchpad memory
//! contents, the fault injector's RNG cursor, the tracer and profiler
//! accumulators, and the host-side runtime state (allocator cursor,
//! accumulated statistics, and the ordered log of host/device
//! interactions needed to fast-replay the algorithm driver).
//!
//! `swsim resume <path>` restores a checkpoint and continues the run; the
//! resumed run is bit-identical to an uninterrupted one (same stats, same
//! `metrics.json`, same trace bytes). See `docs/robustness.md`.
//!
//! # Wire format
//!
//! Hand-rolled little-endian binary, mirroring the `swmtrace-v1` codec in
//! `sparseweaver-mem` (the vendored `serde` is a no-op marker stub, so
//! nothing here derives its serialization from it):
//!
//! ```text
//! magic   b"swckpt-v1"          9 bytes
//! version u32                   currently 1
//! payload field-ordered codec   see [`Checkpoint::encode`]
//! ```
//!
//! Integers are fixed-width little-endian. `Vec<T>` is a `u64` length
//! followed by the items; `Option<T>` is a presence byte (0/1) followed
//! by the payload; strings are length-prefixed UTF-8. Fixed-size arrays
//! carry no length prefix. The decoder verifies that the payload is
//! consumed exactly; corrupt or truncated inputs yield a typed
//! [`CheckpointError`], never a panic.
//!
//! The payload embeds the FNV-1a fingerprints of the effective GPU
//! configuration and the input graph (the same fingerprints `swprof`
//! stamps into `metrics.json`); [`Checkpoint::verify`] refuses to restore
//! into a mismatched machine or graph.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use sparseweaver_fault::{FaultCounts, FaultInjectorState};
use sparseweaver_mem::{CacheState, CacheStats, HierarchyState, LevelStats, LineState, PortState};
use sparseweaver_sim::core::CoreStats;
use sparseweaver_sim::warp::SimtEntry;
use sparseweaver_sim::{CoreState, GpuState, KernelStats, Occupancy, StallBreakdown, WarpSnapshot};
use sparseweaver_trace::{
    CounterSnapshot, EventData, KernelSpan, LatencyHistogram, MemLevel, MetricSample, Phase,
    ProfileReport, SinkState, StallCause, TableOp, TraceEvent, TracerState, WeaverState,
};
use sparseweaver_weaver::eghw::{EghwLayout, EghwState};
use sparseweaver_weaver::{CedState, FsmSnapshot, StEntry, WeaverUnitState};

use crate::schedule::Schedule;

/// File magic, leading every checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 9] = b"swckpt-v1";

/// Current format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One host-side interaction recorded for deterministic resume.
///
/// The algorithm drivers are host loops: they launch kernels and read
/// device memory (convergence flags, frontier counts) to decide control
/// flow. A resumed run re-executes the driver from its start in *replay*
/// mode — reads pop from this log, writes are suppressed (device memory
/// already holds the checkpointed contents), and launches return their
/// logged statistics without simulating — until the log drains at the
/// checkpoint boundary and the runtime switches back to live execution.
// The size skew between the variants is fine: the host log holds one
// `LaunchDone` per kernel launch and the stats payload is what resume
// replays — boxing it would only add indirection to the hot replay path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum HostEvent {
    /// A host read of device memory, as raw little-endian bits.
    Read(u64),
    /// A completed kernel launch and the statistics it returned.
    LaunchDone(KernelStats),
}

/// A complete simulator state snapshot at a kernel-launch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// FNV-1a fingerprint of the effective `GpuConfig` (its `Debug`
    /// rendering), as stamped into `metrics.json`.
    pub config_fp: u64,
    /// FNV-1a fingerprint of the input graph's CSR arrays.
    pub graph_fp: u64,
    /// The original `swsim run` argument vector (after the subcommand),
    /// embedded so `swsim resume` can rebuild the graph, algorithm and
    /// session without re-stating flags.
    pub argv: Vec<String>,
    /// The schedule the checkpointed machine is executing.
    pub schedule: Schedule,
    /// When the session fell back to `S_wm` after Weaver retry
    /// exhaustion: the original schedule and the kernel that timed out.
    pub fell_back_from: Option<(Schedule, String)>,
    /// Kernel launches completed so far (the checkpoint cadence counter).
    pub launches: u64,
    /// The runtime's bump-allocator cursor.
    pub next_alloc: u64,
    /// Launch retries performed after Weaver timeouts.
    pub weaver_retries: u64,
    /// Accumulated whole-run statistics.
    pub total: KernelStats,
    /// Accumulated per-kernel statistics, in first-launch order.
    pub per_kernel: Vec<(String, KernelStats)>,
    /// The ordered host-interaction log up to this checkpoint.
    pub host_log: Vec<HostEvent>,
    /// The complete GPU machine state.
    pub gpu: GpuState,
    /// Tracer accumulators and sink position, when tracing is on.
    pub tracer: Option<TracerState>,
    /// Profiler report, when profiling is on.
    pub profile: Option<ProfileReport>,
    /// Fault-injector RNG cursor and counters, when injection is on.
    pub fault: Option<FaultInjectorState>,
}

/// Why a checkpoint could not be written, read, or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// An I/O operation failed.
    Io {
        /// What failed and the OS error.
        what: String,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file's format version is not [`CHECKPOINT_VERSION`].
    BadVersion {
        /// The version the file declared.
        found: u32,
    },
    /// The payload ended before a field was fully read.
    Truncated {
        /// Byte offset (within the payload) at which decoding stopped.
        offset: usize,
    },
    /// The payload is structurally invalid (bad tag, bad UTF-8, trailing
    /// bytes, out-of-range id).
    Corrupt {
        /// What was wrong.
        what: String,
    },
    /// The checkpoint was taken under a different GPU configuration.
    ConfigMismatch {
        /// Fingerprint of the configuration being restored into.
        expected: u64,
        /// Fingerprint embedded in the checkpoint.
        found: u64,
    },
    /// The checkpoint was taken against a different graph.
    GraphMismatch {
        /// Fingerprint of the graph being restored into.
        expected: u64,
        /// Fingerprint embedded in the checkpoint.
        found: u64,
    },
    /// The decoded machine state does not fit the rebuilt machine
    /// (wrong core count, warp width, table capacity, ...).
    Restore {
        /// The layered restore error (`"core 3: warp 1: ..."`).
        what: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { what } => write!(f, "checkpoint I/O error: {what}"),
            CheckpointError::BadMagic => {
                write!(f, "not a SparseWeaver checkpoint (bad magic; expected `swckpt-v1`)")
            }
            CheckpointError::BadVersion { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Truncated { offset } => {
                write!(f, "checkpoint truncated at payload offset {offset}")
            }
            CheckpointError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different GPU configuration \
                 (fingerprint {found:#018x}, this run is {expected:#018x}); \
                 resume with the original flags"
            ),
            CheckpointError::GraphMismatch { expected, found } => write!(
                f,
                "checkpoint was taken against a different graph \
                 (fingerprint {found:#018x}, this run is {expected:#018x}); \
                 resume with the original graph"
            ),
            CheckpointError::Restore { what } => {
                write!(f, "checkpoint does not fit the rebuilt machine: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Writes `bytes` to `path` atomically: the data lands in a same-directory
/// temporary file, is flushed to disk, and is then renamed over the
/// destination. A reader (or a crash) never observes a half-written file.
///
/// All artifact writers in the workspace (`metrics.json`, `profile.json`,
/// checkpoints, campaign summaries, ...) share this helper; `-` stdout
/// streaming is handled by callers and never routed here.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best effort: do not leave the temporary behind on failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The sibling temporary path used by [`write_atomic`] for `path`.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

impl Checkpoint {
    /// Serializes the checkpoint to the `swckpt-v1` wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.raw(CHECKPOINT_MAGIC);
        e.u32(CHECKPOINT_VERSION);
        e.u64(self.config_fp);
        e.u64(self.graph_fp);
        e.u64(self.argv.len() as u64);
        for a in &self.argv {
            e.str(a);
        }
        e.u8(self.schedule.stable_id());
        match &self.fell_back_from {
            None => e.u8(0),
            Some((s, kernel)) => {
                e.u8(1);
                e.u8(s.stable_id());
                e.str(kernel);
            }
        }
        e.u64(self.launches);
        e.u64(self.next_alloc);
        e.u64(self.weaver_retries);
        enc_kernel_stats(&mut e, &self.total);
        e.u64(self.per_kernel.len() as u64);
        for (name, stats) in &self.per_kernel {
            e.str(name);
            enc_kernel_stats(&mut e, stats);
        }
        e.u64(self.host_log.len() as u64);
        for ev in &self.host_log {
            match ev {
                HostEvent::Read(bits) => {
                    e.u8(0);
                    e.u64(*bits);
                }
                HostEvent::LaunchDone(stats) => {
                    e.u8(1);
                    enc_kernel_stats(&mut e, stats);
                }
            }
        }
        enc_gpu_state(&mut e, &self.gpu);
        e.opt(self.tracer.as_ref(), enc_tracer_state);
        e.opt(self.profile.as_ref(), enc_profile_report);
        e.opt(self.fault.as_ref(), |e, s: &FaultInjectorState| {
            e.u64(s.rng);
            enc_fault_counts(e, &s.counts);
            e.bool(s.weaver_faulty);
        });
        e.buf
    }

    /// Decodes a checkpoint from `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() {
            return Err(CheckpointError::BadMagic);
        }
        if &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut d = Dec::new(&bytes[CHECKPOINT_MAGIC.len()..]);
        let version = d.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let config_fp = d.u64()?;
        let graph_fp = d.u64()?;
        let argv_len = d.seq_len(1)?;
        let mut argv = Vec::with_capacity(argv_len);
        for _ in 0..argv_len {
            argv.push(d.str()?);
        }
        let schedule = dec_schedule(&mut d)?;
        let fell_back_from = match d.u8()? {
            0 => None,
            1 => {
                let s = dec_schedule(&mut d)?;
                let kernel = d.str()?;
                Some((s, kernel))
            }
            t => return Err(corrupt(format!("bad fallback presence byte {t}"))),
        };
        let launches = d.u64()?;
        let next_alloc = d.u64()?;
        let weaver_retries = d.u64()?;
        let total = dec_kernel_stats(&mut d)?;
        let pk_len = d.seq_len(1)?;
        let mut per_kernel = Vec::with_capacity(pk_len);
        for _ in 0..pk_len {
            let name = d.str()?;
            per_kernel.push((name, dec_kernel_stats(&mut d)?));
        }
        let log_len = d.seq_len(1)?;
        let mut host_log = Vec::with_capacity(log_len);
        for _ in 0..log_len {
            host_log.push(match d.u8()? {
                0 => HostEvent::Read(d.u64()?),
                1 => HostEvent::LaunchDone(dec_kernel_stats(&mut d)?),
                t => return Err(corrupt(format!("bad host-event tag {t}"))),
            });
        }
        let gpu = dec_gpu_state(&mut d)?;
        let tracer = d.opt(dec_tracer_state)?;
        let profile = d.opt(dec_profile_report)?;
        let fault = d.opt(|d| {
            Ok(FaultInjectorState {
                rng: d.u64()?,
                counts: dec_fault_counts(d)?,
                weaver_faulty: d.bool()?,
            })
        })?;
        d.finish()?;
        Ok(Checkpoint {
            config_fp,
            graph_fp,
            argv,
            schedule,
            fell_back_from,
            launches,
            next_alloc,
            weaver_retries,
            total,
            per_kernel,
            host_log,
            gpu,
            tracer,
            profile,
            fault,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename),
    /// so an interrupted write never clobbers a previous good checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.encode()).map_err(|e| CheckpointError::Io {
            what: format!("writing checkpoint {}: {e}", path.display()),
        })
    }

    /// Reads and decodes a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::Io {
            what: format!("reading checkpoint {}: {e}", path.display()),
        })?;
        Checkpoint::decode(&bytes)
    }

    /// Refuses the checkpoint unless it was taken under exactly this GPU
    /// configuration and graph (by FNV-1a fingerprint).
    pub fn verify(&self, config_fp: u64, graph_fp: u64) -> Result<(), CheckpointError> {
        if self.config_fp != config_fp {
            return Err(CheckpointError::ConfigMismatch {
                expected: config_fp,
                found: self.config_fp,
            });
        }
        if self.graph_fp != graph_fp {
            return Err(CheckpointError::GraphMismatch {
                expected: graph_fp,
                found: self.graph_fp,
            });
        }
        Ok(())
    }
}

fn corrupt(what: String) -> CheckpointError {
    CheckpointError::Corrupt { what }
}

// ---------------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.u64(*x);
        }
    }
    fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Enc, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }
}

#[derive(Debug)]
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!(
                "bad bool byte {b} at offset {}",
                self.pos - 1
            ))),
        }
    }
    /// Reads a sequence length and sanity-checks it against the remaining
    /// payload (each item occupies at least `min_item_bytes`), so a
    /// corrupt length cannot drive a huge allocation.
    fn seq_len(&mut self, min_item_bytes: usize) -> Result<usize, CheckpointError> {
        let at = self.pos;
        let len = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        let need = len.checked_mul(min_item_bytes.max(1) as u64);
        if need.is_none() || need.unwrap() > remaining {
            return Err(corrupt(format!(
                "implausible sequence length {len} at offset {at}"
            )));
        }
        Ok(len as usize)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.seq_len(1)?;
        Ok(self.take(len)?.to_vec())
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let at = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| corrupt(format!("invalid UTF-8 string at offset {at}")))
    }
    fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.seq_len(8)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }
    fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Dec<'a>) -> Result<T, CheckpointError>,
    ) -> Result<Option<T>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(corrupt(format!(
                "bad presence byte {b} at offset {}",
                self.pos - 1
            ))),
        }
    }
    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn dec_schedule(d: &mut Dec<'_>) -> Result<Schedule, CheckpointError> {
    let id = d.u8()?;
    Schedule::from_stable_id(id).ok_or_else(|| corrupt(format!("unknown schedule id {id}")))
}

// ---------------------------------------------------------------------------
// Statistics codecs
// ---------------------------------------------------------------------------

fn enc_phase_cycles(e: &mut Enc, p: &[u64; Phase::COUNT]) {
    for x in p {
        e.u64(*x);
    }
}

fn dec_phase_cycles(d: &mut Dec<'_>) -> Result<[u64; Phase::COUNT], CheckpointError> {
    let mut p = [0u64; Phase::COUNT];
    for x in &mut p {
        *x = d.u64()?;
    }
    Ok(p)
}

fn enc_stalls(e: &mut Enc, s: &StallBreakdown) {
    e.u64(s.memory);
    e.u64(s.shared);
    e.u64(s.exec_dep);
    e.u64(s.l1_queue);
    e.u64(s.barrier);
    e.u64(s.weaver);
}

fn dec_stalls(d: &mut Dec<'_>) -> Result<StallBreakdown, CheckpointError> {
    Ok(StallBreakdown {
        memory: d.u64()?,
        shared: d.u64()?,
        exec_dep: d.u64()?,
        l1_queue: d.u64()?,
        barrier: d.u64()?,
        weaver: d.u64()?,
    })
}

fn enc_cache_stats(e: &mut Enc, s: &CacheStats) {
    e.u64(s.accesses);
    e.u64(s.hits);
    e.u64(s.misses);
    e.u64(s.writebacks);
}

fn dec_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats, CheckpointError> {
    Ok(CacheStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        writebacks: d.u64()?,
    })
}

fn enc_level_stats(e: &mut Enc, s: &LevelStats) {
    enc_cache_stats(e, &s.l1);
    enc_cache_stats(e, &s.l2);
    e.opt(s.l3.as_ref(), enc_cache_stats);
    e.u64(s.dram_accesses);
}

fn dec_level_stats(d: &mut Dec<'_>) -> Result<LevelStats, CheckpointError> {
    Ok(LevelStats {
        l1: dec_cache_stats(d)?,
        l2: dec_cache_stats(d)?,
        l3: d.opt(dec_cache_stats)?,
        dram_accesses: d.u64()?,
    })
}

fn enc_kernel_stats(e: &mut Enc, s: &KernelStats) {
    e.u64(s.cycles);
    e.u64(s.instructions);
    e.u64(s.thread_instructions);
    enc_stalls(e, &s.stalls);
    enc_phase_cycles(e, &s.phase_cycles);
    enc_level_stats(e, &s.mem);
    e.u64(s.weaver_counters.0);
    e.u64(s.weaver_counters.1);
    e.u64(s.weaver_counters.2);
    e.u64(s.warp_cycles);
    e.u64(s.launches);
}

fn dec_kernel_stats(d: &mut Dec<'_>) -> Result<KernelStats, CheckpointError> {
    Ok(KernelStats {
        cycles: d.u64()?,
        instructions: d.u64()?,
        thread_instructions: d.u64()?,
        stalls: dec_stalls(d)?,
        phase_cycles: dec_phase_cycles(d)?,
        mem: dec_level_stats(d)?,
        weaver_counters: (d.u64()?, d.u64()?, d.u64()?),
        warp_cycles: d.u64()?,
        launches: d.u64()?,
    })
}

fn enc_counter_snapshot(e: &mut Enc, s: &CounterSnapshot) {
    e.u64(s.instructions);
    e.u64(s.thread_instructions);
    e.u64(s.stall_memory);
    e.u64(s.stall_shared);
    e.u64(s.stall_exec_dep);
    e.u64(s.stall_l1_queue);
    e.u64(s.stall_barrier);
    e.u64(s.stall_weaver);
    enc_phase_cycles(e, &s.phase_cycles);
    e.u64(s.l1_accesses);
    e.u64(s.l1_hits);
    e.u64(s.l2_accesses);
    e.u64(s.l2_hits);
    e.u64(s.l3_accesses);
    e.u64(s.l3_hits);
    e.u64(s.dram_accesses);
    e.u64(s.shared_reads);
    e.u64(s.shared_writes);
    e.u64(s.mem_reads);
    e.u64(s.mem_writes);
    e.u64(s.weaver_st_fetches);
    e.u64(s.weaver_dec_requests);
    e.u64(s.weaver_registrations);
    e.u64(s.faults_injected);
    e.u64(s.weaver_drops);
    e.u64(s.weaver_retries);
    e.u64(s.weaver_fallbacks);
    e.u64(s.kernel_high_water);
    e.u64(s.occupancy_cap);
    e.u64(s.warps_resident);
    e.u64(s.warps_configured);
}

fn dec_counter_snapshot(d: &mut Dec<'_>) -> Result<CounterSnapshot, CheckpointError> {
    Ok(CounterSnapshot {
        instructions: d.u64()?,
        thread_instructions: d.u64()?,
        stall_memory: d.u64()?,
        stall_shared: d.u64()?,
        stall_exec_dep: d.u64()?,
        stall_l1_queue: d.u64()?,
        stall_barrier: d.u64()?,
        stall_weaver: d.u64()?,
        phase_cycles: dec_phase_cycles(d)?,
        l1_accesses: d.u64()?,
        l1_hits: d.u64()?,
        l2_accesses: d.u64()?,
        l2_hits: d.u64()?,
        l3_accesses: d.u64()?,
        l3_hits: d.u64()?,
        dram_accesses: d.u64()?,
        shared_reads: d.u64()?,
        shared_writes: d.u64()?,
        mem_reads: d.u64()?,
        mem_writes: d.u64()?,
        weaver_st_fetches: d.u64()?,
        weaver_dec_requests: d.u64()?,
        weaver_registrations: d.u64()?,
        faults_injected: d.u64()?,
        weaver_drops: d.u64()?,
        weaver_retries: d.u64()?,
        weaver_fallbacks: d.u64()?,
        kernel_high_water: d.u64()?,
        occupancy_cap: d.u64()?,
        warps_resident: d.u64()?,
        warps_configured: d.u64()?,
    })
}

fn enc_fault_counts(e: &mut Enc, c: &FaultCounts) {
    e.u64(c.reg_flips);
    e.u64(c.mem_flips);
    e.u64(c.fetch_flips);
    e.u64(c.weaver_drops);
    e.u64(c.weaver_delays);
}

fn dec_fault_counts(d: &mut Dec<'_>) -> Result<FaultCounts, CheckpointError> {
    Ok(FaultCounts {
        reg_flips: d.u64()?,
        mem_flips: d.u64()?,
        fetch_flips: d.u64()?,
        weaver_drops: d.u64()?,
        weaver_delays: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Trace codecs
// ---------------------------------------------------------------------------

fn enc_event_data(e: &mut Enc, data: &EventData) {
    match data {
        EventData::KernelLaunch { name } => {
            e.u8(0);
            e.str(name);
        }
        EventData::KernelEnd { name, cycles } => {
            e.u8(1);
            e.str(name);
            e.u64(*cycles);
        }
        EventData::PhaseBegin { warp, phase } => {
            e.u8(2);
            e.u32(*warp);
            e.u8(*phase as u8);
        }
        EventData::WarpIssue { warp, pc, active } => {
            e.u8(3);
            e.u32(*warp);
            e.u32(*pc);
            e.u32(*active);
        }
        EventData::WarpStall {
            cause,
            phase,
            cycles,
        } => {
            e.u8(4);
            e.u8(cause.cause_id());
            e.u8(*phase as u8);
            e.u64(*cycles);
        }
        EventData::Divergence {
            warp,
            pc,
            taken,
            not_taken,
        } => {
            e.u8(5);
            e.u32(*warp);
            e.u32(*pc);
            e.u32(*taken);
            e.u32(*not_taken);
        }
        EventData::CacheAccess {
            level,
            write,
            queue_delay,
        } => {
            e.u8(6);
            e.u8(level.level_id());
            e.bool(*write);
            e.u64(*queue_delay);
        }
        EventData::DramTransaction { write } => {
            e.u8(7);
            e.bool(*write);
        }
        EventData::WeaverTransition { from, to } => {
            e.u8(8);
            e.u8(*from as u8);
            e.u8(*to as u8);
        }
        EventData::WeaverTable { op, count } => {
            e.u8(9);
            e.u8(op.op_id());
            e.u32(*count);
        }
        EventData::WeaverRetry { kernel, attempt } => {
            e.u8(10);
            e.str(kernel);
            e.u32(*attempt);
        }
        EventData::WeaverFallback { kernel, schedule } => {
            e.u8(11);
            e.str(kernel);
            e.str(schedule);
        }
    }
}

fn dec_phase(d: &mut Dec<'_>) -> Result<Phase, CheckpointError> {
    let id = d.u8()?;
    Phase::ALL
        .get(id as usize)
        .copied()
        .ok_or_else(|| corrupt(format!("unknown phase id {id}")))
}

fn dec_event_data(d: &mut Dec<'_>) -> Result<EventData, CheckpointError> {
    Ok(match d.u8()? {
        0 => EventData::KernelLaunch { name: d.str()? },
        1 => EventData::KernelEnd {
            name: d.str()?,
            cycles: d.u64()?,
        },
        2 => EventData::PhaseBegin {
            warp: d.u32()?,
            phase: dec_phase(d)?,
        },
        3 => EventData::WarpIssue {
            warp: d.u32()?,
            pc: d.u32()?,
            active: d.u32()?,
        },
        4 => {
            let cause_id = d.u8()?;
            let cause = StallCause::from_id(cause_id)
                .ok_or_else(|| corrupt(format!("unknown stall cause id {cause_id}")))?;
            EventData::WarpStall {
                cause,
                phase: dec_phase(d)?,
                cycles: d.u64()?,
            }
        }
        5 => EventData::Divergence {
            warp: d.u32()?,
            pc: d.u32()?,
            taken: d.u32()?,
            not_taken: d.u32()?,
        },
        6 => {
            let level_id = d.u8()?;
            let level = MemLevel::from_id(level_id)
                .ok_or_else(|| corrupt(format!("unknown memory level id {level_id}")))?;
            EventData::CacheAccess {
                level,
                write: d.bool()?,
                queue_delay: d.u64()?,
            }
        }
        7 => EventData::DramTransaction { write: d.bool()? },
        8 => {
            let from = dec_weaver_state(d)?;
            let to = dec_weaver_state(d)?;
            EventData::WeaverTransition { from, to }
        }
        9 => {
            let op_id = d.u8()?;
            let op = TableOp::from_id(op_id)
                .ok_or_else(|| corrupt(format!("unknown table op id {op_id}")))?;
            EventData::WeaverTable {
                op,
                count: d.u32()?,
            }
        }
        10 => EventData::WeaverRetry {
            kernel: d.str()?,
            attempt: d.u32()?,
        },
        11 => EventData::WeaverFallback {
            kernel: d.str()?,
            schedule: d.str()?,
        },
        t => return Err(corrupt(format!("unknown trace-event tag {t}"))),
    })
}

fn dec_weaver_state(d: &mut Dec<'_>) -> Result<WeaverState, CheckpointError> {
    let id = d.u8()?;
    WeaverState::try_from_id(id).ok_or_else(|| corrupt(format!("unknown weaver state id {id}")))
}

fn enc_trace_event(e: &mut Enc, ev: &TraceEvent) {
    e.u64(ev.cycle);
    e.u32(ev.core);
    enc_event_data(e, &ev.data);
}

fn dec_trace_event(d: &mut Dec<'_>) -> Result<TraceEvent, CheckpointError> {
    Ok(TraceEvent {
        cycle: d.u64()?,
        core: d.u32()?,
        data: dec_event_data(d)?,
    })
}

fn enc_sink_state(e: &mut Enc, s: &SinkState) {
    match s {
        SinkState::Ring { events, dropped } => {
            e.u8(0);
            e.u64(events.len() as u64);
            for ev in events {
                enc_trace_event(e, ev);
            }
            e.u64(*dropped);
        }
        SinkState::File { written, bytes } => {
            e.u8(1);
            e.u64(*written);
            e.u64(*bytes);
        }
    }
}

fn dec_sink_state(d: &mut Dec<'_>) -> Result<SinkState, CheckpointError> {
    Ok(match d.u8()? {
        0 => {
            let len = d.seq_len(13)?;
            let mut events = Vec::with_capacity(len);
            for _ in 0..len {
                events.push(dec_trace_event(d)?);
            }
            SinkState::Ring {
                events,
                dropped: d.u64()?,
            }
        }
        1 => SinkState::File {
            written: d.u64()?,
            bytes: d.u64()?,
        },
        t => return Err(corrupt(format!("unknown sink-state tag {t}"))),
    })
}

fn enc_tracer_state(e: &mut Enc, s: &TracerState) {
    e.u64(s.base);
    enc_counter_snapshot(e, &s.committed);
    e.u64(s.samples.len() as u64);
    for sample in &s.samples {
        e.u64(sample.cycle);
        enc_counter_snapshot(e, &sample.counters);
    }
    e.u64(s.kernels.len() as u64);
    for span in &s.kernels {
        e.str(&span.name);
        e.u64(span.start);
        e.u64(span.cycles);
    }
    enc_sink_state(e, &s.sink);
}

fn dec_tracer_state(d: &mut Dec<'_>) -> Result<TracerState, CheckpointError> {
    let base = d.u64()?;
    let committed = dec_counter_snapshot(d)?;
    let sample_len = d.seq_len(8)?;
    let mut samples = Vec::with_capacity(sample_len);
    for _ in 0..sample_len {
        samples.push(MetricSample {
            cycle: d.u64()?,
            counters: dec_counter_snapshot(d)?,
        });
    }
    let span_len = d.seq_len(8)?;
    let mut kernels = Vec::with_capacity(span_len);
    for _ in 0..span_len {
        kernels.push(KernelSpan {
            name: d.str()?,
            start: d.u64()?,
            cycles: d.u64()?,
        });
    }
    Ok(TracerState {
        base,
        committed,
        samples,
        kernels,
        sink: dec_sink_state(d)?,
    })
}

fn enc_histogram(e: &mut Enc, h: &LatencyHistogram) {
    for b in &h.buckets {
        e.u64(*b);
    }
    e.u64(h.count);
    e.u64(h.sum);
    e.u64(h.min);
    e.u64(h.max);
}

fn dec_histogram(d: &mut Dec<'_>) -> Result<LatencyHistogram, CheckpointError> {
    let mut h = LatencyHistogram::default();
    for b in &mut h.buckets {
        *b = d.u64()?;
    }
    h.count = d.u64()?;
    h.sum = d.u64()?;
    h.min = d.u64()?;
    h.max = d.u64()?;
    Ok(h)
}

fn enc_profile_report(e: &mut Enc, r: &ProfileReport) {
    for h in &r.mem {
        enc_histogram(e, h);
    }
    enc_histogram(e, &r.weaver);
    enc_histogram(e, &r.gather_iteration);
    e.u64s(&r.core_issues);
    e.u64(r.warp_issues.len() as u64);
    for w in &r.warp_issues {
        e.u64s(w);
    }
}

fn dec_profile_report(d: &mut Dec<'_>) -> Result<ProfileReport, CheckpointError> {
    let mut r = ProfileReport::default();
    for h in &mut r.mem {
        *h = dec_histogram(d)?;
    }
    r.weaver = dec_histogram(d)?;
    r.gather_iteration = dec_histogram(d)?;
    r.core_issues = d.u64s()?;
    let len = d.seq_len(8)?;
    r.warp_issues = Vec::with_capacity(len);
    for _ in 0..len {
        r.warp_issues.push(d.u64s()?);
    }
    Ok(r)
}

// ---------------------------------------------------------------------------
// Machine-state codecs
// ---------------------------------------------------------------------------

fn enc_gpu_state(e: &mut Enc, g: &GpuState) {
    e.u64(g.cores.len() as u64);
    for c in &g.cores {
        enc_core_state(e, c);
    }
    enc_hierarchy_state(e, &g.hierarchy);
    e.bytes(&g.mem_data);
    e.u64(g.mem_traffic.0);
    e.u64(g.mem_traffic.1);
    e.u64(g.occupancy.kernel_high_water as u64);
    e.u64(g.occupancy.cap as u64);
    e.u64(g.occupancy.resident as u64);
    e.u64(g.occupancy.configured as u64);
}

fn dec_gpu_state(d: &mut Dec<'_>) -> Result<GpuState, CheckpointError> {
    let core_len = d.seq_len(8)?;
    let mut cores = Vec::with_capacity(core_len);
    for _ in 0..core_len {
        cores.push(dec_core_state(d)?);
    }
    Ok(GpuState {
        cores,
        hierarchy: dec_hierarchy_state(d)?,
        mem_data: d.bytes()?,
        mem_traffic: (d.u64()?, d.u64()?),
        occupancy: Occupancy {
            kernel_high_water: d.u64()? as usize,
            cap: d.u64()? as usize,
            resident: d.u64()? as usize,
            configured: d.u64()? as usize,
        },
    })
}

fn enc_core_state(e: &mut Enc, c: &CoreState) {
    e.u64(c.warps.len() as u64);
    for w in &c.warps {
        enc_warp_snapshot(e, w);
    }
    e.bytes(&c.shared_data);
    e.u64(c.shared_traffic.0);
    e.u64(c.shared_traffic.1);
    enc_weaver_unit_state(e, &c.weaver);
    enc_eghw_state(e, &c.eghw);
    e.u64(c.eghw_dt.len() as u64);
    for row in &c.eghw_dt {
        enc_i64s(e, row);
    }
    e.u64(c.next_warp);
    e.u64(c.resident);
    e.u64(c.active_warps);
    enc_core_stats(e, &c.stats);
}

fn dec_core_state(d: &mut Dec<'_>) -> Result<CoreState, CheckpointError> {
    let warp_len = d.seq_len(8)?;
    let mut warps = Vec::with_capacity(warp_len);
    for _ in 0..warp_len {
        warps.push(dec_warp_snapshot(d)?);
    }
    let shared_data = d.bytes()?;
    let shared_traffic = (d.u64()?, d.u64()?);
    let weaver = dec_weaver_unit_state(d)?;
    let eghw = dec_eghw_state(d)?;
    let dt_len = d.seq_len(8)?;
    let mut eghw_dt = Vec::with_capacity(dt_len);
    for _ in 0..dt_len {
        eghw_dt.push(dec_i64s(d)?);
    }
    Ok(CoreState {
        warps,
        shared_data,
        shared_traffic,
        weaver,
        eghw,
        eghw_dt,
        next_warp: d.u64()?,
        resident: d.u64()?,
        active_warps: d.u64()?,
        stats: dec_core_stats(d)?,
    })
}

fn enc_core_stats(e: &mut Enc, s: &CoreStats) {
    e.u64(s.instructions);
    e.u64(s.thread_instructions);
    enc_stalls(e, &s.stalls);
    enc_phase_cycles(e, &s.phase_cycles);
    e.u64(s.finish_cycle);
}

fn dec_core_stats(d: &mut Dec<'_>) -> Result<CoreStats, CheckpointError> {
    Ok(CoreStats {
        instructions: d.u64()?,
        thread_instructions: d.u64()?,
        stalls: dec_stalls(d)?,
        phase_cycles: dec_phase_cycles(d)?,
        finish_cycle: d.u64()?,
    })
}

fn enc_warp_snapshot(e: &mut Enc, w: &WarpSnapshot) {
    e.u32(w.pc);
    e.u64(w.active);
    e.u8(w.state_id);
    e.u64(w.simt.len() as u64);
    for s in &w.simt {
        e.u64(s.saved_mask);
        e.u64(s.else_mask);
        e.u32(s.else_pc);
        e.u32(s.end_pc);
        e.bool(s.in_else);
    }
    e.u8(w.phase_id);
    e.u64s(&w.regs);
    e.u64s(&w.ready);
    e.bytes(&w.pend);
}

fn dec_warp_snapshot(d: &mut Dec<'_>) -> Result<WarpSnapshot, CheckpointError> {
    let pc = d.u32()?;
    let active = d.u64()?;
    let state_id = d.u8()?;
    let simt_len = d.seq_len(25)?;
    let mut simt = Vec::with_capacity(simt_len);
    for _ in 0..simt_len {
        simt.push(SimtEntry {
            saved_mask: d.u64()?,
            else_mask: d.u64()?,
            else_pc: d.u32()?,
            end_pc: d.u32()?,
            in_else: d.bool()?,
        });
    }
    Ok(WarpSnapshot {
        pc,
        active,
        state_id,
        simt,
        phase_id: d.u8()?,
        regs: d.u64s()?,
        ready: d.u64s()?,
        pend: d.bytes()?,
    })
}

fn enc_i64s(e: &mut Enc, v: &[i64]) {
    e.u64(v.len() as u64);
    for x in v {
        e.i64(*x);
    }
}

fn dec_i64s(d: &mut Dec<'_>) -> Result<Vec<i64>, CheckpointError> {
    let len = d.seq_len(8)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(d.i64()?);
    }
    Ok(v)
}

fn enc_st_entry(e: &mut Enc, s: &StEntry) {
    e.u32(s.vid);
    e.u32(s.loc);
    e.u32(s.deg);
}

fn dec_st_entry(d: &mut Dec<'_>) -> Result<StEntry, CheckpointError> {
    Ok(StEntry {
        vid: d.u32()?,
        loc: d.u32()?,
        deg: d.u32()?,
    })
}

fn enc_weaver_unit_state(e: &mut Enc, w: &WeaverUnitState) {
    enc_fsm_snapshot(e, &w.fsm);
    e.u64(w.dt.len() as u64);
    for row in &w.dt {
        enc_i64s(e, row);
    }
    e.u64(w.staging.len() as u64);
    for slot in &w.staging {
        e.opt(slot.as_ref(), enc_st_entry);
    }
    e.bool(w.in_registration);
    e.u64(w.busy_until);
    e.u64(w.st_fetches);
    e.u64(w.dec_requests);
    e.u64(w.registrations);
}

fn dec_weaver_unit_state(d: &mut Dec<'_>) -> Result<WeaverUnitState, CheckpointError> {
    let fsm = dec_fsm_snapshot(d)?;
    let dt_len = d.seq_len(8)?;
    let mut dt = Vec::with_capacity(dt_len);
    for _ in 0..dt_len {
        dt.push(dec_i64s(d)?);
    }
    let staging_len = d.seq_len(1)?;
    let mut staging = Vec::with_capacity(staging_len);
    for _ in 0..staging_len {
        staging.push(d.opt(dec_st_entry)?);
    }
    Ok(WeaverUnitState {
        fsm,
        dt,
        staging,
        in_registration: d.bool()?,
        busy_until: d.u64()?,
        st_fetches: d.u64()?,
        dec_requests: d.u64()?,
        registrations: d.u64()?,
    })
}

fn enc_fsm_snapshot(e: &mut Enc, f: &FsmSnapshot) {
    e.u64(f.st.len() as u64);
    for slot in &f.st {
        e.opt(slot.as_ref(), enc_st_entry);
    }
    e.u64(f.st_pos);
    e.opt(f.ced.as_ref(), |e, c: &CedState| {
        e.u32(c.vid);
        e.u32(c.next_eid);
        e.u32(c.remaining);
    });
    e.u64(f.skip.len() as u64);
    for v in &f.skip {
        e.u32(*v);
    }
    e.u8(f.state_id);
    e.bytes(&f.trace);
}

fn dec_fsm_snapshot(d: &mut Dec<'_>) -> Result<FsmSnapshot, CheckpointError> {
    let st_len = d.seq_len(1)?;
    let mut st = Vec::with_capacity(st_len);
    for _ in 0..st_len {
        st.push(d.opt(dec_st_entry)?);
    }
    let st_pos = d.u64()?;
    let ced = d.opt(|d| {
        Ok(CedState {
            vid: d.u32()?,
            next_eid: d.u32()?,
            remaining: d.u32()?,
        })
    })?;
    let skip_len = d.seq_len(4)?;
    let mut skip = Vec::with_capacity(skip_len);
    for _ in 0..skip_len {
        skip.push(d.u32()?);
    }
    Ok(FsmSnapshot {
        st,
        st_pos,
        ced,
        skip,
        state_id: d.u8()?,
        trace: d.bytes()?,
    })
}

fn enc_eghw_state(e: &mut Enc, s: &EghwState) {
    e.u64(s.layout.offsets_base);
    e.u64(s.layout.edges_base);
    e.u64(s.layout.weights_base);
    e.u64(s.slots.len() as u64);
    for slot in &s.slots {
        e.opt(slot.as_ref(), |e, v| e.u32(*v));
    }
    e.u64(s.cursor);
    e.opt(s.current.as_ref(), |e, (vid, eid, rem)| {
        e.u32(*vid);
        e.u32(*eid);
        e.u32(*rem);
    });
    e.bool(s.in_registration);
    e.u64(s.busy_until);
    for b in &s.line_buf {
        e.opt(b.as_ref(), |e, v| e.u64(*v));
    }
    e.u64(s.total_reads);
}

fn dec_eghw_state(d: &mut Dec<'_>) -> Result<EghwState, CheckpointError> {
    let layout = EghwLayout {
        offsets_base: d.u64()?,
        edges_base: d.u64()?,
        weights_base: d.u64()?,
    };
    let slot_len = d.seq_len(1)?;
    let mut slots = Vec::with_capacity(slot_len);
    for _ in 0..slot_len {
        slots.push(d.opt(|d| d.u32())?);
    }
    let cursor = d.u64()?;
    let current = d.opt(|d| Ok((d.u32()?, d.u32()?, d.u32()?)))?;
    let in_registration = d.bool()?;
    let busy_until = d.u64()?;
    let mut line_buf = [None; 3];
    for b in &mut line_buf {
        *b = d.opt(|d| d.u64())?;
    }
    Ok(EghwState {
        layout,
        slots,
        cursor,
        current,
        in_registration,
        busy_until,
        line_buf,
        total_reads: d.u64()?,
    })
}

fn enc_line_state(e: &mut Enc, l: &LineState) {
    e.bool(l.valid);
    e.bool(l.dirty);
    e.u64(l.tag);
    e.u64(l.last_use);
}

fn dec_line_state(d: &mut Dec<'_>) -> Result<LineState, CheckpointError> {
    Ok(LineState {
        valid: d.bool()?,
        dirty: d.bool()?,
        tag: d.u64()?,
        last_use: d.u64()?,
    })
}

fn enc_cache_state(e: &mut Enc, c: &CacheState) {
    e.u64(c.lines.len() as u64);
    for l in &c.lines {
        enc_line_state(e, l);
    }
    e.u64(c.tick);
    enc_cache_stats(e, &c.stats);
}

fn dec_cache_state(d: &mut Dec<'_>) -> Result<CacheState, CheckpointError> {
    let line_len = d.seq_len(18)?;
    let mut lines = Vec::with_capacity(line_len);
    for _ in 0..line_len {
        lines.push(dec_line_state(d)?);
    }
    Ok(CacheState {
        lines,
        tick: d.u64()?,
        stats: dec_cache_stats(d)?,
    })
}

fn enc_port_state(e: &mut Enc, p: &PortState) {
    e.u64(p.cycle);
    e.u64(p.used);
}

fn dec_port_state(d: &mut Dec<'_>) -> Result<PortState, CheckpointError> {
    Ok(PortState {
        cycle: d.u64()?,
        used: d.u64()?,
    })
}

fn enc_hierarchy_state(e: &mut Enc, h: &HierarchyState) {
    e.u64(h.l1.len() as u64);
    for c in &h.l1 {
        enc_cache_state(e, c);
    }
    enc_cache_state(e, &h.l2);
    e.opt(h.l3.as_ref(), enc_cache_state);
    e.u64(h.l1_ports.len() as u64);
    for p in &h.l1_ports {
        enc_port_state(e, p);
    }
    enc_port_state(e, &h.l2_port);
    enc_port_state(e, &h.dram_port);
    enc_port_state(e, &h.atomic_port);
    e.u64(h.dram_accesses);
}

fn dec_hierarchy_state(d: &mut Dec<'_>) -> Result<HierarchyState, CheckpointError> {
    let l1_len = d.seq_len(8)?;
    let mut l1 = Vec::with_capacity(l1_len);
    for _ in 0..l1_len {
        l1.push(dec_cache_state(d)?);
    }
    let l2 = dec_cache_state(d)?;
    let l3 = d.opt(dec_cache_state)?;
    let port_len = d.seq_len(16)?;
    let mut l1_ports = Vec::with_capacity(port_len);
    for _ in 0..port_len {
        l1_ports.push(dec_port_state(d)?);
    }
    Ok(HierarchyState {
        l1,
        l2,
        l3,
        l1_ports,
        l2_port: dec_port_state(d)?,
        dram_port: dec_port_state(d)?,
        atomic_port: dec_port_state(d)?,
        dram_accesses: d.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A checkpoint exercising every codec branch: both `Option` arms,
    /// every `EventData` variant, both sink kinds (via two checkpoints),
    /// non-empty divergence stacks, tables and histograms.
    fn sample() -> Checkpoint {
        let warp = WarpSnapshot {
            pc: 17,
            active: 0b1011,
            state_id: 1,
            simt: vec![SimtEntry {
                saved_mask: 0b1111,
                else_mask: 0b0100,
                else_pc: 21,
                end_pc: 30,
                in_else: true,
            }],
            phase_id: 4,
            regs: vec![1, 2, 3, u64::MAX],
            ready: vec![0, 9],
            pend: vec![0, 3],
        };
        let weaver = WeaverUnitState {
            fsm: FsmSnapshot {
                st: vec![
                    Some(StEntry {
                        vid: 5,
                        loc: 9,
                        deg: 2,
                    }),
                    None,
                ],
                st_pos: 1,
                ced: Some(CedState {
                    vid: 5,
                    next_eid: 10,
                    remaining: 1,
                }),
                skip: vec![3, 8],
                state_id: 2,
                trace: vec![0, 1, 2],
            },
            dt: vec![vec![-1, 7], vec![]],
            staging: vec![
                None,
                Some(StEntry {
                    vid: 1,
                    loc: 0,
                    deg: 4,
                }),
            ],
            in_registration: true,
            busy_until: 99,
            st_fetches: 4,
            dec_requests: 3,
            registrations: 2,
        };
        let eghw = EghwState {
            layout: EghwLayout {
                offsets_base: 64,
                edges_base: 128,
                weights_base: 256,
            },
            slots: vec![Some(7), None],
            cursor: 1,
            current: Some((7, 2, 5)),
            in_registration: false,
            busy_until: 11,
            line_buf: [Some(64), None, Some(192)],
            total_reads: 6,
        };
        let core = CoreState {
            warps: vec![warp],
            shared_data: vec![0xAB; 16],
            shared_traffic: (3, 4),
            weaver,
            eghw,
            eghw_dt: vec![vec![1, -2]],
            next_warp: 1,
            resident: 1,
            active_warps: 1,
            stats: CoreStats {
                instructions: 10,
                thread_instructions: 40,
                stalls: StallBreakdown {
                    memory: 1,
                    shared: 2,
                    exec_dep: 3,
                    l1_queue: 4,
                    barrier: 5,
                    weaver: 6,
                },
                phase_cycles: [1, 2, 3, 4, 5, 6],
                finish_cycle: 123,
            },
        };
        let cache = CacheState {
            lines: vec![
                LineState {
                    valid: true,
                    dirty: false,
                    tag: 0x40,
                    last_use: 7,
                },
                LineState {
                    valid: false,
                    dirty: false,
                    tag: 0,
                    last_use: 0,
                },
            ],
            tick: 9,
            stats: CacheStats {
                accesses: 5,
                hits: 3,
                misses: 2,
                writebacks: 1,
            },
        };
        let hierarchy = HierarchyState {
            l1: vec![cache.clone()],
            l2: cache.clone(),
            l3: None,
            l1_ports: vec![PortState { cycle: 3, used: 1 }],
            l2_port: PortState { cycle: 4, used: 2 },
            dram_port: PortState { cycle: 5, used: 0 },
            atomic_port: PortState { cycle: 0, used: 0 },
            dram_accesses: 17,
        };
        let gpu = GpuState {
            cores: vec![core],
            hierarchy,
            mem_data: (0u8..64).collect(),
            mem_traffic: (100, 50),
            occupancy: Occupancy {
                kernel_high_water: 8,
                cap: 6,
                resident: 4,
                configured: 8,
            },
        };
        let stats = KernelStats {
            cycles: 1000,
            instructions: 500,
            thread_instructions: 2000,
            stalls: StallBreakdown {
                memory: 10,
                shared: 20,
                exec_dep: 30,
                l1_queue: 40,
                barrier: 50,
                weaver: 60,
            },
            phase_cycles: [9, 8, 7, 6, 5, 4],
            mem: LevelStats {
                l1: CacheStats {
                    accesses: 1,
                    hits: 1,
                    misses: 0,
                    writebacks: 0,
                },
                l2: CacheStats {
                    accesses: 2,
                    hits: 0,
                    misses: 2,
                    writebacks: 1,
                },
                l3: Some(CacheStats {
                    accesses: 3,
                    hits: 2,
                    misses: 1,
                    writebacks: 0,
                }),
                dram_accesses: 4,
            },
            weaver_counters: (11, 12, 13),
            warp_cycles: 777,
            launches: 2,
        };
        let events = vec![
            TraceEvent {
                cycle: 0,
                core: 0,
                data: EventData::KernelLaunch { name: "k".into() },
            },
            TraceEvent {
                cycle: 1,
                core: 1,
                data: EventData::PhaseBegin {
                    warp: 0,
                    phase: Phase::GatherSum,
                },
            },
            TraceEvent {
                cycle: 2,
                core: 0,
                data: EventData::WarpIssue {
                    warp: 1,
                    pc: 2,
                    active: 3,
                },
            },
            TraceEvent {
                cycle: 3,
                core: 0,
                data: EventData::WarpStall {
                    cause: StallCause::Memory,
                    phase: Phase::Init,
                    cycles: 4,
                },
            },
            TraceEvent {
                cycle: 4,
                core: 1,
                data: EventData::Divergence {
                    warp: 0,
                    pc: 9,
                    taken: 2,
                    not_taken: 2,
                },
            },
            TraceEvent {
                cycle: 5,
                core: 0,
                data: EventData::CacheAccess {
                    level: MemLevel::L2,
                    write: true,
                    queue_delay: 1,
                },
            },
            TraceEvent {
                cycle: 6,
                core: 0,
                data: EventData::DramTransaction { write: false },
            },
            TraceEvent {
                cycle: 7,
                core: 0,
                data: EventData::WeaverTransition {
                    from: WeaverState::from_id(0),
                    to: WeaverState::from_id(1),
                },
            },
            TraceEvent {
                cycle: 8,
                core: 0,
                data: EventData::WeaverTable {
                    op: TableOp::StFetch,
                    count: 4,
                },
            },
            TraceEvent {
                cycle: 9,
                core: 0,
                data: EventData::WeaverRetry {
                    kernel: "k".into(),
                    attempt: 1,
                },
            },
            TraceEvent {
                cycle: 10,
                core: 0,
                data: EventData::WeaverFallback {
                    kernel: "k".into(),
                    schedule: "S_wm".into(),
                },
            },
            TraceEvent {
                cycle: 11,
                core: 0,
                data: EventData::KernelEnd {
                    name: "k".into(),
                    cycles: 11,
                },
            },
        ];
        let committed = CounterSnapshot {
            instructions: 500,
            warps_resident: 4,
            ..CounterSnapshot::default()
        };
        let tracer = TracerState {
            base: 1000,
            committed,
            samples: vec![MetricSample {
                cycle: 100,
                counters: CounterSnapshot::default(),
            }],
            kernels: vec![KernelSpan {
                name: "k".into(),
                start: 0,
                cycles: 11,
            }],
            sink: SinkState::Ring { events, dropped: 3 },
        };
        let mut hist = LatencyHistogram::default();
        hist.record(12);
        hist.record(90);
        let mut profile = ProfileReport::default();
        profile.mem[0] = hist.clone();
        profile.weaver = hist.clone();
        profile.gather_iteration = hist;
        profile.core_issues = vec![10, 20];
        profile.warp_issues = vec![vec![5, 5], vec![12, 8]];
        Checkpoint {
            config_fp: 0xDEAD_BEEF_CAFE_F00D,
            graph_fp: 0x0123_4567_89AB_CDEF,
            argv: vec![
                "--algo".into(),
                "bfs".into(),
                "--schedule".into(),
                "sw".into(),
            ],
            schedule: Schedule::SparseWeaver,
            fell_back_from: Some((Schedule::SparseWeaver, "scatter".into())),
            launches: 7,
            next_alloc: 4096,
            weaver_retries: 1,
            total: stats.clone(),
            per_kernel: vec![("k".into(), stats.clone())],
            host_log: vec![
                HostEvent::Read(42),
                HostEvent::LaunchDone(stats),
                HostEvent::Read(u64::MAX),
            ],
            gpu,
            tracer: Some(tracer),
            profile: Some(profile),
            fault: Some(FaultInjectorState {
                rng: 0x9E37_79B9_7F4A_7C15,
                counts: FaultCounts {
                    reg_flips: 1,
                    mem_flips: 2,
                    fetch_flips: 3,
                    weaver_drops: 4,
                    weaver_delays: 5,
                },
                weaver_faulty: true,
            }),
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ck);
    }

    #[test]
    fn round_trip_with_absent_options_and_file_sink() {
        let mut ck = sample();
        ck.fell_back_from = None;
        ck.profile = None;
        ck.fault = None;
        ck.tracer = Some(TracerState {
            base: 0,
            committed: CounterSnapshot::default(),
            samples: vec![],
            kernels: vec![],
            sink: SinkState::File {
                written: 12,
                bytes: 340,
            },
        });
        ck.gpu.hierarchy.l3 = Some(CacheState {
            lines: vec![],
            tick: 0,
            stats: CacheStats::default(),
        });
        let back = Checkpoint::decode(&ck.encode()).expect("decode");
        assert_eq!(back, ck);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            Checkpoint::decode(b"sw"),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            Checkpoint::decode(b""),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().encode();
        let at = CHECKPOINT_MAGIC.len();
        bytes[at..at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let bytes = sample().encode();
        // Every strict prefix must fail loudly — never panic, never
        // succeed. Step through all lengths; this also covers mid-field
        // cuts.
        for len in 0..bytes.len() {
            match Checkpoint::decode(&bytes[..len]) {
                Err(
                    CheckpointError::BadMagic
                    | CheckpointError::Truncated { .. }
                    | CheckpointError::Corrupt { .. },
                ) => {}
                other => panic!("prefix of {len} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_implausible_sequence_length() {
        let ck = sample();
        let mut bytes = ck.encode();
        // The argv length is the first u64 after magic+version+fps.
        let at = CHECKPOINT_MAGIC.len() + 4 + 8 + 8;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn verify_refuses_mismatched_fingerprints() {
        let ck = sample();
        assert!(ck.verify(ck.config_fp, ck.graph_fp).is_ok());
        assert!(matches!(
            ck.verify(ck.config_fp ^ 1, ck.graph_fp),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
        assert!(matches!(
            ck.verify(ck.config_fp, ck.graph_fp ^ 1),
            Err(CheckpointError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn save_load_round_trip_and_no_temp_left_behind() {
        let dir = std::env::temp_dir().join(format!("swckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.swckpt");
        let ck = sample();
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back, ck);
        // Overwrite goes through the same atomic path.
        ck.save(&path).expect("second save");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let missing = Path::new("/nonexistent/definitely/not/here.swckpt");
        assert!(matches!(
            Checkpoint::load(missing),
            Err(CheckpointError::Io { .. })
        ));
    }
}
