//! Fault-injection campaign runner.
//!
//! A campaign is N seeded runs of one `(graph, algorithm, schedule)`
//! configuration under a [`FaultSpec`], each classified against a
//! fault-free golden run into the four-way taxonomy of
//! [`Outcome`]: **masked** (output matches the golden run), **SDC**
//! (silent data corruption), **detected crash** (a typed error surfaced
//! the fault), or **hang** (deadlock / cycle limit / Weaver timeout).
//!
//! Per-run seeds derive from the campaign seed via
//! [`sparseweaver_fault::child_seed`], so the whole campaign — including
//! its rendered summary — is byte-for-byte reproducible from
//! `(spec, seed, runs)`. The `swfault` binary is a thin CLI over this
//! module; the property tests drive it directly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sparseweaver_fault::{CampaignSummary, FaultSpec, Outcome, SplitMix64};
use sparseweaver_graph::Csr;
use sparseweaver_sim::{GpuConfig, SimError};

use crate::algorithms::Algorithm;
use crate::schedule::Schedule;
use crate::session::Session;
use crate::FrameworkError;

/// Float tolerance for golden-output comparison (integer outputs compare
/// exactly).
pub const GOLDEN_TOL: f64 = 1e-9;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// What to inject, at which rates.
    pub spec: FaultSpec,
    /// Campaign seed; run `i` uses `child_seed(seed, i)`.
    pub seed: u64,
    /// Number of injected runs.
    pub runs: u32,
    /// Bound on launch retries after a Weaver response timeout.
    pub max_weaver_retries: u32,
}

/// One classified run of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// Run index within the campaign.
    pub index: u32,
    /// The derived injector seed this run used.
    pub seed: u64,
    /// The four-way classification.
    pub outcome: Outcome,
    /// Human-readable detail: the error text for crashes and hangs, the
    /// first diverging index for SDC, retry/fallback notes for masked
    /// runs.
    pub detail: String,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Aggregated counts, renderable as deterministic JSON.
    pub summary: CampaignSummary,
    /// Per-run classifications, in run order.
    pub runs: Vec<CampaignRun>,
    /// Runs that escaped classification by panicking. The simulator's
    /// contract is typed errors, never panics — any non-zero value here
    /// is a bug in the machine model, and `swfault` fails the campaign
    /// on it.
    pub panics: u64,
}

/// Runs a full campaign: one fault-free golden run, then
/// [`CampaignConfig::runs`] injected runs classified against it.
///
/// Every injected run executes inside `catch_unwind`, so a panic in the
/// machine model is recorded in [`CampaignResult::panics`] instead of
/// aborting the campaign.
///
/// # Errors
///
/// Returns an error only if the *golden* (fault-free) run fails — an
/// injected run can never fail the campaign, it is classified.
pub fn run_campaign(
    cfg: &GpuConfig,
    graph: &Csr,
    algorithm: &dyn Algorithm,
    schedule: Schedule,
    campaign: &CampaignConfig,
) -> Result<CampaignResult, FrameworkError> {
    let mut golden_session = Session::new(*cfg);
    let golden = golden_session.run(graph, algorithm, schedule)?.output;

    let mut summary = CampaignSummary {
        spec: campaign.spec.to_string(),
        seed: campaign.seed,
        ..CampaignSummary::default()
    };
    let mut runs = Vec::with_capacity(campaign.runs as usize);
    let mut panics = 0u64;

    for index in 0..campaign.runs {
        let seed = SplitMix64::child_seed(campaign.seed, index as u64);
        let mut session = Session::new(*cfg);
        session.inject = Some(campaign.spec);
        session.inject_seed = seed;
        session.max_weaver_retries = campaign.max_weaver_retries;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let result = session.run(graph, algorithm, schedule);
            (result, session.last_faults())
        }));
        let (result, faults) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                panics += 1;
                continue;
            }
        };
        if let Some(f) = faults {
            summary.faults_injected += f.total();
        }
        let (outcome, detail) = match result {
            Ok(report) => {
                summary.retries += report.weaver_retries;
                if report.fell_back_from.is_some() {
                    summary.fallbacks += 1;
                }
                match report.output.mismatch(&golden, GOLDEN_TOL) {
                    None => {
                        let mut detail = String::from("output matches golden");
                        if report.weaver_retries > 0 {
                            detail.push_str(&format!(
                                " after {} retr{}",
                                report.weaver_retries,
                                if report.weaver_retries == 1 {
                                    "y"
                                } else {
                                    "ies"
                                }
                            ));
                        }
                        if let Some(from) = report.fell_back_from {
                            detail.push_str(&format!(" (fell back from {from:?} to S_wm)"));
                        }
                        (Outcome::Masked, detail)
                    }
                    Some(at) => (Outcome::Sdc, format!("output diverges at index {at}")),
                }
            }
            Err(FrameworkError::Sim(
                e @ (SimError::Deadlock { .. }
                | SimError::CycleLimit { .. }
                | SimError::WeaverTimeout { .. }),
            )) => (Outcome::Hang, e.to_string()),
            Err(e) => (Outcome::DetectedCrash, e.to_string()),
        };
        summary.record(outcome);
        runs.push(CampaignRun {
            index,
            seed,
            outcome,
            detail,
        });
    }

    Ok(CampaignResult {
        summary,
        runs,
        panics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Bfs;
    use sparseweaver_graph::generators;

    fn small_campaign(spec: &str, seed: u64, runs: u32) -> CampaignResult {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        run_campaign(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &CampaignConfig {
                spec: FaultSpec::parse(spec).unwrap(),
                seed,
                runs,
                max_weaver_retries: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn fault_free_spec_is_all_masked() {
        let r = small_campaign("reg=0.0", 1, 3);
        assert_eq!(r.summary.masked, 3);
        assert_eq!(r.summary.faults_injected, 0);
        assert!(r.summary.is_classified());
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign("reg=0.002,mem=0.001", 42, 4);
        let b = small_campaign("reg=0.002,mem=0.001", 42, 4);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn weaver_drops_end_masked_via_retry_or_fallback() {
        let r = small_campaign("weaver-drop=1.0", 7, 2);
        // Every response drops: retries exhaust, the run degrades to
        // S_wm, and the output still matches the golden run.
        assert_eq!(r.summary.masked, 2, "summary: {:?}", r.summary);
        assert_eq!(r.summary.fallbacks, 2);
        assert!(r.summary.retries >= 2);
        assert!(r.summary.faults_injected > 0);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn every_run_is_classified_under_heavy_injection() {
        let r = small_campaign("reg=0.01,mem=0.01,fetch=0.005", 3, 6);
        assert!(r.summary.is_classified(), "summary: {:?}", r.summary);
        assert_eq!(r.panics, 0);
        assert_eq!(r.runs.len(), 6);
    }
}
