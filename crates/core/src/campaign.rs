//! Fault-injection campaign runner.
//!
//! A campaign is N seeded runs of one `(graph, algorithm, schedule)`
//! configuration under a [`FaultSpec`], each classified against a
//! fault-free golden run into the four-way taxonomy of
//! [`Outcome`]: **masked** (output matches the golden run), **SDC**
//! (silent data corruption), **detected crash** (a typed error surfaced
//! the fault), or **hang** (deadlock / cycle limit / Weaver timeout).
//!
//! Per-run seeds derive from the campaign seed via
//! [`sparseweaver_fault::child_seed`], so the whole campaign — including
//! its rendered summary — is byte-for-byte reproducible from
//! `(spec, seed, runs)`. The `swfault` binary is a thin CLI over this
//! module; the property tests drive it directly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use sparseweaver_fault::{CampaignSummary, FaultCounts, FaultSpec, Outcome, SplitMix64};
use sparseweaver_graph::Csr;
use sparseweaver_sim::{GpuConfig, SimError};
use sparseweaver_trace::ProfileReport;

use crate::algorithms::Algorithm;
use crate::schedule::Schedule;
use crate::session::Session;
use crate::FrameworkError;

/// Float tolerance for golden-output comparison (integer outputs compare
/// exactly).
pub const GOLDEN_TOL: f64 = 1e-9;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// What to inject, at which rates.
    pub spec: FaultSpec,
    /// Campaign seed; run `i` uses `child_seed(seed, i)`.
    pub seed: u64,
    /// Number of injected runs.
    pub runs: u32,
    /// Bound on launch retries after a Weaver response timeout.
    pub max_weaver_retries: u32,
    /// Worker threads for the injected runs (0 or 1 = serial). Each run
    /// owns its `Gpu` and injector, and results are folded in run-index
    /// order, so every `jobs` value produces byte-identical output.
    pub jobs: usize,
    /// Whether a run whose Weaver retries are exhausted may degrade to
    /// the software `S_wm` schedule (the [`Session`] default). With
    /// fallback off, exhausted retries surface as a Weaver timeout and
    /// classify as a hang — the knob that gives campaigns deterministic
    /// `hang` coverage.
    pub fallback: bool,
    /// When set, every injected run attaches a latency profiler and the
    /// per-run [`sparseweaver_trace::ProfileReport`]s are merged (in
    /// run-index order) into [`CampaignResult::profile`].
    pub profile: bool,
}

impl CampaignConfig {
    /// A campaign with `spec`, `seed`, and `runs`, serial execution, one
    /// Weaver retry, and fallback enabled — the `swfault` defaults.
    pub fn new(spec: FaultSpec, seed: u64, runs: u32) -> Self {
        CampaignConfig {
            spec,
            seed,
            runs,
            max_weaver_retries: 1,
            jobs: 1,
            fallback: true,
            profile: false,
        }
    }
}

/// One classified run of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// Run index within the campaign.
    pub index: u32,
    /// The derived injector seed this run used.
    pub seed: u64,
    /// The four-way classification.
    pub outcome: Outcome,
    /// Human-readable detail: the error text for crashes and hangs, the
    /// first diverging index for SDC, retry/fallback notes for masked
    /// runs.
    pub detail: String,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Aggregated counts, renderable as deterministic JSON.
    pub summary: CampaignSummary,
    /// Per-run classifications, in run order.
    pub runs: Vec<CampaignRun>,
    /// Runs that escaped classification by panicking. The simulator's
    /// contract is typed errors, never panics — any non-zero value here
    /// is a bug in the machine model, and `swfault` fails the campaign
    /// on it.
    pub panics: u64,
    /// Merged latency/imbalance profile across the injected runs, when
    /// [`CampaignConfig::profile`] was set. Folded in run-index order,
    /// so it is identical for every `jobs` value.
    pub profile: Option<ProfileReport>,
}

/// Raw result of one injected run, before the index-ordered fold into
/// the summary. `outcome == None` means the run panicked.
struct RunOutput {
    seed: u64,
    faults: Option<FaultCounts>,
    retries: u64,
    fell_back: bool,
    outcome: Option<(Outcome, String)>,
    profile: Option<ProfileReport>,
}

/// Runs a full campaign: one fault-free golden run, then
/// [`CampaignConfig::runs`] injected runs classified against it.
///
/// Every injected run executes inside `catch_unwind`, so a panic in the
/// machine model is recorded in [`CampaignResult::panics`] instead of
/// aborting the campaign.
///
/// With [`CampaignConfig::jobs`] > 1 the injected runs execute on a
/// thread pool. Each run builds its own [`Session`] (and thus its own
/// `Gpu` and fault injector) from a seed derived purely from
/// `(campaign seed, run index)`, and results are collected and folded in
/// run-index order — so the summary, the per-run list, and the rendered
/// JSON are byte-identical for every `jobs` value.
///
/// # Errors
///
/// Returns an error only if the *golden* (fault-free) run fails — an
/// injected run can never fail the campaign, it is classified.
pub fn run_campaign(
    cfg: &GpuConfig,
    graph: &Csr,
    algorithm: &dyn Algorithm,
    schedule: Schedule,
    campaign: &CampaignConfig,
) -> Result<CampaignResult, FrameworkError> {
    let mut golden_session = Session::new(*cfg);
    let golden = golden_session.run(graph, algorithm, schedule)?.output;

    let run_one = |index: u32| -> RunOutput {
        let seed = SplitMix64::child_seed(campaign.seed, index as u64);
        let mut session = Session::new(*cfg);
        session.inject = Some(campaign.spec);
        session.inject_seed = seed;
        session.max_weaver_retries = campaign.max_weaver_retries;
        session.fallback = campaign.fallback;
        session.profile = campaign.profile;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let result = session.run(graph, algorithm, schedule);
            (result, session.last_faults())
        }));
        let (result, faults) = match caught {
            Ok(pair) => pair,
            Err(_) => {
                return RunOutput {
                    seed,
                    faults: None,
                    retries: 0,
                    fell_back: false,
                    outcome: None,
                    profile: None,
                }
            }
        };
        let (retries, fell_back, profile) = match &result {
            Ok(report) => (
                report.weaver_retries,
                report.fell_back_from.is_some(),
                report.profile.clone(),
            ),
            Err(_) => (0, false, None),
        };
        let outcome = match result {
            Ok(report) => match report.output.mismatch(&golden, GOLDEN_TOL) {
                None => {
                    let mut detail = String::from("output matches golden");
                    if report.weaver_retries > 0 {
                        detail.push_str(&format!(
                            " after {} retr{}",
                            report.weaver_retries,
                            if report.weaver_retries == 1 {
                                "y"
                            } else {
                                "ies"
                            }
                        ));
                    }
                    if let Some(from) = report.fell_back_from {
                        detail.push_str(&format!(" (fell back from {from:?} to S_wm)"));
                    }
                    (Outcome::Masked, detail)
                }
                Some(at) => (Outcome::Sdc, format!("output diverges at index {at}")),
            },
            Err(FrameworkError::Sim(
                e @ (SimError::Deadlock { .. }
                | SimError::CycleLimit { .. }
                | SimError::WeaverTimeout { .. }),
            )) => (Outcome::Hang, e.to_string()),
            Err(e) => (Outcome::DetectedCrash, e.to_string()),
        };
        RunOutput {
            seed,
            faults,
            retries,
            fell_back,
            outcome: Some(outcome),
            profile,
        }
    };

    let outputs: Vec<RunOutput> = if campaign.jobs > 1 && campaign.runs > 1 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(campaign.jobs)
            .build()
            .expect("campaign thread pool");
        pool.install(|| (0..campaign.runs).into_par_iter().map(run_one).collect())
    } else {
        (0..campaign.runs).map(run_one).collect()
    };

    // Fold in run-index order: the summary counters and the JSON they
    // render to must not depend on worker scheduling.
    let mut summary = CampaignSummary {
        spec: campaign.spec.to_string(),
        seed: campaign.seed,
        ..CampaignSummary::default()
    };
    let mut runs = Vec::with_capacity(campaign.runs as usize);
    let mut panics = 0u64;
    let mut merged_profile = campaign.profile.then(ProfileReport::default);
    for (index, out) in outputs.into_iter().enumerate() {
        if let (Some(acc), Some(p)) = (merged_profile.as_mut(), out.profile.as_ref()) {
            acc.merge(p);
        }
        let Some((outcome, detail)) = out.outcome else {
            panics += 1;
            continue;
        };
        if let Some(f) = out.faults {
            summary.faults_injected += f.total();
        }
        summary.retries += out.retries;
        if out.fell_back {
            summary.fallbacks += 1;
        }
        summary.record(outcome);
        runs.push(CampaignRun {
            index: index as u32,
            seed: out.seed,
            outcome,
            detail,
        });
    }

    Ok(CampaignResult {
        summary,
        runs,
        panics,
        profile: merged_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Bfs;
    use sparseweaver_graph::generators;

    fn campaign_with_jobs(spec: &str, seed: u64, runs: u32, jobs: usize) -> CampaignResult {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(FaultSpec::parse(spec).unwrap(), seed, runs);
        campaign.jobs = jobs;
        run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap()
    }

    fn small_campaign(spec: &str, seed: u64, runs: u32) -> CampaignResult {
        campaign_with_jobs(spec, seed, runs, 1)
    }

    #[test]
    fn fault_free_spec_is_all_masked() {
        let r = small_campaign("reg=0.0", 1, 3);
        assert_eq!(r.summary.masked, 3);
        assert_eq!(r.summary.faults_injected, 0);
        assert!(r.summary.is_classified());
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign("reg=0.002,mem=0.001", 42, 4);
        let b = small_campaign("reg=0.002,mem=0.001", 42, 4);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn weaver_drops_end_masked_via_retry_or_fallback() {
        let r = small_campaign("weaver-drop=1.0", 7, 2);
        // Every response drops: retries exhaust, the run degrades to
        // S_wm, and the output still matches the golden run.
        assert_eq!(r.summary.masked, 2, "summary: {:?}", r.summary);
        assert_eq!(r.summary.fallbacks, 2);
        assert!(r.summary.retries >= 2);
        assert!(r.summary.faults_injected > 0);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn every_run_is_classified_under_heavy_injection() {
        let r = small_campaign("reg=0.01,mem=0.01,fetch=0.005", 3, 6);
        assert!(r.summary.is_classified(), "summary: {:?}", r.summary);
        assert_eq!(r.panics, 0);
        assert_eq!(r.runs.len(), 6);
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let serial = campaign_with_jobs("reg=0.005,mem=0.002,fetch=0.002", 11, 8, 1);
        let parallel = campaign_with_jobs("reg=0.005,mem=0.002,fetch=0.002", 11, 8, 4);
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.panics, parallel.panics);
    }

    #[test]
    fn fixed_seed_campaign_covers_all_four_classes() {
        // The no-fallback golden campaign of
        // `scripts/check_fault_campaign.sh` at reduced run count: same
        // graph, spec, seed, and retry bound as the committed
        // `fault_campaign_hang_golden.json`, and the same coverage claim
        // — every outcome class, including hang, appears.
        let g = generators::with_random_weights(&generators::uniform(24, 72, 7), 64, 0xC11);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(
            FaultSpec::parse("reg=0.002,mem=0.001,fetch=0.001,weaver-drop=0.02").unwrap(),
            7,
            30,
        );
        campaign.max_weaver_retries = crate::runtime::DEFAULT_WEAVER_RETRIES;
        campaign.fallback = false;
        let r = run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();
        assert!(r.summary.is_classified(), "summary: {:?}", r.summary);
        assert!(r.summary.masked > 0, "no masked runs: {:?}", r.summary);
        assert!(r.summary.sdc > 0, "no SDC runs: {:?}", r.summary);
        assert!(
            r.summary.detected_crash > 0,
            "no detected crashes: {:?}",
            r.summary
        );
        assert!(r.summary.hang > 0, "no hangs: {:?}", r.summary);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn profiled_campaign_merges_identically_across_jobs() {
        let run = |jobs: usize| {
            let g = generators::uniform(24, 72, 7);
            let cfg = GpuConfig::small_test();
            let mut campaign =
                CampaignConfig::new(FaultSpec::parse("reg=0.002,mem=0.001").unwrap(), 13, 6);
            campaign.jobs = jobs;
            campaign.profile = true;
            run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.summary, parallel.summary);
        let sp = serial.profile.expect("profile aggregated");
        let pp = parallel.profile.expect("profile aggregated");
        assert_eq!(sp, pp, "merged profile depends on worker scheduling");
        assert!(sp.core_issues.iter().sum::<u64>() > 0);
        // An unprofiled campaign carries no profile at all.
        let plain = small_campaign("reg=0.0", 1, 1);
        assert!(plain.profile.is_none());
    }

    #[test]
    fn fallback_off_surfaces_weaver_timeouts_as_hangs() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(FaultSpec::parse("weaver-drop=1.0").unwrap(), 7, 2);
        campaign.fallback = false;
        let r = run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();
        // With every response dropped and no S_wm degradation, retries
        // exhaust and both runs land in the hang class.
        assert_eq!(r.summary.hang, 2, "summary: {:?}", r.summary);
        assert_eq!(r.summary.fallbacks, 0);
        assert_eq!(r.panics, 0);
    }
}
