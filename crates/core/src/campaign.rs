//! Fault-injection campaign runner.
//!
//! A campaign is N seeded runs of one `(graph, algorithm, schedule)`
//! configuration under a [`FaultSpec`], each classified against a
//! fault-free golden run into the four-way taxonomy of
//! [`Outcome`]: **masked** (output matches the golden run), **SDC**
//! (silent data corruption), **detected crash** (a typed error surfaced
//! the fault), or **hang** (deadlock / cycle limit / Weaver timeout).
//!
//! Per-run seeds derive from the campaign seed via
//! [`sparseweaver_fault::child_seed`], so the whole campaign — including
//! its rendered summary — is byte-for-byte reproducible from
//! `(spec, seed, runs)`. The `swfault` binary is a thin CLI over this
//! module; the property tests drive it directly.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use sparseweaver_fault::{CampaignSummary, FaultSpec, Outcome, SplitMix64};
use sparseweaver_graph::Csr;
use sparseweaver_sim::{GpuConfig, SimError};
use sparseweaver_trace::json::{self, Value};
use sparseweaver_trace::ProfileReport;

use crate::algorithms::Algorithm;
use crate::checkpoint::CheckpointError;
use crate::schedule::Schedule;
use crate::session::Session;
use crate::FrameworkError;

/// Float tolerance for golden-output comparison (integer outputs compare
/// exactly).
pub const GOLDEN_TOL: f64 = 1e-9;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// What to inject, at which rates.
    pub spec: FaultSpec,
    /// Campaign seed; run `i` uses `child_seed(seed, i)`.
    pub seed: u64,
    /// Number of injected runs.
    pub runs: u32,
    /// Bound on launch retries after a Weaver response timeout.
    pub max_weaver_retries: u32,
    /// Worker threads for the injected runs (0 or 1 = serial). Each run
    /// owns its `Gpu` and injector, and results are folded in run-index
    /// order, so every `jobs` value produces byte-identical output.
    pub jobs: usize,
    /// Whether a run whose Weaver retries are exhausted may degrade to
    /// the software `S_wm` schedule (the [`Session`] default). With
    /// fallback off, exhausted retries surface as a Weaver timeout and
    /// classify as a hang — the knob that gives campaigns deterministic
    /// `hang` coverage.
    pub fallback: bool,
    /// When set, every injected run attaches a latency profiler and the
    /// per-run [`sparseweaver_trace::ProfileReport`]s are merged (in
    /// run-index order) into [`CampaignResult::profile`].
    pub profile: bool,
}

impl CampaignConfig {
    /// A campaign with `spec`, `seed`, and `runs`, serial execution, one
    /// Weaver retry, and fallback enabled — the `swfault` defaults.
    pub fn new(spec: FaultSpec, seed: u64, runs: u32) -> Self {
        CampaignConfig {
            spec,
            seed,
            runs,
            max_weaver_retries: 1,
            jobs: 1,
            fallback: true,
            profile: false,
        }
    }
}

/// Journal and early-stop controller for [`run_campaign_with`], kept
/// separate from [`CampaignConfig`] (which stays `Copy`).
#[derive(Debug, Clone, Default)]
pub struct CampaignCtl {
    /// Append-only JSONL journal: a header line identifying the campaign
    /// (spec, seed, runs, schedule, algorithm, config/graph fingerprints)
    /// followed by one line per completed run, appended and flushed as
    /// runs finish. Survives a kill at any point: the header and every
    /// fully written line stay valid, and a torn final line is tolerated
    /// on resume.
    pub journal: Option<PathBuf>,
    /// Resume from the journal: already-journaled run indices are folded
    /// from their recorded outcomes and only missing indices re-execute.
    /// The golden run always re-executes (it is deterministic). Requires
    /// [`CampaignCtl::journal`].
    pub resume: bool,
    /// Cooperative stop flag, checked at run boundaries: queued runs are
    /// skipped (runs already executing complete and are journaled) and
    /// the campaign returns [`FrameworkError::Interrupted`].
    pub stop: Option<Arc<AtomicBool>>,
}

/// One classified run of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRun {
    /// Run index within the campaign.
    pub index: u32,
    /// The derived injector seed this run used.
    pub seed: u64,
    /// The four-way classification.
    pub outcome: Outcome,
    /// Human-readable detail: the error text for crashes and hangs, the
    /// first diverging index for SDC, retry/fallback notes for masked
    /// runs.
    pub detail: String,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Aggregated counts, renderable as deterministic JSON.
    pub summary: CampaignSummary,
    /// Per-run classifications, in run order.
    pub runs: Vec<CampaignRun>,
    /// Runs that escaped classification by panicking. The simulator's
    /// contract is typed errors, never panics — any non-zero value here
    /// is a bug in the machine model, and `swfault` fails the campaign
    /// on it.
    pub panics: u64,
    /// Merged latency/imbalance profile across the injected runs, when
    /// [`CampaignConfig::profile`] was set. Folded in run-index order,
    /// so it is identical for every `jobs` value.
    pub profile: Option<ProfileReport>,
    /// The first I/O error hit while appending to the campaign journal,
    /// if any: the journal on disk is missing entries, so a later
    /// `--resume` will (harmlessly, deterministically) re-execute them.
    pub journal_error: Option<std::io::ErrorKind>,
}

/// Raw result of one injected run, before the index-ordered fold into
/// the summary. `outcome == None` means the run panicked (journaled, so a
/// resume retries it); `skipped` means a stop request kept the run from
/// starting (never journaled).
struct RunOutput {
    seed: u64,
    faults_total: Option<u64>,
    retries: u64,
    fell_back: bool,
    outcome: Option<(Outcome, String)>,
    profile: Option<ProfileReport>,
    skipped: bool,
}

/// Runs a full campaign: one fault-free golden run, then
/// [`CampaignConfig::runs`] injected runs classified against it.
///
/// Every injected run executes inside `catch_unwind`, so a panic in the
/// machine model is recorded in [`CampaignResult::panics`] instead of
/// aborting the campaign.
///
/// With [`CampaignConfig::jobs`] > 1 the injected runs execute on a
/// thread pool. Each run builds its own [`Session`] (and thus its own
/// `Gpu` and fault injector) from a seed derived purely from
/// `(campaign seed, run index)`, and results are collected and folded in
/// run-index order — so the summary, the per-run list, and the rendered
/// JSON are byte-identical for every `jobs` value.
///
/// # Errors
///
/// Returns an error only if the *golden* (fault-free) run fails — an
/// injected run can never fail the campaign, it is classified.
pub fn run_campaign(
    cfg: &GpuConfig,
    graph: &Csr,
    algorithm: &dyn Algorithm,
    schedule: Schedule,
    campaign: &CampaignConfig,
) -> Result<CampaignResult, FrameworkError> {
    run_campaign_with(
        cfg,
        graph,
        algorithm,
        schedule,
        campaign,
        &CampaignCtl::default(),
    )
}

/// [`run_campaign`] with a journal and stop controller: completed runs
/// are appended to an on-disk journal as they finish, a stop request ends
/// the campaign at a run boundary with [`FrameworkError::Interrupted`],
/// and [`CampaignCtl::resume`] re-executes only the runs the journal is
/// missing — rendering a [`CampaignSummary`] byte-identical to the
/// uninterrupted campaign's, at any [`CampaignConfig::jobs`] value.
///
/// # Errors
///
/// Everything [`run_campaign`] returns, plus journal errors: a journal
/// whose header does not match this campaign's identity (spec, seed,
/// runs, schedule, algorithm, config/graph fingerprints) or whose body is
/// corrupt is refused with a typed [`CheckpointError`], and a stop
/// request surfaces as [`FrameworkError::Interrupted`] after in-flight
/// runs were journaled.
pub fn run_campaign_with(
    cfg: &GpuConfig,
    graph: &Csr,
    algorithm: &dyn Algorithm,
    schedule: Schedule,
    campaign: &CampaignConfig,
    ctl: &CampaignCtl,
) -> Result<CampaignResult, FrameworkError> {
    if ctl.journal.is_some() && campaign.profile {
        // Per-run profiles are not journaled, so a resumed merge would
        // silently miss the already-completed runs' histograms.
        return Err(FrameworkError::Io {
            what: "the campaign journal does not record per-run profiles; \
                   disable profiling to use a journal"
                .to_string(),
        });
    }
    if ctl.resume && ctl.journal.is_none() {
        return Err(FrameworkError::Io {
            what: "campaign resume requires a journal path".to_string(),
        });
    }
    let mut golden_session = Session::new(*cfg);
    let golden = golden_session.run(graph, algorithm, schedule)?.output;

    // Journal setup: load completed entries on resume, then open for
    // appending (or start fresh with a header line).
    let mut completed: BTreeMap<u32, RunOutput> = BTreeMap::new();
    let mut journal_file = None;
    if let Some(path) = &ctl.journal {
        let header = journal_header(campaign, schedule, algorithm.name(), cfg, graph);
        let io_err = |what: &str, e: std::io::Error| FrameworkError::Io {
            what: format!("{what} campaign journal {}: {e}", path.display()),
        };
        let loaded = if ctl.resume {
            load_journal(path, &header, campaign)?
        } else {
            None
        };
        let file = match loaded {
            Some(entries) => {
                completed = entries;
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| io_err("opening", e))?
            }
            None => {
                let mut f = std::fs::File::create(path).map_err(|e| io_err("creating", e))?;
                writeln!(f, "{header}").map_err(|e| io_err("writing", e))?;
                f
            }
        };
        journal_file = Some(Mutex::new(file));
    }
    let journal = &journal_file;
    let journal_error: Mutex<Option<std::io::ErrorKind>> = Mutex::new(None);

    let run_one = |index: u32| -> RunOutput {
        let seed = SplitMix64::child_seed(campaign.seed, index as u64);
        // A stop request skips queued runs; runs already executing finish
        // and are journaled, so nothing completed is ever lost.
        if ctl.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst)) {
            return RunOutput {
                seed,
                faults_total: None,
                retries: 0,
                fell_back: false,
                outcome: None,
                profile: None,
                skipped: true,
            };
        }
        let mut session = Session::new(*cfg);
        session.inject = Some(campaign.spec);
        session.inject_seed = seed;
        session.max_weaver_retries = campaign.max_weaver_retries;
        session.fallback = campaign.fallback;
        session.profile = campaign.profile;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let result = session.run(graph, algorithm, schedule);
            (result, session.last_faults())
        }));
        let out = match caught {
            Err(_) => RunOutput {
                seed,
                faults_total: None,
                retries: 0,
                fell_back: false,
                outcome: None,
                profile: None,
                skipped: false,
            },
            Ok((result, faults)) => {
                let (retries, fell_back, profile) = match &result {
                    Ok(report) => (
                        report.weaver_retries,
                        report.fell_back_from.is_some(),
                        report.profile.clone(),
                    ),
                    Err(_) => (0, false, None),
                };
                let outcome = match result {
                    Ok(report) => match report.output.mismatch(&golden, GOLDEN_TOL) {
                        None => {
                            let mut detail = String::from("output matches golden");
                            if report.weaver_retries > 0 {
                                detail.push_str(&format!(
                                    " after {} retr{}",
                                    report.weaver_retries,
                                    if report.weaver_retries == 1 {
                                        "y"
                                    } else {
                                        "ies"
                                    }
                                ));
                            }
                            if let Some(from) = report.fell_back_from {
                                detail.push_str(&format!(" (fell back from {from:?} to S_wm)"));
                            }
                            (Outcome::Masked, detail)
                        }
                        Some(at) => (Outcome::Sdc, format!("output diverges at index {at}")),
                    },
                    Err(FrameworkError::Sim(
                        e @ (SimError::Deadlock { .. }
                        | SimError::CycleLimit { .. }
                        | SimError::WeaverTimeout { .. }),
                    )) => (Outcome::Hang, e.to_string()),
                    Err(e) => (Outcome::DetectedCrash, e.to_string()),
                };
                RunOutput {
                    seed,
                    faults_total: faults.map(|f| f.total()),
                    retries,
                    fell_back,
                    outcome: Some(outcome),
                    profile,
                    skipped: false,
                }
            }
        };
        if let Some(j) = journal {
            // Append and flush as the run completes: a kill afterwards
            // finds this run durable. Append errors are latched, not
            // fatal — a lost entry only means a resume re-runs it.
            let line = journal_line(index, &out);
            let mut f = j.lock().expect("journal mutex");
            if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
                let mut latch = journal_error.lock().expect("journal error latch");
                latch.get_or_insert(e.kind());
            }
        }
        out
    };

    let todo: Vec<u32> = (0..campaign.runs)
        .filter(|i| !completed.contains_key(i))
        .collect();
    let outputs: Vec<(u32, RunOutput)> = if campaign.jobs > 1 && todo.len() > 1 {
        let pool = ThreadPoolBuilder::new()
            .num_threads(campaign.jobs)
            .build()
            .expect("campaign thread pool");
        pool.install(|| {
            todo.clone()
                .into_par_iter()
                .map(|i| (i, run_one(i)))
                .collect()
        })
    } else {
        todo.iter().map(|&i| (i, run_one(i))).collect()
    };
    for (index, out) in outputs {
        if !out.skipped {
            completed.insert(index, out);
        }
    }

    // Fold in run-index order: the summary counters and the JSON they
    // render to must not depend on worker scheduling — or on how many
    // invocations (via the journal) it took to complete the campaign.
    let mut summary = CampaignSummary {
        spec: campaign.spec.to_string(),
        seed: campaign.seed,
        ..CampaignSummary::default()
    };
    let mut runs = Vec::with_capacity(campaign.runs as usize);
    let mut panics = 0u64;
    let mut missing = 0u32;
    let mut merged_profile = campaign.profile.then(ProfileReport::default);
    for index in 0..campaign.runs {
        let Some(out) = completed.remove(&index) else {
            missing += 1;
            continue;
        };
        if let (Some(acc), Some(p)) = (merged_profile.as_mut(), out.profile.as_ref()) {
            acc.merge(p);
        }
        let Some((outcome, detail)) = out.outcome else {
            panics += 1;
            continue;
        };
        summary.faults_injected += out.faults_total.unwrap_or(0);
        summary.retries += out.retries;
        if out.fell_back {
            summary.fallbacks += 1;
        }
        summary.record(outcome);
        runs.push(CampaignRun {
            index,
            seed: out.seed,
            outcome,
            detail,
        });
    }
    if missing > 0 {
        let saved = match &ctl.journal {
            Some(path) => format!("completed runs are journaled in {}", path.display()),
            None => "no journal was configured, completed runs are lost".to_string(),
        };
        return Err(FrameworkError::Interrupted {
            what: format!(
                "campaign stopped with {missing} of {} runs not started; {saved}",
                campaign.runs
            ),
        });
    }

    Ok(CampaignResult {
        summary,
        runs,
        panics,
        profile: merged_profile,
        journal_error: journal_error.into_inner().expect("journal error latch"),
    })
}

/// The journal's identity line: everything that must match for a resume
/// to be sound. Large integers (seeds, fingerprints) are hex strings so
/// the JSON round-trips exactly through an `f64`-based parser.
fn journal_header(
    campaign: &CampaignConfig,
    schedule: Schedule,
    algorithm: &str,
    cfg: &GpuConfig,
    graph: &Csr,
) -> String {
    format!(
        "{{\"schema\":\"sparseweaver-fault-journal-v1\",\"spec\":\"{}\",\
         \"seed\":\"{:#018x}\",\"runs\":{},\"schedule\":\"{}\",\"algo\":\"{}\",\
         \"config_fp\":\"{:#018x}\",\"graph_fp\":\"{:#018x}\"}}",
        json::escape(&campaign.spec.to_string()),
        campaign.seed,
        campaign.runs,
        schedule.paper_name(),
        json::escape(algorithm),
        crate::profile::config_fingerprint(cfg),
        crate::profile::graph_fingerprint(graph),
    )
}

/// One journal line per completed run. Panicked runs record
/// `"outcome":null` and are re-executed on resume.
fn journal_line(index: u32, out: &RunOutput) -> String {
    let mut line = format!("{{\"index\":{index},\"seed\":\"{:#018x}\"", out.seed);
    match &out.outcome {
        None => line.push_str(",\"outcome\":null}"),
        Some((outcome, detail)) => {
            line.push_str(&format!(
                ",\"outcome\":\"{}\",\"detail\":\"{}\",\"faults\":{},\
                 \"retries\":{},\"fell_back\":{}}}",
                outcome.label(),
                json::escape(detail),
                out.faults_total
                    .map_or_else(|| "null".to_string(), |v| v.to_string()),
                out.retries,
                out.fell_back,
            ));
        }
    }
    line
}

/// Loads a journal for resumption. Returns the completed runs keyed by
/// index, `None` when the file is missing or its header line never made
/// it to disk intact (start fresh), or an error when the journal belongs
/// to a different campaign or a non-final line is corrupt. The torn
/// *final* line a kill can leave behind is tolerated and dropped; its run
/// simply re-executes.
fn load_journal(
    path: &Path,
    expected_header: &str,
    campaign: &CampaignConfig,
) -> Result<Option<BTreeMap<u32, RunOutput>>, FrameworkError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(FrameworkError::Io {
                what: format!("reading campaign journal {}: {e}", path.display()),
            })
        }
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return Ok(None);
    };
    if header != expected_header {
        if json::parse(header).is_err() && text.lines().count() == 1 {
            // The kill landed mid-header: nothing usable, start over.
            return Ok(None);
        }
        return Err(CheckpointError::Restore {
            what: format!(
                "campaign journal {} was written by a different campaign \
                 (header {header:?}, expected {expected_header:?})",
                path.display()
            ),
        }
        .into());
    }
    let rest: Vec<&str> = lines.collect();
    let mut entries = BTreeMap::new();
    for (i, line) in rest.iter().enumerate() {
        let corrupt = |what: String| -> FrameworkError {
            CheckpointError::Corrupt {
                what: format!("campaign journal {} line {}: {what}", path.display(), i + 2),
            }
            .into()
        };
        let parsed = match json::parse(line) {
            Ok(v) => v,
            // Only the final line may be torn (the append was cut short).
            Err(_) if i + 1 == rest.len() => break,
            Err(e) => return Err(corrupt(e)),
        };
        let index = parsed
            .get("index")
            .and_then(Value::as_num)
            .ok_or_else(|| corrupt("missing run index".into()))? as u32;
        if index >= campaign.runs {
            return Err(corrupt(format!(
                "run index {index} out of range (campaign has {} runs)",
                campaign.runs
            )));
        }
        let seed = parsed
            .get("seed")
            .and_then(parse_hex_u64)
            .ok_or_else(|| corrupt("missing or malformed seed".into()))?;
        if seed != SplitMix64::child_seed(campaign.seed, index as u64) {
            return Err(corrupt(format!(
                "seed {seed:#x} does not derive from the campaign seed for run {index}"
            )));
        }
        let outcome = match parsed.get("outcome") {
            Some(Value::Null) => None,
            Some(Value::Str(label)) => {
                let outcome = Outcome::from_label(label)
                    .ok_or_else(|| corrupt(format!("unknown outcome label {label:?}")))?;
                let detail = parsed
                    .get("detail")
                    .and_then(Value::as_str)
                    .ok_or_else(|| corrupt("missing detail".into()))?
                    .to_string();
                Some((outcome, detail))
            }
            _ => return Err(corrupt("missing outcome".into())),
        };
        let faults_total = match parsed.get("faults") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_num()
                    .ok_or_else(|| corrupt("malformed fault count".into()))? as u64,
            ),
        };
        let retries = parsed.get("retries").and_then(Value::as_num).unwrap_or(0.0) as u64;
        let fell_back = matches!(parsed.get("fell_back"), Some(Value::Bool(true)));
        // A run journaled twice (e.g. a panic retried on an earlier
        // resume) keeps the latest entry.
        entries.insert(
            index,
            RunOutput {
                seed,
                faults_total,
                retries,
                fell_back,
                outcome,
                profile: None,
                skipped: false,
            },
        );
    }
    // Panicked entries re-execute: drop them after parsing (their lines
    // stay valid, the re-run appends a fresh entry).
    entries.retain(|_, out| out.outcome.is_some());
    Ok(Some(entries))
}

fn parse_hex_u64(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Bfs;
    use sparseweaver_graph::generators;

    fn campaign_with_jobs(spec: &str, seed: u64, runs: u32, jobs: usize) -> CampaignResult {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(FaultSpec::parse(spec).unwrap(), seed, runs);
        campaign.jobs = jobs;
        run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap()
    }

    fn small_campaign(spec: &str, seed: u64, runs: u32) -> CampaignResult {
        campaign_with_jobs(spec, seed, runs, 1)
    }

    #[test]
    fn fault_free_spec_is_all_masked() {
        let r = small_campaign("reg=0.0", 1, 3);
        assert_eq!(r.summary.masked, 3);
        assert_eq!(r.summary.faults_injected, 0);
        assert!(r.summary.is_classified());
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign("reg=0.002,mem=0.001", 42, 4);
        let b = small_campaign("reg=0.002,mem=0.001", 42, 4);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn weaver_drops_end_masked_via_retry_or_fallback() {
        let r = small_campaign("weaver-drop=1.0", 7, 2);
        // Every response drops: retries exhaust, the run degrades to
        // S_wm, and the output still matches the golden run.
        assert_eq!(r.summary.masked, 2, "summary: {:?}", r.summary);
        assert_eq!(r.summary.fallbacks, 2);
        assert!(r.summary.retries >= 2);
        assert!(r.summary.faults_injected > 0);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn every_run_is_classified_under_heavy_injection() {
        let r = small_campaign("reg=0.01,mem=0.01,fetch=0.005", 3, 6);
        assert!(r.summary.is_classified(), "summary: {:?}", r.summary);
        assert_eq!(r.panics, 0);
        assert_eq!(r.runs.len(), 6);
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let serial = campaign_with_jobs("reg=0.005,mem=0.002,fetch=0.002", 11, 8, 1);
        let parallel = campaign_with_jobs("reg=0.005,mem=0.002,fetch=0.002", 11, 8, 4);
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(serial.panics, parallel.panics);
    }

    #[test]
    fn fixed_seed_campaign_covers_all_four_classes() {
        // The no-fallback golden campaign of
        // `scripts/check_fault_campaign.sh` at reduced run count: same
        // graph, spec, seed, and retry bound as the committed
        // `fault_campaign_hang_golden.json`, and the same coverage claim
        // — every outcome class, including hang, appears.
        let g = generators::with_random_weights(&generators::uniform(24, 72, 7), 64, 0xC11);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(
            FaultSpec::parse("reg=0.002,mem=0.001,fetch=0.001,weaver-drop=0.02").unwrap(),
            7,
            30,
        );
        campaign.max_weaver_retries = crate::runtime::DEFAULT_WEAVER_RETRIES;
        campaign.fallback = false;
        let r = run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();
        assert!(r.summary.is_classified(), "summary: {:?}", r.summary);
        assert!(r.summary.masked > 0, "no masked runs: {:?}", r.summary);
        assert!(r.summary.sdc > 0, "no SDC runs: {:?}", r.summary);
        assert!(
            r.summary.detected_crash > 0,
            "no detected crashes: {:?}",
            r.summary
        );
        assert!(r.summary.hang > 0, "no hangs: {:?}", r.summary);
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn profiled_campaign_merges_identically_across_jobs() {
        let run = |jobs: usize| {
            let g = generators::uniform(24, 72, 7);
            let cfg = GpuConfig::small_test();
            let mut campaign =
                CampaignConfig::new(FaultSpec::parse("reg=0.002,mem=0.001").unwrap(), 13, 6);
            campaign.jobs = jobs;
            campaign.profile = true;
            run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.summary, parallel.summary);
        let sp = serial.profile.expect("profile aggregated");
        let pp = parallel.profile.expect("profile aggregated");
        assert_eq!(sp, pp, "merged profile depends on worker scheduling");
        assert!(sp.core_issues.iter().sum::<u64>() > 0);
        // An unprofiled campaign carries no profile at all.
        let plain = small_campaign("reg=0.0", 1, 1);
        assert!(plain.profile.is_none());
    }

    #[test]
    fn journaled_campaign_resumes_byte_identically() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let campaign = CampaignConfig::new(
            FaultSpec::parse("reg=0.005,mem=0.002,fetch=0.002").unwrap(),
            11,
            8,
        );
        let golden =
            run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();

        let path = std::env::temp_dir().join("sw_campaign_journal_resume.jsonl");
        let ctl = CampaignCtl {
            journal: Some(path.clone()),
            ..CampaignCtl::default()
        };
        let full = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &ctl,
        )
        .unwrap();
        assert_eq!(full.summary, golden.summary);
        assert!(full.journal_error.is_none());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 9, "header + one line per run");

        // Keep the header and the first three completed entries, as if
        // the campaign had been killed mid-flight...
        let partial: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", partial.join("\n"))).unwrap();
        // ...and resume at a different worker count.
        let mut parallel = campaign;
        parallel.jobs = 4;
        let resume_ctl = CampaignCtl {
            journal: Some(path.clone()),
            resume: true,
            ..CampaignCtl::default()
        };
        let resumed = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &parallel,
            &resume_ctl,
        )
        .unwrap();
        assert_eq!(resumed.summary, golden.summary);
        assert_eq!(resumed.summary.to_json(), golden.summary.to_json());
        assert_eq!(resumed.runs, golden.runs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_tolerates_torn_final_line() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let campaign = CampaignConfig::new(FaultSpec::parse("reg=0.002,mem=0.001").unwrap(), 42, 4);
        let golden =
            run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();

        let path = std::env::temp_dir().join("sw_campaign_journal_torn.jsonl");
        let ctl = CampaignCtl {
            journal: Some(path.clone()),
            ..CampaignCtl::default()
        };
        run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &ctl,
        )
        .unwrap();
        // Cut the final line mid-write, as a kill would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();
        let resume_ctl = CampaignCtl {
            journal: Some(path.clone()),
            resume: true,
            ..CampaignCtl::default()
        };
        let resumed = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &resume_ctl,
        )
        .unwrap();
        assert_eq!(resumed.summary.to_json(), golden.summary.to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_refuses_a_different_campaign() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let campaign = CampaignConfig::new(FaultSpec::parse("reg=0.002").unwrap(), 1, 2);
        let path = std::env::temp_dir().join("sw_campaign_journal_mismatch.jsonl");
        let ctl = CampaignCtl {
            journal: Some(path.clone()),
            ..CampaignCtl::default()
        };
        run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &ctl,
        )
        .unwrap();
        // A different seed is a different campaign: the journal must not
        // be folded into it.
        let mut other = campaign;
        other.seed = 2;
        let resume_ctl = CampaignCtl {
            journal: Some(path.clone()),
            resume: true,
            ..CampaignCtl::default()
        };
        let err = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &other,
            &resume_ctl,
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                FrameworkError::Checkpoint(CheckpointError::Restore { .. })
            ),
            "unexpected error: {err:?}"
        );
        // Corrupting a non-final line is refused too.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = "{\"index\":0,\"seed\":\"0xdead\",\"outcome\":\"masked\"}".into();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &resume_ctl,
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                FrameworkError::Checkpoint(CheckpointError::Corrupt { .. })
            ),
            "unexpected error: {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stopped_campaign_is_interrupted_and_resumable() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let campaign = CampaignConfig::new(FaultSpec::parse("reg=0.002,mem=0.001").unwrap(), 9, 6);
        let golden =
            run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();

        let path = std::env::temp_dir().join("sw_campaign_journal_stop.jsonl");
        // A pre-set stop flag: every queued run is skipped, completed
        // entries (none) stay journaled, and the campaign reports the
        // interruption.
        let stop = Arc::new(AtomicBool::new(true));
        let ctl = CampaignCtl {
            journal: Some(path.clone()),
            stop: Some(stop),
            ..CampaignCtl::default()
        };
        let err = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &ctl,
        )
        .unwrap_err();
        assert!(
            matches!(&err, FrameworkError::Interrupted { .. }),
            "unexpected error: {err:?}"
        );
        // The journal header survived, so a resume completes the campaign.
        let resume_ctl = CampaignCtl {
            journal: Some(path.clone()),
            resume: true,
            ..CampaignCtl::default()
        };
        let resumed = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &resume_ctl,
        )
        .unwrap();
        assert_eq!(resumed.summary.to_json(), golden.summary.to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_rejects_profiled_campaigns() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(FaultSpec::parse("reg=0.002").unwrap(), 1, 2);
        campaign.profile = true;
        let ctl = CampaignCtl {
            journal: Some(std::env::temp_dir().join("sw_campaign_journal_profile.jsonl")),
            ..CampaignCtl::default()
        };
        let err = run_campaign_with(
            &cfg,
            &g,
            &Bfs::new(0),
            Schedule::SparseWeaver,
            &campaign,
            &ctl,
        )
        .unwrap_err();
        assert!(matches!(&err, FrameworkError::Io { .. }));
    }

    #[test]
    fn fallback_off_surfaces_weaver_timeouts_as_hangs() {
        let g = generators::uniform(24, 72, 7);
        let cfg = GpuConfig::small_test();
        let mut campaign = CampaignConfig::new(FaultSpec::parse("weaver-drop=1.0").unwrap(), 7, 2);
        campaign.fallback = false;
        let r = run_campaign(&cfg, &g, &Bfs::new(0), Schedule::SparseWeaver, &campaign).unwrap();
        // With every response dropped and no S_wm degradation, retries
        // exhaust and both runs land in the hang class.
        assert_eq!(r.summary.hang, 2, "summary: {:?}", r.summary);
        assert_eq!(r.summary.fallbacks, 0);
        assert_eq!(r.panics, 0);
    }
}
