//! Property tests: every instruction survives an encode/decode round
//! trip, for both the full-IR encoding and the 32-bit Table II words.

use proptest::prelude::*;
use sparseweaver_isa::{
    encode, AluOp, AtomOp, BrCond, CsrKind, FCmpOp, FpuOp, Instr, Reg, Space, VoteOp, Width,
};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(Reg)
}

fn reg32() -> impl Strategy<Value = Reg> {
    // Real RISC-V encodings carry 5-bit register fields.
    (0u8..32).prop_map(Reg)
}

fn width() -> impl Strategy<Value = Width> {
    prop::sample::select(Width::ALL.to_vec())
}

fn space() -> impl Strategy<Value = Space> {
    prop_oneof![Just(Space::Global), Just(Space::Shared)]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Bar),
        Just(Instr::Join),
        any::<u8>().prop_map(Instr::Phase),
        (reg(), any::<i64>()).prop_map(|(rd, imm)| Instr::LdImm { rd, imm }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            reg(),
            reg(),
            any::<i32>()
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluI {
                op,
                rd,
                rs1,
                imm: imm as i64
            }),
        (
            prop::sample::select(FpuOp::ALL.to_vec()),
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Fpu { op, rd, rs1, rs2 }),
        (
            prop::sample::select(FCmpOp::ALL.to_vec()),
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::FCmp { op, rd, rs1, rs2 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Instr::CvtIF { rd, rs1 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Instr::CvtFI { rd, rs1 }),
        (prop::sample::select(CsrKind::ALL.to_vec()), reg())
            .prop_map(|(kind, rd)| Instr::Csr { rd, kind }),
        (reg(), any::<u8>()).prop_map(|(rd, idx)| Instr::LdArg { rd, idx }),
        (reg(), reg(), any::<i32>(), width(), space()).prop_map(
            |(rd, addr, offset, width, space)| Instr::Ld {
                rd,
                addr,
                offset,
                width,
                space
            }
        ),
        (reg(), reg(), any::<i32>(), width(), space()).prop_map(
            |(src, addr, offset, width, space)| Instr::St {
                src,
                addr,
                offset,
                width,
                space
            }
        ),
        (
            prop::sample::select(AtomOp::ALL.to_vec()),
            reg(),
            reg(),
            reg(),
            space()
        )
            .prop_map(|(op, rd, addr, src, space)| Instr::Atom {
                op,
                rd,
                addr,
                src,
                space
            }),
        (
            prop::sample::select(BrCond::ALL.to_vec()),
            reg(),
            reg(),
            any::<u32>()
        )
            .prop_map(|(cond, rs1, rs2, target)| Instr::Br {
                cond,
                rs1,
                rs2,
                target
            }),
        any::<u32>().prop_map(|target| Instr::Jmp { target }),
        (reg(), any::<u32>(), any::<u32>()).prop_map(|(rs1, else_target, end_target)| {
            Instr::Split {
                rs1,
                else_target,
                end_target,
            }
        }),
        (prop::sample::select(VoteOp::ALL.to_vec()), reg(), reg())
            .prop_map(|(op, rd, rs1)| Instr::Vote { op, rd, rs1 }),
        reg().prop_map(|rs1| Instr::Tmc { rs1 }),
        (reg32(), reg32(), reg32()).prop_map(|(vid, loc, deg)| Instr::WeaverReg { vid, loc, deg }),
        reg32().prop_map(|rd| Instr::WeaverDecId { rd }),
        reg32().prop_map(|rd| Instr::WeaverDecLoc { rd }),
        reg32().prop_map(|vid| Instr::WeaverSkip { vid }),
    ]
}

proptest! {
    #[test]
    fn full_ir_round_trips(i in instr()) {
        let (h, p) = encode::encode_instr(&i);
        let back = encode::decode_instr(h, p).expect("decodes");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn weaver_words_round_trip(
        vid in reg32(),
        loc in reg32(),
        deg in reg32(),
        rd in reg32(),
    ) {
        for i in [
            Instr::WeaverReg { vid, loc, deg },
            Instr::WeaverSkip { vid },
            Instr::WeaverDecId { rd },
            Instr::WeaverDecLoc { rd },
        ] {
            let w = encode::encode_weaver(&i).expect("weaver word");
            prop_assert_eq!(encode::decode_weaver(w).expect("decodes"), i);
        }
    }

    /// Weaver words always land on the custom-0/custom-1 opcodes, so they
    /// never collide with standard RISC-V instructions.
    #[test]
    fn weaver_words_use_custom_opcodes(rd in reg32()) {
        for i in [Instr::WeaverDecId { rd }, Instr::WeaverDecLoc { rd }] {
            let w = encode::encode_weaver(&i).expect("weaver word");
            prop_assert_eq!(w & 0x7f, encode::OPC_CUSTOM0);
        }
    }

    /// `sources`/`dest` report registers consistently with round-tripping
    /// (decode never invents registers).
    #[test]
    fn decode_preserves_register_sets(i in instr()) {
        let (h, p) = encode::encode_instr(&i);
        let back = encode::decode_instr(h, p).expect("decodes");
        prop_assert_eq!(back.sources(), i.sources());
        prop_assert_eq!(back.dest(), i.dest());
    }
}
