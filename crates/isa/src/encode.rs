//! Instruction encodings.
//!
//! Two encoders live here:
//!
//! 1. [`encode_weaver`]/[`decode_weaver`] — the exact 32-bit RISC-V
//!    encodings of the four Weaver instructions from Table II. Following
//!    the paper, `WEAVER_DEC_ID`/`WEAVER_DEC_LOC` are R-type instructions
//!    on the `custom-0` opcode and `WEAVER_REG`/`WEAVER_SKIP` are R4-type
//!    ("C"-form) instructions on `custom-1`; `funct` values are 7, 8, 1
//!    and 2 respectively. (The paper distinguishes instructions "using
//!    funct3 and funct2"; since 8 does not fit in 3 bits, the R-type funct
//!    is carried in `funct7` — a detail the paper leaves open.)
//! 2. [`encode_instr`]/[`decode_instr`] — a lossless 96-bit encoding of the
//!    full IR, used by the backend compiler's "ISA table expansion" and by
//!    round-trip tests.

use crate::instr::{
    AluOp, AtomOp, BrCond, CsrKind, FCmpOp, FpuOp, Instr, Reg, Space, VoteOp, Width,
};

/// RISC-V `custom-0` major opcode (bits 6:0 = `0001011`).
pub const OPC_CUSTOM0: u32 = 0x0B;
/// RISC-V `custom-1` major opcode (bits 6:0 = `0101011`).
pub const OPC_CUSTOM1: u32 = 0x2B;

/// `funct` value of `WEAVER_REG` (Table II).
pub const FUNCT_WEAVER_REG: u32 = 1;
/// `funct` value of `WEAVER_SKIP` (Table II).
pub const FUNCT_WEAVER_SKIP: u32 = 2;
/// `funct` value of `WEAVER_DEC_ID` (Table II).
pub const FUNCT_WEAVER_DEC_ID: u32 = 7;
/// `funct` value of `WEAVER_DEC_LOC` (Table II).
pub const FUNCT_WEAVER_DEC_LOC: u32 = 8;

/// Error decoding a machine word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
    opcode
        | ((rd as u32 & 0x1f) << 7)
        | ((funct3 & 0x7) << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | ((rs2 as u32 & 0x1f) << 20)
        | ((funct7 & 0x7f) << 25)
}

fn r4_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct2: u32, rs3: u8) -> u32 {
    opcode
        | ((rd as u32 & 0x1f) << 7)
        | ((funct3 & 0x7) << 12)
        | ((rs1 as u32 & 0x1f) << 15)
        | ((rs2 as u32 & 0x1f) << 20)
        | ((funct2 & 0x3) << 25)
        | ((rs3 as u32 & 0x1f) << 27)
}

/// Encodes one of the four Weaver instructions into its 32-bit RISC-V word
/// (Table II). Returns `None` for non-Weaver instructions.
///
/// # Examples
///
/// ```
/// use sparseweaver_isa::{encode, Instr, Reg};
///
/// let w = encode::encode_weaver(&Instr::WeaverDecId { rd: Reg(5) }).unwrap();
/// assert_eq!(w & 0x7f, encode::OPC_CUSTOM0);
/// ```
pub fn encode_weaver(instr: &Instr) -> Option<u32> {
    match *instr {
        Instr::WeaverReg { vid, loc, deg } => Some(r4_type(
            OPC_CUSTOM1,
            0,
            FUNCT_WEAVER_REG,
            vid.0,
            loc.0,
            FUNCT_WEAVER_REG,
            deg.0,
        )),
        Instr::WeaverSkip { vid } => Some(r4_type(
            OPC_CUSTOM1,
            0,
            FUNCT_WEAVER_SKIP,
            vid.0,
            0,
            FUNCT_WEAVER_SKIP,
            0,
        )),
        Instr::WeaverDecId { rd } => Some(r_type(OPC_CUSTOM0, rd.0, 0, 0, 0, FUNCT_WEAVER_DEC_ID)),
        Instr::WeaverDecLoc { rd } => {
            Some(r_type(OPC_CUSTOM0, rd.0, 0, 0, 0, FUNCT_WEAVER_DEC_LOC))
        }
        _ => None,
    }
}

/// Decodes a 32-bit word on the `custom-0`/`custom-1` opcodes back into a
/// Weaver instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid Weaver encoding.
pub fn decode_weaver(word: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7f;
    let rd = ((word >> 7) & 0x1f) as u8;
    let rs1 = ((word >> 15) & 0x1f) as u8;
    let rs2 = ((word >> 20) & 0x1f) as u8;
    let funct7 = (word >> 25) & 0x7f;
    let funct2 = (word >> 25) & 0x3;
    let rs3 = ((word >> 27) & 0x1f) as u8;
    match opcode {
        OPC_CUSTOM0 => match funct7 {
            FUNCT_WEAVER_DEC_ID => Ok(Instr::WeaverDecId { rd: Reg(rd) }),
            FUNCT_WEAVER_DEC_LOC => Ok(Instr::WeaverDecLoc { rd: Reg(rd) }),
            f => Err(DecodeError {
                reason: format!("unknown custom-0 funct7 {f}"),
            }),
        },
        OPC_CUSTOM1 => match funct2 {
            FUNCT_WEAVER_REG => Ok(Instr::WeaverReg {
                vid: Reg(rs1),
                loc: Reg(rs2),
                deg: Reg(rs3),
            }),
            FUNCT_WEAVER_SKIP => Ok(Instr::WeaverSkip { vid: Reg(rs1) }),
            f => Err(DecodeError {
                reason: format!("unknown custom-1 funct2 {f}"),
            }),
        },
        o => Err(DecodeError {
            reason: format!("opcode {o:#x} is not custom-0/custom-1"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Full-IR lossless encoding: 96 bits as (u32 header, u64 payload).
// Header: [7:0]=opcode, [15:8]=rd, [23:16]=rs1, [31:24]=rs2.
// Payload: immediate / targets / subop, packed per opcode.
// ---------------------------------------------------------------------------

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_BAR: u8 = 2;
const OP_PHASE: u8 = 3;
const OP_LDIMM: u8 = 4;
const OP_ALU: u8 = 5;
const OP_ALUI: u8 = 6;
const OP_FPU: u8 = 7;
const OP_FCMP: u8 = 8;
const OP_CVTIF: u8 = 9;
const OP_CVTFI: u8 = 10;
const OP_CSR: u8 = 11;
const OP_LDARG: u8 = 12;
const OP_LD: u8 = 13;
const OP_ST: u8 = 14;
const OP_ATOM: u8 = 15;
const OP_BR: u8 = 16;
const OP_JMP: u8 = 17;
const OP_SPLIT: u8 = 18;
const OP_JOIN: u8 = 19;
const OP_VOTE: u8 = 20;
const OP_TMC: u8 = 21;
const OP_WREG: u8 = 22;
const OP_WDECID: u8 = 23;
const OP_WDECLOC: u8 = 24;
const OP_WSKIP: u8 = 25;

fn header(op: u8, rd: u8, rs1: u8, rs2: u8) -> u32 {
    op as u32 | (rd as u32) << 8 | (rs1 as u32) << 16 | (rs2 as u32) << 24
}

fn subop_index<T: PartialEq + Copy>(all: &[T], v: T) -> u64 {
    all.iter().position(|&x| x == v).expect("subop in table") as u64
}

fn mem_payload(op_idx: u64, offset: i32, width: Width, space: Space) -> u64 {
    let w = subop_index(&Width::ALL, width);
    let s = match space {
        Space::Global => 0u64,
        Space::Shared => 1,
    };
    op_idx | w << 4 | s << 6 | ((offset as u32 as u64) << 16)
}

/// Encodes any IR instruction losslessly into a `(header, payload)` pair.
pub fn encode_instr(instr: &Instr) -> (u32, u64) {
    match *instr {
        Instr::Nop => (header(OP_NOP, 0, 0, 0), 0),
        Instr::Halt => (header(OP_HALT, 0, 0, 0), 0),
        Instr::Bar => (header(OP_BAR, 0, 0, 0), 0),
        Instr::Phase(p) => (header(OP_PHASE, 0, 0, 0), p as u64),
        Instr::LdImm { rd, imm } => (header(OP_LDIMM, rd.0, 0, 0), imm as u64),
        Instr::Alu { op, rd, rs1, rs2 } => (
            header(OP_ALU, rd.0, rs1.0, rs2.0),
            subop_index(&AluOp::ALL, op),
        ),
        Instr::AluI { op, rd, rs1, imm } => (
            header(OP_ALUI, rd.0, rs1.0, 0),
            subop_index(&AluOp::ALL, op) | ((imm as i32 as u32 as u64) << 8),
        ),
        Instr::Fpu { op, rd, rs1, rs2 } => (
            header(OP_FPU, rd.0, rs1.0, rs2.0),
            subop_index(&FpuOp::ALL, op),
        ),
        Instr::FCmp { op, rd, rs1, rs2 } => (
            header(OP_FCMP, rd.0, rs1.0, rs2.0),
            subop_index(&FCmpOp::ALL, op),
        ),
        Instr::CvtIF { rd, rs1 } => (header(OP_CVTIF, rd.0, rs1.0, 0), 0),
        Instr::CvtFI { rd, rs1 } => (header(OP_CVTFI, rd.0, rs1.0, 0), 0),
        Instr::Csr { rd, kind } => (header(OP_CSR, rd.0, 0, 0), subop_index(&CsrKind::ALL, kind)),
        Instr::LdArg { rd, idx } => (header(OP_LDARG, rd.0, 0, 0), idx as u64),
        Instr::Ld {
            rd,
            addr,
            offset,
            width,
            space,
        } => (
            header(OP_LD, rd.0, addr.0, 0),
            mem_payload(0, offset, width, space),
        ),
        Instr::St {
            src,
            addr,
            offset,
            width,
            space,
        } => (
            header(OP_ST, 0, src.0, addr.0),
            mem_payload(0, offset, width, space),
        ),
        Instr::Atom {
            op,
            rd,
            addr,
            src,
            space,
        } => (
            header(OP_ATOM, rd.0, addr.0, src.0),
            subop_index(&AtomOp::ALL, op) | if space == Space::Shared { 1 << 8 } else { 0 },
        ),
        Instr::Br {
            cond,
            rs1,
            rs2,
            target,
        } => (
            header(OP_BR, 0, rs1.0, rs2.0),
            subop_index(&BrCond::ALL, cond) | (target as u64) << 8,
        ),
        Instr::Jmp { target } => (header(OP_JMP, 0, 0, 0), target as u64),
        Instr::Split {
            rs1,
            else_target,
            end_target,
        } => (
            header(OP_SPLIT, 0, rs1.0, 0),
            else_target as u64 | (end_target as u64) << 32,
        ),
        Instr::Join => (header(OP_JOIN, 0, 0, 0), 0),
        Instr::Vote { op, rd, rs1 } => (
            header(OP_VOTE, rd.0, rs1.0, 0),
            subop_index(&VoteOp::ALL, op),
        ),
        Instr::Tmc { rs1 } => (header(OP_TMC, 0, rs1.0, 0), 0),
        Instr::WeaverReg { vid, loc, deg } => (header(OP_WREG, 0, vid.0, loc.0), deg.0 as u64),
        Instr::WeaverDecId { rd } => (header(OP_WDECID, rd.0, 0, 0), 0),
        Instr::WeaverDecLoc { rd } => (header(OP_WDECLOC, rd.0, 0, 0), 0),
        Instr::WeaverSkip { vid } => (header(OP_WSKIP, 0, vid.0, 0), 0),
    }
}

/// Decodes a `(header, payload)` pair produced by [`encode_instr`].
///
/// # Errors
///
/// Returns [`DecodeError`] on unknown opcodes or sub-operation indices.
pub fn decode_instr(hdr: u32, payload: u64) -> Result<Instr, DecodeError> {
    let op = (hdr & 0xff) as u8;
    // Register fields must address the architectural register file; a
    // corrupted word whose field exceeds NUM_REGS is an illegal
    // instruction, not an out-of-bounds register-file index.
    let reg = |field: u32| -> Result<Reg, DecodeError> {
        let r = (field & 0xff) as u8;
        if (r as usize) < crate::NUM_REGS {
            Ok(Reg(r))
        } else {
            Err(DecodeError {
                reason: format!("register x{r} out of range (file has {})", crate::NUM_REGS),
            })
        }
    };
    let rd = reg(hdr >> 8)?;
    let rs1 = reg(hdr >> 16)?;
    let rs2 = reg(hdr >> 24)?;
    let sub = |all_len: usize| -> Result<usize, DecodeError> {
        let i = (payload & 0xff) as usize;
        if i < all_len {
            Ok(i)
        } else {
            Err(DecodeError {
                reason: format!("subop {i} out of range"),
            })
        }
    };
    let mem = || -> (i32, Width, Space) {
        let w = Width::ALL[((payload >> 4) & 0x3) as usize % 3];
        let s = if (payload >> 6) & 1 == 0 {
            Space::Global
        } else {
            Space::Shared
        };
        ((payload >> 16) as u32 as i32, w, s)
    };
    Ok(match op {
        OP_NOP => Instr::Nop,
        OP_HALT => Instr::Halt,
        OP_BAR => Instr::Bar,
        OP_PHASE => Instr::Phase(payload as u8),
        OP_LDIMM => Instr::LdImm {
            rd,
            imm: payload as i64,
        },
        OP_ALU => Instr::Alu {
            op: AluOp::ALL[sub(AluOp::ALL.len())?],
            rd,
            rs1,
            rs2,
        },
        OP_ALUI => {
            let i = (payload & 0xff) as usize;
            if i >= AluOp::ALL.len() {
                return Err(DecodeError {
                    reason: format!("alui subop {i}"),
                });
            }
            Instr::AluI {
                op: AluOp::ALL[i],
                rd,
                rs1,
                imm: (payload >> 8) as u32 as i32 as i64,
            }
        }
        OP_FPU => Instr::Fpu {
            op: FpuOp::ALL[sub(FpuOp::ALL.len())?],
            rd,
            rs1,
            rs2,
        },
        OP_FCMP => Instr::FCmp {
            op: FCmpOp::ALL[sub(FCmpOp::ALL.len())?],
            rd,
            rs1,
            rs2,
        },
        OP_CVTIF => Instr::CvtIF { rd, rs1 },
        OP_CVTFI => Instr::CvtFI { rd, rs1 },
        OP_CSR => Instr::Csr {
            rd,
            kind: CsrKind::ALL[(payload as usize) % CsrKind::ALL.len()],
        },
        OP_LDARG => Instr::LdArg {
            rd,
            idx: payload as u8,
        },
        OP_LD => {
            let (offset, width, space) = mem();
            Instr::Ld {
                rd,
                addr: rs1,
                offset,
                width,
                space,
            }
        }
        OP_ST => {
            let (offset, width, space) = mem();
            Instr::St {
                src: rs1,
                addr: rs2,
                offset,
                width,
                space,
            }
        }
        OP_ATOM => Instr::Atom {
            op: AtomOp::ALL[(payload & 0xf) as usize % AtomOp::ALL.len()],
            rd,
            addr: rs1,
            src: rs2,
            space: if payload >> 8 & 1 == 1 {
                Space::Shared
            } else {
                Space::Global
            },
        },
        OP_BR => Instr::Br {
            cond: BrCond::ALL[sub(BrCond::ALL.len())?],
            rs1,
            rs2,
            target: (payload >> 8) as u32,
        },
        OP_JMP => Instr::Jmp {
            target: payload as u32,
        },
        OP_SPLIT => Instr::Split {
            rs1,
            else_target: payload as u32,
            end_target: (payload >> 32) as u32,
        },
        OP_JOIN => Instr::Join,
        OP_VOTE => Instr::Vote {
            op: VoteOp::ALL[sub(VoteOp::ALL.len())?],
            rd,
            rs1,
        },
        OP_TMC => Instr::Tmc { rs1 },
        OP_WREG => Instr::WeaverReg {
            vid: rs1,
            loc: rs2,
            deg: reg(payload as u32)?,
        },
        OP_WDECID => Instr::WeaverDecId { rd },
        OP_WDECLOC => Instr::WeaverDecLoc { rd },
        OP_WSKIP => Instr::WeaverSkip { vid: rs1 },
        o => {
            return Err(DecodeError {
                reason: format!("unknown opcode {o}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_opcodes() {
        // WEAVER_REG: CUSTOM1, funct 1.
        let w = encode_weaver(&Instr::WeaverReg {
            vid: Reg(1),
            loc: Reg(2),
            deg: Reg(3),
        })
        .unwrap();
        assert_eq!(w & 0x7f, OPC_CUSTOM1);
        assert_eq!((w >> 25) & 0x3, FUNCT_WEAVER_REG);
        // WEAVER_SKIP: CUSTOM1, funct 2.
        let w = encode_weaver(&Instr::WeaverSkip { vid: Reg(4) }).unwrap();
        assert_eq!(w & 0x7f, OPC_CUSTOM1);
        assert_eq!((w >> 25) & 0x3, FUNCT_WEAVER_SKIP);
        // WEAVER_DEC_ID: CUSTOM0, funct 7.
        let w = encode_weaver(&Instr::WeaverDecId { rd: Reg(9) }).unwrap();
        assert_eq!(w & 0x7f, OPC_CUSTOM0);
        assert_eq!((w >> 25) & 0x7f, FUNCT_WEAVER_DEC_ID);
        // WEAVER_DEC_LOC: CUSTOM0, funct 8.
        let w = encode_weaver(&Instr::WeaverDecLoc { rd: Reg(10) }).unwrap();
        assert_eq!(w & 0x7f, OPC_CUSTOM0);
        assert_eq!((w >> 25) & 0x7f, FUNCT_WEAVER_DEC_LOC);
    }

    #[test]
    fn weaver_round_trip() {
        let instrs = [
            Instr::WeaverReg {
                vid: Reg(5),
                loc: Reg(6),
                deg: Reg(7),
            },
            Instr::WeaverSkip { vid: Reg(12) },
            Instr::WeaverDecId { rd: Reg(31) },
            Instr::WeaverDecLoc { rd: Reg(0) },
        ];
        for i in instrs {
            let w = encode_weaver(&i).unwrap();
            assert_eq!(decode_weaver(w).unwrap(), i, "round trip of {i}");
        }
    }

    #[test]
    fn weaver_rejects_garbage() {
        assert!(decode_weaver(0x0000_0033).is_err()); // plain ADD opcode
        assert!(decode_weaver(OPC_CUSTOM0).is_err()); // funct7 == 0
    }

    #[test]
    fn non_weaver_encode_is_none() {
        assert!(encode_weaver(&Instr::Nop).is_none());
        assert!(encode_weaver(&Instr::Halt).is_none());
    }

    #[test]
    fn full_ir_round_trip_samples() {
        let samples = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Bar,
            Instr::Phase(4),
            Instr::LdImm {
                rd: Reg(3),
                imm: -123456789,
            },
            Instr::Alu {
                op: AluOp::MaxS,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            },
            Instr::AluI {
                op: AluOp::Sll,
                rd: Reg(9),
                rs1: Reg(8),
                imm: -4,
            },
            Instr::Fpu {
                op: FpuOp::Div,
                rd: Reg(4),
                rs1: Reg(5),
                rs2: Reg(6),
            },
            Instr::FCmp {
                op: FCmpOp::Le,
                rd: Reg(4),
                rs1: Reg(5),
                rs2: Reg(6),
            },
            Instr::CvtIF {
                rd: Reg(1),
                rs1: Reg(2),
            },
            Instr::CvtFI {
                rd: Reg(1),
                rs1: Reg(2),
            },
            Instr::Csr {
                rd: Reg(7),
                kind: CsrKind::ThreadsPerWarp,
            },
            Instr::LdArg { rd: Reg(2), idx: 9 },
            Instr::Ld {
                rd: Reg(1),
                addr: Reg(2),
                offset: -64,
                width: Width::B4,
                space: Space::Shared,
            },
            Instr::St {
                src: Reg(1),
                addr: Reg(2),
                offset: 1024,
                width: Width::B8,
                space: Space::Global,
            },
            Instr::Atom {
                op: AtomOp::FAdd,
                rd: Reg(1),
                addr: Reg(2),
                src: Reg(3),
                space: Space::Global,
            },
            Instr::Atom {
                op: AtomOp::Add,
                rd: Reg(4),
                addr: Reg(5),
                src: Reg(6),
                space: Space::Shared,
            },
            Instr::Br {
                cond: BrCond::GeU,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 777,
            },
            Instr::Jmp { target: 3 },
            Instr::Split {
                rs1: Reg(5),
                else_target: 10,
                end_target: 20,
            },
            Instr::Join,
            Instr::Vote {
                op: VoteOp::Ballot,
                rd: Reg(1),
                rs1: Reg(2),
            },
            Instr::Tmc { rs1: Reg(3) },
            Instr::WeaverReg {
                vid: Reg(1),
                loc: Reg(2),
                deg: Reg(3),
            },
            Instr::WeaverDecId { rd: Reg(1) },
            Instr::WeaverDecLoc { rd: Reg(2) },
            Instr::WeaverSkip { vid: Reg(3) },
        ];
        for i in samples {
            let (h, p) = encode_instr(&i);
            assert_eq!(decode_instr(h, p).unwrap(), i, "round trip of {i}");
        }
    }

    #[test]
    fn decode_unknown_opcode_fails() {
        assert!(decode_instr(200, 0).is_err());
    }
}
