//! The assembler: labels, virtual registers, structured divergence.
//!
//! The SparseWeaver frontend compiler composes kernels from schedule
//! templates and user-defined-function snippets (Section IV-B). Both are
//! written against [`Asm`], which provides:
//!
//! - register allocation from the 64-entry architectural file;
//! - forward labels with fixups resolved at [`Asm::finish`];
//! - structured divergence helpers ([`Asm::if_nonzero`],
//!   [`Asm::if_else`]) that lower to Vortex-style `split`/`join` pairs.

use crate::instr::{
    AluOp, AtomOp, BrCond, CsrKind, FCmpOp, FpuOp, Instr, Reg, Space, VoteOp, Width,
};
use crate::program::Program;
use crate::{NUM_REGS, ZERO};

/// A code label. Created unbound by [`Asm::new_label`], positioned by
/// [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Fixup {
    BrTarget(Label),
    JmpTarget(Label),
    SplitTargets(Label, Label),
}

/// Kernel assembler.
///
/// # Examples
///
/// ```
/// use sparseweaver_isa::{Asm, Reg};
///
/// let mut a = Asm::new("count_to_ten");
/// let i = a.reg();
/// let ten = a.reg();
/// a.li(i, 0);
/// a.li(ten, 10);
/// let top = a.new_label();
/// a.bind(top);
/// a.addi(i, i, 1);
/// a.bltu(i, ten, top);
/// a.halt();
/// let prog = a.finish();
/// assert_eq!(prog.name(), "count_to_ten");
/// ```
#[derive(Debug)]
pub struct Asm {
    name: String,
    instrs: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    labels: Vec<Option<u32>>,
    free: Vec<u8>,
    /// Bit `r` set while `xr` is checked out of the pool. The live count
    /// is `allocated.count_ones()`, so high-water stays exact even if the
    /// free list were ever corrupted; it also makes the double-free check
    /// O(1) and catches frees of registers `reg()` never handed out.
    allocated: u64,
    high_water: usize,
}

impl Asm {
    /// Creates an assembler for a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        // x0 is the zero register; allocate upward from x1.
        let free = (1..NUM_REGS as u8).rev().collect();
        Asm {
            name: name.into(),
            instrs: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
            free,
            allocated: 0,
            high_water: 0,
        }
    }

    /// The always-zero register `x0`.
    pub fn zero(&self) -> Reg {
        ZERO
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    ///
    /// Panics if all 63 allocatable registers are live.
    pub fn reg(&mut self) -> Reg {
        let r = self
            .free
            .pop()
            .unwrap_or_else(|| panic!("kernel `{}` ran out of registers", self.name));
        self.allocated |= 1 << r;
        self.high_water = self.high_water.max(self.allocated.count_ones() as usize);
        Reg(r)
    }

    /// Returns a register to the pool. Freed registers are handed back
    /// out LIFO, so the most recently released register is reused first.
    ///
    /// # Panics
    ///
    /// Panics on double-free, on freeing a register `reg()` never
    /// allocated (including out-of-range indices), or on freeing `x0`.
    pub fn free(&mut self, r: Reg) {
        assert!(r != ZERO, "cannot free x0");
        assert!(
            (r.0 as usize) < NUM_REGS,
            "cannot free {r}: not an architectural register"
        );
        assert!(self.allocated & (1 << r.0) != 0, "double free of {r}");
        self.allocated &= !(1 << r.0);
        self.free.push(r.0);
    }

    /// Maximum number of registers ever live at once.
    pub fn register_high_water(&self) -> usize {
        self.high_water
    }

    /// Number of registers currently checked out.
    pub fn live_registers(&self) -> usize {
        self.allocated.count_ones() as usize
    }

    /// Current instruction position.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in `{}`",
            self.name
        );
        self.labels[label.0] = Some(self.here());
    }

    /// Appends a raw instruction (no fixups).
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    // --- control -----------------------------------------------------------

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Emits a core-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Emits a zero-cost phase marker for cycle attribution.
    pub fn phase(&mut self, p: u8) {
        self.emit(Instr::Phase(p));
    }

    /// Emits a conditional branch to `label`.
    pub fn br(&mut self, cond: BrCond, rs1: Reg, rs2: Reg, label: Label) {
        self.fixups
            .push((self.instrs.len(), Fixup::BrTarget(label)));
        self.emit(Instr::Br {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::Ne, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::LtU, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::GeU, rs1, rs2, label);
    }

    /// `blts rs1, rs2, label` (signed).
    pub fn blts(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::LtS, rs1, rs2, label);
    }

    /// `bges rs1, rs2, label` (signed).
    pub fn bges(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.br(BrCond::GeS, rs1, rs2, label);
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        self.fixups
            .push((self.instrs.len(), Fixup::JmpTarget(label)));
        self.emit(Instr::Jmp { target: u32::MAX });
    }

    // --- integer ALU --------------------------------------------------------

    /// `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Instr::LdImm { rd, imm });
    }

    /// Register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    /// Register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Instr::AluI { op, rd, rs1, imm });
    }

    /// `rd <- rs1` (move).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) {
        self.alui(AluOp::Add, rd, rs1, 0);
    }

    /// `rd <- rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd <- rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Add, rd, rs1, imm);
    }

    /// `rd <- rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `rd <- rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `rd <- rs1 * imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Mul, rd, rs1, imm);
    }

    /// `rd <- rs1 / rs2` (unsigned).
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::DivU, rd, rs1, rs2);
    }

    /// `rd <- rs1 % rs2` (unsigned).
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::RemU, rd, rs1, rs2);
    }

    /// `rd <- rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Sll, rd, rs1, imm);
    }

    /// `rd <- rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Srl, rd, rs1, imm);
    }

    /// `rd <- (rs1 < rs2) ? 1 : 0` (unsigned).
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::SltU, rd, rs1, rs2);
    }

    /// `rd <- (rs1 < imm) ? 1 : 0` (unsigned).
    pub fn sltui(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::SltU, rd, rs1, imm);
    }

    /// `rd <- (rs1 == rs2) ? 1 : 0`.
    pub fn seq(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Seq, rd, rs1, rs2);
    }

    /// `rd <- (rs1 == imm) ? 1 : 0`.
    pub fn seqi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Seq, rd, rs1, imm);
    }

    /// `rd <- (rs1 != rs2) ? 1 : 0`.
    pub fn sne(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Sne, rd, rs1, rs2);
    }

    /// `rd <- (rs1 != imm) ? 1 : 0`.
    pub fn snei(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Sne, rd, rs1, imm);
    }

    /// `rd <- min(rs1, rs2)` (unsigned).
    pub fn minu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::MinU, rd, rs1, rs2);
    }

    /// `rd <- rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }

    /// `rd <- rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }

    /// `rd <- rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Xor, rd, rs1, imm);
    }

    // --- floating point ------------------------------------------------------

    /// Register-register FPU operation on f64 bit patterns.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Fpu { op, rd, rs1, rs2 });
    }

    /// `rd <- rs1 + rs2` (f64).
    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Add, rd, rs1, rs2);
    }

    /// `rd <- rs1 * rs2` (f64).
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Mul, rd, rs1, rs2);
    }

    /// `rd <- rs1 / rs2` (f64).
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.fpu(FpuOp::Div, rd, rs1, rs2);
    }

    /// `rd <- cmp(rs1, rs2)` on f64 values.
    pub fn fcmp(&mut self, op: FCmpOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FCmp { op, rd, rs1, rs2 });
    }

    /// `rd <- (f64)(i64)rs1`.
    pub fn i2f(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::CvtIF { rd, rs1 });
    }

    /// `rd <- (i64)(f64)rs1`.
    pub fn f2i(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Instr::CvtFI { rd, rs1 });
    }

    /// Loads an f64 constant's bit pattern.
    pub fn lif(&mut self, rd: Reg, value: f64) {
        self.emit(Instr::LdImm {
            rd,
            imm: value.to_bits() as i64,
        });
    }

    // --- system ---------------------------------------------------------------

    /// Reads a CSR.
    pub fn csr(&mut self, rd: Reg, kind: CsrKind) {
        self.emit(Instr::Csr { rd, kind });
    }

    /// Loads kernel argument `idx`.
    pub fn ldarg(&mut self, rd: Reg, idx: u8) {
        self.emit(Instr::LdArg { rd, idx });
    }

    /// Warp vote.
    pub fn vote(&mut self, op: VoteOp, rd: Reg, rs1: Reg) {
        self.emit(Instr::Vote { op, rd, rs1 });
    }

    /// Thread-mask control.
    pub fn tmc(&mut self, rs1: Reg) {
        self.emit(Instr::Tmc { rs1 });
    }

    // --- memory ----------------------------------------------------------------

    /// Global load.
    pub fn ldg(&mut self, rd: Reg, addr: Reg, offset: i32, width: Width) {
        self.emit(Instr::Ld {
            rd,
            addr,
            offset,
            width,
            space: Space::Global,
        });
    }

    /// Shared-memory load.
    pub fn lds(&mut self, rd: Reg, addr: Reg, offset: i32, width: Width) {
        self.emit(Instr::Ld {
            rd,
            addr,
            offset,
            width,
            space: Space::Shared,
        });
    }

    /// Global store.
    pub fn stg(&mut self, src: Reg, addr: Reg, offset: i32, width: Width) {
        self.emit(Instr::St {
            src,
            addr,
            offset,
            width,
            space: Space::Global,
        });
    }

    /// Shared-memory store.
    pub fn sts(&mut self, src: Reg, addr: Reg, offset: i32, width: Width) {
        self.emit(Instr::St {
            src,
            addr,
            offset,
            width,
            space: Space::Shared,
        });
    }

    /// Atomic read-modify-write on global memory.
    pub fn atom(&mut self, op: AtomOp, rd: Reg, addr: Reg, src: Reg) {
        self.emit(Instr::Atom {
            op,
            rd,
            addr,
            src,
            space: Space::Global,
        });
    }

    /// Atomic read-modify-write on shared memory (queue counters etc.).
    pub fn atom_shared(&mut self, op: AtomOp, rd: Reg, addr: Reg, src: Reg) {
        self.emit(Instr::Atom {
            op,
            rd,
            addr,
            src,
            space: Space::Shared,
        });
    }

    // --- weaver ------------------------------------------------------------------

    /// `WEAVER_REG vid, loc, deg`.
    pub fn weaver_reg(&mut self, vid: Reg, loc: Reg, deg: Reg) {
        self.emit(Instr::WeaverReg { vid, loc, deg });
    }

    /// `WEAVER_DEC_ID rd`.
    pub fn weaver_dec_id(&mut self, rd: Reg) {
        self.emit(Instr::WeaverDecId { rd });
    }

    /// `WEAVER_DEC_LOC rd`.
    pub fn weaver_dec_loc(&mut self, rd: Reg) {
        self.emit(Instr::WeaverDecLoc { rd });
    }

    /// `WEAVER_SKIP vid`.
    pub fn weaver_skip(&mut self, vid: Reg) {
        self.emit(Instr::WeaverSkip { vid });
    }

    // --- structured divergence ------------------------------------------------------

    /// Runs `body` only on lanes where `cond != 0`, lowering to a
    /// `split`/`join` pair (the classic predicated-if of SIMT code).
    pub fn if_nonzero<F: FnOnce(&mut Asm)>(&mut self, cond: Reg, body: F) {
        let l_join = self.new_label();
        let l_end = self.new_label();
        self.fixups
            .push((self.instrs.len(), Fixup::SplitTargets(l_join, l_end)));
        self.emit(Instr::Split {
            rs1: cond,
            else_target: u32::MAX,
            end_target: u32::MAX,
        });
        body(self);
        self.bind(l_join);
        self.emit(Instr::Join);
        self.bind(l_end);
    }

    /// Two-armed divergent if: lanes with `cond != 0` run `then_body`,
    /// the rest run `else_body`.
    pub fn if_else<T: FnOnce(&mut Asm), E: FnOnce(&mut Asm)>(
        &mut self,
        cond: Reg,
        then_body: T,
        else_body: E,
    ) {
        let l_else = self.new_label();
        let l_end = self.new_label();
        self.fixups
            .push((self.instrs.len(), Fixup::SplitTargets(l_else, l_end)));
        self.emit(Instr::Split {
            rs1: cond,
            else_target: u32::MAX,
            end_target: u32::MAX,
        });
        then_body(self);
        self.emit(Instr::Join);
        self.bind(l_else);
        else_body(self);
        self.emit(Instr::Join);
        self.bind(l_end);
    }

    /// Resolves fixups and produces the [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        for &(at, fixup) in &self.fixups {
            let resolve = |l: Label| -> u32 {
                self.labels[l.0]
                    .unwrap_or_else(|| panic!("unbound label in kernel `{}`", self.name))
            };
            match (fixup, &mut self.instrs[at]) {
                (Fixup::BrTarget(l), Instr::Br { target, .. }) => *target = resolve(l),
                (Fixup::JmpTarget(l), Instr::Jmp { target }) => *target = resolve(l),
                (
                    Fixup::SplitTargets(le, lend),
                    Instr::Split {
                        else_target,
                        end_target,
                        ..
                    },
                ) => {
                    *else_target = resolve(le);
                    *end_target = resolve(lend);
                }
                (f, i) => panic!("fixup {f:?} does not match instruction {i}"),
            }
        }
        Program::new(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut a = Asm::new("fwd");
        let end = a.new_label();
        a.jmp(end);
        a.nop();
        a.bind(end);
        a.halt();
        let p = a.finish();
        assert_eq!(p.get(0), Some(&Instr::Jmp { target: 2 }));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut a = Asm::new("back");
        let top = a.new_label();
        a.bind(top);
        a.nop();
        let (r1, r2) = {
            let r1 = a.reg();
            let r2 = a.reg();
            (r1, r2)
        };
        a.bne(r1, r2, top);
        a.halt();
        let p = a.finish();
        match p.get(1) {
            Some(&Instr::Br { target, .. }) => assert_eq!(target, 0),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new("bad");
        let l = a.new_label();
        a.jmp(l);
        let _ = a.finish();
    }

    #[test]
    fn register_pool_reuse() {
        let mut a = Asm::new("regs");
        let r1 = a.reg();
        assert_eq!(r1, Reg(1));
        a.free(r1);
        let r2 = a.reg();
        assert_eq!(r2, Reg(1));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Asm::new("regs");
        let r = a.reg();
        a.free(r);
        a.free(r);
    }

    #[test]
    #[should_panic(expected = "ran out of registers")]
    fn register_exhaustion_panics() {
        let mut a = Asm::new("greedy");
        for _ in 0..100 {
            let _ = a.reg();
        }
    }

    #[test]
    fn if_nonzero_lowering() {
        let mut a = Asm::new("ifnz");
        let c = a.reg();
        a.if_nonzero(c, |a| a.nop());
        a.halt();
        let p = a.finish();
        // split, nop, join, halt
        match p.get(0) {
            Some(&Instr::Split {
                else_target,
                end_target,
                ..
            }) => {
                assert_eq!(else_target, 2); // the join
                assert_eq!(end_target, 3); // past the join
            }
            other => panic!("expected split, got {other:?}"),
        }
        assert_eq!(p.get(2), Some(&Instr::Join));
    }

    #[test]
    fn if_else_lowering() {
        let mut a = Asm::new("ifelse");
        let c = a.reg();
        a.if_else(c, |a| a.nop(), |a| a.bar());
        a.halt();
        let p = a.finish();
        // 0: split  1: nop  2: join  3: bar  4: join  5: halt
        match p.get(0) {
            Some(&Instr::Split {
                else_target,
                end_target,
                ..
            }) => {
                assert_eq!(else_target, 3);
                assert_eq!(end_target, 5);
            }
            other => panic!("expected split, got {other:?}"),
        }
        assert_eq!(p.get(2), Some(&Instr::Join));
        assert_eq!(p.get(4), Some(&Instr::Join));
    }

    /// Interleaved alloc/free must track the exact live-set peak: the
    /// high-water is the maximum simultaneously-live count, not the
    /// number of distinct registers ever touched, and free-then-realloc
    /// churn must neither inflate nor undercount it.
    #[test]
    fn high_water_exact_across_interleaved_alloc_free() {
        let mut a = Asm::new("interleave");
        let r1 = a.reg(); // live: 1, peak 1
        let r2 = a.reg(); // live: 2, peak 2
        assert_eq!(a.register_high_water(), 2);
        a.free(r1); // live: 1
        let r3 = a.reg(); // live: 2 (reuses x1), peak still 2
        assert_eq!(r3, Reg(1), "LIFO reuse of the freed register");
        assert_eq!(a.register_high_water(), 2);
        let r4 = a.reg(); // live: 3, peak 3
        assert_eq!(a.register_high_water(), 3);
        a.free(r2);
        a.free(r3);
        a.free(r4); // live: 0
        assert_eq!(a.live_registers(), 0);
        // Re-allocate up to (but not past) the old peak: unchanged.
        let _r5 = a.reg();
        let _r6 = a.reg();
        let _r7 = a.reg();
        assert_eq!(a.register_high_water(), 3);
        // One past the old peak bumps it.
        let _r8 = a.reg();
        assert_eq!(a.register_high_water(), 4);
        assert_eq!(a.live_registers(), 4);
    }

    #[test]
    #[should_panic(expected = "not an architectural register")]
    fn out_of_range_free_panics() {
        let mut a = Asm::new("regs");
        a.free(Reg(64));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn freeing_a_never_allocated_register_panics() {
        let mut a = Asm::new("regs");
        let _ = a.reg(); // x1 is live; x50 never handed out
        a.free(Reg(50));
    }

    #[test]
    fn high_water_tracks_live_registers() {
        let mut a = Asm::new("hw");
        let r1 = a.reg();
        let r2 = a.reg();
        a.free(r1);
        a.free(r2);
        let _ = a.reg();
        assert_eq!(a.register_high_water(), 2);
    }

    #[test]
    fn lif_round_trips_f64() {
        let mut a = Asm::new("f");
        let r = a.reg();
        a.lif(r, 0.85);
        let p = a.finish();
        match p.get(0) {
            Some(&Instr::LdImm { imm, .. }) => {
                assert_eq!(f64::from_bits(imm as u64), 0.85);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
