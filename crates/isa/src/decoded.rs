//! Pre-decoded kernel programs for the simulator's hot loop.
//!
//! [`Instr::sources`] returns a fresh `Vec<Reg>` on every call, which the
//! core pipeline would otherwise pay once per scoreboard check per warp
//! per cycle. [`DecodedProgram`] decodes each [`Program`] exactly once at
//! launch into a dense, PC-indexed [`DecodedInstr`] array carrying the
//! source registers in a fixed inline array and the destination register
//! pre-extracted, so issue-time dependence checks are allocation-free.
//!
//! The decoded form is a pure cache: it holds the same [`Instr`] values
//! in the same order as the source program, so fetching from it is
//! bit-identical to fetching from the `Program` — the fetch-flip fault
//! path must still re-encode/corrupt/re-decode the word per fetch and
//! bypasses this cache entirely.

use crate::instr::{Instr, Reg};
use crate::program::Program;

/// Upper bound on source operands across the ISA (`weaver.reg` reads
/// `vid`, `loc`, `deg`).
pub const MAX_SRCS: usize = 3;

/// One instruction with its register operands pre-extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The instruction exactly as it appears in the source [`Program`].
    pub instr: Instr,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    srcs: [Reg; MAX_SRCS],
    num_srcs: u8,
}

impl DecodedInstr {
    /// Decodes a single instruction. Unused `srcs` slots are padded with
    /// `x0`, which never pends in the scoreboard.
    pub fn new(instr: Instr) -> Self {
        let sources = instr.sources();
        debug_assert!(sources.len() <= MAX_SRCS);
        let mut srcs = [Reg(0); MAX_SRCS];
        srcs[..sources.len()].copy_from_slice(&sources);
        DecodedInstr {
            dest: instr.dest(),
            num_srcs: sources.len() as u8,
            srcs,
            instr,
        }
    }

    /// The instruction's source registers, without allocating.
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.num_srcs as usize]
    }

    /// All registers the scoreboard must consult before issue: sources
    /// followed by the destination (write-after-write ordering).
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs().iter().copied().chain(self.dest)
    }
}

/// A [`Program`] decoded once into a dense, PC-indexed instruction cache.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decodes every instruction of `program`, preserving PC order.
    pub fn new(program: &Program) -> Self {
        DecodedProgram {
            instrs: program
                .instrs()
                .iter()
                .map(|i| DecodedInstr::new(*i))
                .collect(),
        }
    }

    /// The decoded instruction at `pc`, or `None` past the end.
    pub fn get(&self, pc: u32) -> Option<&DecodedInstr> {
        self.instrs.get(pc as usize)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Space, Width};

    fn decode_all(p: &Program) -> DecodedProgram {
        DecodedProgram::new(p)
    }

    #[test]
    fn decoded_matches_program_instrs_and_operands() {
        let p = Program::new(
            "d",
            vec![
                Instr::LdImm { rd: Reg(1), imm: 7 },
                Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(1),
                    rs2: Reg(1),
                },
                Instr::WeaverReg {
                    vid: Reg(1),
                    loc: Reg(2),
                    deg: Reg(3),
                },
                Instr::St {
                    src: Reg(2),
                    addr: Reg(1),
                    offset: 0,
                    width: Width::B4,
                    space: Space::Global,
                },
                Instr::Halt,
            ],
        );
        let d = decode_all(&p);
        assert_eq!(d.len(), p.len());
        assert!(!d.is_empty());
        for pc in 0..p.len() as u32 {
            let di = d.get(pc).unwrap();
            let i = p.get(pc).unwrap();
            assert_eq!(&di.instr, i);
            assert_eq!(di.srcs(), i.sources().as_slice());
            assert_eq!(di.dest, i.dest());
        }
        assert_eq!(d.get(p.len() as u32), None);
    }

    #[test]
    fn regs_chains_sources_then_dest() {
        let di = DecodedInstr::new(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(4),
            rs1: Reg(2),
            rs2: Reg(3),
        });
        let regs: Vec<Reg> = di.regs().collect();
        assert_eq!(regs, vec![Reg(2), Reg(3), Reg(4)]);
    }

    #[test]
    fn zero_operand_instrs_decode_empty() {
        let di = DecodedInstr::new(Instr::Nop);
        assert!(di.srcs().is_empty());
        assert_eq!(di.dest, None);
        assert_eq!(di.regs().count(), 0);
    }

    #[test]
    fn max_srcs_covers_the_widest_instruction() {
        let widest = Instr::WeaverReg {
            vid: Reg(1),
            loc: Reg(2),
            deg: Reg(3),
        };
        assert_eq!(widest.sources().len(), MAX_SRCS);
    }
}
