//! The kernel IR and Weaver ISA extension.
//!
//! The paper prototypes SparseWeaver on the RISC-V Vortex GPU and adds four
//! custom instructions (Table II):
//!
//! | instruction                  | type | opcode  | funct | description                 |
//! |------------------------------|------|---------|-------|-----------------------------|
//! | `WEAVER_REG vid, loc, deg`   | C    | CUSTOM1 | 1     | register VID, loc, degree   |
//! | `WEAVER_DEC_ID vid`          | R    | CUSTOM0 | 7     | return VID of next workload |
//! | `WEAVER_DEC_LOC eid`         | R    | CUSTOM0 | 8     | return EID of next workload |
//! | `WEAVER_SKIP vid`            | C    | CUSTOM1 | 2     | send skip signal for VID    |
//!
//! This crate defines:
//!
//! - [`Instr`] — a RISC-V-flavoured SIMT kernel IR: 64-bit integer/float
//!   ALU ops, global/shared loads and stores, atomics, uniform branches,
//!   Vortex-style explicit `split`/`join` divergence control, `tmc` thread
//!   mask control, votes/ballots, core barriers, and the four Weaver
//!   instructions;
//! - [`encode`] — exact 32-bit RISC-V `custom-0`/`custom-1` encodings for
//!   the Weaver instructions (reproducing Table II) plus a lossless binary
//!   encoding of the full IR;
//! - [`Asm`] — an assembler with labels, virtual-register allocation and
//!   structured-divergence helpers, used by the SparseWeaver compiler to
//!   stitch schedule templates and algorithm snippets into [`Program`]s.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod decoded;
pub mod encode;
pub mod instr;
pub mod program;

pub use asm::{Asm, Label};
pub use decoded::{DecodedInstr, DecodedProgram};
pub use instr::{AluOp, AtomOp, BrCond, CsrKind, FCmpOp, FpuOp, Instr, Reg, Space, VoteOp, Width};
pub use program::Program;

/// Number of architectural registers per thread.
///
/// Vortex cores expose 32 integer + 32 float RISC-V registers; the IR uses a
/// unified 64-entry file of 64-bit registers.
pub const NUM_REGS: usize = 64;

/// Register 0 is hardwired to zero, as in RISC-V.
pub const ZERO: Reg = Reg(0);
