//! Executable kernel programs.

use std::fmt;

use crate::instr::Instr;

/// A finished kernel: a sequence of instructions with resolved branch
/// targets.
///
/// Produced by [`crate::Asm::finish`]; executed by the `sparseweaver-sim`
/// core pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
    name: String,
}

impl Program {
    /// Wraps a raw instruction sequence. Targets must already be valid
    /// absolute indices.
    ///
    /// # Panics
    ///
    /// Panics if any branch/jump/split target is out of range (targets may
    /// point one past the end, which halts the warp).
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        let len = instrs.len() as u32;
        for (pc, i) in instrs.iter().enumerate() {
            let check = |t: u32| {
                assert!(
                    t <= len,
                    "instruction {pc} ({i}) targets {t}, beyond program length {len}"
                );
            };
            match *i {
                Instr::Br { target, .. } | Instr::Jmp { target } => check(target),
                Instr::Split {
                    else_target,
                    end_target,
                    ..
                } => {
                    check(else_target);
                    check(end_target);
                }
                _ => {}
            }
        }
        Program {
            instrs,
            name: name.into(),
        }
    }

    /// The kernel's name (for reports and traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn get(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// All instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of Weaver ISA-extension instructions in the program.
    pub fn weaver_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_weaver()).count()
    }

    /// The highest architectural register index the program mentions
    /// (sources or destinations), i.e. the number of register-file slots
    /// above `x0` the kernel needs. `x0` is hardwired and does not count;
    /// a program touching only `x0` reports 0.
    ///
    /// This is the *static* footprint the register-file occupancy model
    /// divides into `regs_per_core` — unlike [`crate::Asm`]'s dynamic
    /// high-water, it is defined for any program, including streams
    /// rewritten after assembly (e.g. by the register allocator).
    pub fn register_high_water(&self) -> usize {
        self.instrs
            .iter()
            .flat_map(|i| i.sources().into_iter().chain(i.dest()))
            .map(|r| r.0 as usize)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Program {
    /// Disassembly listing: one instruction per line with its pc.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; kernel `{}` ({} instrs)", self.name, self.instrs.len())?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:5}: {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    #[test]
    fn valid_targets_accepted() {
        let p = Program::new("t", vec![Instr::Jmp { target: 2 }, Instr::Nop, Instr::Halt]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(0), Some(&Instr::Jmp { target: 2 }));
        assert_eq!(p.get(9), None);
    }

    #[test]
    fn target_one_past_end_allowed() {
        // Falling off the end halts; a jump there is legal.
        let _ = Program::new("t", vec![Instr::Jmp { target: 1 }]);
    }

    #[test]
    #[should_panic(expected = "beyond program length")]
    fn out_of_range_target_panics() {
        let _ = Program::new("t", vec![Instr::Jmp { target: 5 }]);
    }

    #[test]
    fn register_high_water_spans_sources_and_dests() {
        let p = Program::new(
            "hw",
            vec![
                Instr::LdImm { rd: Reg(3), imm: 1 },
                Instr::St {
                    src: Reg(3),
                    addr: Reg(7),
                    offset: 0,
                    width: crate::instr::Width::B8,
                    space: crate::instr::Space::Global,
                },
                Instr::Halt,
            ],
        );
        assert_eq!(p.register_high_water(), 7);
        let zero_only = Program::new("z", vec![Instr::Tmc { rs1: Reg(0) }, Instr::Halt]);
        assert_eq!(zero_only.register_high_water(), 0);
    }

    #[test]
    fn weaver_count_and_display() {
        let p = Program::new(
            "k",
            vec![
                Instr::WeaverDecId { rd: Reg(1) },
                Instr::WeaverDecLoc { rd: Reg(2) },
                Instr::Halt,
            ],
        );
        assert_eq!(p.weaver_instr_count(), 2);
        let text = p.to_string();
        assert!(text.contains("weaver.dec.id"));
        assert!(text.contains("kernel `k`"));
    }
}
