//! IR instruction definitions.
//!
//! The IR is deliberately close to the Vortex RISC-V GPGPU ISA: scalar
//! per-lane registers, uniform branches, and *explicit* divergence control
//! via `split`/`join` (Vortex's IPDOM mechanism) plus `tmc` thread-mask
//! writes — the very instructions the SparseWeaver backend compiler inserts
//! around the distribution loop (Section IV-B).

use std::fmt;

/// An architectural register index (`x0..x63`). `x0` reads as zero and
/// ignores writes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Integer ALU operation. Values are 64-bit words; signedness is encoded in
/// the operation, as in RISC-V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    DivU,
    RemU,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Set if less-than, signed (result 0/1).
    SltS,
    /// Set if less-than, unsigned (result 0/1).
    SltU,
    /// Set if equal (result 0/1).
    Seq,
    /// Set if not equal (result 0/1).
    Sne,
    MinU,
    MaxU,
    MinS,
    MaxS,
}

impl AluOp {
    /// All ALU operations (for encode/decode tables and property tests).
    pub const ALL: [AluOp; 19] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::DivU,
        AluOp::RemU,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::SltS,
        AluOp::SltU,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::MinU,
        AluOp::MaxU,
        AluOp::MinS,
        AluOp::MaxS,
    ];

    /// Applies the operation to two 64-bit words.
    ///
    /// Division and remainder by zero follow the RISC-V convention
    /// (`u64::MAX` and the dividend, respectively) instead of trapping.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::DivU => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::RemU => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::SltS => ((a as i64) < (b as i64)) as u64,
            AluOp::SltU => (a < b) as u64,
            AluOp::Seq => (a == b) as u64,
            AluOp::Sne => (a != b) as u64,
            AluOp::MinU => a.min(b),
            AluOp::MaxU => a.max(b),
            AluOp::MinS => ((a as i64).min(b as i64)) as u64,
            AluOp::MaxS => ((a as i64).max(b as i64)) as u64,
        }
    }
}

/// Floating-point operation on `f64` values carried in 64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum FpuOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FpuOp {
    /// All FPU operations.
    pub const ALL: [FpuOp; 6] = [
        FpuOp::Add,
        FpuOp::Sub,
        FpuOp::Mul,
        FpuOp::Div,
        FpuOp::Min,
        FpuOp::Max,
    ];

    /// Applies the operation to two registers holding `f64` bit patterns.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let x = f64::from_bits(a);
        let y = f64::from_bits(b);
        let r = match self {
            FpuOp::Add => x + y,
            FpuOp::Sub => x - y,
            FpuOp::Mul => x * y,
            FpuOp::Div => x / y,
            FpuOp::Min => x.min(y),
            FpuOp::Max => x.max(y),
        };
        r.to_bits()
    }
}

/// Floating-point comparison producing 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum FCmpOp {
    Lt,
    Le,
    Eq,
}

impl FCmpOp {
    /// All comparison operations.
    pub const ALL: [FCmpOp; 3] = [FCmpOp::Lt, FCmpOp::Le, FCmpOp::Eq];

    /// Applies the comparison to two registers holding `f64` bit patterns.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let x = f64::from_bits(a);
        let y = f64::from_bits(b);
        let r = match self {
            FCmpOp::Lt => x < y,
            FCmpOp::Le => x <= y,
            FCmpOp::Eq => x == y,
        };
        r as u64
    }
}

/// Uniform branch condition. All active lanes must agree; divergent
/// branches are a compile error surfaced by the simulator (divergence is
/// expressed with `split`/`join`, as on Vortex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    LtS,
    GeS,
    LtU,
    GeU,
}

impl BrCond {
    /// All branch conditions.
    pub const ALL: [BrCond; 6] = [
        BrCond::Eq,
        BrCond::Ne,
        BrCond::LtS,
        BrCond::GeS,
        BrCond::LtU,
        BrCond::GeU,
    ];

    /// Evaluates the condition on two 64-bit words.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::LtS => (a as i64) < (b as i64),
            BrCond::GeS => (a as i64) >= (b as i64),
            BrCond::LtU => a < b,
            BrCond::GeU => a >= b,
        }
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Width {
    /// 1 byte (frontier flags).
    B1,
    /// 4 bytes (vertex IDs, offsets, weights).
    B4,
    /// 8 bytes (f64 vertex properties, distances).
    B8,
}

impl Width {
    /// All widths.
    pub const ALL: [Width; 3] = [Width::B1, Width::B4, Width::B8];

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Address space of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Space {
    /// Device global memory, through the cache hierarchy.
    Global,
    /// Per-core scratchpad (shared memory).
    Shared,
}

/// Atomic read-modify-write operation on global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AtomOp {
    /// Integer add; returns the old value.
    Add,
    /// Unsigned integer min; returns the old value.
    MinU,
    /// Unsigned integer max; returns the old value.
    MaxU,
    /// `f64` add; returns the old bit pattern.
    FAdd,
    /// Exchange; returns the old value.
    Exch,
}

impl AtomOp {
    /// All atomic operations.
    pub const ALL: [AtomOp; 5] = [
        AtomOp::Add,
        AtomOp::MinU,
        AtomOp::MaxU,
        AtomOp::FAdd,
        AtomOp::Exch,
    ];

    /// Combines the old memory value with the operand, returning the new
    /// memory value (the instruction's result is always the *old* value).
    pub fn combine(self, old: u64, operand: u64) -> u64 {
        match self {
            AtomOp::Add => old.wrapping_add(operand),
            AtomOp::MinU => old.min(operand),
            AtomOp::MaxU => old.max(operand),
            AtomOp::FAdd => (f64::from_bits(old) + f64::from_bits(operand)).to_bits(),
            AtomOp::Exch => operand,
        }
    }
}

/// Warp vote operations (Vortex `vote`/`ballot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VoteOp {
    /// 1 if **all** active lanes have a non-zero source.
    All,
    /// 1 if **any** active lane has a non-zero source.
    Any,
    /// Bitmask of active lanes with a non-zero source.
    Ballot,
}

impl VoteOp {
    /// All vote operations.
    pub const ALL: [VoteOp; 3] = [VoteOp::All, VoteOp::Any, VoteOp::Ballot];
}

/// Read-only control/status registers (Vortex exposes these as CSRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CsrKind {
    /// Lane index within the warp.
    LaneId,
    /// Warp index within the core.
    WarpId,
    /// Core index within the GPU.
    CoreId,
    /// Global thread ID (`core * threads_per_core + warp * lanes + lane`).
    GlobalTid,
    /// Thread ID within the core (`warp * lanes + lane`).
    CoreTid,
    /// Number of cores.
    NumCores,
    /// Warps per core.
    WarpsPerCore,
    /// Threads (lanes) per warp.
    ThreadsPerWarp,
    /// Threads per core (`warps * lanes`).
    ThreadsPerCore,
    /// Total threads on the device.
    NumThreads,
}

impl CsrKind {
    /// All CSR kinds.
    pub const ALL: [CsrKind; 10] = [
        CsrKind::LaneId,
        CsrKind::WarpId,
        CsrKind::CoreId,
        CsrKind::GlobalTid,
        CsrKind::CoreTid,
        CsrKind::NumCores,
        CsrKind::WarpsPerCore,
        CsrKind::ThreadsPerWarp,
        CsrKind::ThreadsPerCore,
        CsrKind::NumThreads,
    ];
}

/// One IR instruction.
///
/// Branch/jump/split targets are absolute instruction indices within a
/// [`crate::Program`]; the assembler resolves labels to these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Terminate this warp's kernel execution.
    Halt,
    /// Core-wide barrier: waits until every running warp in the core arrives.
    Bar,
    /// Zero-cost phase marker for cycle attribution (Figs. 17–18). Not a
    /// real instruction; consumed at fetch without an issue slot.
    Phase(u8),
    /// `rd <- imm`.
    LdImm {
        /// Destination.
        rd: Reg,
        /// Immediate value (sign-extended into 64 bits).
        imm: i64,
    },
    /// `rd <- op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd <- op(rs1, imm)`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Register operand.
        rs1: Reg,
        /// Immediate operand (sign-extended).
        imm: i64,
    },
    /// `rd <- op(rs1, rs2)` on `f64` bit patterns.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd <- cmp(rs1, rs2)` on `f64` bit patterns, result 0/1.
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd <- (f64)(i64)rs1` — signed integer to double.
    CvtIF {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `rd <- (i64)trunc(f64)rs1` — double to signed integer.
    CvtFI {
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `rd <- csr`.
    Csr {
        /// Destination.
        rd: Reg,
        /// Which CSR to read.
        kind: CsrKind,
    },
    /// `rd <- kernel_args[idx]` (Vortex passes kernel arguments through a
    /// device structure; the IR models them as parameter registers).
    LdArg {
        /// Destination.
        rd: Reg,
        /// Argument index.
        idx: u8,
    },
    /// `rd <- mem[rs_addr + offset]`, zero-extended.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        addr: Reg,
        /// Byte offset.
        offset: i32,
        /// Access width.
        width: Width,
        /// Address space.
        space: Space,
    },
    /// `mem[rs_addr + offset] <- src` (truncated to `width`).
    St {
        /// Value to store.
        src: Reg,
        /// Base address register.
        addr: Reg,
        /// Byte offset.
        offset: i32,
        /// Access width.
        width: Width,
        /// Address space.
        space: Space,
    },
    /// Atomic read-modify-write: `rd <- old`, and
    /// `mem[addr] <- op(old, src)`. Width is 8 bytes. Global atomics
    /// resolve at the L2; shared atomics at the core scratchpad (the
    /// `S_twc` scheme's queue counters live there).
    Atom {
        /// Operation.
        op: AtomOp,
        /// Destination (receives old value).
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Operand register.
        src: Reg,
        /// Address space.
        space: Space,
    },
    /// Uniform conditional branch to `target` when `cond(rs1, rs2)`.
    Br {
        /// Condition.
        cond: BrCond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Absolute target pc.
        target: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Absolute target pc.
        target: u32,
    },
    /// Divergence split on per-lane predicate `rs1 != 0` (Vortex `split`).
    ///
    /// Pushes an IPDOM entry; lanes with a zero predicate resume at
    /// `else_target` when the taken side reaches its `Join`; the full mask
    /// is restored at `end_target`.
    Split {
        /// Per-lane predicate register.
        rs1: Reg,
        /// Absolute pc of the else side.
        else_target: u32,
        /// Absolute pc just past the region's final `Join`.
        end_target: u32,
    },
    /// Divergence reconvergence (Vortex `join`).
    Join,
    /// Warp vote across active lanes.
    Vote {
        /// Vote kind.
        op: VoteOp,
        /// Destination (same value broadcast to all active lanes).
        rd: Reg,
        /// Per-lane predicate.
        rs1: Reg,
    },
    /// Thread-mask control (Vortex `tmc`): sets the warp's active mask to
    /// the value of `rs1` in lane 0.
    Tmc {
        /// Mask source register (uniform).
        rs1: Reg,
    },
    /// `WEAVER_REG vid, loc, deg` — registers one Sparse Workload
    /// Information Table entry per active lane (Table II, CUSTOM1 funct 1).
    WeaverReg {
        /// Base vertex ID.
        vid: Reg,
        /// Start location of the neighbor range in the edge array.
        loc: Reg,
        /// Neighbor degree.
        deg: Reg,
    },
    /// `WEAVER_DEC_ID` — returns the base vertex ID of this lane's next
    /// work item, or -1 when distribution is complete (Table II, CUSTOM0
    /// funct 7).
    WeaverDecId {
        /// Destination.
        rd: Reg,
    },
    /// `WEAVER_DEC_LOC` — returns the edge ID of this lane's next work item
    /// (Table II, CUSTOM0 funct 8).
    WeaverDecLoc {
        /// Destination.
        rd: Reg,
    },
    /// `WEAVER_SKIP vid` — signals that no further work should be
    /// distributed for `vid` (Table II, CUSTOM1 funct 2).
    WeaverSkip {
        /// Vertex to skip.
        vid: Reg,
    },
}

impl Instr {
    /// Source registers read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instr::Alu { rs1, rs2, .. }
            | Instr::Fpu { rs1, rs2, .. }
            | Instr::FCmp { rs1, rs2, .. }
            | Instr::Br { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::AluI { rs1, .. }
            | Instr::CvtIF { rs1, .. }
            | Instr::CvtFI { rs1, .. }
            | Instr::Split { rs1, .. }
            | Instr::Vote { rs1, .. }
            | Instr::Tmc { rs1 } => vec![rs1],
            Instr::Ld { addr, .. } => vec![addr],
            Instr::St { src, addr, .. } => vec![src, addr],
            Instr::Atom { addr, src, .. } => vec![addr, src],
            Instr::WeaverReg { vid, loc, deg } => vec![vid, loc, deg],
            Instr::WeaverSkip { vid } => vec![vid],
            _ => Vec::new(),
        }
    }

    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::LdImm { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::AluI { rd, .. }
            | Instr::Fpu { rd, .. }
            | Instr::FCmp { rd, .. }
            | Instr::CvtIF { rd, .. }
            | Instr::CvtFI { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::LdArg { rd, .. }
            | Instr::Ld { rd, .. }
            | Instr::Atom { rd, .. }
            | Instr::Vote { rd, .. }
            | Instr::WeaverDecId { rd }
            | Instr::WeaverDecLoc { rd } => Some(rd),
            _ => None,
        }
    }

    /// Explicit control-flow targets of this instruction (absolute pcs).
    ///
    /// `Join` transfers control through the warp's IPDOM stack rather than
    /// an encoded target, so it reports none; a CFG builder must model the
    /// matching `Split`'s `else_target`/`end_target` instead.
    pub fn branch_targets(&self) -> Vec<u32> {
        match *self {
            Instr::Br { target, .. } | Instr::Jmp { target } => vec![target],
            Instr::Split {
                else_target,
                end_target,
                ..
            } => vec![else_target, end_target],
            _ => Vec::new(),
        }
    }

    /// Whether execution can continue at `pc + 1` after this instruction.
    ///
    /// `Join` never falls through: it resumes at the pending else side or
    /// at the region's `end_target` (which may coincide with `pc + 1`).
    pub fn can_fall_through(&self) -> bool {
        !matches!(self, Instr::Halt | Instr::Jmp { .. } | Instr::Join)
    }

    /// Whether this is one of the four Weaver ISA-extension instructions.
    pub fn is_weaver(&self) -> bool {
        matches!(
            self,
            Instr::WeaverReg { .. }
                | Instr::WeaverDecId { .. }
                | Instr::WeaverDecLoc { .. }
                | Instr::WeaverSkip { .. }
        )
    }

    /// Rewrites the instruction's register operands: every source through
    /// `f_src`, the destination (if any) through `f_dst`.
    ///
    /// The closures are separate because a register-allocation pass may
    /// place the value *read* at this pc and the value *written* at this
    /// pc in different physical registers even when the instruction names
    /// the same architectural register for both (e.g. `add x1, x1, x2`
    /// starting a fresh live range for the destination).
    pub fn map_regs(
        &self,
        mut f_src: impl FnMut(Reg) -> Reg,
        mut f_dst: impl FnMut(Reg) -> Reg,
    ) -> Instr {
        match *self {
            Instr::Nop | Instr::Halt | Instr::Bar | Instr::Phase(_) | Instr::Join => *self,
            Instr::Jmp { target } => Instr::Jmp { target },
            Instr::LdImm { rd, imm } => Instr::LdImm { rd: f_dst(rd), imm },
            Instr::Alu { op, rd, rs1, rs2 } => Instr::Alu {
                op,
                rd: f_dst(rd),
                rs1: f_src(rs1),
                rs2: f_src(rs2),
            },
            Instr::AluI { op, rd, rs1, imm } => Instr::AluI {
                op,
                rd: f_dst(rd),
                rs1: f_src(rs1),
                imm,
            },
            Instr::Fpu { op, rd, rs1, rs2 } => Instr::Fpu {
                op,
                rd: f_dst(rd),
                rs1: f_src(rs1),
                rs2: f_src(rs2),
            },
            Instr::FCmp { op, rd, rs1, rs2 } => Instr::FCmp {
                op,
                rd: f_dst(rd),
                rs1: f_src(rs1),
                rs2: f_src(rs2),
            },
            Instr::CvtIF { rd, rs1 } => Instr::CvtIF {
                rd: f_dst(rd),
                rs1: f_src(rs1),
            },
            Instr::CvtFI { rd, rs1 } => Instr::CvtFI {
                rd: f_dst(rd),
                rs1: f_src(rs1),
            },
            Instr::Csr { rd, kind } => Instr::Csr {
                rd: f_dst(rd),
                kind,
            },
            Instr::LdArg { rd, idx } => Instr::LdArg { rd: f_dst(rd), idx },
            Instr::Ld {
                rd,
                addr,
                offset,
                width,
                space,
            } => Instr::Ld {
                rd: f_dst(rd),
                addr: f_src(addr),
                offset,
                width,
                space,
            },
            Instr::St {
                src,
                addr,
                offset,
                width,
                space,
            } => Instr::St {
                src: f_src(src),
                addr: f_src(addr),
                offset,
                width,
                space,
            },
            Instr::Atom {
                op,
                rd,
                addr,
                src,
                space,
            } => Instr::Atom {
                op,
                rd: f_dst(rd),
                addr: f_src(addr),
                src: f_src(src),
                space,
            },
            Instr::Br {
                cond,
                rs1,
                rs2,
                target,
            } => Instr::Br {
                cond,
                rs1: f_src(rs1),
                rs2: f_src(rs2),
                target,
            },
            Instr::Split {
                rs1,
                else_target,
                end_target,
            } => Instr::Split {
                rs1: f_src(rs1),
                else_target,
                end_target,
            },
            Instr::Vote { op, rd, rs1 } => Instr::Vote {
                op,
                rd: f_dst(rd),
                rs1: f_src(rs1),
            },
            Instr::Tmc { rs1 } => Instr::Tmc { rs1: f_src(rs1) },
            Instr::WeaverReg { vid, loc, deg } => Instr::WeaverReg {
                vid: f_src(vid),
                loc: f_src(loc),
                deg: f_src(deg),
            },
            Instr::WeaverDecId { rd } => Instr::WeaverDecId { rd: f_dst(rd) },
            Instr::WeaverDecLoc { rd } => Instr::WeaverDecLoc { rd: f_dst(rd) },
            Instr::WeaverSkip { vid } => Instr::WeaverSkip { vid: f_src(vid) },
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Bar => write!(f, "bar"),
            Instr::Phase(p) => write!(f, ".phase {p}"),
            Instr::LdImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Instr::AluI { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Instr::Fpu { op, rd, rs1, rs2 } => write!(f, "f{op:?} {rd}, {rs1}, {rs2}"),
            Instr::FCmp { op, rd, rs1, rs2 } => write!(f, "fcmp.{op:?} {rd}, {rs1}, {rs2}"),
            Instr::CvtIF { rd, rs1 } => write!(f, "cvt.i2f {rd}, {rs1}"),
            Instr::CvtFI { rd, rs1 } => write!(f, "cvt.f2i {rd}, {rs1}"),
            Instr::Csr { rd, kind } => write!(f, "csrr {rd}, {kind:?}"),
            Instr::LdArg { rd, idx } => write!(f, "ldarg {rd}, {idx}"),
            Instr::Ld {
                rd,
                addr,
                offset,
                width,
                space,
            } => write!(f, "ld.{space:?}.{width:?} {rd}, {offset}({addr})"),
            Instr::St {
                src,
                addr,
                offset,
                width,
                space,
            } => write!(f, "st.{space:?}.{width:?} {src}, {offset}({addr})"),
            Instr::Atom {
                op,
                rd,
                addr,
                src,
                space,
            } => {
                write!(f, "atom.{space:?}.{op:?} {rd}, ({addr}), {src}")
            }
            Instr::Br {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "b{cond:?} {rs1}, {rs2}, @{target}"),
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::Split {
                rs1,
                else_target,
                end_target,
            } => write!(f, "split {rs1}, else=@{else_target}, end=@{end_target}"),
            Instr::Join => write!(f, "join"),
            Instr::Vote { op, rd, rs1 } => write!(f, "vote.{op:?} {rd}, {rs1}"),
            Instr::Tmc { rs1 } => write!(f, "tmc {rs1}"),
            Instr::WeaverReg { vid, loc, deg } => {
                write!(f, "weaver.reg {vid}, {loc}, {deg}")
            }
            Instr::WeaverDecId { rd } => write!(f, "weaver.dec.id {rd}"),
            Instr::WeaverDecLoc { rd } => write!(f, "weaver.dec.loc {rd}"),
            Instr::WeaverSkip { vid } => write!(f, "weaver.skip {vid}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), u64::MAX); // wraps
        assert_eq!(AluOp::SltS.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::SltU.apply((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::MinS.apply((-5i64) as u64, 3), (-5i64) as u64);
        assert_eq!(AluOp::MaxU.apply(2, 9), 9);
        assert_eq!(AluOp::Sra.apply((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Seq.apply(7, 7), 1);
        assert_eq!(AluOp::Sne.apply(7, 7), 0);
    }

    #[test]
    fn division_by_zero_riscv_convention() {
        assert_eq!(AluOp::DivU.apply(10, 0), u64::MAX);
        assert_eq!(AluOp::RemU.apply(10, 0), 10);
    }

    #[test]
    fn fpu_semantics() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(FpuOp::Add.apply(a, b)), 3.5);
        assert_eq!(f64::from_bits(FpuOp::Div.apply(a, b)), 0.75);
        assert_eq!(FCmpOp::Lt.apply(a, b), 1);
        assert_eq!(FCmpOp::Eq.apply(a, a), 1);
    }

    #[test]
    fn atom_semantics() {
        assert_eq!(AtomOp::Add.combine(5, 3), 8);
        assert_eq!(AtomOp::MinU.combine(5, 3), 3);
        assert_eq!(AtomOp::Exch.combine(5, 3), 3);
        let old = 1.0f64.to_bits();
        let add = 0.5f64.to_bits();
        assert_eq!(f64::from_bits(AtomOp::FAdd.combine(old, add)), 1.5);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::LtS.eval((-1i64) as u64, 0));
        assert!(!BrCond::LtU.eval((-1i64) as u64, 0));
        assert!(BrCond::GeU.eval(5, 5));
    }

    #[test]
    fn sources_and_dest() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(i.sources(), vec![Reg(1), Reg(2)]);
        assert_eq!(i.dest(), Some(Reg(3)));
        assert_eq!(Instr::Halt.dest(), None);
        let w = Instr::WeaverReg {
            vid: Reg(1),
            loc: Reg(2),
            deg: Reg(3),
        };
        assert_eq!(w.sources().len(), 3);
        assert!(w.is_weaver());
        assert!(!i.is_weaver());
    }

    #[test]
    fn branch_targets_and_fall_through() {
        let br = Instr::Br {
            cond: BrCond::Eq,
            rs1: Reg(1),
            rs2: Reg(2),
            target: 7,
        };
        assert_eq!(br.branch_targets(), vec![7]);
        assert!(br.can_fall_through());
        let jmp = Instr::Jmp { target: 3 };
        assert_eq!(jmp.branch_targets(), vec![3]);
        assert!(!jmp.can_fall_through());
        let split = Instr::Split {
            rs1: Reg(1),
            else_target: 4,
            end_target: 5,
        };
        assert_eq!(split.branch_targets(), vec![4, 5]);
        assert!(split.can_fall_through());
        assert!(Instr::Join.branch_targets().is_empty());
        assert!(!Instr::Join.can_fall_through());
        assert!(!Instr::Halt.can_fall_through());
        assert!(Instr::Nop.can_fall_through());
    }

    #[test]
    fn display_is_nonempty() {
        for i in [
            Instr::Nop,
            Instr::Halt,
            Instr::WeaverDecId { rd: Reg(1) },
            Instr::Split {
                rs1: Reg(1),
                else_target: 4,
                end_target: 5,
            },
        ] {
            assert!(!format!("{i}").is_empty());
        }
    }
}
