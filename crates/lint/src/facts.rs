//! Exported per-pc dataflow facts.
//!
//! The lint analyses (CFG construction, definedness, liveness, reaching
//! definitions) are useful beyond diagnostics: the core compiler's
//! register allocator builds live ranges over exactly these results, so
//! the pass and the verifier that proves it safe share one dataflow
//! engine. [`DataflowFacts::compute`] exposes the facts behind a stable
//! API without making the internal CFG representation public.

use std::collections::BTreeMap;

use sparseweaver_isa::{Instr, Program, Reg, ZERO};

use crate::cfg::Cfg;
use crate::{dataflow, Severity};

/// Returns the register's bit in a `u64` register-set bitset (bit *n* =
/// `xN`), the same encoding all facts below use.
pub fn reg_bit(r: Reg) -> u64 {
    1u64 << (r.0 & 63)
}

/// Whether the instruction's only effect is writing its destination
/// register — the class of writes the SW-L103 dead-write lint covers and
/// the only class a dead-code-elimination pass may remove. Loads, CSR
/// reads, atomics, votes, and Weaver decodes are excluded: their side
/// effects (or the broadcast) are the point even when the result is
/// discarded.
pub fn is_pure_write(i: &Instr) -> bool {
    dataflow::is_pure(i)
}

/// Per-pc liveness and reaching-definition facts for one program.
///
/// Only *reachable* pcs carry facts; unreachable instructions (SW-L104)
/// report everything-live so conservative consumers leave them alone.
#[derive(Debug, Clone)]
pub struct DataflowFacts {
    program: Program,
    cfg: Cfg,
    live_in: BTreeMap<u32, u64>,
    live_out: BTreeMap<u32, u64>,
}

impl DataflowFacts {
    /// Computes the facts for `program`.
    ///
    /// Returns `None` when the CFG construction itself reports
    /// error-severity findings (unbalanced divergence stacks and the
    /// like): a program the verifier rejects has no well-defined
    /// dataflow, so consumers must not transform it.
    pub fn compute(program: &Program) -> Option<DataflowFacts> {
        let cfg = Cfg::build(program);
        if cfg
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
        {
            return None;
        }
        let n = cfg.blocks.len();
        let instr = |pc: u32| program.get(pc).expect("reachable pc in range");

        // Block-level backward liveness fixpoint (same formulation as the
        // SW-L103 lint: li = uses | (live_out & !defs)).
        let mut defs = vec![0u64; n];
        let mut uses = vec![0u64; n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut defined = 0u64;
            for pc in block.pcs() {
                let i = instr(pc);
                for src in i.sources() {
                    if defined & reg_bit(src) == 0 {
                        uses[b] |= reg_bit(src);
                    }
                }
                if let Some(d) = i.dest() {
                    defined |= reg_bit(d);
                }
            }
            defs[b] = defined;
        }
        let mut block_live_in = vec![0u64; n];
        loop {
            let mut changed = false;
            for b in (0..n).rev() {
                let live_out = cfg.blocks[b]
                    .succs
                    .iter()
                    .fold(0u64, |acc, &s| acc | block_live_in[s]);
                let li = uses[b] | (live_out & !defs[b]);
                if li != block_live_in[b] {
                    block_live_in[b] = li;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Per-pc refinement: walk each block backward from its live-out.
        let mut live_in = BTreeMap::new();
        let mut live_out = BTreeMap::new();
        for block in &cfg.blocks {
            let mut live = block
                .succs
                .iter()
                .fold(0u64, |acc, &s| acc | block_live_in[s]);
            for pc in block.pcs().rev() {
                let i = instr(pc);
                live_out.insert(pc, live);
                if let Some(d) = i.dest() {
                    if d != ZERO {
                        live &= !reg_bit(d);
                    }
                }
                for src in i.sources() {
                    live |= reg_bit(src);
                }
                live_in.insert(pc, live);
            }
        }

        Some(DataflowFacts {
            program: program.clone(),
            cfg,
            live_in,
            live_out,
        })
    }

    /// Whether any execution path reaches `pc`.
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.live_in.contains_key(&pc)
    }

    /// Registers live *into* `pc` as a bitset. Unreachable pcs report
    /// everything-live.
    pub fn live_in(&self, pc: u32) -> u64 {
        self.live_in.get(&pc).copied().unwrap_or(u64::MAX)
    }

    /// Registers live *out of* `pc` as a bitset (i.e. whose values some
    /// successor path may still read). Unreachable pcs report
    /// everything-live.
    pub fn live_out(&self, pc: u32) -> u64 {
        self.live_out.get(&pc).copied().unwrap_or(u64::MAX)
    }

    /// The definition sites of `reg` that reach the *use* at `pc`, plus
    /// whether the kernel-entry (launch-time) value also reaches it.
    ///
    /// Unreachable pcs report no definitions with the entry value
    /// reaching, the conservative answer.
    pub fn reaching_defs(&self, pc: u32, reg: Reg) -> (Vec<u32>, bool) {
        if !self.cfg.block_of.contains_key(&pc) {
            return (Vec::new(), true);
        }
        dataflow::reaching_defs(&self.program, &self.cfg, pc, reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::Asm;

    #[test]
    fn straight_line_liveness_is_exact() {
        let mut a = Asm::new("line");
        let x = a.reg(); // x1
        let y = a.reg(); // x2
        a.li(x, 5); // pc 0
        a.addi(y, x, 1); // pc 1
        a.tmc(y); // pc 2: keeps y live into 2
        a.halt(); // pc 3
        let f = DataflowFacts::compute(&a.finish()).expect("well-formed");
        assert_eq!(f.live_in(0), 0);
        assert_eq!(f.live_out(0), reg_bit(Reg(1)));
        assert_eq!(f.live_in(1), reg_bit(Reg(1)));
        assert_eq!(f.live_out(1), reg_bit(Reg(2)));
        assert_eq!(f.live_in(2), reg_bit(Reg(2)));
        assert_eq!(f.live_out(2), 0);
        let (defs, entry) = f.reaching_defs(1, Reg(1));
        assert_eq!(defs, vec![0]);
        assert!(!entry);
    }

    #[test]
    fn loop_carries_liveness_around_the_back_edge() {
        let mut a = Asm::new("loop");
        let i = a.reg(); // x1
        let n = a.reg(); // x2
        a.li(i, 0); // pc 0
        a.li(n, 8); // pc 1
        let top = a.new_label();
        a.bind(top);
        a.addi(i, i, 1); // pc 2
        a.bltu(i, n, top); // pc 3
        a.halt(); // pc 4
        let f = DataflowFacts::compute(&a.finish()).expect("well-formed");
        // `i` and `n` are live around the whole loop body.
        assert_ne!(f.live_in(2) & reg_bit(Reg(1)), 0);
        assert_ne!(f.live_in(2) & reg_bit(Reg(2)), 0);
        assert_ne!(f.live_out(3) & reg_bit(Reg(1)), 0, "live on the back edge");
        // The use of `i` at pc 2 is reached by both its init and itself.
        let (mut defs, entry) = f.reaching_defs(2, Reg(1));
        defs.sort_unstable();
        assert_eq!(defs, vec![0, 2]);
        assert!(!entry);
    }

    #[test]
    fn malformed_programs_yield_no_facts() {
        let mut a = Asm::new("lone_join");
        a.emit(sparseweaver_isa::Instr::Join);
        a.halt();
        assert!(DataflowFacts::compute(&a.finish()).is_none());
    }

    #[test]
    fn unreachable_pcs_are_conservatively_everything_live() {
        let mut a = Asm::new("skip");
        let end = a.new_label();
        a.jmp(end);
        a.nop(); // unreachable
        a.bind(end);
        a.halt();
        let f = DataflowFacts::compute(&a.finish()).expect("warnings only");
        assert!(!f.is_reachable(1));
        assert_eq!(f.live_in(1), u64::MAX);
    }
}
