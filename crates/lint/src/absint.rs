//! Forward abstract-interpretation fixpoint over the lint CFG.
//!
//! Runs the [`crate::domain`] transfer functions over every reachable
//! basic block: joins at merge points, widening at loop heads after a
//! few visits, then a final recording pass that walks each block from
//! its fixed in-state and collects the facts the SW-L5xx checkers
//! consume — one [`AccessFact`] per memory instruction (with the
//! constant byte offset folded into the address), one [`SplitFact`] per
//! `split`, and one [`RegFact`] per register write.
//!
//! The entry state is *all registers = 0*: the simulator zero-fills the
//! register file at every launch (`Warp::reset`), so this is exact, not
//! an assumption.
//!
//! Barrier regions (for the SW-L511 may-happen-in-parallel check) are
//! computed at pc granularity: take every intra-block `pc → pc+1` edge
//! and every block-end → successor-start edge, cut the outgoing edge of
//! every `Bar`, and number the connected components. Two shared-memory
//! accesses can overlap in time across warps iff they live in the same
//! component — a loop whose back edge bypasses the barrier correctly
//! merges the components on either side of it. The model assumes warps
//! arrive at *textually aligned* barriers (the structural SW-L301 check
//! rejects mask-divergent barriers; the templates satisfy alignment by
//! construction).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sparseweaver_isa::{CsrKind, Instr, Program, Space, VoteOp, Width, NUM_REGS};

use crate::cfg::Cfg;
use crate::domain::{AbsVal, AnalyzeGeom, Interval};

/// Joins tolerated at a block before switching to widening.
const WIDEN_AFTER: u32 = 3;

/// What a memory instruction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

/// One memory access with its abstract byte address.
#[derive(Debug, Clone)]
pub(crate) struct AccessFact {
    pub pc: u32,
    pub kind: AccessKind,
    pub space: Space,
    /// Access width in bytes.
    pub width: u64,
    /// First byte touched, constant offset folded in.
    pub addr: AbsVal,
    /// Barrier-region component the pc belongs to.
    pub region: usize,
}

/// A `split` and the shape of its predicate.
#[derive(Debug, Clone)]
pub(crate) struct SplitFact {
    pub pc: u32,
    pub cond: AbsVal,
}

/// The abstract value a register write produces.
#[derive(Debug, Clone)]
pub(crate) struct RegFact {
    pub pc: u32,
    pub reg: u8,
    pub val: AbsVal,
}

/// Everything the fixpoint learned about one program.
#[derive(Debug, Clone, Default)]
pub(crate) struct Analysis {
    pub accesses: Vec<AccessFact>,
    pub splits: Vec<SplitFact>,
    pub regs: Vec<RegFact>,
    /// False only if the safety cap fired (the facts are then all-top
    /// but still sound). Never expected on real kernels.
    pub converged: bool,
}

fn csr_val(kind: CsrKind, geom: &AnalyzeGeom) -> AbsVal {
    let tpw = geom.threads_per_warp as i64;
    let wpc = geom.warps_per_core as i64;
    let nc = geom.num_cores as i64;
    let tpc = geom.threads_per_core() as i64;
    match kind {
        CsrKind::LaneId => AbsVal {
            cw: 0,
            rest: Interval::range(0, tpw - 1),
            cl: Some(1),
            syms: Vec::new(),
            arg: false,
        },
        CsrKind::WarpId => AbsVal {
            cw: 1,
            rest: Interval::cst(0),
            cl: Some(0),
            syms: Vec::new(),
            arg: false,
        },
        CsrKind::CoreId => AbsVal {
            cw: 0,
            rest: Interval::range(0, nc - 1),
            cl: Some(0),
            syms: Vec::new(),
            arg: false,
        },
        // core·tpc + warp·tpw + lane
        CsrKind::GlobalTid => AbsVal {
            cw: tpw,
            rest: Interval::range(0, (nc - 1) * tpc + tpw - 1),
            cl: Some(1),
            syms: Vec::new(),
            arg: false,
        },
        // warp·tpw + lane
        CsrKind::CoreTid => AbsVal {
            cw: tpw,
            rest: Interval::range(0, tpw - 1),
            cl: Some(1),
            syms: Vec::new(),
            arg: false,
        },
        CsrKind::NumCores => AbsVal::cst(nc),
        CsrKind::WarpsPerCore => AbsVal::cst(wpc),
        CsrKind::ThreadsPerWarp => AbsVal::cst(tpw),
        CsrKind::ThreadsPerCore => AbsVal::cst(tpc),
        CsrKind::NumThreads => AbsVal::cst(nc * tpc),
    }
}

/// Result shape of a load: bounded by the zero-extended width; the
/// loaded value is warp-uniform when every lane reads the same address.
fn ld_result(width: Width, addr: &AbsVal) -> AbsVal {
    let rest = match width {
        Width::B1 => Interval::range(0, 0xff),
        Width::B4 => Interval::range(0, 0xffff_ffff),
        Width::B8 => Interval::top(),
    };
    AbsVal {
        cw: 0,
        rest,
        cl: if addr.cl == Some(0) { Some(0) } else { None },
        syms: Vec::new(),
        arg: false,
    }
}

/// Applies one instruction to the state; returns the value written to
/// the destination, if any (x0 writes are dropped, as in the warp).
fn transfer(instr: &Instr, st: &mut [AbsVal], geom: &AnalyzeGeom) -> Option<(u8, AbsVal)> {
    let tpw = geom.threads_per_warp;
    let (rd, val) = match *instr {
        Instr::Nop
        | Instr::Halt
        | Instr::Bar
        | Instr::Phase(_)
        | Instr::Jmp { .. }
        | Instr::Join
        | Instr::Br { .. }
        | Instr::Tmc { .. }
        | Instr::Split { .. }
        | Instr::St { .. }
        | Instr::WeaverReg { .. }
        | Instr::WeaverSkip { .. } => return None,
        Instr::LdImm { rd, imm } => (rd, AbsVal::cst(imm)),
        Instr::Alu { op, rd, rs1, rs2 } => (
            rd,
            AbsVal::alu(op, &st[rs1.0 as usize], &st[rs2.0 as usize], geom),
        ),
        Instr::AluI { op, rd, rs1, imm } => (
            rd,
            AbsVal::alu(op, &st[rs1.0 as usize], &AbsVal::cst(imm), geom),
        ),
        Instr::Fpu { rd, rs1, rs2, .. } => {
            let uniform = st[rs1.0 as usize].cl == Some(0) && st[rs2.0 as usize].cl == Some(0);
            (
                rd,
                if uniform {
                    AbsVal::top_uniform()
                } else {
                    AbsVal::top()
                },
            )
        }
        Instr::FCmp { rd, rs1, rs2, .. } => {
            let uniform = st[rs1.0 as usize].cl == Some(0) && st[rs2.0 as usize].cl == Some(0);
            (
                rd,
                AbsVal {
                    cw: 0,
                    rest: Interval::range(0, 1),
                    cl: if uniform { Some(0) } else { None },
                    syms: Vec::new(),
                    arg: false,
                },
            )
        }
        Instr::CvtIF { rd, rs1 } | Instr::CvtFI { rd, rs1 } => (
            rd,
            if st[rs1.0 as usize].cl == Some(0) {
                AbsVal::top_uniform()
            } else {
                AbsVal::top()
            },
        ),
        Instr::Csr { rd, kind } => (rd, csr_val(kind, geom)),
        Instr::LdArg { rd, idx } => (rd, AbsVal::arg_base(idx)),
        Instr::Ld {
            rd, addr, width, ..
        } => (rd, ld_result(width, &st[addr.0 as usize])),
        // The old value an atomic returns is unconstrained and
        // generally differs per lane.
        Instr::Atom { rd, .. } => (rd, AbsVal::top()),
        Instr::Vote { op, rd, .. } => {
            let rest = match op {
                VoteOp::All | VoteOp::Any => Interval::range(0, 1),
                VoteOp::Ballot => {
                    if tpw >= 63 {
                        Interval::range(0, i64::MAX)
                    } else {
                        Interval::range(0, (1i64 << tpw) - 1)
                    }
                }
            };
            (
                rd,
                AbsVal {
                    cw: 0,
                    rest,
                    cl: Some(0), // broadcast to all lanes
                    syms: Vec::new(),
                    arg: false,
                },
            )
        }
        // -1 when distribution is complete, otherwise a vertex/edge id.
        Instr::WeaverDecId { rd } | Instr::WeaverDecLoc { rd } => (
            rd,
            AbsVal {
                cw: 0,
                rest: Interval::range(-1, i64::MAX),
                cl: None,
                syms: Vec::new(),
                arg: false,
            },
        ),
    };
    if rd.0 == 0 {
        return None;
    }
    st[rd.0 as usize] = val.clone();
    Some((rd.0, val))
}

/// Connected components of the pc graph after cutting every `Bar`'s
/// outgoing edges; maps each reachable pc to its region id (numbered in
/// increasing order of the region's smallest pc).
pub(crate) fn barrier_regions(p: &Program, cfg: &Cfg) -> BTreeMap<u32, usize> {
    let is_bar = |pc: u32| matches!(p.get(pc), Some(Instr::Bar));
    // Undirected adjacency over reachable pcs.
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&pc, _) in cfg.block_of.iter() {
        adj.entry(pc).or_default();
    }
    let link = |a: u32, b: u32, adj: &mut BTreeMap<u32, Vec<u32>>| {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    };
    for block in &cfg.blocks {
        for pc in block.start..block.end.saturating_sub(1) {
            if !is_bar(pc) {
                link(pc, pc + 1, &mut adj);
            }
        }
        if block.end > block.start {
            let last = block.end - 1;
            if !is_bar(last) {
                for &s in &block.succs {
                    link(last, cfg.blocks[s].start, &mut adj);
                }
            }
        }
    }
    let mut region: BTreeMap<u32, usize> = BTreeMap::new();
    let mut next = 0usize;
    let pcs: Vec<u32> = adj.keys().copied().collect();
    for &start in &pcs {
        if region.contains_key(&start) {
            continue;
        }
        let id = next;
        next += 1;
        let mut queue = VecDeque::from([start]);
        let mut seen = BTreeSet::from([start]);
        while let Some(pc) = queue.pop_front() {
            region.insert(pc, id);
            for &n in &adj[&pc] {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }
    region
}

/// Runs the joint fixpoint and recording pass.
pub(crate) fn analyze_program(p: &Program, cfg: &Cfg, geom: &AnalyzeGeom) -> Analysis {
    let mut analysis = Analysis {
        converged: true,
        ..Analysis::default()
    };
    let Some(entry) = cfg.entry() else {
        return analysis;
    };

    let entry_state: Vec<AbsVal> = vec![AbsVal::cst(0); NUM_REGS];
    let mut in_states: BTreeMap<usize, Vec<AbsVal>> = BTreeMap::new();
    in_states.insert(entry, entry_state);
    let mut visits: BTreeMap<usize, u32> = BTreeMap::new();
    let mut work: VecDeque<usize> = VecDeque::from([entry]);
    let mut queued: BTreeSet<usize> = BTreeSet::from([entry]);

    // Each register's abstract value at a block can only change a
    // bounded number of times (join/widen are monotone and widening
    // caps the interval chains), so this cap is far above any real
    // fixpoint; it exists to make non-termination impossible.
    let cap = cfg.blocks.len() * NUM_REGS * 96 + 4096;
    let mut steps = 0usize;

    while let Some(b) = work.pop_front() {
        queued.remove(&b);
        steps += 1;
        if steps > cap {
            analysis.converged = false;
            break;
        }
        let mut st = in_states[&b].clone();
        for pc in cfg.blocks[b].pcs() {
            if let Some(instr) = p.get(pc) {
                transfer(instr, &mut st, geom);
            }
        }
        for &succ in &cfg.blocks[b].succs {
            let changed = match in_states.get(&succ) {
                None => {
                    in_states.insert(succ, st.clone());
                    true
                }
                Some(cur) => {
                    let v = visits.entry(succ).or_insert(0);
                    *v += 1;
                    let widen = *v > WIDEN_AFTER;
                    let merged: Vec<AbsVal> = cur
                        .iter()
                        .zip(st.iter())
                        .map(|(c, n)| {
                            if widen {
                                AbsVal::widen(c, n, geom)
                            } else {
                                AbsVal::join(c, n, geom)
                            }
                        })
                        .collect();
                    if &merged != cur {
                        in_states.insert(succ, merged);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed && queued.insert(succ) {
                work.push_back(succ);
            }
        }
    }

    let regions = barrier_regions(p, cfg);
    let all_top: Vec<AbsVal> = vec![AbsVal::top(); NUM_REGS];

    for (bi, block) in cfg.blocks.iter().enumerate() {
        // If the cap fired, the recorded states may under-approximate;
        // degrade every fact to top (sound, never precise — and never
        // expected to happen).
        let st0 = if analysis.converged {
            match in_states.get(&bi) {
                Some(s) => s,
                None => continue, // unreachable from entry
            }
        } else {
            &all_top
        };
        let mut st = st0.clone();
        for pc in block.pcs() {
            let Some(instr) = p.get(pc) else { continue };
            let region = regions.get(&pc).copied().unwrap_or(usize::MAX);
            match *instr {
                Instr::Ld {
                    addr,
                    offset,
                    width,
                    space,
                    ..
                } => analysis.accesses.push(AccessFact {
                    pc,
                    kind: AccessKind::Read,
                    space,
                    width: width.bytes(),
                    addr: AbsVal::alu(
                        sparseweaver_isa::AluOp::Add,
                        &st[addr.0 as usize],
                        &AbsVal::cst(offset as i64),
                        geom,
                    ),
                    region,
                }),
                Instr::St {
                    addr,
                    offset,
                    width,
                    space,
                    ..
                } => analysis.accesses.push(AccessFact {
                    pc,
                    kind: AccessKind::Write,
                    space,
                    width: width.bytes(),
                    addr: AbsVal::alu(
                        sparseweaver_isa::AluOp::Add,
                        &st[addr.0 as usize],
                        &AbsVal::cst(offset as i64),
                        geom,
                    ),
                    region,
                }),
                Instr::Atom { addr, space, .. } => analysis.accesses.push(AccessFact {
                    pc,
                    kind: AccessKind::Atomic,
                    space,
                    width: 8,
                    addr: st[addr.0 as usize].clone(),
                    region,
                }),
                Instr::Split { rs1, .. } => analysis.splits.push(SplitFact {
                    pc,
                    cond: st[rs1.0 as usize].clone(),
                }),
                _ => {}
            }
            if let Some((reg, val)) = transfer(instr, &mut st, geom) {
                analysis.regs.push(RegFact { pc, reg, val });
            }
        }
    }

    analysis.accesses.sort_by_key(|a| a.pc);
    analysis.splits.sort_by_key(|s| s.pc);
    analysis.regs.sort_by_key(|r| (r.pc, r.reg));
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::Asm;

    fn geom() -> AnalyzeGeom {
        AnalyzeGeom {
            num_cores: 2,
            warps_per_core: 4,
            threads_per_warp: 8,
            shared_mem_bytes: 1024,
        }
    }

    fn run(p: &Program) -> Analysis {
        let cfg = Cfg::build(p);
        analyze_program(p, &cfg, &geom())
    }

    #[test]
    fn straight_line_lane_affine_address() {
        let mut a = Asm::new("lane_addr");
        let (lane, addr) = (a.reg(), a.reg());
        a.csr(lane, CsrKind::LaneId);
        a.slli(addr, lane, 3);
        a.addi(addr, addr, 64);
        a.sts(a.zero(), addr, 0, Width::B8);
        a.halt();
        let an = run(&a.finish());
        assert!(an.converged);
        assert_eq!(an.accesses.len(), 1);
        let acc = &an.accesses[0];
        assert_eq!(acc.kind, AccessKind::Write);
        assert_eq!(acc.addr.cl, Some(8));
        assert_eq!((acc.addr.rest.lo, acc.addr.rest.hi), (64, 120));
        assert_eq!(acc.addr.rest.stride, 8);
    }

    #[test]
    fn loop_counter_widens_but_keeps_stride() {
        let mut a = Asm::new("loop8");
        let (i, n) = (a.reg(), a.reg());
        a.li(i, 0);
        a.li(n, 4096);
        let top = a.new_label();
        a.bind(top);
        a.addi(i, i, 8);
        a.bltu(i, n, top);
        a.halt();
        let an = run(&a.finish());
        assert!(an.converged);
        // The add's recorded value: stride-8 congruence survives the
        // widening (mod 2^64) even though the bounds escape.
        let add = an.regs.iter().find(|r| r.pc == 2).unwrap();
        assert_eq!(add.val.rest.stride, 8);
        assert_eq!(add.val.rest.lo.rem_euclid(8), 0, "{:?}", add.val.rest);
        assert_eq!(add.val.cl, Some(0));
    }

    #[test]
    fn barrier_regions_split_and_loops_merge() {
        let mut a = Asm::new("regions");
        a.nop(); // pc 0
        a.bar(); // pc 1
        a.nop(); // pc 2
        a.halt(); // pc 3
        let p = a.finish();
        let cfg = Cfg::build(&p);
        let r = barrier_regions(&p, &cfg);
        assert_eq!(r[&0], r[&1]);
        assert_ne!(r[&1], r[&2]);
        assert_eq!(r[&2], r[&3]);

        // A loop whose back edge skips the barrier must merge regions.
        let mut a = Asm::new("loopy");
        let (i, n) = (a.reg(), a.reg());
        a.li(i, 0);
        a.li(n, 4);
        let top = a.new_label();
        a.bind(top); // pc 2
        a.bar(); // pc 3
        a.addi(i, i, 1); // pc 4
        a.bltu(i, n, top); // pc 5 → back to 2 without a bar
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        let r = barrier_regions(&p, &cfg);
        assert_eq!(r[&2], r[&4], "back edge bypassing the bar must merge");
        assert_eq!(r[&3], r[&2], "bar pc belongs to the upstream region");
    }

    #[test]
    fn join_of_two_constants_becomes_range() {
        let mut a = Asm::new("phi");
        let (c, v) = (a.reg(), a.reg());
        a.li(c, 1);
        let other = a.new_label();
        let done = a.new_label();
        a.beq(c, a.zero(), other);
        a.li(v, 16);
        a.jmp(done);
        a.bind(other);
        a.li(v, 48);
        a.bind(done);
        let out = a.reg();
        a.addi(out, v, 0);
        a.halt();
        let an = run(&a.finish());
        let fact = an
            .regs
            .iter()
            .rev()
            .find(|r| r.val.rest.lo == 16)
            .expect("joined value recorded");
        assert_eq!(fact.val.rest.hi, 48);
        assert_eq!(fact.val.rest.stride, 32);
        assert_eq!(fact.val.cl, Some(0));
    }

    #[test]
    fn empty_program_is_fine() {
        let p = Program::new("empty", vec![]);
        let an = run(&p);
        assert!(an.converged);
        assert!(an.accesses.is_empty());
    }
}
