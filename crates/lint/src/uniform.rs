//! SW-L521/522 coalescing and bank-conflict advisories plus the
//! SW-L531 uniform-branch advisory, built on the lane-affinity facts
//! (`AbsVal::cl`) computed by [`crate::absint`].
//!
//! # Coalescing model
//!
//! The memory hierarchy moves 64-byte lines (`sparseweaver-mem`'s
//! `LINE_BYTES`); a warp access that keeps all lanes inside few lines
//! fills fast, one that scatters lanes across many lines pays one fill
//! per line. For a lane-affine address `base + c·lane` the number of
//! distinct lines a warp can touch is at most
//! `((tpw−1)·|c| + width + 63) / 64` — that quotient is the predicted
//! replay factor. `c == width` (dense) and `c == 0` (broadcast) earn a
//! SW-L521 "coalesced" note; larger strides or divergent addresses earn
//! SW-L522 with the predicted replay.
//!
//! # Bank model
//!
//! The shared scratchpad is modeled as 32 banks × 4 bytes. For a
//! word-aligned lane-affine stride the conflict degree is the maximum
//! number of lanes mapping to one bank, computed exactly by walking
//! `lane · (c/4) mod 32`. Divergent shared addresses are left quiet:
//! the paper's search-based kernels (e.g. S_wm binary search) are
//! divergent by design and flagging every probe would be noise.

use crate::absint::{AccessKind, Analysis};
use crate::domain::AnalyzeGeom;
use crate::{Diagnostic, Rule};

use sparseweaver_isa::Space;

/// Fill granularity of the memory hierarchy, in bytes. Kept in sync
/// with `sparseweaver-mem::LINE_BYTES` (asserted in the crate tests).
pub(crate) const LINE_BYTES: u64 = 64;

const BANKS: u64 = 32;
const BANK_BYTES: u64 = 4;

/// Distinct 64-byte lines a warp touches for lane stride `c` (bytes):
/// the spanned line count, clamped at one line per lane.
fn lines_per_warp(c: u64, width: u64, tpw: u64) -> u64 {
    ((tpw - 1) * c + width).div_ceil(LINE_BYTES).min(tpw.max(1))
}

/// Maximum number of lanes hitting one 4-byte bank for word stride `w`.
fn bank_conflict_degree(word_stride: u64, tpw: u64) -> u64 {
    let mut hits = [0u64; BANKS as usize];
    for lane in 0..tpw {
        hits[((lane * word_stride) % BANKS) as usize] += 1;
    }
    hits.iter().copied().max().unwrap_or(1)
}

/// All SW-L521/522/531 advisories for one analyzed program.
pub(crate) fn check(analysis: &Analysis, geom: &AnalyzeGeom) -> Vec<Diagnostic> {
    let tpw = geom.threads_per_warp;
    let mut out = Vec::new();
    for a in &analysis.accesses {
        let what = match a.kind {
            AccessKind::Read => "load",
            AccessKind::Write => "store",
            AccessKind::Atomic => "atomic",
        };
        match a.space {
            Space::Global => match a.addr.cl {
                Some(0) => out.push(Diagnostic::new(
                    Rule::Coalesced,
                    a.pc,
                    format!(
                        "global {what} is a warp-uniform broadcast: one line fill \
                         serves all {tpw} lanes"
                    ),
                )),
                Some(c) if c.unsigned_abs() == a.width => {
                    let lines = lines_per_warp(a.width, a.width, tpw);
                    out.push(Diagnostic::new(
                        Rule::Coalesced,
                        a.pc,
                        format!(
                            "global {what} is coalesced (lane stride {} B == access \
                             width): ~{lines} line fill(s) per warp",
                            a.width
                        ),
                    ));
                }
                Some(c) => {
                    let stride = c.unsigned_abs().min(LINE_BYTES * tpw);
                    let lines = lines_per_warp(stride, a.width, tpw);
                    let dense = lines_per_warp(a.width, a.width, tpw);
                    if lines > dense {
                        out.push(Diagnostic::new(
                            Rule::MemReplay,
                            a.pc,
                            format!(
                                "strided global {what} (lane stride {} B): predicted \
                                 ~{lines} line fills per warp vs {dense} if coalesced",
                                c.unsigned_abs()
                            ),
                        ));
                    }
                }
                None => out.push(Diagnostic::new(
                    Rule::MemReplay,
                    a.pc,
                    format!(
                        "address-divergent global {what}: up to {tpw} line fills \
                         per warp (gather/scatter replay)"
                    ),
                )),
            },
            Space::Shared => {
                if let Some(c) = a.addr.cl {
                    let c = c.unsigned_abs();
                    if c != 0 && c % BANK_BYTES == 0 {
                        let degree = bank_conflict_degree(c / BANK_BYTES, tpw);
                        if degree > 1 {
                            out.push(Diagnostic::new(
                                Rule::MemReplay,
                                a.pc,
                                format!(
                                    "shared {what} with lane stride {c} B maps {degree} \
                                     lanes to the same bank: predicted {degree}-way \
                                     serialization"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    for s in &analysis.splits {
        if s.cond.cl == Some(0) {
            out.push(Diagnostic::new(
                Rule::UniformSplit,
                s.pc,
                "split predicate is warp-uniform: no divergence possible; candidate \
                 for a uniform branch / S_dae address-generation slice"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::analyze_program;
    use crate::cfg::Cfg;
    use sparseweaver_isa::{Asm, CsrKind, Width};

    fn geom() -> AnalyzeGeom {
        AnalyzeGeom {
            num_cores: 2,
            warps_per_core: 4,
            threads_per_warp: 8,
            shared_mem_bytes: 1024,
        }
    }

    fn diags(p: &sparseweaver_isa::Program) -> Vec<Diagnostic> {
        let cfg = Cfg::build(p);
        let an = analyze_program(p, &cfg, &geom());
        check(&an, &geom())
    }

    #[test]
    fn line_bytes_matches_mem_crate() {
        assert_eq!(LINE_BYTES, sparseweaver_mem::LINE_BYTES);
    }

    #[test]
    fn dense_lane_stride_is_coalesced() {
        let mut a = Asm::new("dense");
        let (tid, addr, base, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.csr(tid, CsrKind::GlobalTid);
        a.slli(addr, tid, 3);
        a.ldarg(base, 0);
        a.add(addr, addr, base);
        a.ldg(v, addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::Coalesced), "{d:?}");
        assert!(d.iter().all(|d| d.rule != Rule::MemReplay), "{d:?}");
    }

    #[test]
    fn wide_stride_predicts_replay() {
        let mut a = Asm::new("stride512");
        let (tid, addr, base, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.csr(tid, CsrKind::GlobalTid);
        a.slli(addr, tid, 9); // 512 B lane stride → 8 lines per warp
        a.ldarg(base, 0);
        a.add(addr, addr, base);
        a.ldg(v, addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        let replay = d.iter().find(|d| d.rule == Rule::MemReplay).expect("L522");
        assert!(
            replay.message.contains("~8 line fills"),
            "{}",
            replay.message
        );
    }

    #[test]
    fn divergent_gather_predicts_replay() {
        let mut a = Asm::new("gather");
        let (idx, addr, base, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.weaver_dec_loc(idx);
        a.slli(addr, idx, 3);
        a.ldarg(base, 0);
        a.add(addr, addr, base);
        a.ldg(v, addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(
            d.iter()
                .any(|d| d.rule == Rule::MemReplay && d.message.contains("divergent")),
            "{d:?}"
        );
    }

    #[test]
    fn stride_32_shared_hits_one_bank() {
        // word stride 8 → lanes 0..8 hit banks {0,8,16,24,0,8,16,24}:
        // 2-way conflict at tpw = 8.
        let mut a = Asm::new("banks");
        let (lane, addr, v) = (a.reg(), a.reg(), a.reg());
        a.csr(lane, CsrKind::LaneId);
        a.slli(addr, lane, 5);
        a.lds(v, addr, 0, Width::B4);
        a.halt();
        let d = diags(&a.finish());
        let conflict = d.iter().find(|d| d.rule == Rule::MemReplay).expect("L522");
        assert!(conflict.message.contains("2-way"), "{}", conflict.message);
    }

    #[test]
    fn uniform_split_gets_l531() {
        let mut a = Asm::new("usplit");
        let wid = a.reg();
        a.csr(wid, CsrKind::WarpId);
        a.if_nonzero(wid, |a| {
            a.nop();
        });
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::UniformSplit), "{d:?}");
    }
}
