//! Weaver-protocol state machine check (Table II).
//!
//! The Weaver unit is configured by `WEAVER_REG` and consumed by
//! `WEAVER_DEC_ID`/`WEAVER_DEC_LOC`/`WEAVER_SKIP`. Registration happens
//! per-warp, distribution per-core, so a core-wide barrier must separate
//! the two: decoding before every warp's registration has landed reads a
//! half-built Sparse Workload Information Table.
//!
//! Each block is analyzed under a *powerset* of three per-path states —
//! Unregistered, Registered (reg seen, no barrier yet), Synced (barrier
//! after reg) — joined by union over predecessors. A decode is flagged
//! when no path has registered at all (SW-L401) or when some path's
//! registration is not yet barrier-synchronized (SW-L402). Conditional
//! registration (the Fig. 9 template registers under `if_nonzero`) is
//! fine: the registering path reaches the decode as Synced.

use sparseweaver_isa::{Instr, Program};

use crate::cfg::Cfg;
use crate::{Diagnostic, Rule};

const UNREG: u8 = 1;
const REG: u8 = 2;
const SYNCED: u8 = 4;

fn transfer(i: &Instr, s: u8) -> u8 {
    match i {
        Instr::WeaverReg { .. } => {
            if s != 0 {
                REG
            } else {
                0
            }
        }
        // A barrier publishes every pending registration core-wide.
        Instr::Bar => (s & UNREG) | if s & (REG | SYNCED) != 0 { SYNCED } else { 0 },
        _ => s,
    }
}

fn is_decode(i: &Instr) -> bool {
    matches!(
        i,
        Instr::WeaverDecId { .. } | Instr::WeaverDecLoc { .. } | Instr::WeaverSkip { .. }
    )
}

pub(crate) fn check(p: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(entry) = cfg.entry() else {
        return out;
    };
    if p.weaver_instr_count() == 0 {
        return out;
    }
    let instr = |pc: u32| p.get(pc).expect("reachable pc in range");
    let n = cfg.blocks.len();
    let mut state_in = vec![0u8; n];
    state_in[entry] = UNREG;
    loop {
        let mut changed = false;
        for b in 0..n {
            let mut s = state_in[b];
            for pc in cfg.blocks[b].pcs() {
                s = transfer(instr(pc), s);
            }
            for &succ in &cfg.blocks[b].succs {
                let merged = state_in[succ] | s;
                if merged != state_in[succ] {
                    state_in[succ] = merged;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut s = state_in[b];
        for pc in block.pcs() {
            let i = instr(pc);
            if is_decode(i) {
                if s & (REG | SYNCED) == 0 {
                    out.push(Diagnostic::new(
                        Rule::WeaverDecodeUnregistered,
                        pc,
                        format!(
                            "`{i}` decodes from the Weaver unit, but no path from \
                             the kernel entry executes `weaver.reg`"
                        ),
                    ));
                } else if s & REG != 0 {
                    out.push(Diagnostic::new(
                        Rule::WeaverDecodeUnsynced,
                        pc,
                        format!(
                            "`{i}` may execute before registration is \
                             barrier-synchronized; insert a `bar` between \
                             `weaver.reg` and the distribution loop"
                        ),
                    ));
                }
            }
            s = transfer(i, s);
        }
    }
    out
}
