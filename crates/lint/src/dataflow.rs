//! Block-level dataflow analyses over the 64-register file.
//!
//! Register sets are `u64` bitsets (bit *n* = `xN`), so the classic
//! definedness and liveness fixpoints are a few dozen word operations even
//! for the largest schedule templates.

use sparseweaver_isa::{Instr, Program, Reg, ZERO};

use crate::cfg::Cfg;
use crate::{Diagnostic, Rule};

fn bit(r: Reg) -> u64 {
    1u64 << (r.0 & 63)
}

/// Ops whose only effect is writing their destination register. Only these
/// are eligible for the dead-write lint: discarding the result of a load,
/// CSR read, atomic, vote, or Weaver decode is idiomatic (the side effect
/// or the broadcast is the point).
pub(crate) fn is_pure(i: &Instr) -> bool {
    matches!(
        i,
        Instr::LdImm { .. }
            | Instr::Alu { .. }
            | Instr::AluI { .. }
            | Instr::Fpu { .. }
            | Instr::FCmp { .. }
            | Instr::CvtIF { .. }
            | Instr::CvtFI { .. }
    )
}

pub(crate) fn check(p: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(entry) = cfg.entry() else {
        return out;
    };
    let n = cfg.blocks.len();
    let instr = |pc: u32| p.get(pc).expect("reachable pc in range");

    // Per-block summary: registers definitely written within the block.
    let defs: Vec<u64> = cfg
        .blocks
        .iter()
        .map(|b| {
            b.pcs()
                .filter_map(|pc| instr(pc).dest())
                .fold(0u64, |acc, d| acc | bit(d))
        })
        .collect();

    // --- definedness (forward): must = intersection, may = union ---------
    // x0 is hardwired and counts as always defined; everything else starts
    // undefined at launch (the simulator zero-fills, but reading that zero
    // is almost always a template bug).
    let x0 = bit(ZERO);
    let mut must_in = vec![u64::MAX; n];
    let mut may_in = vec![0u64; n];
    must_in[entry] = x0;
    may_in[entry] = x0;
    loop {
        let mut changed = false;
        for b in 0..n {
            if b != entry {
                let mut must = u64::MAX;
                let mut may = 0u64;
                for &pr in &cfg.blocks[b].preds {
                    must &= must_in[pr] | defs[pr];
                    may |= may_in[pr] | defs[pr];
                }
                must |= x0;
                may |= x0;
                if must != must_in[b] || may != may_in[b] {
                    must_in[b] = must;
                    may_in[b] = may;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut must = must_in[b];
        let mut may = may_in[b];
        for pc in block.pcs() {
            let i = instr(pc);
            let mut reported = 0u64;
            for src in i.sources() {
                let s = bit(src);
                if reported & s != 0 {
                    continue;
                }
                reported |= s;
                if may & s == 0 {
                    out.push(Diagnostic::new(
                        Rule::UseBeforeDef,
                        pc,
                        format!("`{i}` reads {src}, which no path has written"),
                    ));
                } else if must & s == 0 {
                    out.push(Diagnostic::new(
                        Rule::MaybeUndefined,
                        pc,
                        format!("`{i}` reads {src}, which some paths leave unwritten"),
                    ));
                }
            }
            if let Some(d) = i.dest() {
                must |= bit(d);
                may |= bit(d);
            }
        }
    }

    // --- liveness (backward): dead pure writes ----------------------------
    let uses: Vec<u64> = cfg
        .blocks
        .iter()
        .map(|b| {
            let mut defined = 0u64;
            let mut used = 0u64;
            for pc in b.pcs() {
                let i = instr(pc);
                for src in i.sources() {
                    if defined & bit(src) == 0 {
                        used |= bit(src);
                    }
                }
                if let Some(d) = i.dest() {
                    defined |= bit(d);
                }
            }
            used
        })
        .collect();
    let mut live_in = vec![0u64; n];
    loop {
        let mut changed = false;
        for b in (0..n).rev() {
            let live_out = cfg.blocks[b]
                .succs
                .iter()
                .fold(0u64, |acc, &s| acc | live_in[s]);
            let li = uses[b] | (live_out & !defs[b]);
            if li != live_in[b] {
                live_in[b] = li;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for block in &cfg.blocks {
        let mut live = block.succs.iter().fold(0u64, |acc, &s| acc | live_in[s]);
        for pc in block.pcs().rev() {
            let i = instr(pc);
            if let Some(d) = i.dest() {
                if d != ZERO && is_pure(i) && live & bit(d) == 0 {
                    out.push(Diagnostic::new(
                        Rule::DeadWrite,
                        pc,
                        format!("`{i}` writes {d}, but the value is never read"),
                    ));
                }
                live &= !bit(d);
            }
            for src in i.sources() {
                live |= bit(src);
            }
        }
    }

    // --- tmc all-lanes-off ------------------------------------------------
    for &pc in &cfg.tmc_sites {
        let Instr::Tmc { rs1 } = *instr(pc) else {
            continue;
        };
        if rs1 == ZERO {
            out.push(Diagnostic::new(
                Rule::TmcAllLanesOff,
                pc,
                "`tmc x0` sets an empty thread mask; the warp can never re-enable lanes"
                    .to_string(),
            ));
            continue;
        }
        let (defs, reaches_entry) = reaching_defs(p, cfg, pc, rs1);
        let all_zero = !defs.is_empty()
            && defs
                .iter()
                .all(|&dpc| matches!(instr(dpc), Instr::LdImm { imm: 0, .. }));
        if !reaches_entry && all_zero {
            out.push(Diagnostic::new(
                Rule::TmcAllLanesOff,
                pc,
                format!(
                    "`{}`: every reaching definition of {rs1} is `li {rs1}, 0`; \
                     the mask is constant zero",
                    instr(pc)
                ),
            ));
        }
    }

    out
}

/// The definition sites of `reg` that reach `pc`, found by a backward walk
/// over the block graph. Also reports whether the walk reached the kernel
/// entry without seeing a definition (i.e. the launch-time value reaches).
pub(crate) fn reaching_defs(p: &Program, cfg: &Cfg, pc: u32, reg: Reg) -> (Vec<u32>, bool) {
    let instr = |pc: u32| p.get(pc).expect("reachable pc in range");
    let find_in = |lo: u32, hi: u32| -> Option<u32> {
        (lo..hi).rev().find(|&q| instr(q).dest() == Some(reg))
    };
    let b0 = cfg.block_of[&pc];
    if let Some(d) = find_in(cfg.blocks[b0].start, pc) {
        return (vec![d], false);
    }
    let mut defs = Vec::new();
    let mut reaches_entry = b0 == cfg.entry().expect("nonempty");
    let mut seen = vec![false; cfg.blocks.len()];
    let mut stack: Vec<usize> = cfg.blocks[b0].preds.clone();
    while let Some(b) = stack.pop() {
        if seen[b] {
            continue;
        }
        seen[b] = true;
        if let Some(d) = find_in(cfg.blocks[b].start, cfg.blocks[b].end) {
            if !defs.contains(&d) {
                defs.push(d);
            }
            continue;
        }
        if Some(b) == cfg.entry() {
            reaches_entry = true;
        }
        stack.extend(cfg.blocks[b].preds.iter().copied());
    }
    (defs, reaches_entry)
}
