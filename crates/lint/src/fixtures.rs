//! Bundled ill-formed programs, one per headline failure class.
//!
//! These are the seeded negative cases used by `swlint --selftest` and the
//! negative-path test suite: each is the minimal program triggering one of
//! the hazards the verifier exists to catch.

use sparseweaver_isa::{Asm, CsrKind, Instr, Program, Width};

use crate::AnalyzeGeom;

/// The four seeded ill-formed programs, each paired with the rule ID it
/// must trigger.
pub fn ill_formed() -> Vec<(Program, &'static str)> {
    vec![
        (use_before_def(), "SW-L101"),
        (unbalanced_join(), "SW-L201"),
        (divergent_barrier(), "SW-L301"),
        (unregistered_decode(), "SW-L401"),
    ]
}

/// The launch geometry every analyzer fixture is checked against.
pub fn analyzer_geom() -> AnalyzeGeom {
    AnalyzeGeom {
        num_cores: 2,
        warps_per_core: 4,
        threads_per_warp: 8,
        shared_mem_bytes: 1024,
    }
}

/// Seeded analyzer fixtures: programs that are structurally well-formed
/// (clean under [`crate::lint`]) but trigger one SW-L5xx finding each
/// under [`crate::analyze`] at [`analyzer_geom`].
pub fn analyzer_flagged() -> Vec<(Program, &'static str)> {
    vec![
        (oob_proved(), "SW-L501"),
        (oob_possible(), "SW-L502"),
        (barrier_interval_race(), "SW-L511"),
        (coalesced_stream(), "SW-L521"),
        (bank_conflicted(), "SW-L522"),
        (uniform_split(), "SW-L531"),
    ]
}

/// Stores past the end of the 1 KiB scratchpad on every lane: proved OOB.
pub fn oob_proved() -> Program {
    let mut a = Asm::new("bad_oob_proved");
    let addr = a.reg();
    a.li(addr, 4096);
    a.sts(a.zero(), addr, 0, Width::B8);
    a.halt();
    a.finish()
}

/// Lane-scaled store whose top lanes straddle the scratchpad end:
/// possibly OOB (lane 7 · 256 = 1792 ≥ 1024), but not provably so for
/// every lane.
pub fn oob_possible() -> Program {
    let mut a = Asm::new("bad_oob_possible");
    let (lane, addr) = (a.reg(), a.reg());
    a.csr(lane, CsrKind::LaneId);
    a.slli(addr, lane, 8);
    a.sts(a.zero(), addr, 0, Width::B8);
    a.halt();
    a.finish()
}

/// Writes a per-core-thread slot, then immediately reads the *next*
/// thread's slot with no intervening barrier: write/read race across
/// warps within one barrier interval.
pub fn barrier_interval_race() -> Program {
    let mut a = Asm::new("bad_barrier_interval_race");
    let (ctid, addr, v) = (a.reg(), a.reg(), a.reg());
    a.csr(ctid, CsrKind::CoreTid);
    a.slli(addr, ctid, 3);
    a.sts(ctid, addr, 0, Width::B8);
    a.lds(v, addr, 8, Width::B8);
    a.sts(v, addr, 0, Width::B8);
    a.halt();
    a.finish()
}

/// Dense global-tid-indexed stream: provably coalesced (SW-L521 advice).
pub fn coalesced_stream() -> Program {
    let mut a = Asm::new("ok_coalesced_stream");
    let (tid, addr, base, v) = (a.reg(), a.reg(), a.reg(), a.reg());
    a.csr(tid, CsrKind::GlobalTid);
    a.slli(addr, tid, 3);
    a.ldarg(base, 0);
    a.add(addr, addr, base);
    a.ldg(v, addr, 0, Width::B8);
    a.stg(v, addr, 0, Width::B8);
    a.halt();
    a.finish()
}

/// Column-major shared access (lane stride 32 words apart): every lane
/// hits the same 4-byte bank — predicted serialization (SW-L522).
pub fn bank_conflicted() -> Program {
    let mut a = Asm::new("bad_bank_conflicted");
    let (lane, addr, v) = (a.reg(), a.reg(), a.reg());
    a.csr(lane, CsrKind::LaneId);
    a.slli(addr, lane, 7); // lane · 128 B = word stride 32 → one bank
    a.lds(v, addr, 0, Width::B4);
    a.halt();
    a.finish()
}

/// A split on a warp-uniform predicate: no divergence possible — a
/// candidate for the S_dae address-generation slice (SW-L531 advice).
pub fn uniform_split() -> Program {
    let mut a = Asm::new("ok_uniform_split");
    let wid = a.reg();
    a.csr(wid, CsrKind::WarpId);
    a.if_nonzero(wid, |a| a.nop());
    a.halt();
    a.finish()
}

/// Reads two registers nothing ever wrote.
pub fn use_before_def() -> Program {
    let mut a = Asm::new("bad_use_before_def");
    let x = a.reg();
    let y = a.reg();
    let z = a.reg();
    a.add(z, x, y);
    a.halt();
    a.finish()
}

/// A `join` with no enclosing `split`: pops an empty IPDOM stack.
pub fn unbalanced_join() -> Program {
    let mut a = Asm::new("bad_unbalanced_join");
    a.emit(Instr::Join);
    a.halt();
    a.finish()
}

/// A core-wide barrier inside a split region: inactive lanes never arrive.
pub fn divergent_barrier() -> Program {
    let mut a = Asm::new("bad_divergent_barrier");
    let lane = a.reg();
    let c = a.reg();
    a.csr(lane, CsrKind::LaneId);
    a.sltui(c, lane, 1);
    a.if_nonzero(c, |a| a.bar());
    a.halt();
    a.finish()
}

/// `WEAVER_DEC_ID` with no `WEAVER_REG` anywhere: decodes from an
/// unconfigured Weaver unit.
pub fn unregistered_decode() -> Program {
    let mut a = Asm::new("bad_unregistered_decode");
    let v = a.reg();
    a.weaver_dec_id(v);
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_triggers_exactly_its_rule() {
        for (program, rule_id) in ill_formed() {
            let report = crate::lint(&program);
            assert!(
                report.diagnostics.iter().any(|d| d.rule.id() == rule_id),
                "{} did not trigger {rule_id}:\n{}",
                program.name(),
                report.to_text()
            );
            assert!(!report.is_clean(), "{} unexpectedly clean", program.name());
        }
    }

    #[test]
    fn every_analyzer_fixture_triggers_its_rule_and_lints_clean() {
        let geom = analyzer_geom();
        for (program, rule_id) in analyzer_flagged() {
            let lint = crate::lint(&program);
            assert!(
                lint.is_clean(),
                "{} has structural errors:\n{}",
                program.name(),
                lint.to_text()
            );
            let report = crate::analyze(&program, &geom);
            assert!(
                report.diagnostics.iter().any(|d| d.rule.id() == rule_id),
                "{} did not trigger {rule_id}:\n{}",
                program.name(),
                report.to_text()
            );
        }
    }
}
