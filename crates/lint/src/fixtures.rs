//! Bundled ill-formed programs, one per headline failure class.
//!
//! These are the seeded negative cases used by `swlint --selftest` and the
//! negative-path test suite: each is the minimal program triggering one of
//! the hazards the verifier exists to catch.

use sparseweaver_isa::{Asm, CsrKind, Instr, Program};

/// The four seeded ill-formed programs, each paired with the rule ID it
/// must trigger.
pub fn ill_formed() -> Vec<(Program, &'static str)> {
    vec![
        (use_before_def(), "SW-L101"),
        (unbalanced_join(), "SW-L201"),
        (divergent_barrier(), "SW-L301"),
        (unregistered_decode(), "SW-L401"),
    ]
}

/// Reads two registers nothing ever wrote.
pub fn use_before_def() -> Program {
    let mut a = Asm::new("bad_use_before_def");
    let x = a.reg();
    let y = a.reg();
    let z = a.reg();
    a.add(z, x, y);
    a.halt();
    a.finish()
}

/// A `join` with no enclosing `split`: pops an empty IPDOM stack.
pub fn unbalanced_join() -> Program {
    let mut a = Asm::new("bad_unbalanced_join");
    a.emit(Instr::Join);
    a.halt();
    a.finish()
}

/// A core-wide barrier inside a split region: inactive lanes never arrive.
pub fn divergent_barrier() -> Program {
    let mut a = Asm::new("bad_divergent_barrier");
    let lane = a.reg();
    let c = a.reg();
    a.csr(lane, CsrKind::LaneId);
    a.sltui(c, lane, 1);
    a.if_nonzero(c, |a| a.bar());
    a.halt();
    a.finish()
}

/// `WEAVER_DEC_ID` with no `WEAVER_REG` anywhere: decodes from an
/// unconfigured Weaver unit.
pub fn unregistered_decode() -> Program {
    let mut a = Asm::new("bad_unregistered_decode");
    let v = a.reg();
    a.weaver_dec_id(v);
    a.halt();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_triggers_exactly_its_rule() {
        for (program, rule_id) in ill_formed() {
            let report = crate::lint(&program);
            assert!(
                report.diagnostics.iter().any(|d| d.rule.id() == rule_id),
                "{} did not trigger {rule_id}:\n{}",
                program.name(),
                report.to_text()
            );
            assert!(!report.is_clean(), "{} unexpectedly clean", program.name());
        }
    }
}
