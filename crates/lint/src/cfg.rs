//! CFG construction by abstract interpretation of the divergence stack.
//!
//! The verifier enumerates `(pc, stack)` states the way the simulator's
//! IPDOM mechanism would: `split` pushes a frame, the then-side `join`
//! either transfers to the frame's else side (flipping `in_else`) or pops
//! to `end_target`. Memoizing visited states makes the walk terminate on
//! loops; a program whose loop grows the stack shows up as SW-L202 (two
//! different stack shapes at one pc) long before the safety caps bite.
//!
//! The same walk yields the structural diagnostics (SW-L201/202/203,
//! SW-L301) and the edge set from which basic blocks are carved for the
//! dataflow layer.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use sparseweaver_isa::{Instr, Program};

use crate::{Diagnostic, Rule};

/// Deepest nesting of split regions the walk will follow. Real kernels nest
/// a handful deep; hitting this means the stack grows without bound.
const MAX_STACK_DEPTH: usize = 64;
/// Total `(pc, stack)` states examined before giving up (safety net; never
/// reached by programs that pass SW-L202).
const MAX_STATES: usize = 1 << 20;
/// Distinct stack shapes tracked per pc before further shapes are dropped.
const MAX_SHAPES_PER_PC: usize = 8;

/// One IPDOM stack frame as the simulator models it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Frame {
    else_t: u32,
    end_t: u32,
    in_else: bool,
}

/// A maximal straight-line run of reachable instructions.
#[derive(Debug, Clone)]
pub(crate) struct BasicBlock {
    /// First pc (inclusive).
    pub start: u32,
    /// One past the last pc.
    pub end: u32,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// The pcs in this block, in order.
    pub fn pcs(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }
}

/// The reachable control-flow graph plus structural diagnostics.
#[derive(Debug, Clone)]
pub(crate) struct Cfg {
    /// Reachable basic blocks, ordered by start pc (entry first).
    pub blocks: Vec<BasicBlock>,
    /// Block index owning each reachable pc.
    pub block_of: BTreeMap<u32, usize>,
    /// `tmc` sites among the reachable pcs.
    pub tmc_sites: Vec<u32>,
    /// Structural findings from the walk (SW-L104/201/202/203/301).
    pub diagnostics: Vec<Diagnostic>,
}

impl Cfg {
    /// Index of the block containing pc 0, if the program is non-empty.
    pub fn entry(&self) -> Option<usize> {
        self.block_of.get(&0).copied()
    }

    pub fn build(p: &Program) -> Cfg {
        let len = p.len() as u32;
        let mut succs: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut visited: BTreeSet<u32> = BTreeSet::new();
        let mut shapes: BTreeMap<u32, Vec<Vec<(u32, u32)>>> = BTreeMap::new();
        let mut mismatch: BTreeSet<u32> = BTreeSet::new();
        let mut lone_join: BTreeSet<u32> = BTreeSet::new();
        let mut halt_diverged: BTreeSet<u32> = BTreeSet::new();
        let mut bar_diverged: BTreeSet<u32> = BTreeSet::new();
        let mut tmc_sites: BTreeSet<u32> = BTreeSet::new();

        let mut seen: HashSet<(u32, Vec<Frame>)> = HashSet::new();
        let mut work: VecDeque<(u32, Vec<Frame>)> = VecDeque::new();
        if len > 0 {
            work.push_back((0, Vec::new()));
        }

        let mut states = 0usize;
        while let Some((pc, stack)) = work.pop_front() {
            if states >= MAX_STATES {
                break;
            }
            if !seen.insert((pc, stack.clone())) {
                continue;
            }
            states += 1;

            // Track the set of stack *shapes* (target pairs, ignoring
            // `in_else`) seen at each pc. Two shapes means the divergence
            // depth depends on the path taken — SW-L202.
            let shape: Vec<(u32, u32)> = stack.iter().map(|f| (f.else_t, f.end_t)).collect();
            let pc_shapes = shapes.entry(pc).or_default();
            if !pc_shapes.contains(&shape) {
                if !pc_shapes.is_empty() {
                    mismatch.insert(pc);
                }
                if pc_shapes.len() >= MAX_SHAPES_PER_PC {
                    continue; // bounded; already reported as a mismatch
                }
                pc_shapes.push(shape);
            }
            visited.insert(pc);

            // Enqueue a successor state, treating a target one past the end
            // as an implicit halt.
            let mut push = |from: u32, to: u32, st: Vec<Frame>| {
                if to >= len {
                    if !st.is_empty() {
                        halt_diverged.insert(from);
                    }
                    return;
                }
                succs.entry(from).or_default().insert(to);
                work.push_back((to, st));
            };

            match *p.get(pc).expect("pc in range") {
                Instr::Halt => {
                    if !stack.is_empty() {
                        halt_diverged.insert(pc);
                    }
                }
                Instr::Jmp { target } => push(pc, target, stack),
                Instr::Br { target, .. } => {
                    push(pc, target, stack.clone());
                    push(pc, pc + 1, stack);
                }
                Instr::Split {
                    else_target,
                    end_target,
                    ..
                } => {
                    if stack.len() >= MAX_STACK_DEPTH {
                        mismatch.insert(pc);
                        continue;
                    }
                    let mut then_side = stack.clone();
                    then_side.push(Frame {
                        else_t: else_target,
                        end_t: end_target,
                        in_else: false,
                    });
                    push(pc, pc + 1, then_side);
                    // The else side starts with the frame flipped (reached
                    // via the then-side's join in the simulator; entering
                    // it directly over-approximates reachability).
                    let mut else_side = stack;
                    else_side.push(Frame {
                        else_t: else_target,
                        end_t: end_target,
                        in_else: true,
                    });
                    push(pc, else_target, else_side);
                }
                Instr::Join => match stack.last().copied() {
                    None => {
                        lone_join.insert(pc);
                    }
                    Some(f) if !f.in_else => {
                        let mut flipped = stack.clone();
                        flipped.last_mut().expect("nonempty").in_else = true;
                        push(pc, f.else_t, flipped);
                        let mut popped = stack;
                        popped.pop();
                        push(pc, f.end_t, popped);
                    }
                    Some(f) => {
                        let mut popped = stack;
                        popped.pop();
                        push(pc, f.end_t, popped);
                    }
                },
                Instr::Bar => {
                    if !stack.is_empty() {
                        bar_diverged.insert(pc);
                    }
                    push(pc, pc + 1, stack);
                }
                Instr::Tmc { .. } => {
                    tmc_sites.insert(pc);
                    push(pc, pc + 1, stack);
                }
                _ => push(pc, pc + 1, stack),
            }
        }

        // --- basic blocks over the reachable pcs --------------------------
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        if visited.contains(&0) {
            leaders.insert(0);
        }
        for (&from, tos) in &succs {
            let multi = tos.len() != 1 || !tos.contains(&(from + 1));
            for &to in tos {
                if to != from + 1 {
                    leaders.insert(to);
                }
            }
            if multi {
                leaders.insert(from + 1);
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of: BTreeMap<u32, usize> = BTreeMap::new();
        let mut prev: Option<u32> = None;
        for &pc in &visited {
            let new_block = match prev {
                None => true,
                Some(q) => pc != q + 1 || leaders.contains(&pc),
            };
            if new_block {
                blocks.push(BasicBlock {
                    start: pc,
                    end: pc + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("block open").end = pc + 1;
            }
            block_of.insert(pc, blocks.len() - 1);
            prev = Some(pc);
        }
        for bi in 0..blocks.len() {
            let last = blocks[bi].end - 1;
            if let Some(tos) = succs.get(&last) {
                for &to in tos {
                    let ti = block_of[&to];
                    if !blocks[bi].succs.contains(&ti) {
                        blocks[bi].succs.push(ti);
                    }
                    if !blocks[ti].preds.contains(&bi) {
                        blocks[ti].preds.push(bi);
                    }
                }
            }
        }

        // --- diagnostics --------------------------------------------------
        let mut diagnostics = Vec::new();
        let disasm = |pc: u32| p.get(pc).map(|i| i.to_string()).unwrap_or_default();
        for pc in lone_join {
            diagnostics.push(Diagnostic::new(
                Rule::JoinWithoutSplit,
                pc,
                format!("`{}` executes with an empty divergence stack", disasm(pc)),
            ));
        }
        for pc in halt_diverged {
            diagnostics.push(Diagnostic::new(
                Rule::HaltUnderDivergence,
                pc,
                format!(
                    "`{}` terminates the warp inside an open split region \
                     (pending lanes never resume)",
                    disasm(pc)
                ),
            ));
        }
        for pc in bar_diverged {
            diagnostics.push(Diagnostic::new(
                Rule::BarrierUnderDivergence,
                pc,
                format!(
                    "`{}` can execute under a divergent mask; inactive lanes \
                     never arrive and the core deadlocks",
                    disasm(pc)
                ),
            ));
        }
        // Stack shapes are constant along a block, so report mismatches at
        // block granularity to avoid repeating the finding per pc.
        for b in &blocks {
            if let Some(&pc) = mismatch.range(b.start..b.end).next() {
                diagnostics.push(Diagnostic::new(
                    Rule::DivergenceStackMismatch,
                    b.start,
                    format!(
                        "pc {} is reachable with different divergence stacks; \
                         split/join nesting is unbalanced across paths",
                        pc
                    ),
                ));
            }
        }
        // Unreachable pcs, grouped into maximal runs.
        let mut run: Option<(u32, u32)> = None;
        let flush = |run: &mut Option<(u32, u32)>, out: &mut Vec<Diagnostic>| {
            if let Some((s, e)) = run.take() {
                out.push(Diagnostic::new(
                    Rule::UnreachableCode,
                    s,
                    format!("pcs {s}..={e} are unreachable from the kernel entry"),
                ));
            }
        };
        for pc in 0..len {
            if visited.contains(&pc) {
                flush(&mut run, &mut diagnostics);
            } else {
                run = Some(match run {
                    None => (pc, pc),
                    Some((s, _)) => (s, pc),
                });
            }
        }
        flush(&mut run, &mut diagnostics);

        Cfg {
            blocks,
            block_of,
            tmc_sites: tmc_sites.into_iter().collect(),
            diagnostics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::Asm;

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new("line");
        let r = a.reg();
        a.li(r, 1);
        a.addi(r, r, 1);
        a.halt();
        let cfg = Cfg::build(&a.finish());
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_links_edges() {
        let mut a = Asm::new("br");
        let r = a.reg();
        a.li(r, 1);
        let end = a.new_label();
        a.beq(r, a.zero(), end);
        a.addi(r, r, 1);
        a.bind(end);
        a.halt();
        let cfg = Cfg::build(&a.finish());
        // blocks: [0..2) branch, [2..3) fallthrough, [3..4) halt
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(cfg.blocks[1].succs, vec![2]);
        assert_eq!(cfg.blocks[2].preds.len(), 2);
        assert_eq!(cfg.entry(), Some(0));
    }

    #[test]
    fn if_nonzero_join_sees_both_polarities_without_mismatch() {
        let mut a = Asm::new("ifnz");
        let c = a.reg();
        a.li(c, 1);
        a.if_nonzero(c, |a| a.nop());
        a.halt();
        let cfg = Cfg::build(&a.finish());
        assert!(cfg.diagnostics.is_empty(), "{:?}", cfg.diagnostics);
        let reachable: usize = cfg.blocks.iter().map(|b| b.pcs().len()).sum();
        assert_eq!(reachable, 5); // li, split, nop, join, halt
    }

    #[test]
    fn branch_to_one_past_end_is_a_legal_exit() {
        use sparseweaver_isa::{Instr, Reg};
        let p = Program::new(
            "offend",
            vec![
                Instr::LdImm { rd: Reg(1), imm: 0 },
                Instr::Jmp { target: 2 },
            ],
        );
        let cfg = Cfg::build(&p);
        assert!(cfg.diagnostics.is_empty(), "{:?}", cfg.diagnostics);
    }
}
