//! Static verifier for SparseWeaver kernel IR programs.
//!
//! The paper's kernels rely on Vortex-style *explicit* divergence control
//! (`split`/`join`, `tmc`) and a stateful Weaver instruction protocol
//! (`WEAVER_REG` must configure the unit before `WEAVER_DEC_ID` /
//! `WEAVER_DEC_LOC` / `WEAVER_SKIP` decode edges, Table II). Unbalanced
//! split/join stacks and barriers under divergent masks hang real hardware;
//! this crate catches them statically, before a kernel ever reaches the
//! simulator.
//!
//! The verifier runs three layers over a [`Program`]:
//!
//! 1. **CFG construction**: an abstract interpretation of the
//!    instruction stream that enumerates `(pc, divergence-stack)` states,
//!    yielding basic blocks plus the structural divergence checks
//!    (SW-L2xx/SW-L301).
//! 2. **Dataflow**: block-level bitset analyses —
//!    use-before-def, dead writes, unreachable code, `tmc 0` reachability.
//! 3. **Weaver protocol**: a three-state
//!    Unregistered/Registered/Synced machine checking that every decode is
//!    preceded by a `WEAVER_REG` and a synchronizing barrier on the paths
//!    that reach it.
//!
//! Every diagnostic carries a stable rule ID (`SW-L101`-style); the full
//! catalog lives in `docs/lint-rules.md`.
//!
//! # Examples
//!
//! ```
//! use sparseweaver_isa::{Asm, Instr};
//!
//! let mut a = Asm::new("bad");
//! a.emit(Instr::Join); // join with no enclosing split
//! a.halt();
//! let report = sparseweaver_lint::lint(&a.finish());
//! assert!(!report.is_clean());
//! assert_eq!(report.diagnostics[0].rule.id(), "SW-L201");
//! ```

#![warn(missing_docs)]

mod absint;
mod cfg;
mod dataflow;
mod domain;
pub mod facts;
pub mod fixtures;
mod memcheck;
mod uniform;
mod weaver;

pub use domain::AnalyzeGeom;
pub use facts::DataflowFacts;

use std::fmt;

use sparseweaver_isa::Program;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational performance/structure advice from the
    /// analyzer (coalescing, bank conflicts, uniform branches). Never
    /// makes a program unclean.
    Advice,
    /// Suspicious but not known to break execution (dead writes,
    /// unreachable code, possibly-undefined reads).
    Warning,
    /// Would hang or corrupt execution on real hardware (and usually traps
    /// in the simulator).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Advice => write!(f, "advice"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A lint rule. Stable IDs are documented in `docs/lint-rules.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// SW-L101: a register is read before any definition reaches it.
    UseBeforeDef,
    /// SW-L102: a register may be undefined on some path to a read.
    MaybeUndefined,
    /// SW-L103: a pure computation's result is never read.
    DeadWrite,
    /// SW-L104: instructions no execution path can reach.
    UnreachableCode,
    /// SW-L201: `join` executes with an empty divergence stack.
    JoinWithoutSplit,
    /// SW-L202: a pc is reachable with two different divergence stacks.
    DivergenceStackMismatch,
    /// SW-L203: the warp halts (or falls off the end) inside a split region.
    HaltUnderDivergence,
    /// SW-L301: a core-wide barrier executes under a divergent mask.
    BarrierUnderDivergence,
    /// SW-L302: `tmc` provably sets an all-lanes-off mask.
    TmcAllLanesOff,
    /// SW-L401: a Weaver decode with no `WEAVER_REG` on any path from entry.
    WeaverDecodeUnregistered,
    /// SW-L402: a Weaver decode may run before registration is
    /// barrier-synchronized.
    WeaverDecodeUnsynced,
    /// SW-L501: a memory access is *proved* out of bounds against the
    /// launch geometry.
    OobProved,
    /// SW-L502: a store/atomic *may* be out of bounds (not provably safe).
    OobPossible,
    /// SW-L511: two shared-memory accesses (at least one a store) may
    /// race across warps within one barrier interval.
    SharedRace,
    /// SW-L521: a global access is provably coalesced (dense lane
    /// stride or uniform broadcast).
    Coalesced,
    /// SW-L522: a global access predicts line-fill replay, or a shared
    /// access predicts bank-conflict serialization.
    MemReplay,
    /// SW-L531: a split predicate is warp-uniform — a candidate for a
    /// uniform branch / S_dae address-generation slice.
    UniformSplit,
}

impl Rule {
    /// Every rule, in catalog order.
    pub const ALL: [Rule; 17] = [
        Rule::UseBeforeDef,
        Rule::MaybeUndefined,
        Rule::DeadWrite,
        Rule::UnreachableCode,
        Rule::JoinWithoutSplit,
        Rule::DivergenceStackMismatch,
        Rule::HaltUnderDivergence,
        Rule::BarrierUnderDivergence,
        Rule::TmcAllLanesOff,
        Rule::WeaverDecodeUnregistered,
        Rule::WeaverDecodeUnsynced,
        Rule::OobProved,
        Rule::OobPossible,
        Rule::SharedRace,
        Rule::Coalesced,
        Rule::MemReplay,
        Rule::UniformSplit,
    ];

    /// The stable rule ID, e.g. `"SW-L101"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UseBeforeDef => "SW-L101",
            Rule::MaybeUndefined => "SW-L102",
            Rule::DeadWrite => "SW-L103",
            Rule::UnreachableCode => "SW-L104",
            Rule::JoinWithoutSplit => "SW-L201",
            Rule::DivergenceStackMismatch => "SW-L202",
            Rule::HaltUnderDivergence => "SW-L203",
            Rule::BarrierUnderDivergence => "SW-L301",
            Rule::TmcAllLanesOff => "SW-L302",
            Rule::WeaverDecodeUnregistered => "SW-L401",
            Rule::WeaverDecodeUnsynced => "SW-L402",
            Rule::OobProved => "SW-L501",
            Rule::OobPossible => "SW-L502",
            Rule::SharedRace => "SW-L511",
            Rule::Coalesced => "SW-L521",
            Rule::MemReplay => "SW-L522",
            Rule::UniformSplit => "SW-L531",
        }
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::MaybeUndefined
            | Rule::DeadWrite
            | Rule::UnreachableCode
            | Rule::OobPossible
            | Rule::SharedRace => Severity::Warning,
            Rule::Coalesced | Rule::MemReplay | Rule::UniformSplit => Severity::Advice,
            _ => Severity::Error,
        }
    }

    /// One-line description used in the rule catalog.
    pub fn title(self) -> &'static str {
        match self {
            Rule::UseBeforeDef => "register read before any definition",
            Rule::MaybeUndefined => "register may be undefined on some path",
            Rule::DeadWrite => "pure computation result is never read",
            Rule::UnreachableCode => "unreachable instructions",
            Rule::JoinWithoutSplit => "join with no matching split",
            Rule::DivergenceStackMismatch => "divergence stack differs between paths",
            Rule::HaltUnderDivergence => "halt inside an open split region",
            Rule::BarrierUnderDivergence => "barrier under a divergent mask",
            Rule::TmcAllLanesOff => "tmc sets an all-lanes-off mask",
            Rule::WeaverDecodeUnregistered => "weaver decode with no WEAVER_REG on any path",
            Rule::WeaverDecodeUnsynced => "weaver decode before registration is barrier-synced",
            Rule::OobProved => "memory access proved out of bounds",
            Rule::OobPossible => "store/atomic may be out of bounds",
            Rule::SharedRace => "shared-memory accesses may race across warps",
            Rule::Coalesced => "global access is provably coalesced",
            Rule::MemReplay => "predicted line-fill replay or bank-conflict serialization",
            Rule::UniformSplit => "split predicate is warp-uniform",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// A single finding at one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Instruction index the finding anchors to.
    pub pc: u32,
    /// Human-readable explanation, usually quoting the offending
    /// instruction's disassembly.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, pc: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            pc,
            message: message.into(),
        }
    }

    /// The severity inherited from the rule.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pc {:>4}: {}[{}]: {}",
            self.pc,
            self.severity(),
            self.rule.id(),
            self.message
        )
    }
}

/// How the compiler pipeline reacts to lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Skip linting entirely.
    Off,
    /// Lint and report, but never reject a kernel.
    Warn,
    /// Reject kernels with any error-severity finding (the default).
    #[default]
    Deny,
}

impl std::str::FromStr for LintLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LintLevel::Off),
            "warn" => Ok(LintLevel::Warn),
            "deny" => Ok(LintLevel::Deny),
            other => Err(format!("unknown lint level `{other}` (off|warn|deny)")),
        }
    }
}

/// The result of linting one program.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Name of the linted kernel.
    pub program: String,
    /// Originating kernel name, when the caller knows it (campaign
    /// context). Attached to every finding in text and JSON output.
    pub kernel: Option<String>,
    /// Originating schedule (paper name, e.g. `S_vm`), when known.
    pub schedule: Option<String>,
    /// All findings, ordered by pc then rule.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Attaches kernel/schedule provenance; echoed on every finding.
    pub fn with_context(mut self, kernel: &str, schedule: &str) -> Self {
        self.kernel = Some(kernel.to_string());
        self.schedule = Some(schedule.to_string());
        self
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Number of advice-severity findings.
    pub fn advice_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Advice)
            .count()
    }

    /// Whether the program has no error-severity findings. Warnings and
    /// advice do not make a program unclean.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `kernel @ schedule` provenance prefix for one finding line.
    fn context_tag(&self) -> Option<String> {
        match (&self.kernel, &self.schedule) {
            (Some(k), Some(s)) => Some(format!("{k} @ {s}")),
            (Some(k), None) => Some(k.clone()),
            (None, Some(s)) => Some(s.clone()),
            (None, None) => None,
        }
    }

    /// Multi-line human-readable listing (one line per finding).
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "kernel `{}`: {} error(s), {} warning(s)",
            self.program,
            self.error_count(),
            self.warning_count()
        );
        if self.advice_count() > 0 {
            let _ = write!(out, ", {} advisories", self.advice_count());
        }
        out.push('\n');
        let tag = self.context_tag();
        for d in &self.diagnostics {
            match &tag {
                Some(t) => {
                    let _ = writeln!(out, "  [{t}] {d}");
                }
                None => {
                    let _ = writeln!(out, "  {d}");
                }
            }
        }
        out
    }

    /// One JSON object with the program name, counts, and every finding.
    /// Kernel/schedule provenance, when set, appears both at the top
    /// level and on every finding.
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut ctx = String::new();
        if let Some(k) = &self.kernel {
            ctx.push_str(&format!(",\"kernel\":\"{}\"", escape_json(k)));
        }
        if let Some(s) = &self.schedule {
            ctx.push_str(&format!(",\"schedule\":\"{}\"", escape_json(s)));
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"program\":\"{}\"{ctx},\"errors\":{},\"warnings\":{},\"advice\":{},\"diagnostics\":[",
            escape_json(&self.program),
            self.error_count(),
            self.warning_count(),
            self.advice_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"pc\":{}{ctx},\"message\":\"{}\"}}",
                d.rule.id(),
                d.severity(),
                d.pc,
                escape_json(&d.message)
            );
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Lints `program`, running every analysis layer.
pub fn lint(program: &Program) -> LintReport {
    let cfg = cfg::Cfg::build(program);
    let mut diagnostics = cfg.diagnostics.clone();
    diagnostics.extend(dataflow::check(program, &cfg));
    diagnostics.extend(weaver::check(program, &cfg));
    diagnostics.sort_by_key(|d| (d.pc, d.rule));
    LintReport {
        program: program.name().to_string(),
        kernel: None,
        schedule: None,
        diagnostics,
    }
}

/// A flattened abstract value for external consumers (`--facts`,
/// property tests). All claims are congruences mod 2^64 over the
/// register bit pattern `v` viewed as `i64`:
///
/// * `v ≡ warp_coeff·warp_id + Σ coeff·arg + r (mod 2^64)` for some `r`
///   in `[lo, hi]` with `r ≡ lo (mod stride)` (when `stride > 0`);
/// * `lane_stride = Some(c)`: within one warp, `v(lane) − c·lane` is
///   the same for every lane (`Some(0)` = warp-uniform);
/// * `arg_derived`: the value carries a kernel-argument base (pointer
///   or size) and is exempt from bounds checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractValue {
    /// Interval lower bound of the residual `r`.
    pub lo: i64,
    /// Interval upper bound of the residual `r`.
    pub hi: i64,
    /// Congruence stride of the residual (0 = constant).
    pub stride: u64,
    /// Coefficient of the warp-id-within-core term.
    pub warp_coeff: i64,
    /// Per-lane stride within a warp, `None` = divergent.
    pub lane_stride: Option<i64>,
    /// `(argument index, coefficient)` symbolic terms.
    pub args: Vec<(u8, i64)>,
    /// Whether a kernel-argument base taints the value.
    pub arg_derived: bool,
}

impl AbstractValue {
    fn flatten(v: &domain::AbsVal) -> Self {
        AbstractValue {
            lo: v.rest.lo,
            hi: v.rest.hi,
            stride: v.rest.stride,
            warp_coeff: v.cw,
            lane_stride: v.cl,
            args: v.syms.clone(),
            arg_derived: v.arg,
        }
    }

    fn render(&self) -> String {
        let mut s = String::new();
        for (idx, c) in &self.args {
            s.push_str(&format!("{c}·arg{idx} + "));
        }
        if self.warp_coeff != 0 {
            s.push_str(&format!("{}·warp + ", self.warp_coeff));
        }
        if self.stride == 0 {
            s.push_str(&format!("{}", self.lo));
        } else {
            s.push_str(&format!("[{}, {}]/{}", self.lo, self.hi, self.stride));
        }
        match self.lane_stride {
            Some(0) => s.push_str("  (uniform)"),
            Some(c) => s.push_str(&format!("  (lane·{c})")),
            None => s.push_str("  (divergent)"),
        }
        if self.arg_derived {
            s.push_str("  (arg)");
        }
        s
    }
}

/// One register write and the abstract value it produces.
#[derive(Debug, Clone)]
pub struct ValueFact {
    /// Instruction index of the write.
    pub pc: u32,
    /// Destination register.
    pub reg: u8,
    /// The abstract value written.
    pub value: AbstractValue,
}

/// One memory access with its abstract byte address.
#[derive(Debug, Clone)]
pub struct AccessSummary {
    /// Instruction index of the access.
    pub pc: u32,
    /// `"load"`, `"store"`, or `"atomic"`.
    pub kind: &'static str,
    /// `"global"` or `"shared"`.
    pub space: &'static str,
    /// Access width in bytes.
    pub width: u64,
    /// Barrier-region id (accesses in the same region may overlap in
    /// time across warps).
    pub region: usize,
    /// Abstract first-byte address, constant offset folded in.
    pub addr: AbstractValue,
}

/// The raw facts behind an analyzer run, for `--facts` and tests.
#[derive(Debug, Clone, Default)]
pub struct AnalysisFacts {
    /// Per-write register facts, ordered by `(pc, reg)`.
    pub values: Vec<ValueFact>,
    /// Per-access address facts, ordered by pc.
    pub accesses: Vec<AccessSummary>,
    /// False only if the fixpoint safety cap fired (facts degrade to
    /// top but stay sound).
    pub converged: bool,
}

impl AnalysisFacts {
    /// Human-readable dump, one line per fact.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "facts: {} register write(s), {} access(es), converged: {}",
            self.values.len(),
            self.accesses.len(),
            self.converged
        );
        for v in &self.values {
            let _ = writeln!(out, "  pc {:>4}: x{} = {}", v.pc, v.reg, v.value.render());
        }
        for a in &self.accesses {
            let _ = writeln!(
                out,
                "  pc {:>4}: {} {} {}B region {} @ {}",
                a.pc,
                a.space,
                a.kind,
                a.width,
                a.region,
                a.addr.render()
            );
        }
        out
    }
}

/// Runs the abstract-interpretation analyzer over `program` against a
/// concrete launch geometry, producing the SW-L5xx findings.
pub fn analyze(program: &Program, geom: &AnalyzeGeom) -> LintReport {
    analyze_with_facts(program, geom).0
}

/// [`analyze`], also returning the raw fixpoint facts.
pub fn analyze_with_facts(program: &Program, geom: &AnalyzeGeom) -> (LintReport, AnalysisFacts) {
    let cfg = cfg::Cfg::build(program);
    let analysis = absint::analyze_program(program, &cfg, geom);
    let mut diagnostics = memcheck::check(&analysis, geom);
    diagnostics.extend(uniform::check(&analysis, geom));
    diagnostics.sort_by_key(|d| (d.pc, d.rule));
    let report = LintReport {
        program: program.name().to_string(),
        kernel: None,
        schedule: None,
        diagnostics,
    };
    let facts = AnalysisFacts {
        values: analysis
            .regs
            .iter()
            .map(|r| ValueFact {
                pc: r.pc,
                reg: r.reg,
                value: AbstractValue::flatten(&r.val),
            })
            .collect(),
        accesses: analysis
            .accesses
            .iter()
            .map(|a| AccessSummary {
                pc: a.pc,
                kind: match a.kind {
                    absint::AccessKind::Read => "load",
                    absint::AccessKind::Write => "store",
                    absint::AccessKind::Atomic => "atomic",
                },
                space: match a.space {
                    sparseweaver_isa::Space::Global => "global",
                    sparseweaver_isa::Space::Shared => "shared",
                },
                width: a.width,
                region: a.region,
                addr: AbstractValue::flatten(&a.addr),
            })
            .collect(),
        converged: analysis.converged,
    };
    (report, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseweaver_isa::{Asm, CsrKind, Instr, Reg};

    fn rules(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn empty_and_trivial_programs_are_clean() {
        let mut a = Asm::new("trivial");
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn structured_divergence_is_clean() {
        let mut a = Asm::new("structured");
        let lane = a.reg();
        let c = a.reg();
        a.csr(lane, CsrKind::LaneId);
        a.sltui(c, lane, 2);
        a.if_nonzero(c, |a| {
            let t = a.reg();
            a.addi(t, a.zero(), 1);
            a.if_else(t, |a| a.nop(), |a| a.nop());
            a.free(t);
        });
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
        assert_eq!(r.warning_count(), 0, "{}", r.to_text());
    }

    #[test]
    fn loop_with_uniform_branch_is_clean() {
        let mut a = Asm::new("loop");
        let i = a.reg();
        let n = a.reg();
        a.li(i, 0);
        a.li(n, 8);
        let top = a.new_label();
        a.bind(top);
        a.addi(i, i, 1);
        a.bltu(i, n, top);
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
        assert_eq!(r.warning_count(), 0, "{}", r.to_text());
    }

    #[test]
    fn use_before_def_fires_l101() {
        let mut a = Asm::new("ubd");
        let x = a.reg();
        let y = a.reg();
        let z = a.reg();
        a.add(z, x, y);
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L101"), "{}", r.to_text());
        assert!(!r.is_clean());
    }

    #[test]
    fn maybe_undefined_fires_l102() {
        // `v` is defined only on the taken side of a uniform branch.
        let mut a = Asm::new("maybe");
        let c = a.reg();
        let v = a.reg();
        let out = a.reg();
        a.li(c, 1);
        let skip = a.new_label();
        a.beq(c, a.zero(), skip);
        a.li(v, 7);
        a.bind(skip);
        a.mv(out, v);
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L102"), "{}", r.to_text());
        // A may-undefined read is a warning, not an error.
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn dead_write_fires_l103_for_pure_ops_only() {
        let mut a = Asm::new("dead");
        let x = a.reg();
        let y = a.reg();
        a.li(x, 5);
        a.addi(y, x, 1); // y never read: dead
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L103"), "{}", r.to_text());

        // Discarded atomic results are idiomatic and exempt.
        let mut a = Asm::new("atom_discard");
        let addr = a.reg();
        let v = a.reg();
        let old = a.reg();
        a.li(addr, 64);
        a.li(v, 1);
        a.atom(sparseweaver_isa::AtomOp::Add, old, addr, v);
        a.halt();
        let r = lint(&a.finish());
        assert!(!rules(&r).contains(&"SW-L103"), "{}", r.to_text());
    }

    #[test]
    fn unreachable_code_fires_l104() {
        let mut a = Asm::new("unreachable");
        let end = a.new_label();
        a.jmp(end);
        a.nop();
        a.nop();
        a.bind(end);
        a.halt();
        let r = lint(&a.finish());
        let l104: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::UnreachableCode)
            .collect();
        assert_eq!(l104.len(), 1, "{}", r.to_text());
        assert_eq!(l104[0].pc, 1);
    }

    #[test]
    fn join_without_split_fires_l201() {
        let mut a = Asm::new("lone_join");
        a.emit(Instr::Join);
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L201"), "{}", r.to_text());
    }

    #[test]
    fn divergence_stack_mismatch_fires_l202() {
        // A split whose then-side branches back to the split itself: the
        // split pc is reachable at depth 0 and depth 1.
        let top = Instr::Split {
            rs1: Reg(1),
            else_target: 3,
            end_target: 4,
        };
        let p = sparseweaver_isa::Program::new(
            "respin",
            vec![
                Instr::LdImm { rd: Reg(1), imm: 1 },
                top,
                Instr::Jmp { target: 1 },
                Instr::Join,
                Instr::Halt,
            ],
        );
        let r = lint(&p);
        assert!(rules(&r).contains(&"SW-L202"), "{}", r.to_text());
    }

    #[test]
    fn halt_under_divergence_fires_l203() {
        let p = sparseweaver_isa::Program::new(
            "halt_in_split",
            vec![
                Instr::LdImm { rd: Reg(1), imm: 1 },
                Instr::Split {
                    rs1: Reg(1),
                    else_target: 3,
                    end_target: 4,
                },
                Instr::Halt, // halts with the split frame still open
                Instr::Join,
                Instr::Halt,
            ],
        );
        let r = lint(&p);
        assert!(rules(&r).contains(&"SW-L203"), "{}", r.to_text());
    }

    #[test]
    fn barrier_under_divergence_fires_l301() {
        let mut a = Asm::new("divergent_bar");
        let lane = a.reg();
        let c = a.reg();
        a.csr(lane, CsrKind::LaneId);
        a.sltui(c, lane, 1);
        a.if_nonzero(c, |a| a.bar());
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L301"), "{}", r.to_text());
    }

    #[test]
    fn uniform_barrier_is_clean() {
        let mut a = Asm::new("uniform_bar");
        a.bar();
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn tmc_zero_fires_l302() {
        // tmc x0 is always all-lanes-off.
        let mut a = Asm::new("tmc_x0");
        a.tmc(a.zero());
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L302"), "{}", r.to_text());

        // A mask that is `li 0` on every reaching definition.
        let mut a = Asm::new("tmc_const0");
        let m = a.reg();
        a.li(m, 0);
        a.tmc(m);
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L302"), "{}", r.to_text());

        // A computed mask is fine.
        let mut a = Asm::new("tmc_computed");
        let m = a.reg();
        let one = a.reg();
        a.li(one, 1);
        a.slli(m, one, 4);
        a.addi(m, m, -1);
        a.tmc(m);
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn weaver_decode_without_reg_fires_l401() {
        let mut a = Asm::new("dec_no_reg");
        let v = a.reg();
        a.weaver_dec_id(v);
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L401"), "{}", r.to_text());
    }

    #[test]
    fn weaver_decode_without_bar_fires_l402() {
        let mut a = Asm::new("dec_no_bar");
        let (vid, loc, deg, v) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.li(vid, 0);
        a.li(loc, 0);
        a.li(deg, 4);
        a.weaver_reg(vid, loc, deg);
        a.weaver_dec_id(v); // no bar between reg and decode
        a.halt();
        let r = lint(&a.finish());
        assert!(rules(&r).contains(&"SW-L402"), "{}", r.to_text());
    }

    #[test]
    fn weaver_template_shape_is_clean() {
        // The paper's Fig. 9 shape: conditional registration, a barrier,
        // then a distribution loop. Must lint clean.
        let mut a = Asm::new("weaver_shape");
        let (vid, loc, deg, valid) = (a.reg(), a.reg(), a.reg(), a.reg());
        let (wv, has, any) = (a.reg(), a.reg(), a.reg());
        a.li(vid, 3);
        a.li(loc, 0);
        a.li(deg, 4);
        a.li(valid, 1);
        a.if_nonzero(valid, |a| a.weaver_reg(vid, loc, deg));
        a.bar();
        let dtop = a.new_label();
        let ddone = a.new_label();
        a.bind(dtop);
        a.weaver_dec_id(wv);
        a.snei(has, wv, -1);
        a.vote(sparseweaver_isa::VoteOp::Any, any, has);
        a.beq(any, a.zero(), ddone);
        a.if_nonzero(has, |a| {
            let we = a.reg();
            a.weaver_dec_loc(we);
            a.weaver_skip(wv);
            a.free(we);
        });
        a.jmp(dtop);
        a.bind(ddone);
        a.bar();
        a.halt();
        let r = lint(&a.finish());
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn report_text_and_json_round_trip_basics() {
        let mut a = Asm::new("bad \"name\"");
        a.emit(Instr::Join);
        a.halt();
        let r = lint(&a.finish());
        let text = r.to_text();
        assert!(text.contains("SW-L201"), "{text}");
        assert!(text.contains("error"), "{text}");
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"rule\":\"SW-L201\""), "{json}");
        assert!(json.contains("\\\"name\\\""), "{json}");
    }

    #[test]
    fn lint_level_parses() {
        assert_eq!("off".parse::<LintLevel>().unwrap(), LintLevel::Off);
        assert_eq!("warn".parse::<LintLevel>().unwrap(), LintLevel::Warn);
        assert_eq!("deny".parse::<LintLevel>().unwrap(), LintLevel::Deny);
        assert!("loud".parse::<LintLevel>().is_err());
        assert_eq!(LintLevel::default(), LintLevel::Deny);
    }

    #[test]
    fn rule_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Rule::ALL {
            assert!(r.id().starts_with("SW-L"), "{}", r.id());
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert!(!r.title().is_empty());
        }
    }
}
