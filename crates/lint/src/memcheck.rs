//! SW-L501/502 static bounds checks and SW-L511 shared-memory race
//! detection over the [`crate::absint`] facts.
//!
//! # Bounds policy
//!
//! * SW-L501 (error) fires only on **proofs**: a shared access whose
//!   whole address range lies outside `[0, shared_mem_bytes)`, or a
//!   global access provably at a negative address.
//! * SW-L502 (warning) fires on *possible* violations, and only for
//!   **writes and atomics**. Unprovable loads are the normal case for
//!   the paper's gather kernels (a binary-searched index can rarely be
//!   bounded statically), but an unproven store can corrupt another
//!   warp's scratchpad, which is worth a warning.
//! * Addresses derived from kernel arguments (`arg = true`) are exempt:
//!   the argument is a device pointer or size whose magnitude only the
//!   runtime knows.
//!
//! # Race model
//!
//! Two shared accesses may race iff they sit in the same barrier region
//! (see `absint::barrier_regions`), at least one is a plain store, and
//! the cross-warp overlap below cannot be refuted. Within one warp,
//! lanes execute in lockstep, so only *cross-warp* interleavings count;
//! accesses whose addresses share the same symbolic argument terms
//! cancel those terms exactly, which is how per-warp scratchpad layouts
//! like `warp_id·768 + …` are proven disjoint. Accesses with *different*
//! argument terms (arrays carved from argument-dependent bases like
//! `n·8`) are skipped — such arrays are assumed disjoint, consistent
//! with the `arg` exemption above. Atomic-vs-atomic pairs never race;
//! per-lane conflicts inside one warp are out of scope.

use std::collections::{BTreeMap, BTreeSet};

use sparseweaver_isa::Space;

use crate::absint::{AccessFact, AccessKind, Analysis};
use crate::domain::AnalyzeGeom;
use crate::{Diagnostic, Rule};

/// 2^64, the register wrap modulus, as an `i128`.
const MOD: i128 = 1i128 << 64;

/// Whether `[lo, hi]` contains a multiple of 2^64 (including 0).
fn window_hits_wrap(lo: i128, hi: i128) -> bool {
    lo <= hi && hi.div_euclid(MOD) * MOD >= lo
}

/// Byte extent `[first, last]` of an access over all warps, with the
/// (shared) symbolic terms left out: `rest + cw·[0, wpc−1] + [0, w)`.
fn extent(a: &AccessFact, wpc: i128) -> (i128, i128) {
    let swing = a.addr.cw as i128 * (wpc - 1);
    let lo = a.addr.rest.lo as i128 + swing.min(0);
    let hi = a.addr.rest.hi as i128 + swing.max(0) + a.width as i128 - 1;
    (lo, hi)
}

/// True when a cross-warp overlap between `a` and `b` cannot be refuted.
fn may_race(a: &AccessFact, b: &AccessFact, geom: &AnalyzeGeom) -> bool {
    if geom.warps_per_core < 2 {
        return false;
    }
    // Differing argument bases: assumed-disjoint arrays (see module docs).
    if a.addr.syms != b.addr.syms {
        return false;
    }
    let wpc = geom.warps_per_core as i128;
    if a.addr.cw == b.addr.cw {
        // Same warp coefficient c: byte equality between warp w_a and
        // warp w_b = w_a − d requires c·d + (r_a + i) − (r_b + j) ≡ 0
        // (mod 2^64) for some d ≠ 0, i ∈ [0, w_a), j ∈ [0, w_b).
        let c = a.addr.cw as i128;
        let w_lo = b.addr.rest.lo as i128 - a.addr.rest.hi as i128 - (a.width as i128 - 1);
        let w_hi = b.addr.rest.hi as i128 - a.addr.rest.lo as i128 + (b.width as i128 - 1);
        if c == 0 {
            return window_hits_wrap(w_lo, w_hi);
        }
        for k in 1..wpc {
            if window_hits_wrap(w_lo + k * c, w_hi + k * c)
                || window_hits_wrap(w_lo - k * c, w_hi - k * c)
            {
                return true;
            }
        }
        false
    } else {
        // Different coefficients: refute only via disjoint extents
        // (modulo the wrap candidates).
        let (alo, ahi) = extent(a, wpc);
        let (blo, bhi) = extent(b, wpc);
        window_hits_wrap(blo - ahi, bhi - alo)
    }
}

/// Runs the bounds checks over every access.
fn check_bounds(analysis: &Analysis, geom: &AnalyzeGeom, out: &mut Vec<Diagnostic>) {
    let smem = geom.shared_mem_bytes as i128;
    for a in &analysis.accesses {
        if a.addr.arg {
            continue;
        }
        let what = match a.kind {
            AccessKind::Read => "load",
            AccessKind::Write => "store",
            AccessKind::Atomic => "atomic",
        };
        let full = a.addr.full_range(geom);
        let lo = full.lo as i128;
        let last = full.hi as i128 + a.width as i128 - 1;
        match a.space {
            Space::Shared => {
                if last < 0 || lo >= smem {
                    out.push(Diagnostic::new(
                        Rule::OobProved,
                        a.pc,
                        format!(
                            "shared {what} provably out of bounds: bytes [{lo}, {}] \
                             outside scratchpad [0, {smem})",
                            last + 1
                        ),
                    ));
                } else if (lo < 0 || last >= smem) && a.kind != AccessKind::Read {
                    out.push(Diagnostic::new(
                        Rule::OobPossible,
                        a.pc,
                        format!(
                            "shared {what} may be out of bounds: bytes [{lo}, {}] \
                             not provably within scratchpad [0, {smem})",
                            last + 1
                        ),
                    ));
                }
            }
            Space::Global => {
                if full.hi < 0 {
                    out.push(Diagnostic::new(
                        Rule::OobProved,
                        a.pc,
                        format!(
                            "global {what} provably at a negative address [{lo}, {}]",
                            last + 1
                        ),
                    ));
                } else if lo < 0 && a.kind != AccessKind::Read {
                    out.push(Diagnostic::new(
                        Rule::OobPossible,
                        a.pc,
                        format!("global {what} may target a negative address (low bound {lo})"),
                    ));
                }
            }
        }
    }
}

/// Runs the cross-warp race check over shared accesses.
fn check_races(analysis: &Analysis, geom: &AnalyzeGeom, out: &mut Vec<Diagnostic>) {
    let shared: Vec<&AccessFact> = analysis
        .accesses
        .iter()
        .filter(|a| a.space == Space::Shared)
        .collect();
    // anchor pc (a plain store) → racing partner pcs
    let mut partners: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (i, a) in shared.iter().enumerate() {
        for b in shared.iter().skip(i) {
            if a.region != b.region {
                continue;
            }
            // Races need at least one plain store in the pair.
            let (anchor, other) = match (a.kind, b.kind) {
                (AccessKind::Write, AccessKind::Write) => (a.pc.min(b.pc), a.pc.max(b.pc)),
                (AccessKind::Write, _) => (a.pc, b.pc),
                (_, AccessKind::Write) => (b.pc, a.pc),
                _ => continue,
            };
            if may_race(a, b, geom) {
                partners.entry(anchor).or_default().insert(other);
            }
        }
    }
    for (pc, others) in partners {
        let listed: Vec<String> = others
            .iter()
            .take(3)
            .map(|p| {
                if *p == pc {
                    "itself (other warps)".to_string()
                } else {
                    format!("pc {p}")
                }
            })
            .collect();
        let more = others.len().saturating_sub(3);
        let tail = if more > 0 {
            format!(" and {more} more")
        } else {
            String::new()
        };
        out.push(Diagnostic::new(
            Rule::SharedRace,
            pc,
            format!(
                "shared-memory store may race across warps with {}{tail} \
                 within the same barrier interval",
                listed.join(", ")
            ),
        ));
    }
}

/// All SW-L501/502/511 findings for one analyzed program.
pub(crate) fn check(analysis: &Analysis, geom: &AnalyzeGeom) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_bounds(analysis, geom, &mut out);
    check_races(analysis, geom, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::analyze_program;
    use crate::cfg::Cfg;
    use sparseweaver_isa::{Asm, CsrKind, Width};

    fn geom() -> AnalyzeGeom {
        AnalyzeGeom {
            num_cores: 2,
            warps_per_core: 4,
            threads_per_warp: 8,
            shared_mem_bytes: 1024,
        }
    }

    fn diags(p: &sparseweaver_isa::Program) -> Vec<Diagnostic> {
        let cfg = Cfg::build(p);
        let an = analyze_program(p, &cfg, &geom());
        check(&an, &geom())
    }

    #[test]
    fn proved_oob_store_fires_l501() {
        let mut a = Asm::new("oob");
        let addr = a.reg();
        a.li(addr, 4096); // ≥ shared_mem_bytes = 1024
        a.sts(a.zero(), addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::OobProved), "{d:?}");
    }

    #[test]
    fn straddling_store_fires_l502_not_l501() {
        let mut a = Asm::new("straddle");
        let (lane, addr) = (a.reg(), a.reg());
        a.csr(lane, CsrKind::LaneId);
        a.slli(addr, lane, 8); // lanes reach up to 7·256 = 1792 > 1024
        a.sts(a.zero(), addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::OobPossible), "{d:?}");
        assert!(!d.iter().any(|d| d.rule == Rule::OobProved), "{d:?}");
    }

    #[test]
    fn unprovable_load_is_quiet_but_store_warns() {
        // Loads with unprovable indices are the gather norm — no L502.
        let mut a = Asm::new("load_quiet");
        let (v, addr) = (a.reg(), a.reg());
        a.weaver_dec_id(v); // unbounded
        a.if_nonzero(v, |_| {});
        a.slli(addr, v, 3);
        a.lds(v, addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().all(|d| d.rule != Rule::OobPossible), "{d:?}");
    }

    #[test]
    fn per_warp_scratch_is_race_free_but_overlap_races() {
        // Disjoint per-warp slabs: warp_id·64 + lane·8 — provably safe.
        let mut a = Asm::new("slabs");
        let (wid, lane, addr, t) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.csr(wid, CsrKind::WarpId);
        a.csr(lane, CsrKind::LaneId);
        a.slli(addr, wid, 6);
        a.slli(t, lane, 3);
        a.add(addr, addr, t);
        a.sts(a.zero(), addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().all(|d| d.rule != Rule::SharedRace), "{d:?}");

        // Same layout but slabs of 32 bytes: lane·8 spans 0..63 — warps
        // collide.
        let mut a = Asm::new("overlap");
        let (wid, lane, addr, t) = (a.reg(), a.reg(), a.reg(), a.reg());
        a.csr(wid, CsrKind::WarpId);
        a.csr(lane, CsrKind::LaneId);
        a.slli(addr, wid, 5);
        a.slli(t, lane, 3);
        a.add(addr, addr, t);
        a.sts(a.zero(), addr, 0, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::SharedRace), "{d:?}");
    }

    #[test]
    fn barrier_separates_write_from_read() {
        // write lane slot; bar; read neighbor warp's slot — no race.
        let mut a = Asm::new("bar_sep");
        let (ctid, addr, v) = (a.reg(), a.reg(), a.reg());
        a.csr(ctid, CsrKind::CoreTid);
        a.slli(addr, ctid, 3);
        a.sts(ctid, addr, 0, Width::B8);
        a.bar();
        a.lds(v, addr, 8, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().all(|d| d.rule != Rule::SharedRace), "{d:?}");

        // Without the barrier the read may see a half-updated neighbor.
        let mut a = Asm::new("no_bar");
        let (ctid, addr, v) = (a.reg(), a.reg(), a.reg());
        a.csr(ctid, CsrKind::CoreTid);
        a.slli(addr, ctid, 3);
        a.sts(ctid, addr, 0, Width::B8);
        a.lds(v, addr, 8, Width::B8);
        a.halt();
        let d = diags(&a.finish());
        assert!(d.iter().any(|d| d.rule == Rule::SharedRace), "{d:?}");
    }
}
