//! Abstract domains for the SW-L5xx analyzer.
//!
//! Two cooperating domains describe every register value:
//!
//! * **Intervals with stride** ([`Interval`]): a value range `[lo, hi]`
//!   plus a congruence `value ≡ lo (mod stride)` anchored at the lower
//!   bound, so induction variables like `base + 8·k` keep their
//!   alignment through joins.
//! * **Thread shape** ([`AbsVal`]): how the value varies across the
//!   launch grid, as a linear form over `warp_id`, `lane_id` and the
//!   kernel arguments.
//!
//! # The claims, precisely
//!
//! Registers hold 64-bit words and ALU arithmetic wraps (see
//! `AluOp::apply`), so all [`AbsVal`] claims are **modular**: congruences
//! mod 2^64 over the register's bit pattern viewed as `i64`. For a value
//! `v` on the thread `(warp w, lane l)` of some core:
//!
//! 1. `v ≡ cw·w + Σ coeff_i·arg_i + r (mod 2^64)` for some `r ∈ rest`
//!    (including the congruence of `rest`), where `arg_i` is the launch
//!    argument named by `syms[i]`;
//! 2. if `cl = Some(c)`, then within any single warp,
//!    `v(l) − c·l (mod 2^64)` is the same for every lane — `Some(0)` is
//!    warp-uniform, other `Some(c)` lane-affine, `None` divergent;
//! 3. `arg = true` marks values derived from a kernel argument (a device
//!    pointer or size of unknown magnitude) — bounds checks are
//!    suppressed for such addresses.
//!
//! Because the claims are modular, linear transfers (`add`/`sub`/
//! multiply-by-constant/shift-left) are unconditionally sound — wrapping
//! commutes with the congruence. Only when a claim must be *read back as
//! a plain range* ([`AbsVal::full_range`]) does potential wrap degrade
//! the answer to top; the interval helpers compute in `i128` and widen
//! whenever a bound escapes `i64`.

use sparseweaver_isa::AluOp;

/// Launch geometry the analyzer proves facts against. Mirrors the
/// simulator's `GpuConfig` fields that matter for static proofs, without
/// making the lint crate depend on the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeGeom {
    /// Number of cores on the device.
    pub num_cores: u64,
    /// Warps per core.
    pub warps_per_core: u64,
    /// Lanes per warp.
    pub threads_per_warp: u64,
    /// Per-core scratchpad size in bytes.
    pub shared_mem_bytes: u64,
}

impl AnalyzeGeom {
    /// Threads per core (`warps_per_core * threads_per_warp`).
    pub fn threads_per_core(&self) -> u64 {
        self.warps_per_core * self.threads_per_warp
    }
}

/// Greatest common divisor over `u128` (0 is the identity).
pub(crate) fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A value range `[lo, hi]` with congruence `value ≡ lo (mod stride)`.
///
/// Invariants kept by [`Interval::make`]: `lo <= hi`; `stride == 0` iff
/// `lo == hi`; otherwise `stride >= 1` and `(hi - lo) % stride == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interval {
    pub lo: i64,
    pub hi: i64,
    pub stride: u64,
}

impl Interval {
    /// The full `i64` range.
    pub fn top() -> Interval {
        Interval {
            lo: i64::MIN,
            hi: i64::MAX,
            stride: 1,
        }
    }

    /// A single concrete value.
    pub fn cst(v: i64) -> Interval {
        Interval {
            lo: v,
            hi: v,
            stride: 0,
        }
    }

    /// `[lo, hi]` with stride 1 (every value possible).
    pub fn range(lo: i64, hi: i64) -> Interval {
        Interval::make(lo, hi, 1)
    }

    /// Normalizing constructor: clamps the stride, anchors the
    /// congruence at `lo`, and rounds `hi` down onto the lattice
    /// `lo + k·stride` (shrinking `hi` never loses concrete values that
    /// satisfy the congruence).
    pub fn make(lo: i64, hi: i64, stride: u64) -> Interval {
        debug_assert!(lo <= hi);
        if lo >= hi {
            return Interval::cst(lo);
        }
        // An anchor at i64::MIN usually comes from widening/wrapping.
        // Power-of-2 strides stay sound there (i64::MIN ≡ 0 mod 2^k);
        // anything else degrades to stride 1.
        let stride = if lo == i64::MIN && !stride.is_power_of_two() {
            1
        } else {
            stride.max(1)
        };
        let span = hi as i128 - lo as i128;
        let hi = (lo as i128 + (span / stride as i128) * stride as i128) as i64;
        if lo == hi {
            return Interval::cst(lo);
        }
        Interval { lo, hi, stride }
    }

    /// Builds from `i128` bounds. When a bound escapes `i64` the value
    /// may wrap mod 2^64, so the range degrades to full width — but the
    /// largest power-of-2 divisor of the stride survives (it divides
    /// 2^64, so residues are preserved by wrapping).
    pub fn from_i128(lo: i128, hi: i128, stride: u128) -> Interval {
        if lo > hi {
            return Interval::top();
        }
        let stride = if stride > u64::MAX as u128 {
            1
        } else {
            stride as u64
        };
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            return Interval::wrapped(lo, stride);
        }
        Interval::make(lo as i64, hi as i64, stride)
    }

    /// Full-width interval that keeps the power-of-2 part of `stride`
    /// as its congruence, anchored at `anchor`'s residue. Sound under
    /// mod-2^64 wrapping because the kept stride divides 2^63, so
    /// `i64::MIN ≡ 0 (mod stride)` and residues survive the wrap.
    fn wrapped(anchor: i128, stride: u64) -> Interval {
        if stride == 0 {
            return Interval::top();
        }
        let s = 1u64 << stride.trailing_zeros().min(62);
        if s <= 1 {
            return Interval::top();
        }
        let r = anchor.rem_euclid(s as i128) as i64;
        let lo = i64::MIN + r;
        let span = i64::MAX as i128 - lo as i128;
        let hi = (lo as i128 + (span / s as i128) * s as i128) as i64;
        Interval { lo, hi, stride: s }
    }

    /// The single value, if this interval is a constant.
    pub fn as_const(&self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True when the interval admits every `i64`.
    #[allow(dead_code)] // used by unit tests
    pub fn is_top(&self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX
    }

    /// True when all values are `>= 0`.
    pub fn nonneg(&self) -> bool {
        self.lo >= 0
    }

    /// Membership test (used by tests and the soundness property).
    #[allow(dead_code)] // used by unit tests
    pub fn contains(&self, v: i64) -> bool {
        self.contains_i128(v as i128)
    }

    /// Membership test for a mathematical integer.
    pub fn contains_i128(&self, v: i128) -> bool {
        if v < self.lo as i128 || v > self.hi as i128 {
            return false;
        }
        if self.stride <= 1 {
            return true;
        }
        ((v - self.lo as i128) % self.stride as i128) == 0
    }

    /// Least upper bound: hull of the ranges, congruence folded with
    /// `gcd(s_a, s_b, |lo_a − lo_b|)` so the anchor can move to the
    /// smaller lower bound.
    pub fn join(a: Interval, b: Interval) -> Interval {
        let lo = a.lo.min(b.lo);
        let hi = a.hi.max(b.hi);
        let diff = (a.lo as i128 - b.lo as i128).unsigned_abs();
        let stride = gcd(gcd(a.stride as u128, b.stride as u128), diff);
        Interval::from_i128(lo as i128, hi as i128, stride)
    }

    /// Widening: a bound that grew jumps to ±∞. Upward-growing loops
    /// keep their anchor (and therefore their stride); a lower bound
    /// that moves discards the congruence.
    pub fn widen(old: Interval, new: Interval) -> Interval {
        let j = Interval::join(old, new);
        let hi = if j.hi > old.hi { i64::MAX } else { j.hi };
        if j.lo < old.lo {
            // Lower bound moved: blow it to the full range but keep the
            // (wrap-stable) power-of-2 part of the congruence, anchored
            // at the joined interval's residue.
            let w = Interval::wrapped(j.lo as i128, j.stride.max(1));
            return Interval::make(w.lo, hi.max(w.lo), w.stride);
        }
        Interval::make(j.lo, hi, j.stride)
    }

    /// `a + b` with congruence `gcd(s_a, s_b)` anchored at `lo_a + lo_b`.
    pub fn add(self, b: Interval) -> Interval {
        Interval::from_i128(
            self.lo as i128 + b.lo as i128,
            self.hi as i128 + b.hi as i128,
            gcd(self.stride as u128, b.stride as u128),
        )
    }

    /// `a - b` with congruence `gcd(s_a, s_b)` anchored at `lo_a − hi_b`.
    pub fn sub(self, b: Interval) -> Interval {
        Interval::from_i128(
            self.lo as i128 - b.hi as i128,
            self.hi as i128 - b.lo as i128,
            gcd(self.stride as u128, b.stride as u128),
        )
    }

    /// `a · k` for a constant `k`: exact corners, stride scaled by `|k|`.
    pub fn mul_const(self, k: i64) -> Interval {
        if k == 0 {
            return Interval::cst(0);
        }
        let c1 = self.lo as i128 * k as i128;
        let c2 = self.hi as i128 * k as i128;
        Interval::from_i128(
            c1.min(c2),
            c1.max(c2),
            self.stride as u128 * k.unsigned_abs() as u128,
        )
    }

    /// General product: corner analysis; stride only survives through
    /// the constant cases.
    fn mul(self, b: Interval) -> Interval {
        if let Some(k) = b.as_const() {
            return self.mul_const(k);
        }
        if let Some(k) = self.as_const() {
            return b.mul_const(k);
        }
        let corners = [
            self.lo as i128 * b.lo as i128,
            self.lo as i128 * b.hi as i128,
            self.hi as i128 * b.lo as i128,
            self.hi as i128 * b.hi as i128,
        ];
        let lo = *corners.iter().min().unwrap();
        let hi = *corners.iter().max().unwrap();
        Interval::from_i128(lo, hi, 1)
    }

    /// Smallest `2^k − 1` covering every value of a non-negative
    /// interval (bound for `Or`/`Xor`).
    fn pow2_mask(hi: i64) -> i64 {
        debug_assert!(hi >= 0);
        if hi == 0 {
            return 0;
        }
        let bits = 64 - (hi as u64).leading_zeros();
        if bits >= 63 {
            i64::MAX
        } else {
            (1i64 << bits) - 1
        }
    }

    /// Sound transfer for one ALU op over the **unsigned-wrapping**
    /// register semantics of `AluOp::apply`. Operands must be plain
    /// concrete ranges (thread shapes already folded in).
    pub fn binop(op: AluOp, a: Interval, b: Interval) -> Interval {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Interval::cst(op.apply(x as u64, y as u64) as i64);
        }
        match op {
            AluOp::Add => a.add(b),
            AluOp::Sub => a.sub(b),
            AluOp::Mul => a.mul(b),
            AluOp::DivU => {
                if !a.nonneg() {
                    return Interval::top();
                }
                match b.as_const() {
                    // Unsigned divisor ≥ 2^63 exceeds any non-negative
                    // dividend, so the quotient is 0.
                    Some(k) if k < 0 => Interval::cst(0),
                    Some(k) if k > 0 => Interval::range(a.lo / k, a.hi / k),
                    Some(_) => Interval::cst(-1), // div by zero → u64::MAX
                    // b = 0 is still possible → quotient may be -1.
                    None => Interval::range(-1, a.hi),
                }
            }
            AluOp::RemU => {
                // For a ≥ 0: rem(a, b) ≤ a for every unsigned b
                // (b = 0 returns a; huge b returns a; small b reduces).
                if a.nonneg() {
                    Interval::range(0, a.hi)
                } else {
                    Interval::top()
                }
            }
            AluOp::And => {
                // AND with a value whose sign bit is clear clears the
                // sign bit and cannot exceed that operand.
                match (a.nonneg(), b.nonneg()) {
                    (true, true) => Interval::range(0, a.hi.min(b.hi)),
                    (true, false) => Interval::range(0, a.hi),
                    (false, true) => Interval::range(0, b.hi),
                    (false, false) => Interval::top(),
                }
            }
            AluOp::Or => {
                if a.nonneg() && b.nonneg() {
                    let hi = Interval::pow2_mask(a.hi.max(b.hi));
                    Interval::range(a.lo.max(b.lo), hi)
                } else {
                    Interval::top()
                }
            }
            AluOp::Xor => {
                if a.nonneg() && b.nonneg() {
                    Interval::range(0, Interval::pow2_mask(a.hi.max(b.hi)))
                } else {
                    Interval::top()
                }
            }
            AluOp::Sll => match b.as_const() {
                Some(s) => {
                    let s = (s as u64 & 63) as u32;
                    if s <= 62 {
                        a.mul_const(1i64 << s)
                    } else {
                        Interval::top()
                    }
                }
                None => Interval::top(),
            },
            AluOp::Srl => match b.as_const() {
                Some(s) => {
                    let s = (s as u64 & 63) as u32;
                    if s == 0 {
                        a
                    } else if a.nonneg() {
                        // Shifting preserves the congruence exactly when
                        // the stride is divisible by 2^s.
                        let stride = if a.stride.is_multiple_of(1u64 << s) {
                            a.stride >> s
                        } else {
                            1
                        };
                        Interval::make(a.lo >> s, a.hi >> s, stride)
                    } else {
                        // A negative value reinterprets as a huge u64.
                        Interval::range(0, (u64::MAX >> s) as i64)
                    }
                }
                None => {
                    if a.nonneg() {
                        Interval::range(0, a.hi)
                    } else {
                        Interval::top()
                    }
                }
            },
            AluOp::Sra => match b.as_const() {
                Some(s) => {
                    let s = (s as u64 & 63) as u32;
                    if s == 0 {
                        a
                    } else {
                        // i64 >> s is floor division by 2^s; monotone.
                        let stride = if a.stride.is_multiple_of(1u64 << s) {
                            a.stride >> s
                        } else {
                            1
                        };
                        Interval::make(a.lo >> s, a.hi >> s, stride)
                    }
                }
                // sra moves values toward 0/-1, so the result stays
                // within the operand's hull extended to cover 0.
                None => Interval::range(a.lo.min(0), a.hi.max(0)),
            },
            AluOp::SltS => {
                if a.hi < b.lo {
                    Interval::cst(1)
                } else if a.lo >= b.hi {
                    Interval::cst(0)
                } else {
                    Interval::range(0, 1)
                }
            }
            AluOp::SltU => {
                let a_neg = a.hi < 0; // unsigned ≥ 2^63 everywhere
                let b_neg = b.hi < 0;
                if (a.nonneg() && b_neg) || (a.nonneg() && b.nonneg() && a.hi < b.lo) {
                    Interval::cst(1)
                } else if (a_neg && b.nonneg()) || (a.nonneg() && b.nonneg() && a.lo >= b.hi) {
                    Interval::cst(0)
                } else {
                    Interval::range(0, 1)
                }
            }
            AluOp::Seq => {
                if a.hi < b.lo || b.hi < a.lo {
                    Interval::cst(0)
                } else {
                    Interval::range(0, 1)
                }
            }
            AluOp::Sne => {
                if a.hi < b.lo || b.hi < a.lo {
                    Interval::cst(1)
                } else {
                    Interval::range(0, 1)
                }
            }
            AluOp::MinS => Interval::from_i128(
                a.lo.min(b.lo) as i128,
                a.hi.min(b.hi) as i128,
                gcd(
                    gcd(a.stride as u128, b.stride as u128),
                    (a.lo as i128 - b.lo as i128).unsigned_abs(),
                ),
            ),
            AluOp::MaxS => Interval::from_i128(
                a.lo.max(b.lo) as i128,
                a.hi.max(b.hi) as i128,
                gcd(
                    gcd(a.stride as u128, b.stride as u128),
                    (a.lo as i128 - b.lo as i128).unsigned_abs(),
                ),
            ),
            AluOp::MinU | AluOp::MaxU => {
                if a.nonneg() && b.nonneg() {
                    let signed = if op == AluOp::MinU {
                        AluOp::MinS
                    } else {
                        AluOp::MaxS
                    };
                    Interval::binop(signed, a, b)
                } else {
                    Interval::top()
                }
            }
        }
    }
}

/// Symbolic linear combination of kernel arguments: sorted
/// `(arg_index, coefficient)` pairs with no zero coefficients. The same
/// argument index always denotes the same (launch-uniform) value, which
/// is what lets two addresses sharing a base like `n·8` cancel exactly
/// in the race check.
pub(crate) type Syms = Vec<(u8, i64)>;

/// `a + sign·b` coefficient-wise; `None` on coefficient overflow.
fn sym_combine(a: &Syms, b: &Syms, sign: i64) -> Option<Syms> {
    let mut out: Syms = a.clone();
    for &(idx, c) in b {
        let c = c.checked_mul(sign)?;
        match out.binary_search_by_key(&idx, |e| e.0) {
            Ok(i) => {
                let n = out[i].1.checked_add(c)?;
                if n == 0 {
                    out.remove(i);
                } else {
                    out[i].1 = n;
                }
            }
            Err(i) => out.insert(i, (idx, c)),
        }
    }
    Some(out)
}

/// `a · k` coefficient-wise; `None` on coefficient overflow.
fn sym_scale(a: &Syms, k: i64) -> Option<Syms> {
    if k == 0 {
        return Some(Vec::new());
    }
    a.iter()
        .map(|&(idx, c)| c.checked_mul(k).map(|n| (idx, n)))
        .collect()
}

/// Abstract register value: thread shape over an [`Interval`] core.
/// See the module docs for the exact (modular) claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsVal {
    pub cw: i64,
    pub rest: Interval,
    pub cl: Option<i64>,
    pub syms: Syms,
    pub arg: bool,
}

impl AbsVal {
    /// No information: any value, any shape.
    pub fn top() -> AbsVal {
        AbsVal {
            cw: 0,
            rest: Interval::top(),
            cl: None,
            syms: Vec::new(),
            arg: false,
        }
    }

    /// Any value, but identical across the lanes of each warp.
    pub fn top_uniform() -> AbsVal {
        AbsVal {
            cl: Some(0),
            ..AbsVal::top()
        }
    }

    /// A compile-time constant (identical on every thread).
    pub fn cst(v: i64) -> AbsVal {
        AbsVal {
            cw: 0,
            rest: Interval::cst(v),
            cl: Some(0),
            syms: Vec::new(),
            arg: false,
        }
    }

    /// Exactly the value of kernel argument `idx`.
    pub fn arg_base(idx: u8) -> AbsVal {
        AbsVal {
            cw: 0,
            rest: Interval::cst(0),
            cl: Some(0),
            syms: vec![(idx, 1)],
            arg: true,
        }
    }

    /// The constant value, if the same on every thread.
    pub fn as_const(&self) -> Option<i64> {
        if self.cw == 0 && self.syms.is_empty() {
            self.rest.as_const()
        } else {
            None
        }
    }

    /// Interval covering the value on **every** thread of the launch:
    /// `rest + cw·[0, warps_per_core − 1]`, or top when the value
    /// involves an argument of unknown magnitude.
    pub fn full_range(&self, geom: &AnalyzeGeom) -> Interval {
        if !self.syms.is_empty() {
            return Interval::top();
        }
        if self.cw == 0 {
            return self.rest;
        }
        let wmax = geom.warps_per_core.saturating_sub(1) as i128;
        let shift = self.cw as i128 * wmax;
        let (lo, hi) = if shift >= 0 {
            (self.rest.lo as i128, self.rest.hi as i128 + shift)
        } else {
            (self.rest.lo as i128 + shift, self.rest.hi as i128)
        };
        Interval::from_i128(
            lo,
            hi,
            gcd(self.rest.stride as u128, self.cw.unsigned_abs() as u128),
        )
    }

    /// Least upper bound. Mismatched warp coefficients or argument terms
    /// fold into the plain interval hull of both full ranges.
    pub fn join(a: &AbsVal, b: &AbsVal, geom: &AnalyzeGeom) -> AbsVal {
        let cl = if a.cl == b.cl { a.cl } else { None };
        let arg = a.arg || b.arg;
        if a.cw == b.cw && a.syms == b.syms {
            AbsVal {
                cw: a.cw,
                rest: Interval::join(a.rest, b.rest),
                cl,
                syms: a.syms.clone(),
                arg,
            }
        } else {
            AbsVal {
                cw: 0,
                rest: Interval::join(a.full_range(geom), b.full_range(geom)),
                cl,
                syms: Vec::new(),
                arg,
            }
        }
    }

    /// Widening counterpart of [`AbsVal::join`] for loop heads.
    pub fn widen(old: &AbsVal, new: &AbsVal, geom: &AnalyzeGeom) -> AbsVal {
        let j = AbsVal::join(old, new, geom);
        let base = if j.cw == old.cw && j.syms == old.syms {
            old.rest
        } else {
            old.full_range(geom)
        };
        AbsVal {
            rest: Interval::widen(base, j.rest),
            ..j
        }
    }

    /// Generic (shape-losing) transfer: interval arithmetic over the
    /// full thread ranges; lane-uniformity survives iff both operands
    /// are uniform (the op applied to equal inputs gives equal outputs).
    fn fallback(op: AluOp, a: &AbsVal, b: &AbsVal, geom: &AnalyzeGeom) -> AbsVal {
        AbsVal {
            cw: 0,
            rest: Interval::binop(op, a.full_range(geom), b.full_range(geom)),
            cl: if a.cl == Some(0) && b.cl == Some(0) {
                Some(0)
            } else {
                None
            },
            syms: Vec::new(),
            arg: a.arg || b.arg,
        }
    }

    /// `a ± b` keeping the linear shape. Sound without overflow checks
    /// on the value itself because every claim is mod 2^64; only the
    /// (rare) coefficient overflows bail out.
    fn linear(op: AluOp, a: &AbsVal, b: &AbsVal) -> Option<AbsVal> {
        let add = op == AluOp::Add;
        let sign = if add { 1 } else { -1 };
        Some(AbsVal {
            cw: if add {
                a.cw.checked_add(b.cw)?
            } else {
                a.cw.checked_sub(b.cw)?
            },
            rest: if add {
                a.rest.add(b.rest)
            } else {
                a.rest.sub(b.rest)
            },
            cl: match (a.cl, b.cl) {
                (Some(x), Some(y)) => {
                    if add {
                        x.checked_add(y)
                    } else {
                        x.checked_sub(y)
                    }
                }
                _ => None,
            },
            syms: sym_combine(&a.syms, &b.syms, sign)?,
            arg: a.arg || b.arg,
        })
    }

    /// `a · k` keeping the linear shape (mod-2^64 claims survive the
    /// multiplication; the interval part widens to top if it escapes).
    fn scale(a: &AbsVal, k: i64) -> Option<AbsVal> {
        if k == 0 {
            return Some(AbsVal::cst(0));
        }
        Some(AbsVal {
            cw: a.cw.checked_mul(k)?,
            rest: a.rest.mul_const(k),
            cl: match a.cl {
                Some(c) => Some(c.checked_mul(k)?),
                None => None,
            },
            syms: sym_scale(&a.syms, k)?,
            arg: a.arg,
        })
    }

    /// Transfer for `rd <- op(a, b)`.
    pub fn alu(op: AluOp, a: &AbsVal, b: &AbsVal, geom: &AnalyzeGeom) -> AbsVal {
        match op {
            AluOp::Add | AluOp::Sub => {
                AbsVal::linear(op, a, b).unwrap_or_else(|| AbsVal::fallback(op, a, b, geom))
            }
            AluOp::Mul => if let Some(k) = b.as_const() {
                AbsVal::scale(a, k)
            } else if let Some(k) = a.as_const() {
                AbsVal::scale(b, k)
            } else {
                None
            }
            .unwrap_or_else(|| AbsVal::fallback(op, a, b, geom)),
            AluOp::Sll => match b.as_const() {
                Some(s) if (s as u64 & 63) <= 62 => AbsVal::scale(a, 1i64 << (s as u64 & 63))
                    .unwrap_or_else(|| AbsVal::fallback(op, a, b, geom)),
                _ => AbsVal::fallback(op, a, b, geom),
            },
            _ => AbsVal::fallback(op, a, b, geom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> AnalyzeGeom {
        AnalyzeGeom {
            num_cores: 2,
            warps_per_core: 4,
            threads_per_warp: 8,
            shared_mem_bytes: 1024,
        }
    }

    fn lane() -> AbsVal {
        AbsVal {
            cw: 0,
            rest: Interval::range(0, 7),
            cl: Some(1),
            syms: Vec::new(),
            arg: false,
        }
    }

    #[test]
    fn interval_make_normalizes() {
        let i = Interval::make(0, 10, 4);
        assert_eq!((i.lo, i.hi, i.stride), (0, 8, 4));
        assert_eq!(Interval::make(5, 5, 9), Interval::cst(5));
        // Power-of-2 congruences survive a MIN anchor (MIN ≡ 0 mod 2^k)…
        assert!(Interval::make(i64::MIN, 3, 8).stride == 8);
        // …but anything else degrades to stride 1.
        assert!(Interval::make(i64::MIN, 3, 6).stride == 1);
    }

    #[test]
    fn interval_join_keeps_congruence() {
        let a = Interval::make(0, 16, 8);
        let b = Interval::make(4, 20, 8);
        let j = Interval::join(a, b);
        assert_eq!((j.lo, j.hi, j.stride), (0, 20, 4));
        assert!(j.contains(12));
        assert!(!j.contains(13));
    }

    #[test]
    fn interval_widen_keeps_upward_stride() {
        let old = Interval::make(0, 16, 8);
        let new = Interval::make(0, 24, 8);
        let w = Interval::widen(old, new);
        assert_eq!(w.lo, 0);
        assert_eq!(w.stride, 8);
        assert_eq!(w.hi, i64::MAX - (i64::MAX % 8));
        let down = Interval::widen(old, Interval::make(-8, 16, 8));
        assert_eq!(down.lo, i64::MIN); // −8 ≡ 0 (mod 8), MIN ≡ 0 too
        assert_eq!(down.stride, 8);
        assert_eq!(down.hi, 16);
    }

    #[test]
    fn interval_binop_wraps_to_top_on_overflow() {
        let big = Interval::cst(i64::MAX);
        let j = Interval::binop(AluOp::Add, big, Interval::range(0, 1));
        assert!(j.is_top());
        // Const-const stays exact even when wrapping.
        let c = Interval::binop(AluOp::Add, big, Interval::cst(1));
        assert_eq!(c.as_const(), Some(i64::MIN));
    }

    #[test]
    fn interval_shifts() {
        let a = Interval::make(0, 64, 8);
        let l = Interval::binop(AluOp::Sll, a, Interval::cst(3));
        assert_eq!((l.lo, l.hi, l.stride), (0, 512, 64));
        let r = Interval::binop(AluOp::Srl, l, Interval::cst(3));
        assert_eq!((r.lo, r.hi, r.stride), (0, 64, 8));
        let neg = Interval::binop(AluOp::Srl, Interval::range(-4, 4), Interval::cst(1));
        assert!(neg.contains((u64::MAX >> 1) as i64));
    }

    #[test]
    fn comparison_refinement() {
        let lo = Interval::range(0, 3);
        let hi = Interval::range(10, 20);
        assert_eq!(Interval::binop(AluOp::SltU, lo, hi).as_const(), Some(1));
        assert_eq!(Interval::binop(AluOp::SltU, hi, lo).as_const(), Some(0));
        assert_eq!(Interval::binop(AluOp::Seq, lo, hi).as_const(), Some(0));
        let sneg = Interval::binop(AluOp::SltU, Interval::range(0, 5), Interval::cst(-1));
        assert_eq!(sneg.as_const(), Some(1)); // -1 is u64::MAX unsigned
    }

    #[test]
    fn absval_lane_affine_add_and_scale() {
        let g = geom();
        let scaled = AbsVal::alu(AluOp::Sll, &lane(), &AbsVal::cst(3), &g);
        assert_eq!(scaled.cl, Some(8));
        assert_eq!(
            (scaled.rest.lo, scaled.rest.hi, scaled.rest.stride),
            (0, 56, 8)
        );
        let shifted = AbsVal::alu(AluOp::Add, &scaled, &AbsVal::cst(100), &g);
        assert_eq!(shifted.cl, Some(8));
        assert_eq!(shifted.rest.lo, 100);
    }

    #[test]
    fn absval_warp_coefficient_threads_through_linear_ops() {
        let g = geom();
        let warp = AbsVal {
            cw: 1,
            rest: Interval::cst(0),
            cl: Some(0),
            syms: Vec::new(),
            arg: false,
        };
        let base = AbsVal::alu(AluOp::Mul, &warp, &AbsVal::cst(256), &g);
        assert_eq!(base.cw, 256);
        let full = base.full_range(&g);
        assert_eq!((full.lo, full.hi), (0, 768));
        assert_eq!(full.stride, 256);
    }

    #[test]
    fn absval_join_mismatched_cw_folds_to_full_range() {
        let g = geom();
        let a = AbsVal {
            cw: 8,
            rest: Interval::cst(0),
            cl: Some(0),
            syms: Vec::new(),
            arg: false,
        };
        let b = AbsVal::cst(5);
        let j = AbsVal::join(&a, &b, &g);
        assert_eq!(j.cw, 0);
        assert_eq!((j.rest.lo, j.rest.hi), (0, 24));
        assert_eq!(j.cl, Some(0));
    }

    #[test]
    fn absval_modular_add_keeps_lane_shape_across_wrap() {
        let g = geom();
        // lane + (i64::MAX - 3): some lanes wrap, but the mod-2^64
        // affinity claim survives; the readable range does not.
        let sum = AbsVal::alu(AluOp::Add, &lane(), &AbsVal::cst(i64::MAX - 3), &g);
        assert_eq!(sum.cl, Some(1));
        assert!(sum.rest.is_top());
    }

    #[test]
    fn absval_argument_bases_cancel_in_subtraction() {
        let g = geom();
        let p = AbsVal::alu(AluOp::Add, &AbsVal::arg_base(3), &AbsVal::cst(64), &g);
        let q = AbsVal::alu(AluOp::Sub, &p, &AbsVal::arg_base(3), &g);
        assert_eq!(q.as_const(), Some(64));
        assert!(q.arg); // taint survives even when the symbol cancels
                        // An argument value cannot be read back as a plain range.
        assert!(p.full_range(&g).is_top());
        assert_eq!(p.rest.as_const(), Some(64));
    }

    #[test]
    fn sym_combine_and_scale() {
        let a: Syms = vec![(0, 2), (3, 1)];
        let b: Syms = vec![(3, 1), (5, 4)];
        assert_eq!(
            sym_combine(&a, &b, 1).unwrap(),
            vec![(0, 2), (3, 2), (5, 4)]
        );
        assert_eq!(sym_combine(&a, &b, -1).unwrap(), vec![(0, 2), (5, -4)]);
        assert_eq!(sym_scale(&a, -3).unwrap(), vec![(0, -6), (3, -3)]);
        assert_eq!(sym_scale(&a, 0).unwrap(), Vec::<(u8, i64)>::new());
    }
}
