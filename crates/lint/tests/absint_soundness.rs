//! Soundness property test for the abstract-interpretation domains.
//!
//! Generates random straight-line programs over the integer subset of
//! the ISA (immediates, ALU ops, CSR reads, kernel-argument loads),
//! runs every thread of a small launch grid concretely with
//! `AluOp::apply`, and checks that no concrete register value ever
//! escapes its abstract fact:
//!
//! * **Interval + linear shape**: `v − warp_coeff·warp − Σ coeff·arg`
//!   (computed wrapping, i.e. mod 2^64) must land inside `[lo, hi]` on
//!   the `lo + k·stride` lattice. Because the abstract claims are
//!   congruences mod 2^64 over the register bit pattern, the residual
//!   is an exact `i64` — no slack term is needed.
//! * **Lane affinity**: when the fact says `lane_stride = Some(c)`,
//!   `v(lane) − c·lane` must be identical across the lanes of each
//!   warp (again wrapping).

use proptest::prelude::*;

use sparseweaver_isa::{AluOp, CsrKind, Instr, Program, Reg};
use sparseweaver_lint::{analyze_with_facts, AnalyzeGeom};

const GEOM: AnalyzeGeom = AnalyzeGeom {
    num_cores: 2,
    warps_per_core: 3,
    threads_per_warp: 4,
    shared_mem_bytes: 256,
};

/// Concrete kernel-argument values handed to `LdArg` during the
/// concrete runs (the analyzer keeps them symbolic).
const ARGS: [i64; 4] = [1 << 40, -977, 65_536, 3];

/// Registers kept small so the generated programs reuse values often.
fn small_reg() -> impl Strategy<Value = Reg> {
    (1u8..8).prop_map(Reg)
}

fn imm() -> impl Strategy<Value = i64> {
    prop_oneof![
        any::<i64>(),
        -64i64..64,
        prop::sample::select(vec![0i64, 1, 7, 8, 63, 64, i64::MIN, i64::MAX]),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (small_reg(), imm()).prop_map(|(rd, imm)| Instr::LdImm { rd, imm }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            small_reg(),
            small_reg(),
            small_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            small_reg(),
            small_reg(),
            imm()
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluI { op, rd, rs1, imm }),
        (small_reg(), prop::sample::select(CsrKind::ALL.to_vec()))
            .prop_map(|(rd, kind)| Instr::Csr { rd, kind }),
        (small_reg(), 0u8..ARGS.len() as u8).prop_map(|(rd, idx)| Instr::LdArg { rd, idx }),
    ]
}

fn straight_line() -> impl Strategy<Value = Program> {
    prop::collection::vec(instr(), 1..24).prop_map(|mut body| {
        body.push(Instr::Halt);
        Program::new("prop", body)
    })
}

fn csr_concrete(kind: CsrKind, core: u64, warp: u64, lane: u64) -> u64 {
    let tpw = GEOM.threads_per_warp;
    let tpc = GEOM.threads_per_core();
    match kind {
        CsrKind::LaneId => lane,
        CsrKind::WarpId => warp,
        CsrKind::CoreId => core,
        CsrKind::GlobalTid => core * tpc + warp * tpw + lane,
        CsrKind::CoreTid => warp * tpw + lane,
        CsrKind::NumCores => GEOM.num_cores,
        CsrKind::WarpsPerCore => GEOM.warps_per_core,
        CsrKind::ThreadsPerWarp => tpw,
        CsrKind::ThreadsPerCore => tpc,
        CsrKind::NumThreads => GEOM.num_cores * tpc,
    }
}

/// Executes the straight-line program for one thread, returning the
/// value written at each pc (x0 writes dropped, like the warp does).
fn run_thread(p: &Program, core: u64, warp: u64, lane: u64) -> Vec<(u32, u8, u64)> {
    let mut regs = [0u64; 64];
    let mut writes = Vec::new();
    for (pc, instr) in p.instrs().iter().enumerate() {
        let (rd, val) = match *instr {
            Instr::Halt => break,
            Instr::LdImm { rd, imm } => (rd, imm as u64),
            Instr::Alu { op, rd, rs1, rs2 } => {
                (rd, op.apply(regs[rs1.0 as usize], regs[rs2.0 as usize]))
            }
            Instr::AluI { op, rd, rs1, imm } => (rd, op.apply(regs[rs1.0 as usize], imm as u64)),
            Instr::Csr { rd, kind } => (rd, csr_concrete(kind, core, warp, lane)),
            Instr::LdArg { rd, idx } => (rd, ARGS[idx as usize] as u64),
            ref other => panic!("generator emitted unsupported {other:?}"),
        };
        if rd.0 == 0 {
            continue;
        }
        regs[rd.0 as usize] = val;
        writes.push((pc as u32, rd.0, val));
    }
    writes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn concrete_values_never_escape_abstract_facts(p in straight_line()) {
        let (_report, facts) = analyze_with_facts(&p, &GEOM);
        prop_assert!(facts.converged);
        // (pc, reg) → abstract value, for quick lookup.
        let by_site: std::collections::BTreeMap<(u32, u8), &sparseweaver_lint::AbstractValue> =
            facts.values.iter().map(|v| ((v.pc, v.reg), &v.value)).collect();

        for core in 0..GEOM.num_cores {
            for warp in 0..GEOM.warps_per_core {
                // Per-warp traces, indexed by lane, for the affinity check.
                let traces: Vec<Vec<(u32, u8, u64)>> = (0..GEOM.threads_per_warp)
                    .map(|lane| run_thread(&p, core, warp, lane))
                    .collect();

                for (lane, trace) in traces.iter().enumerate() {
                    for &(pc, reg, raw) in trace {
                        let fact = by_site
                            .get(&(pc, reg))
                            .unwrap_or_else(|| panic!("no fact for pc {pc} reg {reg}"));
                        // Interval claim: the residual after removing the
                        // warp and argument terms (mod 2^64) sits on the
                        // stride lattice within [lo, hi].
                        let mut t = (raw as i64).wrapping_sub(fact.warp_coeff.wrapping_mul(warp as i64));
                        for &(idx, coeff) in &fact.args {
                            t = t.wrapping_sub(coeff.wrapping_mul(ARGS[idx as usize]));
                        }
                        prop_assert!(
                            fact.lo <= t && t <= fact.hi,
                            "pc {pc} x{reg}: residual {t} outside [{}, {}] (raw {raw:#x}, \
                             core {core} warp {warp} lane {lane})\n{p}",
                            fact.lo, fact.hi
                        );
                        if fact.stride > 1 {
                            let off = (t as i128 - fact.lo as i128) % fact.stride as i128;
                            prop_assert!(
                                off == 0,
                                "pc {pc} x{reg}: residual {t} off the {}-stride lattice \
                                 anchored at {}\n{p}",
                                fact.stride, fact.lo
                            );
                        }
                        // Lane-affinity claim: v − c·lane identical across
                        // the warp.
                        if let Some(c) = fact.lane_stride {
                            let here = (raw as i64).wrapping_sub(c.wrapping_mul(lane as i64));
                            let (pc0, reg0, raw0) = traces[0]
                                .iter()
                                .copied()
                                .find(|&(p0, r0, _)| p0 == pc && r0 == reg)
                                .expect("lane 0 executed the same straight line");
                            prop_assert_eq!((pc0, reg0), (pc, reg));
                            let base = (raw0 as i64).wrapping_sub(c.wrapping_mul(0));
                            prop_assert!(
                                here == base,
                                "pc {pc} x{reg}: lane shape Some({c}) broken: lane {lane} \
                                 residual {here} != lane 0 residual {base}\n{p}",
                                );
                        }
                    }
                }
            }
        }
    }
}
