//! Property tests for the graph substrate.

use proptest::prelude::*;
use sparseweaver_graph::{generators, io, Csr, GraphBuilder};

fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edges = prop::collection::vec((0u32..n as u32, 0u32..n as u32), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    /// Degree sums equal the edge count, always.
    #[test]
    fn degree_sum_is_edge_count((n, edges) in edge_list()) {
        let g = Csr::from_edges(n, &edges);
        let sum: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    /// Reversing twice is the identity on the edge multiset.
    #[test]
    fn double_reverse_is_identity((n, edges) in edge_list()) {
        let g = Csr::from_edges(n, &edges);
        prop_assert_eq!(g.reverse().reverse(), g);
    }

    /// The reverse graph preserves the edge count and flips every edge.
    #[test]
    fn reverse_flips_edges((n, edges) in edge_list()) {
        let g = Csr::from_edges(n, &edges);
        let r = g.reverse();
        prop_assert_eq!(r.num_edges(), g.num_edges());
        let mut fwd: Vec<_> = g.iter_edges().map(|(s, d, w)| (d, s, w)).collect();
        let mut bwd: Vec<_> = r.iter_edges().collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }

    /// The per-edge source array is consistent with the offsets.
    #[test]
    fn sources_consistent_with_offsets((n, edges) in edge_list()) {
        let g = Csr::from_edges(n, &edges);
        for v in 0..n as u32 {
            let lo = g.offsets()[v as usize] as usize;
            let hi = g.offsets()[v as usize + 1] as usize;
            for e in lo..hi {
                prop_assert_eq!(g.sources()[e], v);
            }
        }
    }

    /// Builder symmetrization produces symmetric graphs with no
    /// self-loops and no duplicates.
    #[test]
    fn builder_symmetric_invariants((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in edges {
            b.add_edge(s, d);
        }
        let g = b.symmetric(true).build();
        prop_assert!(g.is_symmetric());
        let mut seen = std::collections::HashSet::new();
        for (s, d, _) in g.iter_edges() {
            prop_assert_ne!(s, d, "self loop");
            prop_assert!(seen.insert((s, d)), "duplicate edge ({}, {})", s, d);
        }
    }

    /// Edge-list text I/O round-trips the edge multiset and weights.
    #[test]
    fn io_round_trips((n, edges) in edge_list(), wseed in 0u64..100) {
        let g0 = Csr::from_edges(n, &edges);
        let g = generators::with_random_weights(&g0, 16, wseed);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("write");
        let back = io::read_edge_list(&buf[..]).expect("read");
        let a: Vec<_> = g.iter_edges().collect();
        let b: Vec<_> = back.iter_edges().collect();
        prop_assert_eq!(a, b);
    }

    /// Generators honor their vertex counts and symmetry for any seed.
    #[test]
    fn generators_basic_invariants(seed in 0u64..500) {
        let p = generators::powerlaw(64, 256, 1.8, seed);
        prop_assert_eq!(p.num_vertices(), 64);
        prop_assert!(p.is_symmetric());
        let r = generators::rmat(5, 100, 0.57, 0.19, 0.19, seed);
        prop_assert_eq!(r.num_vertices(), 32);
        prop_assert!(r.is_symmetric());
        let u = generators::uniform(40, 100, seed);
        prop_assert!(u.is_symmetric());
    }
}
