//! Graph transforms: degree-capped vertex splitting (virtualization).
//!
//! Tigr \[37\] and CR2 \[20\] attack workload imbalance *statically* by
//! splitting high-degree vertices into bounded-degree virtual vertices.
//! Section III-D notes that SparseWeaver composes with such formats:
//! "SparseWeaver can accommodate non-consecutive labeling by splitting
//! vertices and registering split vertices as separate entries", because
//! the unit receives explicit vertex IDs and imposes no ordering on them.
//!
//! [`split_vertices`] produces a virtual topology whose edge *slices*
//! alias the original edge array — edge IDs are preserved, so edge
//! weights and per-edge data need no translation; only the base vertex
//! needs mapping through [`VirtualGraph::real_of`].

use crate::csr::Csr;
use crate::VertexId;

/// A degree-capped virtualized view of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualGraph {
    /// The virtual topology: every vertex has degree `<= cap`.
    pub topology: Csr,
    /// Maps each virtual vertex to the real vertex it splits.
    pub real_of: Vec<VertexId>,
    /// The degree cap the split was built with.
    pub cap: usize,
}

impl VirtualGraph {
    /// Number of virtual vertices.
    pub fn num_virtual(&self) -> usize {
        self.topology.num_vertices()
    }
}

/// Splits every vertex of degree `> cap` into `ceil(degree / cap)`
/// virtual vertices, each owning a consecutive slice of the original
/// neighbor list.
///
/// The returned topology has the same edge multiset (targets and weights)
/// in the same order, so an edge ID in the virtual graph indexes the same
/// edge as in `g`.
///
/// # Panics
///
/// Panics if `cap == 0`.
///
/// # Examples
///
/// ```
/// use sparseweaver_graph::{transform::split_vertices, Csr};
///
/// // A star: vertex 0 has degree 5.
/// let edges: Vec<(u32, u32)> = (1..6).map(|v| (0, v)).collect();
/// let g = Csr::from_edges(6, &edges);
/// let vg = split_vertices(&g, 2);
/// assert_eq!(vg.topology.max_degree(), 2);
/// // Vertex 0 became ceil(5/2) = 3 virtual vertices.
/// assert_eq!(vg.real_of.iter().filter(|&&r| r == 0).count(), 3);
/// ```
pub fn split_vertices(g: &Csr, cap: usize) -> VirtualGraph {
    assert!(cap > 0, "degree cap must be positive");
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::with_capacity(g.num_edges());
    let mut real_of = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let neighbors = g.neighbors(v);
        let weights = g.neighbor_weights(v);
        if neighbors.is_empty() {
            // Zero-degree vertices keep one (empty) virtual vertex so
            // every real vertex appears in the mapping.
            real_of.push(v);
            continue;
        }
        for chunk in 0..neighbors.len().div_ceil(cap) {
            let vid = real_of.len() as VertexId;
            real_of.push(v);
            let lo = chunk * cap;
            let hi = (lo + cap).min(neighbors.len());
            for i in lo..hi {
                edges.push((vid, neighbors[i], weights[i]));
            }
        }
    }
    let topology = Csr::from_weighted_edges(real_of.len(), &edges);
    VirtualGraph {
        topology,
        real_of,
        cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degrees_are_capped() {
        let g = generators::powerlaw(100, 800, 2.0, 3);
        for cap in [1usize, 4, 16] {
            let vg = split_vertices(&g, cap);
            assert!(vg.topology.max_degree() <= cap, "cap {cap}");
        }
    }

    #[test]
    fn edge_multiset_preserved() {
        let g = generators::uniform(40, 160, 7);
        let vg = split_vertices(&g, 3);
        assert_eq!(vg.topology.num_edges(), g.num_edges());
        let mut orig: Vec<(VertexId, VertexId, u32)> = g.iter_edges().collect();
        let mut virt: Vec<(VertexId, VertexId, u32)> = vg
            .topology
            .iter_edges()
            .map(|(s, d, w)| (vg.real_of[s as usize], d, w))
            .collect();
        orig.sort_unstable();
        virt.sort_unstable();
        assert_eq!(orig, virt);
    }

    #[test]
    fn every_real_vertex_is_mapped() {
        let g = generators::powerlaw(50, 300, 1.8, 5);
        let vg = split_vertices(&g, 4);
        let mut seen = vec![false; g.num_vertices()];
        for &r in &vg.real_of {
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chunk_count_is_ceil_degree_over_cap() {
        let edges: Vec<(u32, u32)> = (1..10u32).map(|v| (0, v)).collect();
        let g = Csr::from_edges(10, &edges); // degree(0) = 9
        let vg = split_vertices(&g, 4);
        // 9/4 -> 3 chunks of sizes 4, 4, 1.
        let zeros: Vec<usize> = vg
            .real_of
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == 0)
            .map(|(i, _)| vg.topology.degree(i as u32))
            .collect();
        assert_eq!(zeros, vec![4, 4, 1]);
    }

    #[test]
    fn cap_larger_than_max_degree_is_identity_shaped() {
        let g = generators::uniform(30, 90, 2);
        let vg = split_vertices(&g, 1_000);
        assert_eq!(vg.num_virtual(), g.num_vertices());
        assert_eq!(vg.real_of, (0..30u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_cap_panics() {
        let g = generators::uniform(4, 4, 0);
        let _ = split_vertices(&g, 0);
    }
}
