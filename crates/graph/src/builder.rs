//! Incremental edge-list accumulation with deduplication and symmetrization.

use std::collections::HashSet;

use crate::csr::Csr;
use crate::VertexId;

/// Accumulates edges and produces a [`Csr`].
///
/// The generators in this crate funnel through `GraphBuilder` so that every
/// synthetic dataset gets the same clean-up treatment: self-loop removal,
/// duplicate removal, and optional symmetrization (the paper's push/pull
/// study uses symmetric datasets).
///
/// # Examples
///
/// ```
/// use sparseweaver_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate, dropped
/// b.add_edge(1, 1); // self-loop, dropped
/// let g = b.symmetric(true).build();
/// assert_eq!(g.num_edges(), 2); // (0,1) and its mirror (1,0)
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, u32)>,
    seen: HashSet<(VertexId, VertexId)>,
    symmetric: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            seen: HashSet::new(),
            symmetric: false,
            keep_self_loops: false,
        }
    }

    /// Number of (deduplicated) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Mirror every edge at [`GraphBuilder::build`] time.
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// Keep self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(&mut self, yes: bool) -> &mut Self {
        self.keep_self_loops = yes;
        self
    }

    /// Adds a unit-weight edge; duplicates and (by default) self-loops are
    /// silently dropped. Returns whether the edge was kept.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> bool {
        self.add_weighted_edge(src, dst, 1)
    }

    /// Adds a weighted edge; see [`GraphBuilder::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: u32) -> bool {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        if src == dst && !self.keep_self_loops {
            return false;
        }
        if !self.seen.insert((src, dst)) {
            return false;
        }
        self.edges.push((src, dst, weight));
        true
    }

    /// Finalizes the builder into a [`Csr`].
    pub fn build(&self) -> Csr {
        let mut edges = self.edges.clone();
        if self.symmetric {
            for &(s, d, w) in &self.edges {
                if s != d && !self.seen.contains(&(d, s)) {
                    edges.push((d, s, w));
                }
            }
        }
        Csr::from_weighted_edges(self.num_vertices, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(4);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(0, 1));
        assert!(!b.add_edge(2, 2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn keep_self_loops_option() {
        let mut b = GraphBuilder::new(2);
        b.keep_self_loops(true);
        assert!(b.add_edge(1, 1));
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn symmetrization_mirrors_once() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // mirror already present
        b.add_edge(1, 2);
        let g = b.symmetric(true).build();
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn weights_preserved_in_mirror() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 42);
        let g = b.symmetric(true).build();
        assert_eq!(g.neighbor_weights(0), &[42]);
        assert_eq!(g.neighbor_weights(1), &[42]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let b = GraphBuilder::new(5);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }
}
