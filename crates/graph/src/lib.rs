//! Graph substrate for the SparseWeaver reproduction.
//!
//! The paper evaluates on nine real-world graphs from the
//! [network data repository] stored in Compressed Sparse Row (CSR) format.
//! Those datasets (hundreds of millions of edges) are not available offline
//! and would be far too large for a cycle-level interpreter, so this crate
//! provides:
//!
//! - [`Csr`] — the storage format the paper's framework consumes, including
//!   the auxiliary per-edge source array that edge-mapped scheduling
//!   (`S_em`) needs (the "2|E| edge memory accesses" of Table I);
//! - [`builder::GraphBuilder`] — edge-list accumulation, deduplication,
//!   symmetrization;
//! - [`generators`] — synthetic generators matching the *shape* of each
//!   dataset class (power-law/Zipf for bio/web/social graphs, R-MAT for
//!   graph500, near-uniform grids for road networks);
//! - [`datasets`] — deterministic, scaled stand-ins for the nine graphs of
//!   Table III;
//! - [`stats`] — degree-distribution statistics, including the skewness
//!   measure used in the paper's Section V-B sensitivity study.
//!
//! [network data repository]: https://networkrepository.com
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod stats;
pub mod transform;

pub use builder::GraphBuilder;
pub use csr::{Csr, Direction};
pub use datasets::{dataset, DatasetId, ScaledDataset};
pub use stats::DegreeStats;

/// Vertex identifier. Scaled stand-in graphs stay well below `u32::MAX`.
pub type VertexId = u32;
/// Edge index into the CSR edge array.
pub type EdgeId = u32;
