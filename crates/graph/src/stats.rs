//! Degree-distribution statistics.
//!
//! The paper's skewness study (Section V-B, Fig. 11) cites the standard
//! skewness definition from the CRC probability tables \[54\] — the
//! Fisher–Pearson standardized third moment of the degree distribution —
//! and plots degree histograms with their "edge fraction tail". This module
//! computes both.

use crate::csr::Csr;

/// Summary statistics of a graph's out-degree distribution.
///
/// # Examples
///
/// ```
/// use sparseweaver_graph::{Csr, DegreeStats};
///
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// let s = DegreeStats::of(&g);
/// assert_eq!(s.max, 2);
/// assert!((s.mean - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Population standard deviation of out-degree.
    pub stddev: f64,
    /// Fisher–Pearson skewness `E[(d - mean)^3] / stddev^3`
    /// (0 for a regular graph; large and positive for heavy-tailed graphs).
    pub skewness: f64,
    /// Coefficient of variation (`stddev / mean`), another imbalance proxy.
    pub cv: f64,
}

impl DegreeStats {
    /// Computes the statistics for `g`. All fields are zero for graphs with
    /// no vertices or a degenerate (constant-zero) distribution.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                stddev: 0.0,
                skewness: 0.0,
                cv: 0.0,
            };
        }
        let degs: Vec<f64> = (0..n).map(|v| g.degree(v as u32) as f64).collect();
        let mean = degs.iter().sum::<f64>() / n as f64;
        let var = degs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        let stddev = var.sqrt();
        let skewness = if stddev > 0.0 {
            degs.iter().map(|d| (d - mean).powi(3)).sum::<f64>() / n as f64 / stddev.powi(3)
        } else {
            0.0
        };
        let cv = if mean > 0.0 { stddev / mean } else { 0.0 };
        DegreeStats {
            min: degs.iter().cloned().fold(f64::INFINITY, f64::min) as usize,
            max: g.max_degree(),
            mean,
            stddev,
            skewness,
            cv,
        }
    }
}

/// A log₂-bucketed degree histogram row: `(bucket upper bound, vertex
/// fraction, edge fraction)`.
///
/// This is the data behind Fig. 11a: low-skew graphs have a narrow degree
/// range and a short edge-fraction tail; high-skew graphs have a wide range
/// and a long tail.
pub type HistogramRow = (usize, f64, f64);

/// Computes a log₂-bucketed degree histogram of `g`.
///
/// Bucket `i` covers degrees `[2^(i-1) + 1 ..= 2^i]` (bucket 0 covers degree
/// 0, bucket 1 covers degree 1). Returns one row per non-empty bucket in
/// increasing degree order.
pub fn degree_histogram(g: &Csr) -> Vec<HistogramRow> {
    let n = g.num_vertices();
    let e = g.num_edges().max(1);
    if n == 0 {
        return Vec::new();
    }
    let bucket_of = |d: usize| -> usize {
        if d == 0 {
            0
        } else {
            (usize::BITS - (d - 1).leading_zeros()) as usize + 1
        }
    };
    let nbuckets = bucket_of(g.max_degree().max(1)) + 1;
    let mut vcount = vec![0usize; nbuckets];
    let mut ecount = vec![0usize; nbuckets];
    for v in 0..n {
        let d = g.degree(v as u32);
        vcount[bucket_of(d)] += 1;
        ecount[bucket_of(d)] += d;
    }
    (0..nbuckets)
        .filter(|&b| vcount[b] > 0)
        .map(|b| {
            let ub = if b == 0 { 0 } else { 1usize << (b - 1) };
            (ub, vcount[b] as f64 / n as f64, ecount[b] as f64 / e as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn regular_graph_zero_skew() {
        // A 4-cycle: every vertex has degree 2.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn star_graph_is_skewed() {
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (0, v)).collect();
        let g = Csr::from_edges(50, &edges);
        let s = DegreeStats::of(&g);
        assert!(s.skewness > 5.0, "star should be heavily skewed: {s:?}");
        assert_eq!(s.max, 49);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = Csr::from_edges(0, &[]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.skewness, 0.0);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let g = generators::powerlaw(500, 3000, 1.8, 3);
        let h = degree_histogram(&g);
        let vsum: f64 = h.iter().map(|r| r.1).sum();
        let esum: f64 = h.iter().map(|r| r.2).sum();
        assert!((vsum - 1.0).abs() < 1e-9);
        assert!((esum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_increase() {
        let g = generators::powerlaw(300, 2000, 2.0, 8);
        let h = degree_histogram(&g);
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn skewed_graph_has_longer_tail() {
        let skewed = generators::powerlaw(4000, 12_000, 2.4, 7);
        let flat = generators::uniform(4000, 12_000, 7);
        let hs = degree_histogram(&skewed);
        let hf = degree_histogram(&flat);
        let max_bucket_s = hs.last().map(|r| r.0).unwrap_or(0);
        let max_bucket_f = hf.last().map(|r| r.0).unwrap_or(0);
        assert!(
            max_bucket_s > max_bucket_f,
            "skewed tail {max_bucket_s} should exceed uniform tail {max_bucket_f}"
        );
    }
}
