//! Synthetic graph generators.
//!
//! The paper's skewness-sensitivity study (Section V-B) generates power-law
//! graphs with a fixed edge budget and varying vertex counts via the NetworkX
//! power-law generator; the nine evaluation datasets (Table III) span four
//! structural classes. This module reproduces those classes:
//!
//! - [`powerlaw`] — Zipf out-degree sequence assembled with a
//!   configuration-model style wiring (bio/web/social stand-ins and the G1–G6
//!   skew sweep);
//! - [`rmat`] — recursive-matrix generator (the graph500 stand-in);
//! - [`road_grid`] — 2-D lattice with light random rewiring (road networks:
//!   near-uniform, tiny degrees, huge diameter);
//! - [`uniform`] — Erdős–Rényi-style uniform graph (control case).
//!
//! All generators are deterministic in their seed and symmetrize their
//! output so push and pull traversals cover the same edge multiset
//! (Section V-G uses symmetric datasets).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::VertexId;

/// Samples an index from a Zipf distribution over `0..n` with exponent
/// `alpha`, using the precomputed cumulative weights in `cdf`.
fn sample_cdf(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let x = rng.gen::<f64>() * total;
    match cdf.binary_search_by(|p| p.partial_cmp(&x).expect("no NaN in cdf")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(alpha);
        cdf.push(acc);
    }
    cdf
}

/// Generates a symmetric power-law graph with `num_vertices` vertices and
/// approximately `num_edges` directed edges (before mirroring; the returned
/// graph has up to twice that).
///
/// Endpoint popularity follows a Zipf law with exponent `alpha`; larger
/// `alpha` concentrates edges on fewer vertices (higher skew). With a fixed
/// edge budget, *fewer* vertices also mean lower skew pressure per vertex —
/// which is exactly the knob the paper's G1–G6 sweep turns.
///
/// # Panics
///
/// Panics if `num_vertices == 0` while `num_edges > 0`.
///
/// # Examples
///
/// ```
/// let g = sparseweaver_graph::generators::powerlaw(100, 500, 2.0, 1);
/// assert!(g.is_symmetric());
/// assert!(g.num_edges() > 0);
/// ```
pub fn powerlaw(num_vertices: usize, num_edges: usize, alpha: f64, seed: u64) -> Csr {
    assert!(
        num_vertices > 0 || num_edges == 0,
        "cannot place edges in an empty graph"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee0_51ab);
    let mut b = GraphBuilder::new(num_vertices);
    if num_vertices <= 1 {
        return b.build();
    }
    let cdf = zipf_cdf(num_vertices, alpha);
    // Random vertex permutation so hot vertices are not clustered at low IDs;
    // real graphs have hubs scattered across the ID space.
    let mut perm: Vec<VertexId> = (0..num_vertices as VertexId).collect();
    for i in (1..num_vertices).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(20).max(64);
    while b.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let u = perm[sample_cdf(&mut rng, &cdf)];
        let v = perm[rng.gen_range(0..num_vertices)] as VertexId;
        b.add_edge(u, v);
    }
    b.symmetric(true).build()
}

/// Generates a symmetric R-MAT graph (the graph500 generator) with
/// `2^scale` vertices and approximately `num_edges` directed edges before
/// mirroring, using partition probabilities `(a, b, c)` (with
/// `d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if `a + b + c > 1` or `scale >= 31`.
///
/// # Examples
///
/// ```
/// let g = sparseweaver_graph::generators::rmat(8, 1_000, 0.57, 0.19, 0.19, 3);
/// assert_eq!(g.num_vertices(), 256);
/// ```
pub fn rmat(scale: u32, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    assert!(a + b + c <= 1.0 + 1e-9, "probabilities must sum to <= 1");
    assert!(scale < 31, "scale too large");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0000_9a7a);
    let mut builder = GraphBuilder::new(n);
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(20).max(64);
    while builder.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut x0, mut x1, mut y0, mut y1) = (0usize, n, 0usize, n);
        while x1 - x0 > 1 {
            // Slight per-level noise, as in the reference graph500 generator.
            let na = a * rng.gen_range(0.95..1.05);
            let nb = b * rng.gen_range(0.95..1.05);
            let nc = c * rng.gen_range(0.95..1.05);
            let sum = na + nb + nc + (1.0 - a - b - c).max(0.0);
            let r = rng.gen::<f64>() * sum;
            let (right, down) = if r < na {
                (false, false)
            } else if r < na + nb {
                (true, false)
            } else if r < na + nb + nc {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym;
            } else {
                y1 = ym;
            }
        }
        builder.add_edge(x0 as VertexId, y0 as VertexId);
    }
    builder.symmetric(true).build()
}

/// Generates a road-network-like graph: a `width x height` 4-neighbor grid
/// keeping each lattice edge with probability `keep`, plus a fraction
/// `rewire` of extra shortcut edges.
///
/// Road networks (`roadNet-CA`, `road-central` in Table III) have *more
/// vertices than edges* per the paper's table — i.e. tiny, near-uniform
/// degrees — which a sparsified lattice reproduces.
///
/// # Examples
///
/// ```
/// let g = sparseweaver_graph::generators::road_grid(16, 16, 0.4, 0.02, 9);
/// assert_eq!(g.num_vertices(), 256);
/// assert!(g.max_degree() <= 8);
/// ```
pub fn road_grid(width: usize, height: usize, keep: f64, rewire: f64, seed: u64) -> Csr {
    let n = width * height;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x60ad_6a1d);
    let mut b = GraphBuilder::new(n);
    let idx = |x: usize, y: usize| (y * width + x) as VertexId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.gen::<f64>() < keep {
                b.add_edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < height && rng.gen::<f64>() < keep {
                b.add_edge(idx(x, y), idx(x, y + 1));
            }
        }
    }
    let shortcuts = ((n as f64) * rewire) as usize;
    for _ in 0..shortcuts {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.add_edge(u, v);
    }
    b.symmetric(true).build()
}

/// Generates a symmetric uniform random graph with `num_vertices` vertices
/// and approximately `num_edges` directed edges before mirroring.
///
/// # Examples
///
/// ```
/// let g = sparseweaver_graph::generators::uniform(50, 200, 11);
/// assert!(g.is_symmetric());
/// ```
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f02_a11e);
    let mut b = GraphBuilder::new(num_vertices);
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(20).max(64);
    while b.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        b.add_edge(u, v);
    }
    b.symmetric(true).build()
}

/// Attaches deterministic pseudo-random weights in `1..=max_weight` to a
/// graph, keeping mirrored edge pairs symmetric in weight.
///
/// SSSP needs weighted edges; BFS/PR/CC ignore them.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn with_random_weights(g: &Csr, max_weight: u32, seed: u64) -> Csr {
    assert!(max_weight > 0, "max_weight must be positive");
    let weight_of = |a: VertexId, b: VertexId| -> u32 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut h = (lo as u64) << 32 | (hi as u64);
        h ^= seed;
        // splitmix64 finalizer for a decent deterministic hash.
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h % max_weight as u64) as u32 + 1
    };
    let edges: Vec<(VertexId, VertexId, u32)> = g
        .iter_edges()
        .map(|(s, d, _)| (s, d, weight_of(s, d)))
        .collect();
    Csr::from_weighted_edges(g.num_vertices(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn powerlaw_is_deterministic() {
        let a = powerlaw(128, 1024, 2.0, 42);
        let b = powerlaw(128, 1024, 2.0, 42);
        assert_eq!(a, b);
        let c = powerlaw(128, 1024, 2.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn powerlaw_higher_alpha_is_more_skewed() {
        // Coefficient of variation grows monotonically with alpha (the raw
        // third moment saturates once the hub exhausts distinct neighbors).
        let lo = powerlaw(2000, 12_000, 1.2, 7);
        let hi = powerlaw(2000, 12_000, 2.6, 7);
        let s_lo = DegreeStats::of(&lo).cv;
        let s_hi = DegreeStats::of(&hi).cv;
        assert!(
            s_hi > s_lo,
            "expected cv({s_hi}) > cv({s_lo}) for higher alpha"
        );
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(6, 300, 0.57, 0.19, 0.19, 5);
        assert_eq!(g.num_vertices(), 64);
        assert!(g.is_symmetric());
        assert!(g.num_edges() >= 300);
    }

    #[test]
    fn road_grid_low_degree() {
        let g = road_grid(20, 20, 0.45, 0.01, 3);
        // 4-neighbor lattice + shortcuts keeps degrees tiny.
        assert!(g.max_degree() <= 10);
        assert!(g.is_symmetric());
    }

    #[test]
    fn road_grid_keep_controls_density() {
        let sparse = road_grid(30, 30, 0.15, 0.0, 4);
        let dense = road_grid(30, 30, 0.9, 0.0, 4);
        assert!(sparse.num_edges() < dense.num_edges());
    }

    #[test]
    fn uniform_hits_target() {
        let g = uniform(100, 400, 1);
        assert!(g.num_edges() >= 400);
    }

    #[test]
    fn weights_in_range_and_symmetric() {
        let g = with_random_weights(&uniform(60, 200, 2), 64, 99);
        for (s, d, w) in g.iter_edges() {
            assert!((1..=64).contains(&w));
            // Mirrored edge carries the same weight.
            let back = g
                .neighbors(d)
                .iter()
                .position(|&x| x == s)
                .expect("symmetric");
            assert_eq!(g.neighbor_weights(d)[back], w);
        }
    }

    #[test]
    #[should_panic(expected = "max_weight")]
    fn zero_max_weight_panics() {
        with_random_weights(&uniform(4, 4, 0), 0, 0);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(powerlaw(1, 0, 2.0, 0).num_vertices(), 1);
        assert_eq!(uniform(0, 0, 0).num_vertices(), 0);
        assert_eq!(road_grid(1, 1, 0.5, 0.0, 0).num_edges(), 0);
    }
}
