//! Compressed Sparse Row storage, the format the paper's framework targets.
//!
//! SparseWeaver "supports storage formats where edges are stored
//! consecutively, and sparse workloads are indicated in the offset array by
//! neighbor counts such as CSR" (Section III-D). This module provides that
//! format plus the reverse (incoming-edge) view needed for pull-direction
//! gathering and the per-edge source array needed by edge mapping.

use std::fmt;

use crate::{EdgeId, VertexId};

/// Gather direction (Section III-C, *SparseWeaver Input*).
///
/// `Push` traverses outgoing edges of active sources; `Pull` traverses
/// incoming edges of destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Traverse outgoing edges (scatter from sources).
    Push,
    /// Traverse incoming edges (gather into destinations).
    Pull,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Push => write!(f, "push"),
            Direction::Pull => write!(f, "pull"),
        }
    }
}

/// A directed graph in Compressed Sparse Row format.
///
/// `offsets` has `num_vertices() + 1` entries; the neighbors of vertex `v`
/// are `targets[offsets[v] .. offsets[v + 1]]` with parallel `weights`.
///
/// # Examples
///
/// ```
/// use sparseweaver_graph::Csr;
///
/// // 0 -> 1, 0 -> 2, 2 -> 1
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(2), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Csr {
    offsets: Vec<EdgeId>,
    targets: Vec<VertexId>,
    weights: Vec<u32>,
    /// Source vertex of every edge, parallel to `targets`.
    ///
    /// Edge-mapped scheduling must read both endpoints per edge, which is
    /// why Table I charges it `2|E|` edge memory accesses.
    sources: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR graph from `(src, dst)` pairs with unit weights.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let weighted: Vec<(VertexId, VertexId, u32)> =
            edges.iter().map(|&(s, d)| (s, d, 1)).collect();
        Self::from_weighted_edges(num_vertices, &weighted)
    }

    /// Builds a CSR graph from `(src, dst, weight)` triples.
    ///
    /// Edges are sorted by `(src, dst)` so neighbor lists are ordered, which
    /// the ordered-scan design decision of Section III-C relies on.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_weighted_edges(num_vertices: usize, edges: &[(VertexId, VertexId, u32)]) -> Self {
        for &(s, d, _) in edges {
            assert!(
                (s as usize) < num_vertices && (d as usize) < num_vertices,
                "edge ({s}, {d}) out of range for {num_vertices} vertices"
            );
        }
        let mut sorted = edges.to_vec();
        sorted.sort_unstable_by_key(|&(s, d, _)| (s, d));

        let mut offsets = vec![0 as EdgeId; num_vertices + 1];
        for &(s, _, _) in &sorted {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            offsets[v + 1] += offsets[v];
        }
        let mut targets = Vec::with_capacity(sorted.len());
        let mut weights = Vec::with_capacity(sorted.len());
        let mut sources = Vec::with_capacity(sorted.len());
        for &(s, d, w) in &sorted {
            sources.push(s);
            targets.push(d);
            weights.push(w);
        }
        Csr {
            offsets,
            targets,
            weights,
            sources,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The offset array (`num_vertices() + 1` entries).
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// The edge target array.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The per-edge weight array, parallel to [`Csr::targets`].
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The per-edge source array, parallel to [`Csr::targets`].
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbor slice of `v` (edge targets).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weights of the edges leaving `v`, parallel to [`Csr::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_weights(&self, v: VertexId) -> &[u32] {
        let v = v as usize;
        &self.weights[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates over `(src, dst, weight)` triples in edge order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, u32)> + '_ {
        (0..self.num_edges()).map(move |e| (self.sources[e], self.targets[e], self.weights[e]))
    }

    /// The reverse graph: an edge `(u, v, w)` becomes `(v, u, w)`.
    ///
    /// Pull-direction gathering traverses this view (incoming edges of each
    /// destination).
    pub fn reverse(&self) -> Csr {
        let rev: Vec<(VertexId, VertexId, u32)> =
            self.iter_edges().map(|(s, d, w)| (d, s, w)).collect();
        Csr::from_weighted_edges(self.num_vertices(), &rev)
    }

    /// Returns the view of this graph for `direction`.
    ///
    /// `Push` is the graph itself (cloned); `Pull` is [`Csr::reverse`].
    pub fn view(&self, direction: Direction) -> Csr {
        match direction {
            Direction::Push => self.clone(),
            Direction::Pull => self.reverse(),
        }
    }

    /// Whether for every edge `(u, v)` the edge `(v, u)` also exists.
    ///
    /// The paper uses symmetric datasets for the push/pull breakdown
    /// (Section V-G).
    pub fn is_symmetric(&self) -> bool {
        let mut set: std::collections::HashSet<(VertexId, VertexId)> =
            std::collections::HashSet::with_capacity(self.num_edges());
        for (s, d, _) in self.iter_edges() {
            set.insert((s, d));
        }
        self.iter_edges().all(|(s, d, _)| set.contains(&(d, s)))
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn offsets_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.offsets(), &[0, 2, 3, 4, 4]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn sources_parallel_targets() {
        let g = diamond();
        assert_eq!(g.sources(), &[0, 0, 1, 2]);
        assert_eq!(g.targets(), &[1, 2, 3, 3]);
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), 4);
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.neighbors(0), &[] as &[VertexId]);
        // Reversing twice is the identity (edge multiset).
        let rr = r.reverse();
        assert_eq!(rr, g);
    }

    #[test]
    fn weighted_edges_keep_weights() {
        let g = Csr::from_weighted_edges(2, &[(0, 1, 7), (1, 0, 9)]);
        assert_eq!(g.neighbor_weights(0), &[7]);
        assert_eq!(g.neighbor_weights(1), &[9]);
        let r = g.reverse();
        assert_eq!(r.neighbor_weights(1), &[7]);
    }

    #[test]
    fn symmetric_detection() {
        let asym = diamond();
        assert!(!asym.is_symmetric());
        let sym = Csr::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn iter_edges_in_order() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
    }
}
