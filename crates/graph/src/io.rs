//! Plain-text edge-list I/O.
//!
//! The network data repository distributes graphs as whitespace-separated
//! edge lists (`src dst [weight]`, `%`/`#` comment lines). This module
//! parses and writes that format so the scaled stand-ins can be exported
//! and, if the original datasets ever become available, loaded directly.

use std::fmt;
use std::io::{BufRead, Write};

use crate::csr::Csr;
use crate::VertexId;

/// Error parsing an edge-list document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEdgeListError {
    line: usize,
    message: String,
    snippet: String,
}

impl ParseEdgeListError {
    /// 1-based line where the error occurred.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The offending line's text (truncated to 60 characters).
    pub fn snippet(&self) -> &str {
        &self.snippet
    }
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid edge list at line {}: {} in `{}`",
            self.line, self.message, self.snippet
        )
    }
}

impl std::error::Error for ParseEdgeListError {}

/// Parses an edge-list document into a [`Csr`].
///
/// Each non-comment line is `src dst` or `src dst weight`. Vertex IDs may be
/// arbitrary (the vertex count is `max id + 1`). Lines starting with `#` or
/// `%` and blank lines are skipped.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on malformed lines or unparsable numbers.
///
/// # Examples
///
/// ```
/// let g = sparseweaver_graph::io::parse_edge_list("0 1\n1 2 5\n# comment\n")?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), sparseweaver_graph::io::ParseEdgeListError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Csr, ParseEdgeListError> {
    let mut edges: Vec<(VertexId, VertexId, u32)> = Vec::new();
    let mut max_v: u64 = 0;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |message: &str| ParseEdgeListError {
            line: i + 1,
            message: message.to_string(),
            snippet: line.chars().take(60).collect(),
        };
        let src: u64 = parts
            .next()
            .ok_or_else(|| err("missing source"))?
            .parse()
            .map_err(|_| err("bad source id"))?;
        let dst: u64 = parts
            .next()
            .ok_or_else(|| err("missing destination"))?
            .parse()
            .map_err(|_| err("bad destination id"))?;
        let w: u32 = match parts.next() {
            Some(tok) => tok.parse().map_err(|_| err("bad weight"))?,
            None => 1,
        };
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
        if src > u32::MAX as u64 - 1 || dst > u32::MAX as u64 - 1 {
            return Err(err("vertex id out of range"));
        }
        max_v = max_v.max(src).max(dst);
        edges.push((src as VertexId, dst as VertexId, w));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    };
    Ok(Csr::from_weighted_edges(n, &edges))
}

/// Reads an edge list from any [`BufRead`] (a `&mut` reference works too).
///
/// # Errors
///
/// Returns an I/O error or, boxed inside `InvalidData`, a parse error.
pub fn read_edge_list<R: BufRead>(mut reader: R) -> std::io::Result<Csr> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_edge_list(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes `g` as an edge list (`src dst weight` per line) to any
/// [`Write`] (a `&mut` reference works too).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (s, d, w) in g.iter_edges() {
        writeln!(writer, "{s} {d} {w}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = crate::generators::uniform(40, 120, 17);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        // Vertex count may shrink if trailing vertices are isolated; edge
        // multiset must match.
        let e1: Vec<_> = g.iter_edges().collect();
        let e2: Vec<_> = g2.iter_edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = parse_edge_list("% header\n\n# note\n0 1\n").unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn default_weight_is_one() {
        let g = parse_edge_list("0 1\n").unwrap();
        assert_eq!(g.weights(), &[1]);
    }

    #[test]
    fn explicit_weight() {
        let g = parse_edge_list("0 1 9\n").unwrap();
        assert_eq!(g.weights(), &[9]);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_edge_list("0 1\nxyz 3\n").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("line 2"));
        assert_eq!(e.snippet(), "xyz 3");
        assert!(e.to_string().contains("`xyz 3`"));
    }

    #[test]
    fn long_offending_lines_are_truncated_in_errors() {
        let junk = "z".repeat(500);
        let e = parse_edge_list(&format!("0 1\n{junk}\n")).unwrap_err();
        assert_eq!(e.snippet().chars().count(), 60);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_edge_list("0 1 2 3\n").is_err());
    }

    #[test]
    fn missing_destination_rejected() {
        assert!(parse_edge_list("0\n").is_err());
    }

    #[test]
    fn empty_document_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
