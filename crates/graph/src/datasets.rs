//! Scaled stand-ins for the nine evaluation graphs of Table III.
//!
//! The paper evaluates on nine graphs from the network data repository,
//! totaling more than 450M edges. Those raw files are not available offline
//! and are far beyond what a cycle-level interpreter can sweep, so each
//! dataset is replaced by a deterministic synthetic graph of the same
//! *structural class* (see `DESIGN.md`, substitution 2):
//!
//! | paper graph        | class                  | stand-in generator |
//! |--------------------|------------------------|--------------------|
//! | bio-human-gene1    | dense, skewed          | power-law, α=1.4   |
//! | bio-mouse-gene     | dense, skewed          | power-law, α=1.4   |
//! | roadNet-CA         | sparse, uniform        | sparsified grid    |
//! | road-central       | sparse, uniform        | sparsified grid    |
//! | graph500-scale19   | synthetic power-law    | R-MAT              |
//! | COLLAB             | social, skewed         | power-law, α=1.6   |
//! | hollywood-2011     | social, very skewed    | power-law, α=1.8   |
//! | web-uk-2005        | web, dense + skewed    | power-law, α=1.7   |
//! | web-wikipedia      | web, skewed            | power-law, α=2.0   |
//!
//! Scale factors are chosen so each stand-in has roughly 10⁴–10⁵ directed
//! edges: large enough that warp-level imbalance dominates, small enough
//! that the full Fig. 10 sweep simulates in minutes. What every experiment
//! reports is *relative* speedup between scheduling schemes, which is driven
//! by the degree-distribution shape the stand-ins preserve.

use crate::csr::Csr;
use crate::generators;

/// Identifier of one of the nine Table III datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DatasetId {
    /// `bio-human-gene1` (D_bh): 22,284 vertices / 24,691,926 edges.
    BioHuman,
    /// `bio-mouse-gene` (D_bm): 45,102 vertices / 29,012,392 edges.
    BioMouse,
    /// `roadNet-CA` (D_rn): 1,971,282 vertices / 553,321 edges.
    RoadNetCa,
    /// `road-central` (D_rc): 14,081,817 vertices / 3,386,682 edges.
    RoadCentral,
    /// `graph500-scale19` (D_g500): 335,319 vertices / 15,459,350 edges.
    Graph500,
    /// `COLLAB` (D_co): 372,475 vertices / 49,144,316 edges.
    Collab,
    /// `hollywood-2011` (D_hw): 2,180,653 vertices / 228,985,632 edges.
    Hollywood,
    /// `web-uk-2005` (D_uk): 129,633 vertices / 23,488,098 edges.
    WebUk,
    /// `web-wikipedia` (D_wk): 2,936,414 vertices / 104,673,033 edges.
    WebWikipedia,
}

impl DatasetId {
    /// All nine datasets in Table III order.
    pub const ALL: [DatasetId; 9] = [
        DatasetId::BioHuman,
        DatasetId::BioMouse,
        DatasetId::RoadNetCa,
        DatasetId::RoadCentral,
        DatasetId::Graph500,
        DatasetId::Collab,
        DatasetId::Hollywood,
        DatasetId::WebUk,
        DatasetId::WebWikipedia,
    ];

    /// The short name used in the paper's figures (e.g. `D_bh`).
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetId::BioHuman => "D_bh",
            DatasetId::BioMouse => "D_bm",
            DatasetId::RoadNetCa => "D_rn",
            DatasetId::RoadCentral => "D_rc",
            DatasetId::Graph500 => "D_g500",
            DatasetId::Collab => "D_co",
            DatasetId::Hollywood => "D_hw",
            DatasetId::WebUk => "D_uk",
            DatasetId::WebWikipedia => "D_wk",
        }
    }

    /// The full dataset name from Table III.
    pub fn full_name(self) -> &'static str {
        match self {
            DatasetId::BioHuman => "bio-human-gene1",
            DatasetId::BioMouse => "bio-mouse-gene",
            DatasetId::RoadNetCa => "roadNet-CA",
            DatasetId::RoadCentral => "road-central",
            DatasetId::Graph500 => "graph500-scale19",
            DatasetId::Collab => "COLLAB",
            DatasetId::Hollywood => "hollywood-2011",
            DatasetId::WebUk => "web-uk-2005",
            DatasetId::WebWikipedia => "web-wikipedia",
        }
    }

    /// `(vertices, edges)` of the original graph as reported in Table III.
    pub fn paper_size(self) -> (usize, usize) {
        match self {
            DatasetId::BioHuman => (22_284, 24_691_926),
            DatasetId::BioMouse => (45_102, 29_012_392),
            DatasetId::RoadNetCa => (1_971_282, 553_321),
            DatasetId::RoadCentral => (14_081_817, 3_386_682),
            DatasetId::Graph500 => (335_319, 15_459_350),
            DatasetId::Collab => (372_475, 49_144_316),
            DatasetId::Hollywood => (2_180_653, 228_985_632),
            DatasetId::WebUk => (129_633, 23_488_098),
            DatasetId::WebWikipedia => (2_936_414, 104_673_033),
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// A generated stand-in for one Table III dataset.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    /// Which paper dataset this stands in for.
    pub id: DatasetId,
    /// The generated graph (symmetric, weighted 1..=64).
    pub graph: Csr,
}

impl ScaledDataset {
    /// The scaled vertex count.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The scaled directed edge count.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Generates the scaled stand-in for `id`. Deterministic: repeated calls
/// return identical graphs.
///
/// # Examples
///
/// ```
/// use sparseweaver_graph::{dataset, DatasetId};
///
/// let d = dataset(DatasetId::Graph500);
/// assert!(d.graph.is_symmetric());
/// ```
pub fn dataset(id: DatasetId) -> ScaledDataset {
    let base = match id {
        // Dense skewed bio graphs: few vertices, very high average degree.
        DatasetId::BioHuman => generators::powerlaw(1_400, 42_000, 1.4, ds_seed(0)),
        DatasetId::BioMouse => generators::powerlaw(2_800, 50_000, 1.4, ds_seed(1)),
        // Road networks: |E| < |V|, near-uniform tiny degrees.
        DatasetId::RoadNetCa => generators::road_grid(124, 124, 0.15, 0.01, ds_seed(2)),
        DatasetId::RoadCentral => generators::road_grid(187, 187, 0.12, 0.005, ds_seed(3)),
        // Kronecker-style synthetic graph (graph500 reference parameters).
        DatasetId::Graph500 => generators::rmat(12, 52_000, 0.57, 0.19, 0.19, ds_seed(4)),
        // Social / collaboration graphs.
        DatasetId::Collab => generators::powerlaw(2_900, 45_000, 1.6, ds_seed(5)),
        DatasetId::Hollywood => generators::powerlaw(4_300, 60_000, 1.8, ds_seed(6)),
        // Web graphs.
        DatasetId::WebUk => generators::powerlaw(1_010, 45_000, 1.7, ds_seed(7)),
        DatasetId::WebWikipedia => generators::powerlaw(5_800, 50_000, 2.0, ds_seed(8)),
    };
    let graph = generators::with_random_weights(&base, 64, 0x5eed_0000 + id as u64);
    ScaledDataset { id, graph }
}

// Deterministic per-dataset seed.
fn ds_seed(i: u64) -> u64 {
    0x0da7_a5e7_u64.wrapping_mul(31).wrapping_add(i)
}

/// Generates all nine scaled datasets in Table III order.
pub fn all_datasets() -> Vec<ScaledDataset> {
    DatasetId::ALL.iter().map(|&id| dataset(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn deterministic() {
        let a = dataset(DatasetId::Hollywood);
        let b = dataset(DatasetId::Hollywood);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn all_symmetric_and_nonempty() {
        for d in all_datasets() {
            assert!(d.num_edges() > 0, "{} is empty", d.id);
            assert!(d.graph.is_symmetric(), "{} not symmetric", d.id);
        }
    }

    #[test]
    fn road_graphs_are_sparse_and_uniform() {
        for id in [DatasetId::RoadNetCa, DatasetId::RoadCentral] {
            let d = dataset(id);
            let s = DegreeStats::of(&d.graph);
            assert!(s.mean < 4.0, "{id}: road mean degree too high: {}", s.mean);
            assert!(s.max <= 16, "{id}: road max degree too high: {}", s.max);
        }
    }

    #[test]
    fn skewed_graphs_are_skewed() {
        for id in [
            DatasetId::BioHuman,
            DatasetId::Hollywood,
            DatasetId::WebUk,
            DatasetId::Graph500,
        ] {
            let d = dataset(id);
            let s = DegreeStats::of(&d.graph);
            assert!(s.cv > 1.0, "{id}: expected skewed degrees, got cv={}", s.cv);
        }
    }

    #[test]
    fn bio_graphs_have_high_mean_degree() {
        let d = dataset(DatasetId::BioHuman);
        let s = DegreeStats::of(&d.graph);
        assert!(s.mean > 30.0, "bio mean degree {}", s.mean);
    }

    #[test]
    fn weights_present() {
        let d = dataset(DatasetId::Collab);
        assert!(d.graph.weights().iter().all(|&w| (1..=64).contains(&w)));
    }

    #[test]
    fn paper_sizes_match_table_iii() {
        assert_eq!(DatasetId::BioHuman.paper_size(), (22_284, 24_691_926));
        assert_eq!(
            DatasetId::WebWikipedia.paper_size(),
            (2_936_414, 104_673_033)
        );
    }
}
