//! Model-based property tests: the set-associative cache must agree with
//! a naive reference LRU model on every access of any trace, and the
//! hierarchy must maintain basic accounting invariants.

use proptest::prelude::*;
use sparseweaver_mem::{Cache, CacheConfig, Hierarchy, HierarchyConfig, LINE_BYTES};

/// A naive LRU model: per set, a most-recent-first list of tags.
struct RefModel {
    sets: Vec<Vec<u64>>,
    ways: usize,
    num_sets: u64,
}

impl RefModel {
    fn new(cfg: CacheConfig) -> Self {
        RefModel {
            sets: vec![Vec::new(); cfg.num_sets() as usize],
            ways: cfg.ways as usize,
            num_sets: cfg.num_sets(),
        }
    }

    /// Returns whether the access hits.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / LINE_BYTES;
        let set = (line & (self.num_sets - 1)) as usize;
        let tag = line / self.num_sets;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.insert(0, tag);
            true
        } else {
            list.insert(0, tag);
            list.truncate(self.ways);
            false
        }
    }
}

proptest! {
    /// Hit/miss agreement with the reference LRU on arbitrary traces.
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..8192, 1..300),
        writes in prop::collection::vec(any::<bool>(), 300),
    ) {
        let cfg = CacheConfig::new(1024, 2); // 8 sets x 2 ways
        let mut cache = Cache::new(cfg);
        let mut model = RefModel::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let got = cache.access(a, writes[i % writes.len()]);
            let want = model.access(a);
            prop_assert_eq!(got.hit, want, "access {} at {:#x}", i, a);
        }
    }

    /// Accounting: hits + misses == accesses; writebacks <= misses
    /// (a line must be brought in before it can be evicted dirty).
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..4096, 1..200)) {
        let mut cache = Cache::new(CacheConfig::new(512, 2));
        for (i, &a) in addrs.iter().enumerate() {
            cache.access(a, i % 3 == 0);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.writebacks <= s.misses);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    /// Hierarchy: latency is monotone in depth — an L1 hit is never
    /// slower than an L2 hit, which is never slower than DRAM; and
    /// queueing only ever adds latency.
    #[test]
    fn hierarchy_latency_monotone(
        addrs in prop::collection::vec(0u64..65536, 1..150),
    ) {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l1 = sparseweaver_mem::CacheConfig::new(1024, 2);
        cfg.l2 = sparseweaver_mem::CacheConfig::new(8192, 4);
        let mut h = Hierarchy::new(cfg);
        let mut now = 0u64;
        for &a in &addrs {
            let r = h.access(0, a, false, now);
            let floor = match r.level {
                sparseweaver_mem::hierarchy::HitLevel::L1 => cfg.l1_latency,
                sparseweaver_mem::hierarchy::HitLevel::L2 => cfg.l1_latency + cfg.l2_latency,
                sparseweaver_mem::hierarchy::HitLevel::L3 => {
                    cfg.l1_latency + cfg.l2_latency + cfg.l3_latency
                }
                sparseweaver_mem::hierarchy::HitLevel::Dram => {
                    cfg.l1_latency + cfg.l2_latency + cfg.dram_latency * cfg.dram_freq_ratio
                }
            };
            prop_assert!(r.latency >= floor, "latency {} below floor {}", r.latency, floor);
            now += 7;
        }
        let s = h.stats();
        prop_assert_eq!(s.l1.hits + s.l1.misses, s.l1.accesses);
        // Every L2 access originates from an L1 miss or writeback.
        prop_assert!(s.l2.accesses <= s.l1.misses + s.l1.writebacks);
    }

    /// Repeating the same trace after `reset` reproduces identical stats
    /// (the determinism the whole evaluation relies on).
    #[test]
    fn hierarchy_deterministic_across_reset(
        addrs in prop::collection::vec(0u64..32768, 1..100),
    ) {
        let mut cfg = HierarchyConfig::vortex_default(1);
        cfg.l1 = sparseweaver_mem::CacheConfig::new(1024, 2);
        cfg.l2 = sparseweaver_mem::CacheConfig::new(4096, 4);
        let mut h = Hierarchy::new(cfg);
        let run = |h: &mut Hierarchy| -> Vec<u64> {
            addrs.iter().enumerate().map(|(i, &a)| {
                h.access(0, a, i % 2 == 0, i as u64 * 3).latency
            }).collect()
        };
        let first = run(&mut h);
        h.reset();
        let second = run(&mut h);
        prop_assert_eq!(first, second);
    }
}
