//! Set-associative, write-back, write-allocate, LRU cache (timing-only).

use std::fmt;

use crate::{line_of, LINE_BYTES};

/// Why a cache geometry is unusable, reported by
/// [`CacheConfig::validate`]/[`CacheConfig::checked`].
///
/// [`Cache::access`] indexes sets with a `& (num_sets - 1)` mask, which
/// is only a modulo when the set count is a power of two. A geometry that
/// violates that would *silently alias* distinct sets into each other —
/// every hit/miss counter the sweep reports would be wrong with no error
/// anywhere — so it must be rejected as a typed error on every
/// construction path, including deserialized and swept configurations
/// that never go through [`CacheConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// `size_bytes / (line * ways)` leaves zero sets.
    NoSets {
        /// The rejected capacity.
        size_bytes: u64,
        /// The rejected associativity.
        ways: u32,
    },
    /// The set count is not a power of two, so the set-index mask would
    /// alias sets.
    NonPowerOfTwoSets {
        /// The rejected capacity.
        size_bytes: u64,
        /// The rejected associativity.
        ways: u32,
        /// The resulting (non-power-of-two) set count.
        num_sets: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::NoSets { size_bytes, ways } => {
                write!(f, "cache too small for {ways} ways ({size_bytes} bytes)")
            }
            CacheConfigError::NonPowerOfTwoSets {
                size_bytes,
                ways,
                num_sets,
            } => write!(
                f,
                "number of sets must be a power of two (got {num_sets} \
                 from {size_bytes} bytes x {ways} ways)"
            ),
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A cache of `size_bytes` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry is a power-of-two number of non-empty
    /// sets. Fallible callers (config deserializers, sweep drivers) use
    /// [`CacheConfig::checked`] instead.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        match Self::checked(size_bytes, ways) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`CacheConfig::new`], but returns a typed
    /// [`CacheConfigError`] instead of panicking — the constructor for
    /// geometries that come from user input (deserialized configs, sweep
    /// grids).
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] unless the geometry is a
    /// power-of-two number of non-empty sets.
    pub fn checked(size_bytes: u64, ways: u32) -> Result<Self, CacheConfigError> {
        let cfg = CacheConfig { size_bytes, ways };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the geometry of an already-built value. The struct has
    /// public fields and can be deserialized, so any consumer that did
    /// not obtain it from [`CacheConfig::new`]/[`CacheConfig::checked`]
    /// must call this before building a [`Cache`] on it.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] unless the geometry is a
    /// power-of-two number of non-empty sets.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.num_sets() == 0 {
            return Err(CacheConfigError::NoSets {
                size_bytes: self.size_bytes,
                ways: self.ways,
            });
        }
        if !self.num_sets().is_power_of_two() {
            return Err(CacheConfigError::NonPowerOfTwoSets {
                size_bytes: self.size_bytes,
                ways: self.ways,
                num_sets: self.num_sets(),
            });
        }
        Ok(())
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Adds another set of counters field-wise.
    pub fn add(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }

    /// Hit rate in `[0, 1]` (0 when no accesses were made).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_use: u64,
}

/// One cache line's checkpointable state (tag array entry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Whether the line holds a tag.
    pub valid: bool,
    /// Whether the line is dirty (would write back on eviction).
    pub dirty: bool,
    /// The stored tag.
    pub tag: u64,
    /// LRU timestamp (value of `tick` at last touch).
    pub last_use: u64,
}

/// A complete snapshot of one cache's mutable state: the tag array in
/// set-major order, the LRU clock, and the hit/miss counters. Geometry is
/// *not* included — it belongs to the configuration the owner was built
/// from, which checkpoint restore validates separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheState {
    /// All lines, flattened set-major (`sets * ways` entries).
    pub lines: Vec<LineState>,
    /// The LRU clock.
    pub tick: u64,
    /// Accumulated counters.
    pub stats: CacheStats,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address of a dirty line evicted to make room, if any.
    pub evicted_dirty: Option<u64>,
}

/// A timing-only cache: tags and dirty bits, no data (data lives in
/// [`crate::MainMemory`]).
///
/// # Examples
///
/// ```
/// use sparseweaver_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(4096, 4));
/// assert!(!c.access(0, false).hit);   // cold miss
/// assert!(c.access(0, false).hit);    // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if [`CacheConfig::validate`] rejects `cfg`. The geometry
    /// is re-checked here — not only in [`CacheConfig::new`] — because
    /// the config type has public fields and derives `Deserialize`: a
    /// hand-built or deserialized geometry must never reach
    /// [`Cache::access`]'s power-of-two set mask and silently alias
    /// sets. Fallible callers validate the config up front and surface
    /// the typed error instead.
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let sets = vec![vec![Line::default(); cfg.ways as usize]; cfg.num_sets() as usize];
        Cache {
            cfg,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents), e.g. between kernels.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses the line containing `addr`, allocating on miss (LRU
    /// victim). `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.tick += 1;
        let line_addr = line_of(addr);
        let set_idx = ((line_addr / LINE_BYTES) & (self.cfg.num_sets() - 1)) as usize;
        let tag = line_addr / LINE_BYTES / self.cfg.num_sets();
        self.stats.accesses += 1;

        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                evicted_dirty: None,
            };
        }
        self.stats.misses += 1;
        // Victim: an invalid way if present, else LRU.
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        let victim = &mut set[victim_idx];
        let evicted_dirty = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = (victim.tag * self.cfg.num_sets() + set_idx as u64) * LINE_BYTES;
            Some(victim_line)
        } else {
            None
        };
        *victim = Line {
            valid: true,
            dirty: write,
            tag,
            last_use: self.tick,
        };
        CacheAccess {
            hit: false,
            evicted_dirty,
        }
    }

    /// Captures the complete mutable state (tag array, LRU clock,
    /// counters) for checkpointing.
    pub fn save_state(&self) -> CacheState {
        CacheState {
            lines: self
                .sets
                .iter()
                .flat_map(|set| set.iter())
                .map(|l| LineState {
                    valid: l.valid,
                    dirty: l.dirty,
                    tag: l.tag,
                    last_use: l.last_use,
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Restores state captured with [`Cache::save_state`] into a cache of
    /// the *same geometry*.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's line count
    /// does not match this cache's `sets * ways`.
    pub fn restore_state(&mut self, state: &CacheState) -> Result<(), String> {
        let expect = self.sets.len() * self.cfg.ways as usize;
        if state.lines.len() != expect {
            return Err(format!(
                "cache snapshot has {} lines, geometry needs {expect}",
                state.lines.len()
            ));
        }
        let ways = self.cfg.ways as usize;
        for (i, set) in self.sets.iter_mut().enumerate() {
            for (j, line) in set.iter_mut().enumerate() {
                let s = &state.lines[i * ways + j];
                *line = Line {
                    valid: s.valid,
                    dirty: s.dirty,
                    tag: s.tag,
                    last_use: s.last_use,
                };
            }
        }
        self.tick = state.tick;
        self.stats = state.stats;
        Ok(())
    }

    /// Invalidates everything (e.g. when reconfiguring between runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig::new(512, 2))
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(192, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hand_built_bad_config_cannot_reach_cache() {
        // Bypass CacheConfig::new entirely (the serde/sweep path): the
        // struct literal used to slip straight into Cache::new and alias
        // sets through the `& (num_sets - 1)` mask. 192 bytes / 1 way =
        // 3 sets; the mask would fold set 2 into set 0 silently.
        let bad = CacheConfig {
            size_bytes: 192,
            ways: 1,
        };
        let _ = Cache::new(bad);
    }

    #[test]
    fn checked_and_validate_report_typed_errors() {
        let bad = CacheConfig {
            size_bytes: 192,
            ways: 1,
        };
        assert_eq!(
            bad.validate(),
            Err(CacheConfigError::NonPowerOfTwoSets {
                size_bytes: 192,
                ways: 1,
                num_sets: 3
            })
        );
        assert_eq!(
            CacheConfig::checked(64, 4),
            Err(CacheConfigError::NoSets {
                size_bytes: 64,
                ways: 4
            })
        );
        assert!(CacheConfig::checked(64, 4)
            .unwrap_err()
            .to_string()
            .contains("too small"));
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("power of two"));
        assert_eq!(CacheConfig::checked(512, 2), Ok(CacheConfig::new(512, 2)));
    }

    #[test]
    fn same_line_hits() {
        let mut c = small();
        assert!(!c.access(100, false).hit);
        assert!(c.access(101, false).hit); // same 64B line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0: line addresses stride = sets*64 = 256.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // touch line 0 so 256 is LRU
        c.access(512, false); // evicts 256
        assert!(c.access(0, false).hit);
        assert!(!c.access(256, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts LRU = line 0 (dirty)
        assert_eq!(out.evicted_dirty, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(0, false);
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.evicted_dirty, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // dirty via hit
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.evicted_dirty, Some(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.access(0, false);
        c.flush();
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn hit_rate() {
        let mut c = small();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicted_line_address_reconstruction() {
        let mut c = small();
        // Fill set 1 with dirty lines: line addr 64 (set 1), 64+256, 64+512.
        c.access(64, true);
        c.access(320, true);
        let out = c.access(576, true);
        assert_eq!(out.evicted_dirty, Some(64));
    }
}
