//! Memory substrate for the SparseWeaver GPU simulator.
//!
//! The Vortex GPU the paper builds on has per-core L1 caches, a shared L2,
//! an optional L3 (Fig. 14), and DRAM whose relative speed is swept in
//! Fig. 12 ("n GHz GPU versus 1 GHz DRAM"). Graph processing is memory
//! intensive, and the paper's argument for integrating Weaver *into* the
//! GPU pipeline — rather than doing memory accesses from dedicated hardware
//! like EGHW — is precisely that the GPU can hide memory latency with
//! warp-level parallelism. The timing model here is what makes that
//! argument reproducible:
//!
//! - [`MainMemory`] — flat, byte-addressed functional storage. Data always
//!   lives here; caches are *timing-only* (tags, no data), which keeps the
//!   simulator functional-first and makes cache configuration sweeps safe
//!   by construction.
//! - [`Cache`] — set-associative, write-back, write-allocate, LRU.
//! - [`Hierarchy`] — per-core L1s in front of a shared L2, optional L3,
//!   then DRAM; each level has a port model whose queueing delay produces
//!   the "wait for L1 queue (LG throttle)" stalls of Fig. 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod main_memory;
pub mod mtrace;
pub mod replay;

pub use cache::{Cache, CacheConfig, CacheConfigError, CacheState, CacheStats, LineState};
pub use hierarchy::{
    AccessResult, Hierarchy, HierarchyConfig, HierarchyConfigError, HierarchyState, HitLevel,
    LevelStats, PortOccupancy, PortState,
};
pub use main_memory::{MainMemory, MemFault};
pub use mtrace::{MemRecord, MemRecorderHandle, MemTrace, MemTraceError, RecorderSummary};
pub use replay::{ReplayError, VerifyOutcome};

/// Cache line size in bytes, fixed at 64 as on Vortex.
pub const LINE_BYTES: u64 = 64;

/// Returns the line-aligned address containing `addr`.
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
