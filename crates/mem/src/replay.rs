//! Trace-driven replay of the memory hierarchy.
//!
//! The replay side of the memory-study mode: re-runs *only* a
//! [`Hierarchy`] against a captured [`MemTrace`](crate::mtrace::MemTrace)
//! — no cores, no decode, no Weaver — under an arbitrary
//! [`HierarchyConfig`]. Under the capture configuration the replayed
//! [`LevelStats`] are bit-identical to the live run's (the hierarchy's
//! state is a pure function of its call sequence, and the trace *is*
//! that call sequence); under a different geometry the replay answers
//! "what would the caches have done" orders of magnitude faster than a
//! full simulation.
//!
//! Record mapping:
//!
//! - `KernelLaunch` → [`Hierarchy::reset_ports`], mirroring the live
//!   `Gpu::launch` (simulated time restarts per launch).
//! - `Access` → [`Hierarchy::access`] (or
//!   [`Hierarchy::access_unqueued`] for EGHW unit-port lookups).
//! - `Atomic` → [`Hierarchy::atomic`].
//! - `Barrier` → ignored (diagnostic only; barriers don't touch the
//!   hierarchy).

use std::fmt;

use crate::hierarchy::{Hierarchy, HierarchyConfig, HierarchyConfigError, LevelStats};
use crate::mtrace::{MemRecord, MemTrace};

/// Why a replay could not run (distinct from a stats mismatch, which
/// [`verify`] reports as data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The replay configuration failed [`HierarchyConfig::validate`] —
    /// the typed surface of the set-aliasing bug this mode exists to
    /// sweep past, never a silent wrong answer.
    BadConfig(HierarchyConfigError),
    /// The replay configuration has fewer cores than the trace: per-core
    /// L1 streams cannot be mapped.
    TooFewCores {
        /// Cores in the trace header.
        trace_cores: usize,
        /// Cores in the replay configuration.
        config_cores: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadConfig(e) => write!(f, "invalid replay config: {e}"),
            ReplayError::TooFewCores {
                trace_cores,
                config_cores,
            } => write!(
                f,
                "replay config has {config_cores} cores but the trace was captured on \
                 {trace_cores}; per-core L1 streams cannot be mapped"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::BadConfig(e) => Some(e),
            ReplayError::TooFewCores { .. } => None,
        }
    }
}

impl From<HierarchyConfigError> for ReplayError {
    fn from(e: HierarchyConfigError) -> Self {
        ReplayError::BadConfig(e)
    }
}

/// Replays `trace` against a fresh hierarchy built from `cfg` and
/// returns the resulting cumulative stats.
///
/// # Errors
///
/// Returns a [`ReplayError`] if `cfg` fails validation or has fewer
/// cores than the trace was captured on.
pub fn replay(trace: &MemTrace, cfg: &HierarchyConfig) -> Result<LevelStats, ReplayError> {
    cfg.validate()?;
    if cfg.num_cores < trace.config.num_cores {
        return Err(ReplayError::TooFewCores {
            trace_cores: trace.config.num_cores,
            config_cores: cfg.num_cores,
        });
    }
    let mut hier = Hierarchy::new(*cfg);
    for record in &trace.records {
        match record {
            MemRecord::KernelLaunch { .. } => hier.reset_ports(),
            MemRecord::Access {
                core,
                addr,
                write,
                cycle,
                unqueued,
                ..
            } => {
                if *unqueued {
                    hier.access_unqueued(*core as usize, *addr, *write);
                } else {
                    hier.access(*core as usize, *addr, *write, *cycle);
                }
            }
            MemRecord::Atomic {
                core, addr, cycle, ..
            } => {
                hier.atomic(*core as usize, *addr, *cycle);
            }
            MemRecord::Barrier { .. } => {}
        }
    }
    Ok(hier.stats())
}

/// Outcome of [`verify`]: the replayed stats against the live footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Stats from replaying under the capture configuration.
    pub replayed: LevelStats,
    /// The live run's stats, from the trace footer.
    pub live: LevelStats,
}

impl VerifyOutcome {
    /// Whether the replay reproduced the live run bit for bit.
    pub fn matches(&self) -> bool {
        self.replayed == self.live
    }
}

/// Replays `trace` under its own capture configuration and compares
/// against the footer stats — the self-check behind `swreplay verify`.
///
/// # Errors
///
/// Returns a [`ReplayError`] if the embedded capture configuration
/// itself fails validation (a corrupt or hand-edited header).
pub fn verify(trace: &MemTrace) -> Result<VerifyOutcome, ReplayError> {
    let replayed = replay(trace, &trace.config)?;
    Ok(VerifyOutcome {
        replayed,
        live: trace.live_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::hierarchy::HitLevel;
    use crate::mtrace::{parse, MemRecorderHandle};

    /// Drives a live hierarchy through a mixed workload with a recorder
    /// attached, then checks the replay reproduces its stats exactly.
    #[test]
    fn replay_reproduces_live_stats_bit_for_bit() {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l1 = CacheConfig::new(512, 2);
        cfg.l2 = CacheConfig::new(2048, 2);
        let mut live = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        live.set_recorder(Some(rec.clone()));

        rec.kernel_launch("k0");
        for i in 0..200u64 {
            let addr = (i * 192) % 8192;
            rec.set_warp((i % 8) as u32);
            live.access((i % 2) as usize, addr, i % 3 == 0, i * 2);
            if i % 7 == 0 {
                live.atomic(0, addr, i * 2 + 1);
            }
            if i % 11 == 0 {
                live.access_unqueued(1, addr ^ 0x40, false);
            }
        }
        // Second launch: port clocks reset, caches stay warm.
        rec.kernel_launch("k1");
        live.reset_ports();
        for i in 0..50u64 {
            live.access(1, (i * 64) % 4096, false, i);
        }
        let stats = live.stats();
        rec.finalize(&stats);

        let trace = parse(&rec.take_bytes().unwrap()).expect("well-formed");
        let outcome = verify(&trace).expect("valid capture config");
        assert_eq!(outcome.live, stats);
        assert_eq!(outcome.replayed, stats, "replay must be bit-identical");
        assert!(outcome.matches());
    }

    #[test]
    fn replay_under_bigger_l1_changes_hits_not_traffic_order() {
        let mut cfg = HierarchyConfig::vortex_default(1);
        cfg.l1 = CacheConfig::new(256, 2);
        cfg.l2 = CacheConfig::new(2048, 2);
        let mut live = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        live.set_recorder(Some(rec.clone()));
        rec.kernel_launch("k");
        // Working set larger than the tiny L1 but smaller than a big one.
        for round in 0..4u64 {
            for i in 0..16u64 {
                live.access(0, i * 64, false, round * 100 + i);
            }
        }
        rec.finalize(&live.stats());
        let trace = parse(&rec.take_bytes().unwrap()).unwrap();

        let mut big = cfg;
        big.l1 = CacheConfig::new(4096, 4);
        let swept = replay(&trace, &big).expect("valid sweep config");
        let base = replay(&trace, &cfg).expect("capture config");
        assert_eq!(base, trace.live_stats);
        assert_eq!(swept.l1.accesses, base.l1.accesses, "same request stream");
        assert!(
            swept.l1.hits > base.l1.hits,
            "bigger L1 must hit more: {} vs {}",
            swept.l1.hits,
            base.l1.hits
        );
        // Fewer L1 misses descend: the L2 sees less traffic, and DRAM
        // (cold misses only — the L2 holds the whole working set) never
        // sees more.
        assert!(swept.l2.accesses < base.l2.accesses);
        assert!(swept.dram_accesses <= base.dram_accesses);
    }

    #[test]
    fn bad_sweep_config_is_typed_not_silent_aliasing() {
        let cfg = HierarchyConfig::vortex_default(1);
        let mut live = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        live.set_recorder(Some(rec.clone()));
        rec.kernel_launch("k");
        live.access(0, 0, false, 0);
        rec.finalize(&live.stats());
        let trace = parse(&rec.take_bytes().unwrap()).unwrap();

        // 192 bytes x 1 way = 3 sets: the config that used to alias
        // silently through the pow2 mask now refuses to replay.
        let mut bad = cfg;
        bad.l1 = CacheConfig {
            size_bytes: 192,
            ways: 1,
        };
        let e = replay(&trace, &bad).expect_err("must reject");
        assert!(matches!(e, ReplayError::BadConfig(_)), "{e}");
        assert!(e.to_string().contains("power of two"), "{e}");
    }

    #[test]
    fn too_few_cores_is_typed() {
        let cfg = HierarchyConfig::vortex_default(4);
        let rec = MemRecorderHandle::in_memory(&cfg);
        rec.finalize(&LevelStats::default());
        let trace = parse(&rec.take_bytes().unwrap()).unwrap();
        let small = HierarchyConfig::vortex_default(2);
        let e = replay(&trace, &small).expect_err("must reject");
        assert_eq!(
            e,
            ReplayError::TooFewCores {
                trace_cores: 4,
                config_cores: 2,
            }
        );
    }

    #[test]
    fn recorder_does_not_change_timing_or_stats() {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l1 = CacheConfig::new(512, 2);
        let mut plain = Hierarchy::new(cfg);
        let mut recorded = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        recorded.set_recorder(Some(rec));
        for i in 0..100u64 {
            let addr = (i * 320) % 4096;
            let a = plain.access((i % 2) as usize, addr, i % 4 == 0, i * 3);
            let b = recorded.access((i % 2) as usize, addr, i % 4 == 0, i * 3);
            assert_eq!(a, b);
            if i % 9 == 0 {
                assert_eq!(plain.atomic(0, addr, i), recorded.atomic(0, addr, i));
            }
        }
        assert_eq!(plain.stats(), recorded.stats());
    }

    #[test]
    fn level_hints_match_capture_levels() {
        let cfg = HierarchyConfig::vortex_default(1);
        let mut live = Hierarchy::new(cfg);
        let rec = MemRecorderHandle::in_memory(&cfg);
        live.set_recorder(Some(rec.clone()));
        rec.kernel_launch("k");
        live.access(0, 64, false, 0); // cold: DRAM
        live.access(0, 64, false, 10); // warm: L1
        rec.finalize(&live.stats());
        let trace = parse(&rec.take_bytes().unwrap()).unwrap();
        let levels: Vec<HitLevel> = trace
            .records
            .iter()
            .filter_map(|r| match r {
                MemRecord::Access { level, .. } => Some(*level),
                _ => None,
            })
            .collect();
        assert_eq!(levels, vec![HitLevel::Dram, HitLevel::L1]);
    }
}
