//! The full memory hierarchy: per-core L1s, shared L2, optional L3, DRAM.

use std::fmt;

use sparseweaver_trace::{EventData, MemLevel, ProfileHandle, TraceHandle};

use crate::cache::{Cache, CacheConfig, CacheConfigError, CacheState, CacheStats};
use crate::mtrace::MemRecorderHandle;

/// Configuration of the whole hierarchy.
///
/// Defaults mirror the paper's Vortex setup (Section V): 64KB L1 per core
/// and a 1MB shared L2; Fig. 14 adds an optional L3 and Fig. 12 sweeps
/// `dram_freq_ratio` from 1 to 6.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (one L1 each).
    pub num_cores: usize,
    /// Per-core L1 geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Optional shared L3 geometry (Fig. 14).
    pub l3: Option<CacheConfig>,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Additional latency for an L2 hit.
    pub l2_latency: u64,
    /// Additional latency for an L3 hit.
    pub l3_latency: u64,
    /// DRAM access latency in *DRAM* cycles.
    pub dram_latency: u64,
    /// GPU:DRAM frequency ratio `n` (Fig. 12): DRAM latency in GPU cycles
    /// is `dram_latency * n`.
    pub dram_freq_ratio: u64,
    /// L1 accesses serviced per cycle per core.
    pub l1_ports: u64,
    /// L2 accesses serviced per cycle (shared).
    pub l2_ports: u64,
    /// DRAM requests serviced per GPU cycle (shared).
    pub dram_ports: u64,
    /// Atomic operations serviced per cycle (L2 atomic banks).
    pub atomic_ports: u64,
}

impl HierarchyConfig {
    /// The paper's Vortex configuration: 64KB L1, 1MB L2, no L3,
    /// frequency ratio 2.
    pub fn vortex_default(num_cores: usize) -> Self {
        HierarchyConfig {
            num_cores,
            l1: CacheConfig::new(64 * 1024, 4),
            l2: CacheConfig::new(1024 * 1024, 8),
            l3: None,
            l1_latency: 2,
            l2_latency: 18,
            l3_latency: 24,
            dram_latency: 50,
            dram_freq_ratio: 2,
            l1_ports: 1,
            l2_ports: 2,
            dram_ports: 1,
            atomic_ports: 8,
        }
    }

    /// The SparseWeaver configuration: L1 halved to 32KB, the penalty the
    /// paper applies for devoting storage to the 512-entry ST and DT
    /// tables (Section V).
    pub fn sparseweaver_default(num_cores: usize) -> Self {
        let mut cfg = Self::vortex_default(num_cores);
        cfg.l1 = CacheConfig::new(32 * 1024, 4);
        cfg
    }

    /// Validates every cache geometry in the configuration.
    ///
    /// Hand-built and deserialized configs (replay sweeps, trace headers)
    /// never went through [`CacheConfig::new`]'s checks; this is the
    /// typed gate such paths must pass before a [`Hierarchy`] (or a swept
    /// variant of one) is constructed, so a bad set count is an error
    /// instead of silent set aliasing.
    ///
    /// # Errors
    ///
    /// Returns a [`HierarchyConfigError`] naming the offending level if
    /// `num_cores` is zero or any of L1/L2/L3 fails
    /// [`CacheConfig::validate`].
    pub fn validate(&self) -> Result<(), HierarchyConfigError> {
        if self.num_cores == 0 {
            return Err(HierarchyConfigError::NoCores);
        }
        let level = |name: &'static str, r: Result<(), CacheConfigError>| {
            r.map_err(|source| HierarchyConfigError::Level {
                level: name,
                source,
            })
        };
        level("l1", self.l1.validate())?;
        level("l2", self.l2.validate())?;
        if let Some(l3) = &self.l3 {
            level("l3", l3.validate())?;
        }
        Ok(())
    }
}

/// A hierarchy configuration rejected by [`HierarchyConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyConfigError {
    /// The configuration has zero cores (no L1s to build).
    NoCores,
    /// One cache level has a bad geometry.
    Level {
        /// Which level (`"l1"`, `"l2"`, `"l3"`).
        level: &'static str,
        /// The underlying geometry error.
        source: CacheConfigError,
    },
}

impl fmt::Display for HierarchyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyConfigError::NoCores => write!(f, "hierarchy must have at least one core"),
            HierarchyConfigError::Level { level, source } => write!(f, "{level}: {source}"),
        }
    }
}

impl std::error::Error for HierarchyConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HierarchyConfigError::NoCores => None,
            HierarchyConfigError::Level { source, .. } => Some(source),
        }
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HitLevel {
    /// Serviced by the core's L1.
    L1,
    /// Serviced by the shared L2.
    L2,
    /// Serviced by the shared L3.
    L3,
    /// Went to DRAM.
    Dram,
}

impl HitLevel {
    /// The trace-event level corresponding to this hit level.
    pub fn trace_level(self) -> MemLevel {
        match self {
            HitLevel::L1 => MemLevel::L1,
            HitLevel::L2 => MemLevel::L2,
            HitLevel::L3 => MemLevel::L3,
            HitLevel::Dram => MemLevel::Dram,
        }
    }
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in GPU cycles, including queueing.
    pub latency: u64,
    /// Cycles spent waiting for the L1 port (the "LG throttle" stall
    /// source of Fig. 4).
    pub queue_delay: u64,
    /// Deepest level reached.
    pub level: HitLevel,
}

/// Aggregated statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LevelStats {
    /// Sum of all per-core L1 stats.
    pub l1: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// L3 stats, if configured.
    pub l3: Option<CacheStats>,
    /// DRAM requests.
    pub dram_accesses: u64,
}

impl LevelStats {
    /// Adds another set of level statistics field-wise.
    ///
    /// The L3 slot folds like an optional counter set: if either side has
    /// L3 stats the sum does too, so aggregating runs with and without a
    /// configured L3 never silently drops L3 activity.
    pub fn add(&mut self, other: &LevelStats) {
        self.l1.add(&other.l1);
        self.l2.add(&other.l2);
        match (&mut self.l3, &other.l3) {
            (Some(a), Some(b)) => a.add(b),
            (None, Some(b)) => self.l3 = Some(*b),
            _ => {}
        }
        self.dram_accesses += other.dram_accesses;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Port {
    per_window: u64,
    /// GPU cycles per service window (DRAM runs `stride` GPU cycles per
    /// DRAM cycle under the Fig. 12 frequency ratio).
    stride: u64,
    cycle: u64,
    used: u64,
}

impl Port {
    fn new(per_window: u64) -> Self {
        Self::with_stride(per_window, 1)
    }

    fn with_stride(per_window: u64, stride: u64) -> Self {
        Port {
            per_window: per_window.max(1),
            stride: stride.max(1),
            cycle: 0,
            used: 0,
        }
    }

    /// Acquires one slot at or after `now`; returns the queueing delay.
    fn acquire(&mut self, now: u64) -> u64 {
        if now > self.cycle {
            // Align to the port's service window.
            self.cycle = now + (self.stride - 1) - (now + self.stride - 1) % self.stride;
            self.used = 0;
        }
        while self.used >= self.per_window {
            self.cycle += self.stride;
            self.used = 0;
        }
        self.used += 1;
        self.cycle - now
    }

    /// The cycle an [`acquire`](Port::acquire) issued at `now` would be
    /// serviced, without mutating the port — the same window-alignment
    /// and overflow arithmetic, minus the slot consumption.
    fn next_free(&self, now: u64) -> u64 {
        let (mut cycle, mut used) = (self.cycle, self.used);
        if now > cycle {
            cycle = now + (self.stride - 1) - (now + self.stride - 1) % self.stride;
            used = 0;
        }
        if used >= self.per_window {
            cycle += self.stride;
        }
        cycle
    }
}

/// One port's mutable queue state (checkpointable). Capacity and stride
/// come from the configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortState {
    /// The cycle the current service window ends.
    pub cycle: u64,
    /// Slots consumed in the current window.
    pub used: u64,
}

/// A complete snapshot of the hierarchy's mutable state: every tag array,
/// every port queue, and the DRAM access counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyState {
    /// Per-core L1 snapshots.
    pub l1: Vec<CacheState>,
    /// Shared L2 snapshot.
    pub l2: CacheState,
    /// Shared L3 snapshot, if configured.
    pub l3: Option<CacheState>,
    /// Per-core L1 port queues.
    pub l1_ports: Vec<PortState>,
    /// Shared L2 port queue.
    pub l2_port: PortState,
    /// DRAM port queue.
    pub dram_port: PortState,
    /// Atomic-bank port queue.
    pub atomic_port: PortState,
    /// Total DRAM requests so far.
    pub dram_accesses: u64,
}

/// One port's queue state at a point in time, reported by
/// [`Hierarchy::port_occupancy`] for hang diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortOccupancy {
    /// Port name (`l1:<core>`, `l2`, `dram`, `atomic`).
    pub name: String,
    /// Slots consumed in the current service window.
    pub used: u64,
    /// Slots available per service window.
    pub per_window: u64,
    /// The cycle the current service window ends.
    pub busy_until: u64,
}

/// The memory hierarchy timing model.
///
/// # Examples
///
/// ```
/// use sparseweaver_mem::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::vortex_default(2));
/// let cold = h.access(0, 0x1000, false, 0);
/// let warm = h.access(0, 0x1000, false, 10);
/// assert!(warm.latency < cold.latency);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Cache,
    l3: Option<Cache>,
    l1_ports: Vec<Port>,
    l2_port: Port,
    dram_port: Port,
    atomic_port: Port,
    dram_accesses: u64,
    tracer: Option<TraceHandle>,
    profiler: Option<ProfileHandle>,
    recorder: Option<MemRecorderHandle>,
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1: (0..cfg.num_cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            l3: cfg.l3.map(Cache::new),
            l1_ports: (0..cfg.num_cores)
                .map(|_| Port::new(cfg.l1_ports))
                .collect(),
            l2_port: Port::new(cfg.l2_ports),
            dram_port: Port::with_stride(cfg.dram_ports, cfg.dram_freq_ratio),
            atomic_port: Port::new(cfg.atomic_ports),
            dram_accesses: 0,
            tracer: None,
            profiler: None,
            recorder: None,
            cfg,
        }
    }

    /// Attaches (or detaches) a tracer. With a handle attached, [`access`]
    /// emits one [`EventData::CacheAccess`] per request and every DRAM
    /// transaction in the timing path emits [`EventData::DramTransaction`].
    /// [`access_unqueued`] (the EGHW unit port) carries no timestamp and
    /// emits no events; its activity still lands in [`Hierarchy::stats`].
    ///
    /// [`access`]: Hierarchy::access
    /// [`access_unqueued`]: Hierarchy::access_unqueued
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Attaches (or detaches) a latency profiler. With a handle attached,
    /// [`access`] and [`atomic`] record each request's issue→fill latency
    /// (queueing included) into the per-level histograms.
    /// [`access_unqueued`] (the EGHW unit port) carries no timestamp and
    /// is excluded, mirroring its exclusion from the event stream.
    ///
    /// [`access`]: Hierarchy::access
    /// [`atomic`]: Hierarchy::atomic
    /// [`access_unqueued`]: Hierarchy::access_unqueued
    pub fn set_profiler(&mut self, profiler: Option<ProfileHandle>) {
        self.profiler = profiler;
    }

    /// Attaches (or detaches) a memory-trace recorder
    /// ([`crate::mtrace`]). With a handle attached, every [`access`],
    /// [`access_unqueued`], and [`atomic`] appends one `swmtrace-v1`
    /// record in service order — the sequence [`crate::replay`] feeds
    /// back to reproduce this hierarchy's stats bit for bit. Purely
    /// observational: timing and stats are unchanged.
    ///
    /// [`access`]: Hierarchy::access
    /// [`access_unqueued`]: Hierarchy::access_unqueued
    /// [`atomic`]: Hierarchy::atomic
    pub fn set_recorder(&mut self, recorder: Option<MemRecorderHandle>) {
        self.recorder = recorder;
    }

    fn emit_dram(&self, t: u64, write: bool) {
        if let Some(tr) = &self.tracer {
            tr.emit(t, 0, EventData::DramTransaction { write });
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// A snapshot of every port's queue state — the "MSHR/queue
    /// occupancy" section of a hang report.
    pub fn port_occupancy(&self) -> Vec<PortOccupancy> {
        let snap = |name: String, p: &Port| PortOccupancy {
            name,
            used: p.used,
            per_window: p.per_window,
            busy_until: p.cycle,
        };
        let mut out: Vec<PortOccupancy> = self
            .l1_ports
            .iter()
            .enumerate()
            .map(|(i, p)| snap(format!("l1:{i}"), p))
            .collect();
        out.push(snap("l2".to_string(), &self.l2_port));
        out.push(snap("dram".to_string(), &self.dram_port));
        out.push(snap("atomic".to_string(), &self.atomic_port));
        out
    }

    /// The earliest cycle at which a new request from `core` issued at
    /// `now` would clear every port queue on a worst-case (DRAM-reaching)
    /// path — the memory system's contribution to a "known ready cycle".
    ///
    /// All port state is a pure function of past `access` timestamps, so
    /// between accesses this bound is exact and never moves: a clock that
    /// jumps straight to it observes the same queue delays it would have
    /// seen ticking one cycle at a time. Returns `now` when every queue
    /// is idle.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn next_ready_cycle(&self, core: usize, now: u64) -> u64 {
        self.l1_ports[core]
            .next_free(now)
            .max(self.l2_port.next_free(now))
            .max(self.dram_port.next_free(now))
    }

    /// DRAM latency in GPU cycles (base latency x frequency ratio).
    pub fn dram_cycles(&self) -> u64 {
        self.cfg.dram_latency * self.cfg.dram_freq_ratio
    }

    /// One load/store from `core` to the line containing `addr` at time
    /// `now`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, write: bool, now: u64) -> AccessResult {
        let queue_delay = self.l1_ports[core].acquire(now);
        let t = now + queue_delay;
        let mut latency = queue_delay + self.cfg.l1_latency;
        let a1 = self.l1[core].access(addr, write);
        if let Some(victim) = a1.evicted_dirty {
            // Write-back is buffered: charged to L2 occupancy, not to this
            // request's latency.
            self.l2_port.acquire(t);
            self.l2.access(victim, true);
        }
        let result = if a1.hit {
            AccessResult {
                latency,
                queue_delay,
                level: HitLevel::L1,
            }
        } else {
            latency += self.l2_port.acquire(t) + self.cfg.l2_latency;
            let (level, below) = self.descend_from_l2(addr, t);
            AccessResult {
                latency: latency + below,
                queue_delay,
                level,
            }
        };
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                core as u32,
                EventData::CacheAccess {
                    level: result.level.trace_level(),
                    write,
                    queue_delay,
                },
            );
        }
        if let Some(p) = &self.profiler {
            p.mem_latency(result.level.trace_level(), result.latency);
        }
        if let Some(r) = &self.recorder {
            r.access(core, addr, write, now, result.level);
        }
        result
    }

    /// A load issued by a dedicated hardware unit with its own memory port
    /// (the EGHW baseline): full cache-lookup latency, but no GPU port
    /// queueing. Units run ahead of the GPU clock, so routing them through
    /// the shared (monotonic) port models would corrupt the port clocks.
    pub fn access_unqueued(&mut self, core: usize, addr: u64, write: bool) -> AccessResult {
        let result = self.access_unqueued_inner(core, addr, write);
        if let Some(r) = &self.recorder {
            r.access_unqueued(core, addr, write, result.level);
        }
        result
    }

    fn access_unqueued_inner(&mut self, core: usize, addr: u64, write: bool) -> AccessResult {
        let mut latency = self.cfg.l1_latency;
        let a1 = self.l1[core].access(addr, write);
        if let Some(victim) = a1.evicted_dirty {
            self.l2.access(victim, true);
        }
        if a1.hit {
            return AccessResult {
                latency,
                queue_delay: 0,
                level: HitLevel::L1,
            };
        }
        latency += self.cfg.l2_latency;
        let a2 = self.l2.access(addr, write);
        if let Some(victim) = a2.evicted_dirty {
            if let Some(l3) = &mut self.l3 {
                l3.access(victim, true);
            } else {
                self.dram_accesses += 1;
            }
        }
        if a2.hit {
            return AccessResult {
                latency,
                queue_delay: 0,
                level: HitLevel::L2,
            };
        }
        if let Some(l3) = &mut self.l3 {
            let a3 = l3.access(addr, write);
            if a3.evicted_dirty.is_some() {
                self.dram_accesses += 1;
            }
            if a3.hit {
                return AccessResult {
                    latency: latency + self.cfg.l3_latency,
                    queue_delay: 0,
                    level: HitLevel::L3,
                };
            }
            latency += self.cfg.l3_latency;
        }
        self.dram_accesses += 1;
        AccessResult {
            latency: latency + self.dram_cycles(),
            queue_delay: 0,
            level: HitLevel::Dram,
        }
    }

    /// An atomic read-modify-write. GPU atomics resolve at the L2 (they
    /// bypass the L1), so the minimum latency is the L2 path.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn atomic(&mut self, core: usize, addr: u64, now: u64) -> AccessResult {
        let queue_delay = self.atomic_port.acquire(now);
        let t = now + queue_delay;
        let mut latency = queue_delay + self.cfg.l1_latency + self.cfg.l2_latency;
        let (level, below) = self.descend_from_l2_write(addr, t);
        latency += below;
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                core as u32,
                EventData::CacheAccess {
                    level: level.trace_level(),
                    write: true,
                    queue_delay,
                },
            );
        }
        if let Some(p) = &self.profiler {
            p.mem_latency(level.trace_level(), latency);
        }
        if let Some(r) = &self.recorder {
            r.atomic(core, addr, now, level);
        }
        AccessResult {
            latency,
            queue_delay: 0,
            level,
        }
    }

    fn descend_from_l2(&mut self, addr: u64, t: u64) -> (HitLevel, u64) {
        self.descend(addr, t, false)
    }

    fn descend_from_l2_write(&mut self, addr: u64, t: u64) -> (HitLevel, u64) {
        self.descend(addr, t, true)
    }

    fn descend(&mut self, addr: u64, t: u64, write: bool) -> (HitLevel, u64) {
        let a2 = self.l2.access(addr, write);
        if let Some(victim) = a2.evicted_dirty {
            if let Some(l3) = &mut self.l3 {
                l3.access(victim, true);
            } else {
                self.dram_accesses += 1;
                self.emit_dram(t, true);
            }
        }
        if a2.hit {
            return (HitLevel::L2, 0);
        }
        if let Some(l3) = &mut self.l3 {
            let a3 = l3.access(addr, write);
            if a3.evicted_dirty.is_some() {
                self.dram_accesses += 1;
                self.emit_dram(t, true);
            }
            if a3.hit {
                return (HitLevel::L3, self.cfg.l3_latency);
            }
            let dq = self.dram_port.acquire(t);
            self.dram_accesses += 1;
            self.emit_dram(t, false);
            (
                HitLevel::Dram,
                self.cfg.l3_latency + dq + self.dram_cycles(),
            )
        } else {
            let dq = self.dram_port.acquire(t);
            self.dram_accesses += 1;
            self.emit_dram(t, false);
            (HitLevel::Dram, dq + self.dram_cycles())
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> LevelStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1 {
            let s = c.stats();
            l1.accesses += s.accesses;
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.writebacks += s.writebacks;
        }
        LevelStats {
            l1,
            l2: self.l2.stats(),
            l3: self.l3.as_ref().map(|c| c.stats()),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> HierarchyState {
        let port = |p: &Port| PortState {
            cycle: p.cycle,
            used: p.used,
        };
        HierarchyState {
            l1: self.l1.iter().map(Cache::save_state).collect(),
            l2: self.l2.save_state(),
            l3: self.l3.as_ref().map(Cache::save_state),
            l1_ports: self.l1_ports.iter().map(port).collect(),
            l2_port: port(&self.l2_port),
            dram_port: port(&self.dram_port),
            atomic_port: port(&self.atomic_port),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Restores state captured with [`Hierarchy::save_state`] into a
    /// hierarchy built from the *same configuration*.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's shape
    /// (core count, L3 presence, line counts) does not match this
    /// hierarchy's configuration.
    pub fn restore_state(&mut self, state: &HierarchyState) -> Result<(), String> {
        if state.l1.len() != self.l1.len() || state.l1_ports.len() != self.l1_ports.len() {
            return Err(format!(
                "hierarchy snapshot has {} cores, configuration needs {}",
                state.l1.len(),
                self.l1.len()
            ));
        }
        if state.l3.is_some() != self.l3.is_some() {
            return Err("hierarchy snapshot disagrees with configuration about L3".into());
        }
        for (cache, snap) in self.l1.iter_mut().zip(&state.l1) {
            cache.restore_state(snap).map_err(|e| format!("l1: {e}"))?;
        }
        self.l2
            .restore_state(&state.l2)
            .map_err(|e| format!("l2: {e}"))?;
        if let (Some(l3), Some(snap)) = (&mut self.l3, &state.l3) {
            l3.restore_state(snap).map_err(|e| format!("l3: {e}"))?;
        }
        let restore = |p: &mut Port, s: &PortState| {
            p.cycle = s.cycle;
            p.used = s.used;
        };
        for (p, s) in self.l1_ports.iter_mut().zip(&state.l1_ports) {
            restore(p, s);
        }
        restore(&mut self.l2_port, &state.l2_port);
        restore(&mut self.dram_port, &state.dram_port);
        restore(&mut self.atomic_port, &state.atomic_port);
        self.dram_accesses = state.dram_accesses;
        Ok(())
    }

    /// Resets the port clocks (between kernel launches: simulated time
    /// restarts at zero while cache *contents* stay warm).
    pub fn reset_ports(&mut self) {
        self.l1_ports = (0..self.cfg.num_cores)
            .map(|_| Port::new(self.cfg.l1_ports))
            .collect();
        self.l2_port = Port::new(self.cfg.l2_ports);
        self.dram_port = Port::with_stride(self.cfg.dram_ports, self.cfg.dram_freq_ratio);
        self.atomic_port = Port::new(self.cfg.atomic_ports);
    }

    /// Resets statistics and flushes all caches (between independent runs).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
            c.flush();
        }
        self.l2.reset_stats();
        self.l2.flush();
        if let Some(l3) = &mut self.l3 {
            l3.reset_stats();
            l3.flush();
        }
        self.dram_accesses = 0;
        self.reset_ports();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l1 = CacheConfig::new(512, 2);
        cfg.l2 = CacheConfig::new(2048, 2);
        Hierarchy::new(cfg)
    }

    #[test]
    fn l1_hit_is_cheap() {
        let mut h = tiny();
        h.access(0, 64, false, 0);
        let r = h.access(0, 64, false, 5);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, h.config().l1_latency);
    }

    #[test]
    fn next_ready_cycle_is_now_when_idle() {
        let h = tiny();
        assert_eq!(h.next_ready_cycle(0, 0), 0);
        assert_eq!(h.next_ready_cycle(1, 40), 40);
    }

    #[test]
    fn next_ready_cycle_predicts_queue_delay_without_mutation() {
        let mut h = tiny();
        // Saturate core 0's L1 port window at cycle 10.
        for _ in 0..h.config().l1_ports {
            h.access(0, 64, false, 10);
        }
        let predicted = h.next_ready_cycle(0, 10);
        assert!(predicted > 10, "a full window must push the bound out");
        // Pure query: asking again gives the same answer.
        assert_eq!(h.next_ready_cycle(0, 10), predicted);
        // The predicted cycle admits a request with no L1 queue delay
        // (the address is an L1 hit, so only the L1 port is exercised).
        let r = h.access(0, 64, false, predicted);
        assert_eq!(r.queue_delay, 0, "bound should clear the queue");
    }

    #[test]
    fn cold_miss_reaches_dram() {
        let mut h = tiny();
        let r = h.access(0, 64, false, 0);
        assert_eq!(r.level, HitLevel::Dram);
        assert!(r.latency >= h.dram_cycles());
    }

    #[test]
    fn l2_services_other_cores_miss() {
        let mut h = tiny();
        h.access(0, 64, false, 0); // brings line into L2 (and core 0's L1)
        let r = h.access(1, 64, false, 100);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn freq_ratio_scales_dram() {
        let mut cfg = HierarchyConfig::vortex_default(1);
        cfg.dram_freq_ratio = 6;
        let h = Hierarchy::new(cfg);
        assert_eq!(h.dram_cycles(), cfg.dram_latency * 6);
    }

    #[test]
    fn port_contention_queues() {
        let mut h = tiny();
        // Warm the line so both accesses are L1 hits.
        h.access(0, 64, false, 0);
        h.reset(); // reset ports but keep... actually flushes; re-warm below.
        h.access(0, 64, false, 0);
        // Two hits issued the same cycle with 1 port: second queues.
        let a = h.access(0, 64, false, 50);
        let b = h.access(0, 64, false, 50);
        assert_eq!(a.queue_delay, 0);
        assert_eq!(b.queue_delay, 1);
    }

    #[test]
    fn l3_between_l2_and_dram() {
        let mut cfg = HierarchyConfig::vortex_default(1);
        cfg.l1 = CacheConfig::new(512, 2);
        cfg.l2 = CacheConfig::new(1024, 2);
        cfg.l3 = Some(CacheConfig::new(64 * 1024, 16));
        let mut h = Hierarchy::new(cfg);
        h.access(0, 64, false, 0); // into all levels
                                   // Evict from L1 and L2 with conflicting lines, then re-access: L3 hit.
        for i in 1..40u64 {
            h.access(0, 64 + i * 1024, false, i * 10);
        }
        let r = h.access(0, 64, false, 10_000);
        assert!(
            matches!(r.level, HitLevel::L3 | HitLevel::L2),
            "expected L2/L3 hit, got {:?}",
            r.level
        );
    }

    #[test]
    fn atomics_bypass_l1() {
        let mut h = tiny();
        h.access(0, 64, false, 0); // L1-resident
        let r = h.atomic(0, 64, 10);
        assert_ne!(r.level, HitLevel::L1);
        assert!(r.latency >= h.config().l2_latency);
    }

    #[test]
    fn stats_aggregate() {
        let mut h = tiny();
        h.access(0, 0, false, 0);
        h.access(1, 4096, false, 0);
        let s = h.stats();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.l1.misses, 2);
        assert_eq!(s.dram_accesses, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = tiny();
        h.access(0, 0, false, 0);
        h.reset();
        let s = h.stats();
        assert_eq!(s.l1.accesses, 0);
        assert_eq!(s.dram_accesses, 0);
        // Line is gone after flush.
        let r = h.access(0, 0, false, 0);
        assert_eq!(r.level, HitLevel::Dram);
    }

    #[test]
    fn level_stats_add_folds_optional_l3() {
        let mut a = LevelStats {
            l1: CacheStats {
                accesses: 10,
                hits: 8,
                misses: 2,
                writebacks: 1,
            },
            dram_accesses: 3,
            ..LevelStats::default()
        };
        let b = LevelStats {
            l1: CacheStats {
                accesses: 4,
                hits: 1,
                misses: 3,
                writebacks: 0,
            },
            l3: Some(CacheStats {
                accesses: 5,
                hits: 2,
                misses: 3,
                writebacks: 1,
            }),
            dram_accesses: 4,
            ..LevelStats::default()
        };
        a.add(&b);
        assert_eq!(a.l1.accesses, 14);
        assert_eq!(a.l1.hits, 9);
        assert_eq!(a.dram_accesses, 7);
        // None + Some adopts the L3 stats instead of dropping them.
        assert_eq!(a.l3.unwrap().accesses, 5);
        // Some + Some folds field-wise.
        a.add(&b);
        assert_eq!(a.l3.unwrap().accesses, 10);
        assert_eq!(a.l3.unwrap().writebacks, 2);
    }

    #[test]
    fn tracer_records_cache_and_dram_events() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let mut h = tiny();
        let t = TraceHandle::new(TraceConfig::default());
        t.kernel_begin("k");
        h.set_tracer(Some(t.clone()));
        h.access(0, 64, false, 0); // cold miss: CacheAccess(DRAM) + DramTransaction
        h.access(0, 64, false, 10); // warm: CacheAccess(L1)
        t.kernel_end(20, &Default::default());
        let r = t.report();
        assert_eq!(r.events.len(), 5); // launch, 2 cache, 1 dram, end
    }

    #[test]
    fn tracer_does_not_change_timing() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let mut plain = tiny();
        let mut traced = tiny();
        traced.set_tracer(Some(TraceHandle::new(TraceConfig::default())));
        for i in 0..50u64 {
            let addr = (i * 192) % 4096;
            let a = plain.access(0, addr, i % 3 == 0, i * 2);
            let b = traced.access(0, addr, i % 3 == 0, i * 2);
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn validate_names_the_offending_level() {
        let mut cfg = HierarchyConfig::vortex_default(1);
        assert_eq!(cfg.validate(), Ok(()));
        cfg.l2 = CacheConfig {
            size_bytes: 192,
            ways: 1,
        };
        let e = cfg.validate().expect_err("bad l2");
        assert!(matches!(e, HierarchyConfigError::Level { level: "l2", .. }));
        assert!(e.to_string().starts_with("l2: "), "{e}");
        cfg.l2 = CacheConfig::new(2048, 2);
        cfg.num_cores = 0;
        assert_eq!(cfg.validate(), Err(HierarchyConfigError::NoCores));
    }

    #[test]
    fn sparseweaver_config_halves_l1() {
        let v = HierarchyConfig::vortex_default(1);
        let s = HierarchyConfig::sparseweaver_default(1);
        assert_eq!(s.l1.size_bytes * 2, v.l1.size_bytes);
    }
}
