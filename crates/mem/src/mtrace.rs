//! `swmtrace-v1`: a compact binary per-warp memory-access trace.
//!
//! The capture side of the trace-capture/replay memory-study mode. A
//! [`MemRecorderHandle`] rides next to the tracer/profiler hooks in
//! [`crate::Hierarchy`] and the simulator cores, and records every
//! timing-path memory-hierarchy request — coalesced line accesses, EGHW
//! unit lookups, atomics — plus kernel-launch and barrier records, in
//! exactly the order the hierarchy served them. Replaying that sequence
//! against a fresh [`crate::Hierarchy`] (see [`crate::replay`])
//! reproduces the live run's [`crate::LevelStats`] bit for bit, because
//! the hierarchy's state is a pure function of its call sequence.
//!
//! # On-disk format
//!
//! All multi-byte fixed fields are little-endian; `varint` is LEB128
//! (7 bits per byte, high bit = continuation).
//!
//! ```text
//! header:
//!   magic     8 bytes  b"swmtrace"
//!   version   u16      1
//!   config    the capture HierarchyConfig:
//!             num_cores u32,
//!             l1 size u64 + ways u32, l2 size u64 + ways u32,
//!             l3 present u8 (+ size u64 + ways u32 when 1),
//!             l1/l2/l3/dram latency u64 x4, dram_freq_ratio u64,
//!             l1/l2/dram/atomic ports u64 x4
//! records (tag u8, then):
//!   0x01 kernel-launch  name_len varint, name bytes (UTF-8)
//!   0x02 access         flags u8 (bit0 write, bit1 unqueued,
//!                       bits 2-3 level hint), core varint, warp varint,
//!                       cycle varint (0 for unqueued), line addr varint
//!   0x03 atomic         flags u8 (bits 2-3 level hint), core varint,
//!                       warp varint, cycle varint, addr varint
//!   0x04 barrier        core varint, warp varint, cycle varint
//!   0xff footer         record count varint, live LevelStats
//!                       (l1/l2 accesses+hits+misses+writebacks varint x8,
//!                       l3 present u8 (+ 4 varints), dram varint)
//! ```
//!
//! The footer carries the live run's final cumulative stats: a trace is
//! self-verifying (`swreplay verify`), and a file without a footer is
//! typed as truncated rather than silently replayed short. The level
//! *hint* is the level that served the access under the capture
//! configuration — diagnostic only; a replay under a different geometry
//! recomputes levels from scratch.

use std::cell::RefCell;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::rc::Rc;

use crate::cache::CacheConfig;
use crate::hierarchy::{HierarchyConfig, HitLevel, LevelStats};
use crate::CacheStats;

/// The 8-byte file magic.
pub const MTRACE_MAGIC: &[u8; 8] = b"swmtrace";
/// Format version written and accepted.
pub const MTRACE_VERSION: u16 = 1;

const TAG_KERNEL: u8 = 0x01;
const TAG_ACCESS: u8 = 0x02;
const TAG_ATOMIC: u8 = 0x03;
const TAG_BARRIER: u8 = 0x04;
const TAG_FOOTER: u8 = 0xff;

const FLAG_WRITE: u8 = 1 << 0;
const FLAG_UNQUEUED: u8 = 1 << 1;

fn level_code(level: HitLevel) -> u8 {
    match level {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::L3 => 2,
        HitLevel::Dram => 3,
    }
}

fn level_from(code: u8) -> HitLevel {
    match code & 0b11 {
        0 => HitLevel::L1,
        1 => HitLevel::L2,
        2 => HitLevel::L3,
        _ => HitLevel::Dram,
    }
}

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemRecord {
    /// A kernel launch: simulated time restarts at zero and the replay
    /// resets the hierarchy's port clocks, mirroring
    /// [`crate::Hierarchy::reset_ports`] in the live `Gpu::launch`.
    KernelLaunch {
        /// The kernel's name.
        name: String,
    },
    /// One coalesced line access ([`crate::Hierarchy::access`], or
    /// [`crate::Hierarchy::access_unqueued`] when `unqueued`).
    Access {
        /// Issuing core.
        core: u32,
        /// Issuing warp (the instruction's warp at the core hook).
        warp: u32,
        /// Issue cycle within the launch (0 for unqueued unit lookups,
        /// which carry no GPU timestamp).
        cycle: u64,
        /// The accessed (line-aligned) address.
        addr: u64,
        /// Whether the access was a store.
        write: bool,
        /// Whether this was an EGHW unit-port lookup (no port queueing).
        unqueued: bool,
        /// The level that served the access under the capture config.
        level: HitLevel,
    },
    /// An atomic read-modify-write ([`crate::Hierarchy::atomic`]).
    Atomic {
        /// Issuing core.
        core: u32,
        /// Issuing warp.
        warp: u32,
        /// Issue cycle within the launch.
        cycle: u64,
        /// The accessed address.
        addr: u64,
        /// The level that served the atomic under the capture config.
        level: HitLevel,
    },
    /// A warp arriving at a barrier (diagnostic; replay ignores it).
    Barrier {
        /// The core whose warp arrived.
        core: u32,
        /// The arriving warp.
        warp: u32,
        /// Arrival cycle within the launch.
        cycle: u64,
    },
}

/// A fully parsed `swmtrace-v1` file.
#[derive(Debug, Clone, PartialEq)]
pub struct MemTrace {
    /// The configuration the trace was captured under.
    pub config: HierarchyConfig,
    /// The records, in hierarchy service order.
    pub records: Vec<MemRecord>,
    /// The live run's final cumulative stats (from the footer) — the
    /// bit-identity anchor a replay under [`MemTrace::config`] must
    /// reproduce.
    pub live_stats: LevelStats,
}

impl MemTrace {
    /// Per-kind record counts `(kernels, accesses, unqueued, atomics,
    /// barriers)`.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64) {
        let (mut k, mut a, mut u, mut at, mut b) = (0, 0, 0, 0, 0);
        for r in &self.records {
            match r {
                MemRecord::KernelLaunch { .. } => k += 1,
                MemRecord::Access {
                    unqueued: false, ..
                } => a += 1,
                MemRecord::Access { unqueued: true, .. } => u += 1,
                MemRecord::Atomic { .. } => at += 1,
                MemRecord::Barrier { .. } => b += 1,
            }
        }
        (k, a, u, at, b)
    }
}

/// A typed parse error, carrying the byte offset of the offending data
/// so a truncated or corrupt trace names where it went wrong instead of
/// aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemTraceError {
    /// Byte offset into the file at which the error was detected.
    pub offset: u64,
    /// What was wrong there.
    pub what: String,
}

impl fmt::Display for MemTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt memory trace at byte offset {}: {}",
            self.offset, self.what
        )
    }
}

impl std::error::Error for MemTraceError {}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> MemTraceError {
        MemTraceError {
            offset: self.pos as u64,
            what: what.into(),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, MemTraceError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err(format!("truncated {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], MemTraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err(format!("truncated {what}")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self, what: &str) -> Result<u16, MemTraceError> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, MemTraceError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, MemTraceError> {
        let b = self.bytes(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn varint(&mut self, what: &str) -> Result<u64, MemTraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            if shift >= 63 && b > 1 {
                return Err(self.err(format!("varint overflow in {what}")));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn cache_stats(&mut self, what: &str) -> Result<CacheStats, MemTraceError> {
        Ok(CacheStats {
            accesses: self.varint(what)?,
            hits: self.varint(what)?,
            misses: self.varint(what)?,
            writebacks: self.varint(what)?,
        })
    }
}

/// Parses a `swmtrace-v1` document from `bytes`.
///
/// # Errors
///
/// Returns a [`MemTraceError`] (with the offending byte offset) on a bad
/// magic/version, an unknown record tag, a record whose core index is
/// out of the header's range, a missing footer (truncated capture), a
/// footer record-count mismatch, or trailing bytes after the footer.
pub fn parse(bytes: &[u8]) -> Result<MemTrace, MemTraceError> {
    let mut p = Parser { bytes, pos: 0 };
    let magic = p.bytes(8, "magic")?;
    if magic != MTRACE_MAGIC {
        return Err(MemTraceError {
            offset: 0,
            what: "bad magic (not a swmtrace file)".into(),
        });
    }
    let version = p.u16("version")?;
    if version != MTRACE_VERSION {
        return Err(MemTraceError {
            offset: 8,
            what: format!("unsupported version {version} (expected {MTRACE_VERSION})"),
        });
    }
    let num_cores = p.u32("config num_cores")?;
    if num_cores == 0 {
        return Err(p.err("config has zero cores"));
    }
    let cache = |p: &mut Parser<'_>, what: &str| -> Result<CacheConfig, MemTraceError> {
        Ok(CacheConfig {
            size_bytes: p.u64(what)?,
            ways: p.u32(what)?,
        })
    };
    let l1 = cache(&mut p, "config l1")?;
    let l2 = cache(&mut p, "config l2")?;
    let l3 = match p.u8("config l3 flag")? {
        0 => None,
        1 => Some(cache(&mut p, "config l3")?),
        _ => return Err(p.err("config l3 flag must be 0 or 1")),
    };
    let config = HierarchyConfig {
        num_cores: num_cores as usize,
        l1,
        l2,
        l3,
        l1_latency: p.u64("config l1_latency")?,
        l2_latency: p.u64("config l2_latency")?,
        l3_latency: p.u64("config l3_latency")?,
        dram_latency: p.u64("config dram_latency")?,
        dram_freq_ratio: p.u64("config dram_freq_ratio")?,
        l1_ports: p.u64("config l1_ports")?,
        l2_ports: p.u64("config l2_ports")?,
        dram_ports: p.u64("config dram_ports")?,
        atomic_ports: p.u64("config atomic_ports")?,
    };

    let mut records = Vec::new();
    let core_of = |p: &Parser<'_>, c: u64| -> Result<u32, MemTraceError> {
        if c >= u64::from(num_cores) {
            return Err(MemTraceError {
                offset: p.pos as u64,
                what: format!("core {c} out of range (trace has {num_cores} cores)"),
            });
        }
        Ok(c as u32)
    };
    loop {
        let at = p.pos as u64;
        let tag = p.u8("record tag").map_err(|_| MemTraceError {
            offset: at,
            what: "missing footer (truncated capture?)".into(),
        })?;
        match tag {
            TAG_KERNEL => {
                let len = p.varint("kernel name length")? as usize;
                let raw = p.bytes(len, "kernel name")?;
                let name = std::str::from_utf8(raw)
                    .map_err(|_| MemTraceError {
                        offset: at,
                        what: "kernel name is not UTF-8".into(),
                    })?
                    .to_string();
                records.push(MemRecord::KernelLaunch { name });
            }
            TAG_ACCESS => {
                let flags = p.u8("access flags")?;
                let raw_core = p.varint("access core")?;
                let core = core_of(&p, raw_core)?;
                let warp = p.varint("access warp")? as u32;
                let cycle = p.varint("access cycle")?;
                let addr = p.varint("access addr")?;
                records.push(MemRecord::Access {
                    core,
                    warp,
                    cycle,
                    addr,
                    write: flags & FLAG_WRITE != 0,
                    unqueued: flags & FLAG_UNQUEUED != 0,
                    level: level_from(flags >> 2),
                });
            }
            TAG_ATOMIC => {
                let flags = p.u8("atomic flags")?;
                let raw_core = p.varint("atomic core")?;
                let core = core_of(&p, raw_core)?;
                let warp = p.varint("atomic warp")? as u32;
                let cycle = p.varint("atomic cycle")?;
                let addr = p.varint("atomic addr")?;
                records.push(MemRecord::Atomic {
                    core,
                    warp,
                    cycle,
                    addr,
                    level: level_from(flags >> 2),
                });
            }
            TAG_BARRIER => {
                let raw_core = p.varint("barrier core")?;
                let core = core_of(&p, raw_core)?;
                let warp = p.varint("barrier warp")? as u32;
                let cycle = p.varint("barrier cycle")?;
                records.push(MemRecord::Barrier { core, warp, cycle });
            }
            TAG_FOOTER => {
                let count = p.varint("footer record count")?;
                if count != records.len() as u64 {
                    return Err(MemTraceError {
                        offset: at,
                        what: format!("footer claims {count} records, file has {}", records.len()),
                    });
                }
                let l1 = p.cache_stats("footer l1 stats")?;
                let l2 = p.cache_stats("footer l2 stats")?;
                let l3 = match p.u8("footer l3 flag")? {
                    0 => None,
                    1 => Some(p.cache_stats("footer l3 stats")?),
                    _ => return Err(p.err("footer l3 flag must be 0 or 1")),
                };
                let dram_accesses = p.varint("footer dram accesses")?;
                if p.pos != bytes.len() {
                    return Err(p.err("trailing bytes after footer"));
                }
                return Ok(MemTrace {
                    config,
                    records,
                    live_stats: LevelStats {
                        l1,
                        l2,
                        l3,
                        dram_accesses,
                    },
                });
            }
            other => {
                return Err(MemTraceError {
                    offset: at,
                    what: format!("unknown record tag {other:#04x}"),
                })
            }
        }
    }
}

/// Summary of a finished capture, carried on the session's run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderSummary {
    /// Records written (kernel launches, accesses, atomics, barriers).
    pub records: u64,
    /// Bytes written, including header and footer.
    pub bytes: u64,
    /// First I/O error hit while streaming, if any: the file on disk is
    /// truncated and must not be presented as a complete capture.
    pub sink_error: Option<io::ErrorKind>,
}

enum RecorderSink {
    /// Streams into a same-directory temporary; [`RecorderSink::commit`]
    /// renames it over `dest` at finalization so a reader (or a crash)
    /// never observes a truncated capture at the final path.
    File {
        writer: io::BufWriter<std::fs::File>,
        tmp: std::path::PathBuf,
        dest: std::path::PathBuf,
    },
    Stdout(io::Stdout),
    Memory(Vec<u8>),
}

impl RecorderSink {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            RecorderSink::File { writer, .. } => writer.write_all(buf),
            RecorderSink::Stdout(s) => s.write_all(buf),
            RecorderSink::Memory(v) => {
                v.extend_from_slice(buf);
                Ok(())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            RecorderSink::File { writer, .. } => writer.flush(),
            RecorderSink::Stdout(s) => s.flush(),
            RecorderSink::Memory(_) => Ok(()),
        }
    }

    /// Publishes a file capture: syncs the temporary and renames it over
    /// the destination. No-op for stdout/memory sinks.
    fn commit(&mut self) -> io::Result<()> {
        match self {
            RecorderSink::File { writer, tmp, dest } => {
                writer.get_ref().sync_all()?;
                std::fs::rename(tmp, dest)
            }
            RecorderSink::Stdout(_) | RecorderSink::Memory(_) => Ok(()),
        }
    }
}

/// The sibling temporary path a file capture streams into before the
/// finalize-time rename (same scheme as `write_atomic` in the core crate).
fn tmp_path(dest: &Path) -> std::path::PathBuf {
    let mut name = dest
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    dest.with_file_name(name)
}

struct Recorder {
    sink: RecorderSink,
    /// Scratch buffer: each record is encoded here, then written once.
    scratch: Vec<u8>,
    /// Warp context, set by the issuing core before its hierarchy calls
    /// (the hierarchy itself does not know which warp is accessing).
    warp: u32,
    records: u64,
    bytes: u64,
    err: Option<io::ErrorKind>,
    finalized: bool,
}

impl Recorder {
    fn emit(&mut self) {
        if self.err.is_some() || self.finalized {
            self.scratch.clear();
            return;
        }
        self.bytes += self.scratch.len() as u64;
        if let Err(e) = {
            let scratch = std::mem::take(&mut self.scratch);
            let r = self.sink.write_all(&scratch);
            self.scratch = scratch;
            r
        } {
            // Latch the first error; later writes are skipped so one
            // full disk does not spam, mirroring the trace FileSink.
            self.err = Some(e.kind());
        }
        self.scratch.clear();
    }
}

/// The cloneable capture handle, distributed to the hierarchy and every
/// core like the tracer/profiler handles. All clones share one writer;
/// with no handle attached the hooks are single `Option` checks and the
/// cycle model is untouched.
#[derive(Clone)]
pub struct MemRecorderHandle(Rc<RefCell<Recorder>>);

impl fmt::Debug for MemRecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0.borrow();
        f.debug_struct("MemRecorderHandle")
            .field("records", &r.records)
            .field("bytes", &r.bytes)
            .field("err", &r.err)
            .finish()
    }
}

impl MemRecorderHandle {
    fn with_sink(sink: RecorderSink, cfg: &HierarchyConfig) -> Self {
        let mut scratch = Vec::with_capacity(256);
        scratch.extend_from_slice(MTRACE_MAGIC);
        scratch.extend_from_slice(&MTRACE_VERSION.to_le_bytes());
        scratch.extend_from_slice(&(cfg.num_cores as u32).to_le_bytes());
        let push_cache = |out: &mut Vec<u8>, c: &CacheConfig| {
            out.extend_from_slice(&c.size_bytes.to_le_bytes());
            out.extend_from_slice(&c.ways.to_le_bytes());
        };
        push_cache(&mut scratch, &cfg.l1);
        push_cache(&mut scratch, &cfg.l2);
        match &cfg.l3 {
            Some(l3) => {
                scratch.push(1);
                push_cache(&mut scratch, l3);
            }
            None => scratch.push(0),
        }
        for v in [
            cfg.l1_latency,
            cfg.l2_latency,
            cfg.l3_latency,
            cfg.dram_latency,
            cfg.dram_freq_ratio,
            cfg.l1_ports,
            cfg.l2_ports,
            cfg.dram_ports,
            cfg.atomic_ports,
        ] {
            scratch.extend_from_slice(&v.to_le_bytes());
        }
        let mut rec = Recorder {
            sink,
            scratch,
            warp: 0,
            records: 0,
            bytes: 0,
            err: None,
            finalized: false,
        };
        rec.emit();
        MemRecorderHandle(Rc::new(RefCell::new(rec)))
    }

    /// Creates a recorder streaming to `path` (`-` for stdout) and
    /// writes the header for the capture configuration `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created. Write errors
    /// *after* creation latch into [`MemRecorderHandle::summary`]
    /// instead, so a run is never aborted mid-flight by a full disk.
    pub fn create(path: &Path, cfg: &HierarchyConfig) -> io::Result<Self> {
        let sink = if path == Path::new("-") {
            RecorderSink::Stdout(io::stdout())
        } else {
            let tmp = tmp_path(path);
            RecorderSink::File {
                writer: io::BufWriter::new(std::fs::File::create(&tmp)?),
                tmp,
                dest: path.to_path_buf(),
            }
        };
        Ok(Self::with_sink(sink, cfg))
    }

    /// Creates a recorder capturing into memory (for tests); retrieve
    /// the document with [`MemRecorderHandle::take_bytes`].
    pub fn in_memory(cfg: &HierarchyConfig) -> Self {
        Self::with_sink(RecorderSink::Memory(Vec::new()), cfg)
    }

    /// Sets the warp context for subsequent hierarchy records. Called by
    /// the issuing core once per executed instruction, because the
    /// hierarchy hooks don't know which warp is behind a request.
    pub fn set_warp(&self, warp: u32) {
        self.0.borrow_mut().warp = warp;
    }

    /// Records a kernel launch (replay resets port clocks here).
    pub fn kernel_launch(&self, name: &str) {
        let mut r = self.0.borrow_mut();
        r.scratch.push(TAG_KERNEL);
        push_varint(&mut r.scratch, name.len() as u64);
        r.scratch.extend_from_slice(name.as_bytes());
        r.records += 1;
        r.emit();
    }

    /// Records one queued line access served at `level`.
    pub fn access(&self, core: usize, addr: u64, write: bool, cycle: u64, level: HitLevel) {
        self.record_access(core, addr, write, cycle, level, false);
    }

    /// Records one EGHW unit-port lookup (no timestamp) served at
    /// `level`.
    pub fn access_unqueued(&self, core: usize, addr: u64, write: bool, level: HitLevel) {
        self.record_access(core, addr, write, 0, level, true);
    }

    fn record_access(
        &self,
        core: usize,
        addr: u64,
        write: bool,
        cycle: u64,
        level: HitLevel,
        unqueued: bool,
    ) {
        let mut r = self.0.borrow_mut();
        let mut flags = level_code(level) << 2;
        if write {
            flags |= FLAG_WRITE;
        }
        if unqueued {
            flags |= FLAG_UNQUEUED;
        }
        r.scratch.push(TAG_ACCESS);
        r.scratch.push(flags);
        push_varint(&mut r.scratch, core as u64);
        let warp = r.warp;
        push_varint(&mut r.scratch, u64::from(warp));
        push_varint(&mut r.scratch, cycle);
        push_varint(&mut r.scratch, addr);
        r.records += 1;
        r.emit();
    }

    /// Records one atomic read-modify-write served at `level`.
    pub fn atomic(&self, core: usize, addr: u64, cycle: u64, level: HitLevel) {
        let mut r = self.0.borrow_mut();
        let flags = level_code(level) << 2;
        r.scratch.push(TAG_ATOMIC);
        r.scratch.push(flags);
        push_varint(&mut r.scratch, core as u64);
        let warp = r.warp;
        push_varint(&mut r.scratch, u64::from(warp));
        push_varint(&mut r.scratch, cycle);
        push_varint(&mut r.scratch, addr);
        r.records += 1;
        r.emit();
    }

    /// Records a warp arriving at a barrier.
    pub fn barrier(&self, core: usize, warp: u32, cycle: u64) {
        let mut r = self.0.borrow_mut();
        r.scratch.push(TAG_BARRIER);
        push_varint(&mut r.scratch, core as u64);
        push_varint(&mut r.scratch, u64::from(warp));
        push_varint(&mut r.scratch, cycle);
        r.records += 1;
        r.emit();
    }

    /// Writes the footer carrying the live run's final cumulative
    /// `stats`, flushes the sink, and returns the capture summary.
    /// Records after finalization are dropped.
    pub fn finalize(&self, stats: &LevelStats) -> RecorderSummary {
        let mut r = self.0.borrow_mut();
        if !r.finalized {
            r.scratch.push(TAG_FOOTER);
            let records = r.records;
            push_varint(&mut r.scratch, records);
            let push_stats = |out: &mut Vec<u8>, s: &CacheStats| {
                push_varint(out, s.accesses);
                push_varint(out, s.hits);
                push_varint(out, s.misses);
                push_varint(out, s.writebacks);
            };
            push_stats(&mut r.scratch, &stats.l1);
            push_stats(&mut r.scratch, &stats.l2);
            match &stats.l3 {
                Some(l3) => {
                    r.scratch.push(1);
                    push_stats(&mut r.scratch, l3);
                }
                None => r.scratch.push(0),
            }
            push_varint(&mut r.scratch, stats.dram_accesses);
            r.emit();
            if r.err.is_none() {
                if let Err(e) = r.sink.flush().and_then(|()| r.sink.commit()) {
                    r.err = Some(e.kind());
                }
            }
            r.finalized = true;
        }
        RecorderSummary {
            records: r.records,
            bytes: r.bytes,
            sink_error: r.err,
        }
    }

    /// The capture summary so far (records, bytes, latched I/O error).
    pub fn summary(&self) -> RecorderSummary {
        let r = self.0.borrow();
        RecorderSummary {
            records: r.records,
            bytes: r.bytes,
            sink_error: r.err,
        }
    }

    /// Takes the captured bytes out of an in-memory recorder (`None`
    /// for file/stdout sinks).
    pub fn take_bytes(&self) -> Option<Vec<u8>> {
        let mut r = self.0.borrow_mut();
        match &mut r.sink {
            RecorderSink::Memory(v) => Some(std::mem::take(v)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_cfg() -> HierarchyConfig {
        let mut cfg = HierarchyConfig::vortex_default(2);
        cfg.l3 = Some(CacheConfig::new(64 * 1024, 16));
        cfg
    }

    fn sample_bytes() -> Vec<u8> {
        let cfg = capture_cfg();
        let rec = MemRecorderHandle::in_memory(&cfg);
        rec.kernel_launch("gather");
        rec.set_warp(3);
        rec.access(0, 0x1c0, false, 7, HitLevel::Dram);
        rec.access(1, 0x200, true, 9, HitLevel::L2);
        rec.access_unqueued(0, 0x40, false, HitLevel::L1);
        rec.atomic(1, 0x88, 12, HitLevel::Dram);
        rec.barrier(0, 3, 20);
        let stats = LevelStats {
            l1: CacheStats {
                accesses: 3,
                hits: 1,
                misses: 2,
                writebacks: 0,
            },
            l2: CacheStats {
                accesses: 2,
                hits: 1,
                misses: 1,
                writebacks: 0,
            },
            l3: Some(CacheStats::default()),
            dram_accesses: 2,
        };
        let summary = rec.finalize(&stats);
        assert_eq!(summary.records, 6);
        assert_eq!(summary.sink_error, None);
        rec.take_bytes().expect("in-memory sink")
    }

    #[test]
    fn round_trip() {
        let bytes = sample_bytes();
        let trace = parse(&bytes).expect("well-formed trace");
        assert_eq!(trace.config, capture_cfg());
        assert_eq!(trace.records.len(), 6);
        assert_eq!(
            trace.records[0],
            MemRecord::KernelLaunch {
                name: "gather".into()
            }
        );
        assert_eq!(
            trace.records[1],
            MemRecord::Access {
                core: 0,
                warp: 3,
                cycle: 7,
                addr: 0x1c0,
                write: false,
                unqueued: false,
                level: HitLevel::Dram,
            }
        );
        assert_eq!(
            trace.records[3],
            MemRecord::Access {
                core: 0,
                warp: 3,
                cycle: 0,
                addr: 0x40,
                write: false,
                unqueued: true,
                level: HitLevel::L1,
            }
        );
        assert_eq!(
            trace.records[5],
            MemRecord::Barrier {
                core: 0,
                warp: 3,
                cycle: 20
            }
        );
        assert_eq!(trace.live_stats.dram_accesses, 2);
        assert_eq!(trace.counts(), (1, 2, 1, 1, 1));
    }

    #[test]
    fn truncated_trace_is_typed_with_offset() {
        let bytes = sample_bytes();
        // Drop the footer and half a record.
        let cut = &bytes[..bytes.len() - 25];
        let e = parse(cut).expect_err("truncated");
        assert!(e.offset > 0);
        assert!(e.to_string().contains("byte offset"));
    }

    #[test]
    fn missing_footer_is_reported() {
        let cfg = capture_cfg();
        let rec = MemRecorderHandle::in_memory(&cfg);
        rec.kernel_launch("k");
        // No finalize: the capture is incomplete.
        let bytes = rec.take_bytes().unwrap();
        let e = parse(&bytes).expect_err("no footer");
        assert!(e.what.contains("footer"), "{e}");
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut bytes = sample_bytes();
        // Corrupt the first record tag after the header.
        let header_len = bytes.len() - {
            // Records + footer start right after the fixed header.
            let cfg_len = 4 + (8 + 4) * 3 + 1 + 8 * 9;
            bytes.len() - (8 + 2 + cfg_len)
        };
        bytes[header_len] = 0x7e;
        let e = parse(&bytes).expect_err("bad tag");
        assert!(e.what.contains("unknown record tag"), "{e}");
        assert_eq!(e.offset, header_len as u64);
    }

    #[test]
    fn core_out_of_range_is_typed() {
        let cfg = HierarchyConfig::vortex_default(1);
        let rec = MemRecorderHandle::in_memory(&cfg);
        rec.access(5, 0x40, false, 0, HitLevel::L1); // core 5 of 1
        rec.finalize(&LevelStats::default());
        let bytes = rec.take_bytes().unwrap();
        let e = parse(&bytes).expect_err("core out of range");
        assert!(e.what.contains("out of range"), "{e}");
    }

    #[test]
    fn footer_count_mismatch_is_typed() {
        let bytes = sample_bytes();
        // Splice out the final barrier record (tag + three 1-byte
        // varints = 4 bytes before the footer tag): footer still claims
        // 6 records.
        let footer_at = bytes
            .iter()
            .rposition(|&b| b == TAG_FOOTER)
            .expect("footer tag");
        let mut cut = Vec::new();
        cut.extend_from_slice(&bytes[..footer_at - 4]);
        cut.extend_from_slice(&bytes[footer_at..]);
        let e = parse(&cut).expect_err("count mismatch");
        assert!(
            e.what.contains("records") || e.what.contains("truncated"),
            "{e}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let e = parse(b"notatrace!!").expect_err("bad magic");
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn varint_edge_values_round_trip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut p = Parser {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(p.varint("v").unwrap(), v);
            assert_eq!(p.pos, buf.len());
        }
    }
}
