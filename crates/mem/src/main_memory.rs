//! Flat functional device memory.

use std::cell::Cell;
use std::fmt;

use sparseweaver_fault::FaultHandle;

/// A typed device-memory access fault (out-of-bounds or bad width),
/// raised by [`MainMemory::try_read`]/[`MainMemory::try_write`] so the
/// simulator can surface it as a detected crash instead of aborting the
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u64,
    /// The access width in bytes.
    pub width: u64,
    /// Whether the access was a store.
    pub write: bool,
    /// The memory size at the time of the fault (0 for a width fault).
    pub size: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.write { "write" } else { "read" };
        if matches!(self.width, 1 | 2 | 4 | 8) {
            write!(
                f,
                "device {kind} of {} bytes at {:#x} out of bounds (memory is {} bytes)",
                self.width, self.addr, self.size
            )
        } else {
            write!(
                f,
                "device {kind} at {:#x} has unsupported width {}",
                self.addr, self.width
            )
        }
    }
}

/// Byte-addressed device memory holding the *functional* state of the GPU.
///
/// All loads, stores and atomics resolve here immediately; the cache
/// hierarchy only decides how long they take. Little-endian, like RISC-V.
///
/// # Examples
///
/// ```
/// use sparseweaver_mem::MainMemory;
///
/// let mut m = MainMemory::new(1024);
/// m.write(16, 0xdead_beef, 4);
/// assert_eq!(m.read(16, 4), 0xdead_beef);
/// assert_eq!(m.read(18, 1), 0xad);
/// ```
#[derive(Clone)]
pub struct MainMemory {
    data: Vec<u8>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    fault: Option<FaultHandle>,
}

/// Equality is over the *contents* only: the traffic counters are
/// observability state, not functional state, so snapshot comparisons
/// (e.g. schedule-equivalence tests) ignore them.
impl PartialEq for MainMemory {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for MainMemory {}

impl fmt::Debug for MainMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MainMemory({} bytes)", self.data.len())
    }
}

impl MainMemory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        MainMemory {
            data: vec![0; size],
            reads: Cell::new(0),
            writes: Cell::new(0),
            fault: None,
        }
    }

    /// Attach (or detach) the fault injector. Only the *device-side*
    /// access path ([`try_read`](MainMemory::try_read)) consults it; host
    /// helpers like [`read_u32_slice`](MainMemory::read_u32_slice) stay
    /// fault-free so golden comparisons read true device state.
    pub fn set_fault_injector(&mut self, fault: Option<FaultHandle>) {
        self.fault = fault;
    }

    /// Cumulative `(reads, writes)` access counts since construction or
    /// the last [`reset_traffic`](MainMemory::reset_traffic). Slice helpers
    /// count one access per element.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Zeroes the traffic counters.
    pub fn reset_traffic(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Sets the traffic counters to previously captured values (checkpoint
    /// restore).
    pub fn restore_traffic(&self, reads: u64, writes: u64) {
        self.reads.set(reads);
        self.writes.set(writes);
    }

    /// The raw contents, for bulk checkpointing.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Replaces the contents wholesale (checkpoint restore). The memory
    /// adopts `bytes` exactly — including its length.
    pub fn restore_contents(&mut self, bytes: &[u8]) {
        self.data.clear();
        self.data.extend_from_slice(bytes);
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grows the memory to at least `size` bytes (zero-filled).
    pub fn grow_to(&mut self, size: usize) {
        if size > self.data.len() {
            self.data.resize(size, 0);
        }
    }

    /// Device-side read of `width` bytes (1, 2, 4 or 8) at `addr`,
    /// zero-extended. This is the path simulated loads take: it returns a
    /// typed [`MemFault`] instead of panicking, and an attached fault
    /// injector may flip one bit of the returned word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on out-of-bounds access or unsupported width.
    pub fn try_read(&self, addr: u64, width: u64) -> Result<u64, MemFault> {
        self.reads.set(self.reads.get() + 1);
        let a = addr as usize;
        let w = width as usize;
        if !matches!(w, 1 | 2 | 4 | 8) {
            return Err(MemFault {
                addr,
                width,
                write: false,
                size: 0,
            });
        }
        let slice = a
            .checked_add(w)
            .and_then(|end| self.data.get(a..end))
            .ok_or(MemFault {
                addr,
                width,
                write: false,
                size: self.data.len() as u64,
            })?;
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(slice);
        let value = u64::from_le_bytes(buf);
        match &self.fault {
            Some(h) => Ok(h.with(|i| i.corrupt_mem(value, w))),
            None => Ok(value),
        }
    }

    /// Device-side write of the low `width` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on out-of-bounds access or unsupported width.
    pub fn try_write(&mut self, addr: u64, value: u64, width: u64) -> Result<(), MemFault> {
        self.writes.set(self.writes.get() + 1);
        let a = addr as usize;
        let w = width as usize;
        if !matches!(w, 1 | 2 | 4 | 8) {
            return Err(MemFault {
                addr,
                width,
                write: true,
                size: 0,
            });
        }
        let size = self.data.len() as u64;
        let bytes = value.to_le_bytes();
        let slice = a
            .checked_add(w)
            .and_then(|end| self.data.get_mut(a..end))
            .ok_or(MemFault {
                addr,
                width,
                write: true,
                size,
            })?;
        slice.copy_from_slice(&bytes[..w]);
        Ok(())
    }

    /// Host-side read of `width` bytes (1, 2, 4 or 8) at `addr`,
    /// zero-extended. Never consults the fault injector.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or unsupported width — a host bug,
    /// surfaced loudly rather than silently corrupting an experiment.
    pub fn read(&self, addr: u64, width: u64) -> u64 {
        self.reads.set(self.reads.get() + 1);
        let a = addr as usize;
        let w = width as usize;
        assert!(matches!(w, 1 | 2 | 4 | 8), "unsupported access width {w}");
        // checked_add: an address near usize::MAX must report out of
        // bounds, not an arithmetic-overflow panic in debug builds.
        let slice = a
            .checked_add(w)
            .and_then(|end| self.data.get(a..end))
            .unwrap_or_else(|| panic!("host read of {w} bytes at {addr:#x} out of bounds"));
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(slice);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `width` bytes of `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or unsupported width.
    pub fn write(&mut self, addr: u64, value: u64, width: u64) {
        self.writes.set(self.writes.get() + 1);
        let a = addr as usize;
        let w = width as usize;
        assert!(matches!(w, 1 | 2 | 4 | 8), "unsupported access width {w}");
        let bytes = value.to_le_bytes();
        let slice = a
            .checked_add(w)
            .and_then(|end| self.data.get_mut(a..end))
            .unwrap_or_else(|| panic!("host write of {w} bytes at {addr:#x} out of bounds"));
        slice.copy_from_slice(&bytes[..w]);
    }

    /// Reads an `f64` stored at `addr`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr, 8))
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits(), 8);
    }

    /// Copies a `u32` slice into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(addr + 4 * i as u64, v as u64, 4);
        }
    }

    /// Reads `count` `u32` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds.
    pub fn read_u32_slice(&self, addr: u64, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| self.read(addr + 4 * i as u64, 4) as u32)
            .collect()
    }

    /// Reads `count` `f64` values starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds.
    pub fn read_f64_slice(&self, addr: u64, count: usize) -> Vec<f64> {
        (0..count)
            .map(|i| self.read_f64(addr + 8 * i as u64))
            .collect()
    }

    /// Writes an `f64` slice starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut m = MainMemory::new(64);
        m.write(0, 0x0102_0304, 4);
        assert_eq!(m.read(0, 1), 0x04);
        assert_eq!(m.read(3, 1), 0x01);
    }

    #[test]
    fn widths() {
        let mut m = MainMemory::new(64);
        m.write(8, u64::MAX, 8);
        assert_eq!(m.read(8, 8), u64::MAX);
        m.write(8, 0, 1);
        assert_eq!(m.read(8, 8), u64::MAX << 8);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = MainMemory::new(64);
        m.write_f64(16, -0.5);
        assert_eq!(m.read_f64(16), -0.5);
    }

    #[test]
    fn slices_round_trip() {
        let mut m = MainMemory::new(256);
        m.write_u32_slice(0, &[1, 2, 3]);
        assert_eq!(m.read_u32_slice(0, 3), vec![1, 2, 3]);
        m.write_f64_slice(64, &[1.5, 2.5]);
        assert_eq!(m.read_f64_slice(64, 2), vec![1.5, 2.5]);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut m = MainMemory::new(8);
        m.write(0, 42, 8);
        m.grow_to(128);
        assert_eq!(m.read(0, 8), 42);
        assert_eq!(m.len(), 128);
    }

    #[test]
    fn traffic_counts_accesses_but_not_equality() {
        let mut m = MainMemory::new(64);
        m.write(0, 7, 4);
        let _ = m.read(0, 4);
        let _ = m.read(8, 8);
        assert_eq!(m.traffic(), (2, 1));
        // Counters are invisible to equality.
        let mut other = MainMemory::new(64);
        other.write(0, 7, 4);
        assert_eq!(m, other);
        m.reset_traffic();
        assert_eq!(m.traffic(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        MainMemory::new(4).read(2, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_near_usize_max_is_oob_not_overflow() {
        // `a + w` on the old path overflowed usize (a panic with a
        // different message in debug, silent wrap in release).
        MainMemory::new(4).read(u64::MAX, 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_near_usize_max_is_oob_not_overflow() {
        MainMemory::new(4).write(u64::MAX - 2, 0, 8);
    }

    #[test]
    fn try_read_returns_typed_fault() {
        let m = MainMemory::new(4);
        let e = m.try_read(2, 4).unwrap_err();
        assert!(!e.write);
        assert_eq!(e.addr, 2);
        assert!(e.to_string().contains("out of bounds"));
        let e = m.try_read(0, 3).unwrap_err();
        assert!(e.to_string().contains("unsupported width"));
        // Address arithmetic that would overflow usize is a fault, not a panic.
        assert!(m.try_read(u64::MAX, 8).is_err());
    }

    #[test]
    fn try_write_returns_typed_fault() {
        let mut m = MainMemory::new(4);
        let e = m.try_write(2, 0, 4).unwrap_err();
        assert!(e.write);
        assert!(e.to_string().contains("out of bounds"));
        assert!(m.try_write(0, 0, 5).is_err());
        m.try_write(0, 0xaa, 1).unwrap();
        assert_eq!(m.try_read(0, 1).unwrap(), 0xaa);
    }

    #[test]
    fn fault_injector_corrupts_device_reads_only() {
        use sparseweaver_fault::{FaultHandle, FaultInjector, FaultSpec};
        let spec = FaultSpec::parse("mem=1").unwrap();
        let mut m = MainMemory::new(64);
        m.write(0, 0x55, 8);
        m.set_fault_injector(Some(FaultHandle::new(FaultInjector::new(spec, 1))));
        let device = m.try_read(0, 8).unwrap();
        assert_ne!(device, 0x55, "device read should see a flipped bit");
        // The host path reads true state.
        assert_eq!(m.read(0, 8), 0x55);
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        MainMemory::new(16).read(0, 3);
    }
}
