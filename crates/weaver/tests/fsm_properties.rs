//! Property tests for the Weaver FSM: for *any* registered workload, the
//! dense work-ID stream must cover each vertex's edges exactly once, in
//! vertex order, with OD buffers never overfilled — the invariants that
//! make SparseWeaver's sparse-to-dense conversion correct.

use proptest::prelude::*;
use sparseweaver_weaver::{SparseTable, StEntry, WeaverConfig, WeaverFsm, WeaverUnit};

/// An arbitrary registration round: per-slot optional `(vid, deg)`;
/// locations assigned CSR-style (consecutive).
fn registration() -> impl Strategy<Value = Vec<Option<(u32, u32)>>> {
    prop::collection::vec(prop::option::weighted(0.7, (0u32..64, 0u32..40)), 0..48).prop_map(
        |mut slots| {
            // Make vids strictly increasing by slot (the compiler's ordered
            // investigation guarantees this), and lay out CSR locations.
            for (next_vid, s) in slots.iter_mut().flatten().enumerate() {
                s.0 = next_vid as u32;
            }
            slots
        },
    )
}

fn load(slots: &[Option<(u32, u32)>], lanes: usize) -> (WeaverFsm, Vec<(u32, u32, u32)>) {
    let mut st = SparseTable::new(slots.len());
    let mut expected = Vec::new();
    let mut loc = 0u32;
    for (i, s) in slots.iter().enumerate() {
        if let Some((vid, deg)) = s {
            st.register(
                i,
                StEntry {
                    vid: *vid,
                    loc,
                    deg: *deg,
                },
            );
            expected.push((*vid, loc, *deg));
            loc += deg;
        }
    }
    let mut fsm = WeaverFsm::new(lanes);
    fsm.load(st);
    (fsm, expected)
}

proptest! {
    /// Every (vid, eid) pair appears exactly once, in vid order, with
    /// consecutive eids per vertex.
    #[test]
    fn emits_each_edge_exactly_once_in_order(
        slots in registration(),
        lanes in 1usize..=32,
    ) {
        let (mut fsm, expected) = load(&slots, lanes);
        let items = fsm.drain_all();
        let mut want = Vec::new();
        for (vid, loc, deg) in expected {
            for k in 0..deg {
                want.push((vid, loc + k));
            }
        }
        prop_assert_eq!(items, want);
    }

    /// Each decode fills at most `lanes` slots, and only the final
    /// pre-exhaustion batch may be partial.
    #[test]
    fn od_occupancy_invariants(slots in registration(), lanes in 1usize..=16) {
        let (mut fsm, _) = load(&slots, lanes);
        let mut batches = Vec::new();
        loop {
            let b = fsm.decode();
            if b.exhausted {
                break;
            }
            batches.push(b.filled());
            prop_assert!(*batches.last().expect("pushed") <= lanes);
        }
        for &f in batches.iter().rev().skip(1) {
            prop_assert_eq!(f, lanes, "only the last batch may be partial");
        }
    }

    /// The returned thread mask has exactly one bit per filled lane,
    /// packed from lane 0.
    #[test]
    fn mask_matches_fill(slots in registration(), lanes in 1usize..=16) {
        let (mut fsm, _) = load(&slots, lanes);
        loop {
            let b = fsm.decode();
            if b.exhausted {
                break;
            }
            let filled = b.filled() as u32;
            prop_assert_eq!(b.mask().count_ones(), filled);
            prop_assert_eq!(b.mask(), (1u64 << filled) - 1);
        }
    }

    /// Skipping a vertex up front removes exactly its edges from the
    /// stream and leaves every other vertex untouched.
    #[test]
    fn skip_removes_exactly_one_vertex(
        slots in registration(),
        lanes in 1usize..=8,
        pick in 0usize..16,
    ) {
        let (mut plain, expected) = load(&slots, lanes);
        let vids: Vec<u32> = expected.iter().map(|e| e.0).collect();
        prop_assume!(!vids.is_empty());
        let victim = vids[pick % vids.len()];
        let full = plain.drain_all();
        let (mut skipped, _) = load(&slots, lanes);
        skipped.skip(victim);
        let got = skipped.drain_all();
        let want: Vec<(u32, u32)> = full.into_iter().filter(|(v, _)| *v != victim).collect();
        prop_assert_eq!(got, want);
    }

    /// The unit wrapper (timing + DT) delivers the same functional stream
    /// as the bare FSM, regardless of which warps issue the requests.
    #[test]
    fn unit_matches_fsm_stream(
        slots in registration(),
        warp_order in prop::collection::vec(0usize..4, 1..64),
    ) {
        let lanes = 4;
        let (mut fsm, _) = load(&slots, lanes);
        let want = fsm.drain_all();

        let mut unit = WeaverUnit::new(
            WeaverConfig { st_capacity: 64, ..WeaverConfig::default() },
            4,
            lanes,
        );
        let mut loc = 0u32;
        for (i, s) in slots.iter().enumerate() {
            if let Some((vid, deg)) = s {
                let warp = i / lanes;
                let lane = i % lanes;
                unit.reg(warp, &[(lane, *vid, loc, *deg)], i as u64)
                    .expect("record fits the ST");
                loc += deg;
            }
        }
        let mut got = Vec::new();
        let mut order = warp_order.into_iter().cycle();
        let mut t = 1000;
        loop {
            let w = order.next().expect("cycled");
            let resp = unit.dec_id(w, t);
            t += 10;
            if resp.batch.exhausted {
                break;
            }
            let (eids, _) = unit.dec_loc(w, t);
            for (&vid, &eid) in resp.batch.vids.iter().zip(&eids).take(lanes) {
                if vid >= 0 {
                    got.push((vid as u32, eid as u32));
                }
            }
            prop_assert!(got.len() <= want.len());
        }
        prop_assert_eq!(got, want);
    }
}
