//! The Weaver decode FSM of Fig. 6.
//!
//! State meanings follow the figure:
//!
//! - **S0 `Init`** — waiting for the first decode request of a round.
//! - **S1 `LoadCed`** — the first ST entry is loaded into the CED buffer.
//! - **S2 `Decode`** — OD entries are filled from the CED.
//! - **S3 `FetchSt` / S4 `UpdateCed`** — a low-degree entry did not fill
//!   the OD; the next ST entry is fetched and decoded too.
//! - **S5 `UpdateDt`** — the OD is full; edge IDs are written to the DT.
//! - **S6 `Wait`** — waiting for the next decode request (a high-degree
//!   entry can refill multiple ODs from here, S5→S6→S2).
//! - **S7/S8 `Drain`/`End`** — all ST entries are scanned; subsequent
//!   requests return empty work IDs (-1).

use std::collections::HashSet;

use crate::tables::SparseTable;
#[cfg(test)]
use crate::tables::StEntry;
use crate::EMPTY_WORK_ID;

/// FSM states (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FsmState {
    /// S0: initialized, no entry loaded yet.
    Init,
    /// S1: first ST entry loaded into CED.
    LoadCed,
    /// S2: decoding CED into OD entries.
    Decode,
    /// S3: fetching the next ST entry.
    FetchSt,
    /// S4: CED updated with the fetched entry.
    UpdateCed,
    /// S5: OD complete, DT updated.
    UpdateDt,
    /// S6: waiting for the next decode request.
    Wait,
    /// S7: last entries drained.
    Drain,
    /// S8: end — only empty work IDs remain.
    End,
}

impl FsmState {
    /// The Fig. 6 state index (S0–S8), matching
    /// `sparseweaver_trace::WeaverState::from_id`.
    pub fn state_id(self) -> u8 {
        match self {
            FsmState::Init => 0,
            FsmState::LoadCed => 1,
            FsmState::Decode => 2,
            FsmState::FetchSt => 3,
            FsmState::UpdateCed => 4,
            FsmState::UpdateDt => 5,
            FsmState::Wait => 6,
            FsmState::Drain => 7,
            FsmState::End => 8,
        }
    }

    /// The state for a Fig. 6 index, the inverse of
    /// [`FsmState::state_id`]. Returns `None` for ids past S8 (a corrupt
    /// checkpoint, surfaced as a typed error by the caller).
    pub fn from_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => FsmState::Init,
            1 => FsmState::LoadCed,
            2 => FsmState::Decode,
            3 => FsmState::FetchSt,
            4 => FsmState::UpdateCed,
            5 => FsmState::UpdateDt,
            6 => FsmState::Wait,
            7 => FsmState::Drain,
            8 => FsmState::End,
            _ => return None,
        })
    }
}

/// Current Entry Data: the ST entry being decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ced {
    vid: u32,
    next_eid: u32,
    remaining: u32,
}

/// The CED buffer's checkpointable contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CedState {
    /// The vertex being decoded.
    pub vid: u32,
    /// The next edge ID to emit.
    pub next_eid: u32,
    /// Edges left to emit for this vertex.
    pub remaining: u32,
}

/// A complete snapshot of the FSM's mutable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmSnapshot {
    /// The installed ST's slots (capacity = length).
    pub st: Vec<Option<crate::tables::StEntry>>,
    /// Scan cursor into the ST.
    pub st_pos: u64,
    /// The CED buffer, if an entry is loaded.
    pub ced: Option<CedState>,
    /// Skipped vertex IDs, sorted (the live set is unordered).
    pub skip: Vec<u32>,
    /// Current state as its Fig. 6 index.
    pub state_id: u8,
    /// Transitions recorded since the last reset, as Fig. 6 indices.
    pub trace: Vec<u8>,
}

/// The result of one decode request: one OD buffer worth of work items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBatch {
    /// Base vertex ID per lane (`-1` for unfilled lanes).
    pub vids: Vec<i64>,
    /// Edge ID per lane (`-1` for unfilled lanes).
    pub eids: Vec<i64>,
    /// Number of ST slots fetched while filling this batch (each is one
    /// shared-memory table read — the Fig. 13 latency knob applies here).
    pub st_fetches: u32,
    /// Whether the scan is exhausted and the batch is entirely empty.
    pub exhausted: bool,
}

impl DecodeBatch {
    /// Number of filled lanes.
    pub fn filled(&self) -> usize {
        self.vids.iter().filter(|&&v| v != EMPTY_WORK_ID).count()
    }

    /// Active-lane mask (bit per lane), the hardware-controlled thread
    /// mask SparseWeaver returns "as a clue for thread activation".
    pub fn mask(&self) -> u64 {
        let mut m = 0u64;
        for (i, &v) in self.vids.iter().enumerate() {
            if v != EMPTY_WORK_ID {
                m |= 1 << i;
            }
        }
        m
    }
}

/// The Weaver FSM plus its ST scan state.
///
/// # Examples
///
/// The worked example of Fig. 6: ST entries `(0,2,1)`, `(2,10,2)`,
/// `(4,30,5)` with a 4-lane warp produce a first OD of
/// `vids (0,2,2,4)`, `eids (2,10,11,30)`:
///
/// ```
/// use sparseweaver_weaver::{SparseTable, StEntry, WeaverFsm};
///
/// let mut st = SparseTable::new(4);
/// st.register(0, StEntry { vid: 0, loc: 2, deg: 1 });
/// st.register(1, StEntry { vid: 2, loc: 10, deg: 2 });
/// st.register(2, StEntry { vid: 4, loc: 30, deg: 5 });
/// let mut fsm = WeaverFsm::new(4);
/// fsm.load(st);
/// let batch = fsm.decode();
/// assert_eq!(batch.vids, vec![0, 2, 2, 4]);
/// assert_eq!(batch.eids, vec![2, 10, 11, 30]);
/// ```
#[derive(Debug, Clone)]
pub struct WeaverFsm {
    st: SparseTable,
    st_pos: usize,
    ced: Option<Ced>,
    skip: HashSet<u32>,
    lanes: usize,
    state: FsmState,
    trace: Vec<FsmState>,
}

impl WeaverFsm {
    /// Creates an FSM producing `lanes`-wide OD buffers over an empty ST.
    pub fn new(lanes: usize) -> Self {
        WeaverFsm {
            st: SparseTable::new(0),
            st_pos: 0,
            ced: None,
            skip: HashSet::new(),
            lanes,
            state: FsmState::Init,
            trace: Vec::new(),
        }
    }

    /// Installs a freshly registered ST and re-initializes the FSM
    /// ("the Weaver FSM is initialized to init status when a new
    /// registration request is received").
    pub fn load(&mut self, st: SparseTable) {
        self.st = st;
        self.reset();
    }

    /// Re-initializes the scan over the current ST.
    pub fn reset(&mut self) {
        self.st_pos = 0;
        self.ced = None;
        self.skip.clear();
        self.state = FsmState::Init;
        self.trace.clear();
    }

    /// Access to the current ST (for registration in place).
    pub fn st_mut(&mut self) -> &mut SparseTable {
        &mut self.st
    }

    /// Current FSM state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// State transitions recorded since the last reset (testing/tracing).
    pub fn trace(&self) -> &[FsmState] {
        &self.trace
    }

    /// Whether every ST entry has been fully decoded.
    pub fn is_end(&self) -> bool {
        self.state == FsmState::End
    }

    /// Registers a skip signal: no further work items are generated for
    /// `vid`, including the remainder of a partially decoded supernode
    /// (`WEAVER_SKIP`, used by early-exit algorithms like BFS).
    pub fn skip(&mut self, vid: u32) {
        self.skip.insert(vid);
        if let Some(ced) = &mut self.ced {
            if ced.vid == vid {
                ced.remaining = 0;
            }
        }
    }

    fn goto(&mut self, s: FsmState) {
        self.state = s;
        self.trace.push(s);
    }

    /// Fetches the next ST entry into the CED. Returns the number of table
    /// reads performed (empty slots still cost a scan step in hardware
    /// terms but are coalesced; we charge one read per slot examined).
    fn fetch_next(&mut self) -> u32 {
        let mut fetches = 0;
        while self.st_pos < self.st.capacity() {
            fetches += 1;
            let slot = self.st.get(self.st_pos);
            self.st_pos += 1;
            if let Some(e) = slot {
                if e.deg == 0 || self.skip.contains(&e.vid) {
                    continue;
                }
                self.ced = Some(Ced {
                    vid: e.vid,
                    next_eid: e.loc,
                    remaining: e.deg,
                });
                return fetches;
            }
        }
        self.ced = None;
        fetches
    }

    /// Services one decode request: fills (up to) one OD buffer.
    ///
    /// Follows Fig. 6: S2 decodes the CED; while the OD has room and the
    /// CED is exhausted, S3/S4 fetch and install the next ST entry; a full
    /// OD goes through S5 (DT update, performed by the caller with the
    /// returned edge IDs) to S6; an exhausted scan drains through S7/S8.
    pub fn decode(&mut self) -> DecodeBatch {
        if self.state == FsmState::Init {
            self.goto(FsmState::LoadCed); // S0 -> S1
        }
        let mut vids = vec![EMPTY_WORK_ID; self.lanes];
        let mut eids = vec![EMPTY_WORK_ID; self.lanes];
        let mut filled = 0usize;
        let mut st_fetches = 0u32;

        if self.state == FsmState::End {
            return DecodeBatch {
                vids,
                eids,
                st_fetches,
                exhausted: true,
            };
        }

        loop {
            // Ensure the CED holds a decodable entry.
            let needs_fetch = match &self.ced {
                Some(c) => c.remaining == 0,
                None => true,
            };
            if needs_fetch {
                self.goto(FsmState::FetchSt); // S3
                st_fetches += self.fetch_next();
                if self.ced.is_none() {
                    // Scan exhausted.
                    if filled > 0 {
                        self.goto(FsmState::Drain); // S7
                        self.goto(FsmState::UpdateDt); // deliver partial OD
                        self.goto(FsmState::Wait);
                    } else {
                        self.goto(FsmState::Drain);
                        self.goto(FsmState::End); // S8
                    }
                    break;
                }
                self.goto(FsmState::UpdateCed); // S4
            }
            self.goto(FsmState::Decode); // S2
            let ced = self.ced.as_mut().expect("CED present in decode");
            let take = (ced.remaining as usize).min(self.lanes - filled);
            for _ in 0..take {
                vids[filled] = ced.vid as i64;
                eids[filled] = ced.next_eid as i64;
                ced.next_eid += 1;
                ced.remaining -= 1;
                filled += 1;
            }
            if filled == self.lanes {
                self.goto(FsmState::UpdateDt); // S5
                self.goto(FsmState::Wait); // S6
                break;
            }
        }
        DecodeBatch {
            vids,
            eids,
            st_fetches,
            exhausted: filled == 0,
        }
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> FsmSnapshot {
        let mut skip: Vec<u32> = self.skip.iter().copied().collect();
        skip.sort_unstable();
        FsmSnapshot {
            st: self.st.slots().to_vec(),
            st_pos: self.st_pos as u64,
            ced: self.ced.map(|c| CedState {
                vid: c.vid,
                next_eid: c.next_eid,
                remaining: c.remaining,
            }),
            skip,
            state_id: self.state.state_id(),
            trace: self.trace.iter().map(|s| s.state_id()).collect(),
        }
    }

    /// Restores state captured with [`WeaverFsm::save_state`]. The lane
    /// width is construction state and is not part of the snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if a state id in the snapshot
    /// is not a valid Fig. 6 index.
    pub fn restore_state(&mut self, snap: &FsmSnapshot) -> Result<(), String> {
        let state = FsmState::from_id(snap.state_id)
            .ok_or_else(|| format!("invalid FSM state id {}", snap.state_id))?;
        let trace = snap
            .trace
            .iter()
            .map(|&id| FsmState::from_id(id).ok_or_else(|| format!("invalid FSM state id {id}")))
            .collect::<Result<Vec<_>, _>>()?;
        self.st = SparseTable::from_slots(snap.st.clone());
        self.st_pos = snap.st_pos as usize;
        self.ced = snap.ced.map(|c| Ced {
            vid: c.vid,
            next_eid: c.next_eid,
            remaining: c.remaining,
        });
        self.skip = snap.skip.iter().copied().collect();
        self.state = state;
        self.trace = trace;
        Ok(())
    }

    /// Decodes everything remaining, returning all `(vid, eid)` work items
    /// in order (a host-side convenience for tests and analytic models).
    pub fn drain_all(&mut self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        loop {
            let b = self.decode();
            if b.exhausted {
                break;
            }
            for i in 0..self.lanes {
                if b.vids[i] != EMPTY_WORK_ID {
                    out.push((b.vids[i] as u32, b.eids[i] as u32));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st_of(entries: &[(u32, u32, u32)]) -> SparseTable {
        let mut st = SparseTable::new(entries.len());
        for (i, &(vid, loc, deg)) in entries.iter().enumerate() {
            st.register(i, StEntry { vid, loc, deg });
        }
        st
    }

    #[test]
    fn figure6_worked_example() {
        // The example the paper walks through in Section III-B.
        let mut fsm = WeaverFsm::new(4);
        fsm.load(st_of(&[(0, 2, 1), (2, 10, 2), (4, 30, 5)]));
        let b1 = fsm.decode();
        assert_eq!(b1.vids, vec![0, 2, 2, 4]);
        assert_eq!(b1.eids, vec![2, 10, 11, 30]);
        assert_eq!(b1.mask(), 0b1111);
        // The supernode (vid 4, deg 5) spills into the next OD.
        let b2 = fsm.decode();
        assert_eq!(b2.vids, vec![4, 4, 4, 4]);
        assert_eq!(b2.eids, vec![31, 32, 33, 34]);
        // Scan is now exhausted.
        let b3 = fsm.decode();
        assert!(b3.exhausted);
        assert_eq!(b3.vids, vec![-1, -1, -1, -1]);
        assert!(fsm.is_end());
    }

    #[test]
    fn every_edge_emitted_exactly_once_in_vid_order() {
        let mut fsm = WeaverFsm::new(4);
        fsm.load(st_of(&[(1, 0, 3), (3, 3, 0), (5, 3, 4), (9, 7, 1)]));
        let items = fsm.drain_all();
        let expect: Vec<(u32, u32)> = (0..3)
            .map(|i| (1, i))
            .chain((3..7).map(|i| (5, i)))
            .chain(std::iter::once((9, 7u32)))
            .collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn zero_degree_entries_are_filtered() {
        // Filtered vertices register degree 0 and must produce no work.
        let mut fsm = WeaverFsm::new(2);
        fsm.load(st_of(&[(0, 0, 0), (1, 0, 0), (2, 5, 1)]));
        assert_eq!(fsm.drain_all(), vec![(2, 5)]);
    }

    #[test]
    fn empty_st_is_immediately_end() {
        let mut fsm = WeaverFsm::new(4);
        fsm.load(SparseTable::new(8));
        let b = fsm.decode();
        assert!(b.exhausted);
        assert!(fsm.is_end());
    }

    #[test]
    fn partial_final_od_is_delivered() {
        let mut fsm = WeaverFsm::new(4);
        fsm.load(st_of(&[(0, 0, 6)]));
        let b1 = fsm.decode();
        assert_eq!(b1.filled(), 4);
        let b2 = fsm.decode();
        assert_eq!(b2.filled(), 2);
        assert_eq!(b2.mask(), 0b0011);
        assert_eq!(b2.vids, vec![0, 0, -1, -1]);
        assert!(!b2.exhausted);
        assert!(fsm.decode().exhausted);
    }

    #[test]
    fn skip_drops_remaining_supernode_work() {
        let mut fsm = WeaverFsm::new(2);
        fsm.load(st_of(&[(7, 0, 100), (8, 100, 1)]));
        let b1 = fsm.decode();
        assert_eq!(b1.vids, vec![7, 7]);
        // Early exit: BFS found what it needed for vertex 7.
        fsm.skip(7);
        let b2 = fsm.decode();
        assert_eq!(b2.vids, vec![8, -1]);
    }

    #[test]
    fn skip_before_fetch_drops_entry_entirely() {
        let mut fsm = WeaverFsm::new(2);
        fsm.load(st_of(&[(1, 0, 2), (2, 2, 2)]));
        fsm.skip(2);
        assert_eq!(fsm.drain_all(), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn trace_records_figure6_path() {
        let mut fsm = WeaverFsm::new(2);
        fsm.load(st_of(&[(0, 0, 2)]));
        let _ = fsm.decode();
        let t = fsm.trace();
        // S0->S1, fetch (S3/S4), decode (S2), full OD: S5 -> S6.
        assert_eq!(t[0], FsmState::LoadCed);
        assert!(t.contains(&FsmState::FetchSt));
        assert!(t.contains(&FsmState::UpdateCed));
        assert!(t.contains(&FsmState::Decode));
        assert_eq!(t[t.len() - 2], FsmState::UpdateDt);
        assert_eq!(t[t.len() - 1], FsmState::Wait);
    }

    #[test]
    fn st_fetch_count_charges_slot_scans() {
        let mut fsm = WeaverFsm::new(4);
        let mut st = SparseTable::new(6);
        st.register(
            1,
            StEntry {
                vid: 1,
                loc: 0,
                deg: 1,
            },
        );
        st.register(
            4,
            StEntry {
                vid: 4,
                loc: 1,
                deg: 1,
            },
        );
        fsm.load(st);
        let b = fsm.decode();
        // Slots 0..6 all examined: 6 fetches, 2 entries, partial OD.
        assert_eq!(b.st_fetches, 6);
        assert_eq!(b.filled(), 2);
    }

    #[test]
    fn reload_reinitializes() {
        let mut fsm = WeaverFsm::new(2);
        fsm.load(st_of(&[(0, 0, 1)]));
        let _ = fsm.drain_all();
        assert!(fsm.is_end());
        fsm.load(st_of(&[(5, 2, 1)]));
        assert_eq!(fsm.state(), FsmState::Init);
        assert_eq!(fsm.drain_all(), vec![(5, 2)]);
    }
}
