//! The Sparse Workload Information Table (ST) and Dense Work ID Table (DT).

use crate::EMPTY_WORK_ID;

/// One registration record: the shared data each thread contributes in the
/// registration stage (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StEntry {
    /// Base vertex ID.
    pub vid: u32,
    /// Start location of the vertex's neighbor range in the edge array.
    pub loc: u32,
    /// Number of neighbors (degree). Filtered vertices register degree 0.
    pub deg: u32,
}

/// The Sparse Workload Information Table.
///
/// A fixed-capacity table indexed by `warp_id * threads_per_warp +
/// thread_id`, which — combined with the compiler investigating vertices in
/// software-thread-ID order — makes an index-order scan a vertex-ID-order
/// scan (the "out-of-order registration, ordered scan" design decision).
///
/// # Examples
///
/// ```
/// use sparseweaver_weaver::{SparseTable, StEntry};
///
/// let mut st = SparseTable::new(4);
/// st.register(2, StEntry { vid: 7, loc: 10, deg: 3 });
/// assert_eq!(st.get(2).unwrap().vid, 7);
/// assert!(st.get(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SparseTable {
    entries: Vec<Option<StEntry>>,
}

impl SparseTable {
    /// Creates an empty table with `capacity` slots (512 per core in the
    /// paper's configuration).
    pub fn new(capacity: usize) -> Self {
        SparseTable {
            entries: vec![None; capacity],
        }
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Stores `entry` at `index` (the registering thread's hardware slot).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — the compiler's chunked
    /// registration loop guarantees it never is.
    pub fn register(&mut self, index: usize, entry: StEntry) {
        self.entries[index] = Some(entry);
    }

    /// The entry at `index`, if that slot was registered this round.
    pub fn get(&self, index: usize) -> Option<StEntry> {
        self.entries.get(index).copied().flatten()
    }

    /// Clears all slots (new registration round).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Iterates over `(index, entry)` pairs of occupied slots in index
    /// (= vertex) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, StEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
    }

    /// All slots in index order (checkpointing). Length is the capacity.
    pub fn slots(&self) -> &[Option<StEntry>] {
        &self.entries
    }

    /// Rebuilds a table from slots captured with [`SparseTable::slots`].
    /// The capacity is the slot count.
    pub fn from_slots(slots: Vec<Option<StEntry>>) -> Self {
        SparseTable { entries: slots }
    }
}

/// The Dense Work ID Table: one row of edge IDs per warp.
///
/// `WEAVER_DEC_ID` writes a warp's row as a side effect of decoding;
/// `WEAVER_DEC_LOC` reads it back (Fig. 7).
#[derive(Debug, Clone)]
pub struct DenseTable {
    rows: Vec<Vec<i64>>,
}

impl DenseTable {
    /// Creates a table with `warps` rows of `lanes` entries, all empty.
    pub fn new(warps: usize, lanes: usize) -> Self {
        DenseTable {
            rows: vec![vec![EMPTY_WORK_ID; lanes]; warps],
        }
    }

    /// Number of warp rows.
    pub fn warps(&self) -> usize {
        self.rows.len()
    }

    /// Stores the generated edge IDs for `warp`.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range or `eids` is wider than the row.
    pub fn store_row(&mut self, warp: usize, eids: &[i64]) {
        let row = &mut self.rows[warp];
        assert!(eids.len() <= row.len(), "OD wider than DT row");
        row[..eids.len()].copy_from_slice(eids);
        for e in &mut row[eids.len()..] {
            *e = EMPTY_WORK_ID;
        }
    }

    /// Reads `warp`'s row.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn load_row(&self, warp: usize) -> &[i64] {
        &self.rows[warp]
    }

    /// All rows in warp order (checkpointing).
    pub fn rows(&self) -> &[Vec<i64>] {
        &self.rows
    }

    /// Restores rows captured with [`DenseTable::rows`] into a table of
    /// the same shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's shape
    /// differs from this table's.
    pub fn restore_rows(&mut self, rows: &[Vec<i64>]) -> Result<(), String> {
        if rows.len() != self.rows.len()
            || rows.iter().zip(&self.rows).any(|(a, b)| a.len() != b.len())
        {
            return Err(format!(
                "dense-table snapshot shape {}x{} does not match {}x{}",
                rows.len(),
                rows.first().map_or(0, Vec::len),
                self.rows.len(),
                self.rows.first().map_or(0, Vec::len),
            ));
        }
        for (row, snap) in self.rows.iter_mut().zip(rows) {
            row.copy_from_slice(snap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_register_and_clear() {
        let mut st = SparseTable::new(8);
        st.register(
            3,
            StEntry {
                vid: 1,
                loc: 2,
                deg: 3,
            },
        );
        st.register(
            5,
            StEntry {
                vid: 9,
                loc: 0,
                deg: 0,
            },
        );
        assert_eq!(st.occupied(), 2);
        let collected: Vec<_> = st.iter().map(|(i, e)| (i, e.vid)).collect();
        assert_eq!(collected, vec![(3, 1), (5, 9)]);
        st.clear();
        assert_eq!(st.occupied(), 0);
    }

    #[test]
    fn st_iter_is_index_ordered() {
        let mut st = SparseTable::new(16);
        // Registered out of order (out-of-order warp execution)...
        st.register(
            10,
            StEntry {
                vid: 10,
                loc: 0,
                deg: 1,
            },
        );
        st.register(
            2,
            StEntry {
                vid: 2,
                loc: 0,
                deg: 1,
            },
        );
        st.register(
            7,
            StEntry {
                vid: 7,
                loc: 0,
                deg: 1,
            },
        );
        // ...scanned in order.
        let vids: Vec<_> = st.iter().map(|(_, e)| e.vid).collect();
        assert_eq!(vids, vec![2, 7, 10]);
    }

    #[test]
    #[should_panic]
    fn st_out_of_range_register_panics() {
        let mut st = SparseTable::new(2);
        st.register(
            5,
            StEntry {
                vid: 0,
                loc: 0,
                deg: 0,
            },
        );
    }

    #[test]
    fn dt_rows_default_empty() {
        let dt = DenseTable::new(2, 4);
        assert_eq!(dt.load_row(1), &[EMPTY_WORK_ID; 4]);
    }

    #[test]
    fn dt_store_pads_with_empty() {
        let mut dt = DenseTable::new(1, 4);
        dt.store_row(0, &[5, 6]);
        assert_eq!(dt.load_row(0), &[5, 6, EMPTY_WORK_ID, EMPTY_WORK_ID]);
        dt.store_row(0, &[9]);
        assert_eq!(
            dt.load_row(0),
            &[9, EMPTY_WORK_ID, EMPTY_WORK_ID, EMPTY_WORK_ID]
        );
    }

    #[test]
    #[should_panic(expected = "OD wider")]
    fn dt_overwide_row_panics() {
        let mut dt = DenseTable::new(1, 2);
        dt.store_row(0, &[1, 2, 3]);
    }
}
