//! The per-core Weaver unit: FSM + tables + timing.
//!
//! Weaver extends the Vortex Special Function Unit (Section IV-C). The
//! timing model captures the properties the paper evaluates:
//!
//! - ST/DT accesses go to shared memory, so each table read/write costs the
//!   configurable `table_latency` (the Fig. 13 sweep knob);
//! - the unit is pipelined: back-to-back decode requests from different
//!   warps overlap their table-read latency, which is why Fig. 13 is flat —
//!   *occupancy* is one slot per table access, but *latency* is hidden by
//!   warp-level parallelism;
//! - registration writes one ST entry per active lane, pipelined one per
//!   cycle.

use std::fmt;

use sparseweaver_fault::{FaultHandle, WeaverFault};
use sparseweaver_trace::{EventData, TableOp, TraceHandle, WeaverState};

use crate::fsm::{DecodeBatch, FsmSnapshot, WeaverFsm};
use crate::tables::{DenseTable, SparseTable, StEntry};

/// A registration addressed a Sparse Table slot past the configured
/// capacity — the compiler's chunked registration loop is supposed to
/// prevent this, so it surfaces as a typed error (detected crash) rather
/// than a process abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StOverflow {
    /// The slot index the registration addressed.
    pub index: usize,
    /// The configured ST capacity.
    pub capacity: usize,
}

impl fmt::Display for StOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weaver registration addressed ST slot {} but capacity is {}",
            self.index, self.capacity
        )
    }
}

/// Configuration of the Weaver unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WeaverConfig {
    /// ST capacity per core (512 in the paper's evaluation).
    pub st_capacity: usize,
    /// Shared-memory read/write latency for table accesses (Fig. 13 sweeps
    /// 10–160; Vortex shared memory is a few cycles by default).
    pub table_latency: u64,
    /// Fixed pipeline overhead per unit operation.
    pub base_latency: u64,
    /// Whether `WEAVER_DEC_ID` also installs the hardware thread mask
    /// (the backend compiler's thread-activation optimization).
    pub auto_mask: bool,
}

impl Default for WeaverConfig {
    fn default() -> Self {
        WeaverConfig {
            st_capacity: 512,
            table_latency: 4,
            base_latency: 2,
            auto_mask: true,
        }
    }
}

/// A complete snapshot of one Weaver unit's mutable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaverUnitState {
    /// The decode FSM (including the installed ST).
    pub fsm: FsmSnapshot,
    /// The DT rows.
    pub dt: Vec<Vec<i64>>,
    /// Pending registration slots for the current round.
    pub staging: Vec<Option<StEntry>>,
    /// Whether a registration round is open.
    pub in_registration: bool,
    /// The cycle the unit's pipeline frees up.
    pub busy_until: u64,
    /// Total ST fetches.
    pub st_fetches: u64,
    /// Total decode requests served.
    pub dec_requests: u64,
    /// Total registered entries.
    pub registrations: u64,
}

/// A decode response delivered to the requesting warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecResponse {
    /// The OD contents: per-lane `(vid)`; `-1` means no work.
    pub batch: DecodeBatch,
    /// GPU cycle at which the response is available.
    pub ready_at: u64,
    /// The response was lost to an injected protocol fault (`ready_at` is
    /// `u64::MAX`); the requesting warp will never observe it.
    pub dropped: bool,
}

/// The per-core Weaver functional unit.
///
/// # Examples
///
/// ```
/// use sparseweaver_weaver::{WeaverConfig, WeaverUnit};
///
/// let mut w = WeaverUnit::new(WeaverConfig::default(), 8, 4);
/// w.reg(0, &[(0, 3, 0, 2), (1, 5, 2, 1)], 0).unwrap();
/// let resp = w.dec_id(1, 10);
/// assert_eq!(resp.batch.vids, vec![3, 3, 5, -1]);
/// ```
#[derive(Debug, Clone)]
pub struct WeaverUnit {
    cfg: WeaverConfig,
    lanes: usize,
    fsm: WeaverFsm,
    dt: DenseTable,
    /// Pending registration slots for the current round.
    staging: SparseTable,
    in_registration: bool,
    busy_until: u64,
    /// Total ST fetches (for reports).
    st_fetches: u64,
    /// Total decode requests served.
    dec_requests: u64,
    /// Total registered entries.
    registrations: u64,
    tracer: Option<TraceHandle>,
    fault: Option<FaultHandle>,
    /// Core index stamped on emitted events.
    core: u32,
}

impl WeaverUnit {
    /// Creates a unit for a core with `warps` warps of `lanes` lanes.
    pub fn new(cfg: WeaverConfig, warps: usize, lanes: usize) -> Self {
        WeaverUnit {
            lanes,
            fsm: WeaverFsm::new(lanes),
            dt: DenseTable::new(warps, lanes),
            staging: SparseTable::new(cfg.st_capacity),
            in_registration: false,
            busy_until: 0,
            st_fetches: 0,
            dec_requests: 0,
            registrations: 0,
            tracer: None,
            fault: None,
            core: 0,
            cfg,
        }
    }

    /// Attaches (or detaches) the fault injector. With a handle attached,
    /// each decode response consults the injector's Weaver protocol sites
    /// (drops and delays per Table II).
    pub fn set_fault_injector(&mut self, fault: Option<FaultHandle>) {
        self.fault = fault;
    }

    /// The FSM's current state id (0–8), for hang diagnostics.
    pub fn fsm_state_id(&self) -> u8 {
        self.fsm.state().state_id()
    }

    /// Attaches (or detaches) a tracer; `core` is stamped on every event
    /// this unit emits. With a handle attached, registrations and decodes
    /// emit [`EventData::WeaverTable`] operations and each decode emits the
    /// FSM transitions it took as [`EventData::WeaverTransition`]s.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>, core: u32) {
        self.tracer = tracer;
        self.core = core;
    }

    /// The unit's configuration.
    pub fn config(&self) -> WeaverConfig {
        self.cfg
    }

    /// `(st_fetches, dec_requests, registrations)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.st_fetches, self.dec_requests, self.registrations)
    }

    /// Services a `WEAVER_REG` from `warp`: one `(lane, vid, loc, deg)`
    /// record per active lane. Returns the completion cycle.
    ///
    /// The first registration after a distribution round re-initializes
    /// the FSM and clears the ST ("initialized to init status when a new
    /// registration request is received").
    ///
    /// # Errors
    ///
    /// Returns [`StOverflow`] if a computed slot exceeds the ST capacity —
    /// the compiler's chunked registration loop must prevent this, so a
    /// violation (e.g. a corrupted warp index) is a detected crash.
    pub fn reg(
        &mut self,
        warp: usize,
        records: &[(usize, u32, u32, u32)],
        now: u64,
    ) -> Result<u64, StOverflow> {
        if !self.in_registration {
            self.staging.clear();
            self.in_registration = true;
        }
        for &(lane, vid, loc, deg) in records {
            let index = warp * self.lanes + lane;
            if index >= self.cfg.st_capacity {
                return Err(StOverflow {
                    index,
                    capacity: self.cfg.st_capacity,
                });
            }
            self.staging.register(index, StEntry { vid, loc, deg });
            self.registrations += 1;
        }
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                self.core,
                EventData::WeaverTable {
                    op: TableOp::StWrite,
                    count: records.len() as u32,
                },
            );
        }
        // Pipelined table writes: one per cycle of occupancy.
        let start = now.max(self.busy_until);
        let occupancy = self.cfg.base_latency + records.len() as u64;
        self.busy_until = start + occupancy;
        Ok(start + occupancy + self.cfg.table_latency)
    }

    /// Services a `WEAVER_DEC_ID` from `warp`: runs the FSM to fill one OD
    /// buffer, stores the edge IDs in the warp's DT row, and returns the
    /// per-lane vertex IDs plus the thread mask.
    pub fn dec_id(&mut self, warp: usize, now: u64) -> DecResponse {
        if self.in_registration {
            // Synchronization point passed: install the registered ST.
            let st = std::mem::replace(&mut self.staging, SparseTable::new(self.cfg.st_capacity));
            self.fsm.load(st);
            self.in_registration = false;
        }
        self.dec_requests += 1;
        // Capture the FSM position before decoding so the transitions this
        // request causes can be replayed into the trace.
        let pre = self
            .tracer
            .as_ref()
            .map(|_| (self.fsm.state(), self.fsm.trace().len()));
        let batch = self.fsm.decode();
        self.dt.store_row(warp, &batch.eids);
        self.st_fetches += batch.st_fetches as u64;
        if let Some((mut from, taken)) = pre {
            let tr = self.tracer.as_ref().expect("tracer present");
            for &to in &self.fsm.trace()[taken..] {
                tr.emit(
                    now,
                    self.core,
                    EventData::WeaverTransition {
                        from: WeaverState::from_id(from.state_id()),
                        to: WeaverState::from_id(to.state_id()),
                    },
                );
                from = to;
            }
            if batch.st_fetches > 0 {
                tr.emit(
                    now,
                    self.core,
                    EventData::WeaverTable {
                        op: TableOp::StFetch,
                        count: batch.st_fetches,
                    },
                );
            }
            let filled = batch.filled() as u32;
            if filled > 0 {
                tr.emit(
                    now,
                    self.core,
                    EventData::WeaverTable {
                        op: TableOp::DtWrite,
                        count: filled,
                    },
                );
            }
        }
        // Occupancy: the S2 decode state "fills every entry of OD
        // simultaneously" (Fig. 6), so a request occupies the unit for one
        // cycle plus one pipelined table read per ST slot fetched. The
        // response latency additionally pays the unit's fixed depth and
        // one table read, both overlapped across requests.
        let start = now.max(self.busy_until);
        let occupancy = 1 + batch.st_fetches as u64;
        self.busy_until = start + occupancy;
        let mut ready_at = start + occupancy + self.cfg.base_latency + self.cfg.table_latency;
        // Injected Table-II protocol faults: a dropped response never
        // arrives (the requesting warp's scoreboard entry stays pending
        // forever); a delayed one arrives late.
        let mut dropped = false;
        if let Some(h) = &self.fault {
            match h.with(|i| i.weaver_response()) {
                WeaverFault::None => {}
                WeaverFault::Drop => {
                    ready_at = u64::MAX;
                    dropped = true;
                }
                WeaverFault::Delay(d) => ready_at = ready_at.saturating_add(d),
            }
        }
        DecResponse {
            batch,
            ready_at,
            dropped,
        }
    }

    /// Services a `WEAVER_DEC_LOC` from `warp`: reads the warp's DT row.
    /// Returns `(eids, ready_at)`.
    pub fn dec_loc(&mut self, warp: usize, now: u64) -> (Vec<i64>, u64) {
        // A DT row read is one (wide) shared-memory access; it does not
        // occupy the FSM.
        let eids = self.dt.load_row(warp).to_vec();
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                self.core,
                EventData::WeaverTable {
                    op: TableOp::DtRead,
                    count: eids.len() as u32,
                },
            );
        }
        (eids, now + self.cfg.base_latency + self.cfg.table_latency)
    }

    /// Services `WEAVER_SKIP` signals. Returns the completion cycle.
    pub fn skip(&mut self, vids: &[u32], now: u64) -> u64 {
        for &v in vids {
            self.fsm.skip(v);
        }
        now + self.cfg.base_latency
    }

    /// Whether the distribution scan has ended.
    pub fn is_end(&self) -> bool {
        self.fsm.is_end()
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> WeaverUnitState {
        WeaverUnitState {
            fsm: self.fsm.save_state(),
            dt: self.dt.rows().to_vec(),
            staging: self.staging.slots().to_vec(),
            in_registration: self.in_registration,
            busy_until: self.busy_until,
            st_fetches: self.st_fetches,
            dec_requests: self.dec_requests,
            registrations: self.registrations,
        }
    }

    /// Restores state captured with [`WeaverUnit::save_state`] into a unit
    /// of the same shape (warps, lanes, ST capacity).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's shape does
    /// not match this unit's configuration.
    pub fn restore_state(&mut self, state: &WeaverUnitState) -> Result<(), String> {
        if state.staging.len() != self.cfg.st_capacity {
            return Err(format!(
                "weaver snapshot has ST capacity {}, configuration needs {}",
                state.staging.len(),
                self.cfg.st_capacity
            ));
        }
        self.dt
            .restore_rows(&state.dt)
            .map_err(|e| format!("dt: {e}"))?;
        self.fsm
            .restore_state(&state.fsm)
            .map_err(|e| format!("fsm: {e}"))?;
        self.staging = SparseTable::from_slots(state.staging.clone());
        self.in_registration = state.in_registration;
        self.busy_until = state.busy_until;
        self.st_fetches = state.st_fetches;
        self.dec_requests = state.dec_requests;
        self.registrations = state.registrations;
        Ok(())
    }

    /// Resets the unit between kernels.
    pub fn reset(&mut self) {
        self.fsm = WeaverFsm::new(self.lanes);
        self.staging.clear();
        self.in_registration = false;
        self.busy_until = 0;
        self.st_fetches = 0;
        self.dec_requests = 0;
        self.registrations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> WeaverUnit {
        WeaverUnit::new(
            WeaverConfig {
                st_capacity: 16,
                table_latency: 4,
                base_latency: 2,
                auto_mask: true,
            },
            4,
            4,
        )
    }

    #[test]
    fn register_then_decode() {
        let mut w = unit();
        // Warp 0 lanes 0..2 register vertices 0 and 2.
        w.reg(0, &[(0, 0, 2, 1), (1, 2, 10, 2)], 0).unwrap();
        // Warp 1 lane 0 registers vertex 4 (out-of-order warps).
        w.reg(1, &[(0, 4, 30, 5)], 3).unwrap();
        let r = w.dec_id(2, 20);
        assert_eq!(r.batch.vids, vec![0, 2, 2, 4]);
        assert_eq!(r.batch.eids, vec![2, 10, 11, 30]);
        // DEC_LOC reads the same row back.
        let (eids, _) = w.dec_loc(2, 25);
        assert_eq!(eids, vec![2, 10, 11, 30]);
    }

    #[test]
    fn st_indexed_by_warp_and_thread() {
        let mut w = unit();
        // Registrations arrive warp 1 first, then warp 0; the scan must
        // still be in (warp, thread) index order.
        w.reg(1, &[(0, 9, 0, 1)], 0).unwrap();
        w.reg(0, &[(0, 3, 1, 1)], 1).unwrap();
        let r = w.dec_id(0, 10);
        assert_eq!(r.batch.vids[0], 3);
        assert_eq!(r.batch.vids[1], 9);
    }

    #[test]
    fn new_registration_restarts_round() {
        let mut w = unit();
        w.reg(0, &[(0, 1, 0, 1)], 0).unwrap();
        let r = w.dec_id(0, 5);
        assert_eq!(r.batch.vids[0], 1);
        assert!(w.dec_id(0, 6).batch.exhausted);
        // Next round.
        w.reg(0, &[(0, 7, 3, 1)], 10).unwrap();
        let r = w.dec_id(0, 15);
        assert_eq!(r.batch.vids[0], 7);
        assert_eq!(r.batch.eids[0], 3);
    }

    #[test]
    fn occupancy_serializes_but_latency_pipelines() {
        let mut w = unit();
        w.reg(0, &[(0, 0, 0, 8), (1, 1, 8, 8)], 0).unwrap();
        let t0 = 100;
        let a = w.dec_id(0, t0);
        let b = w.dec_id(1, t0);
        // Second request starts after the first's occupancy, not after its
        // full latency (pipelined unit).
        assert!(b.ready_at > a.ready_at);
        assert!(b.ready_at - a.ready_at < a.ready_at - t0 + 1);
    }

    #[test]
    fn table_latency_affects_latency_not_order() {
        let mk = |lat| {
            let mut w = WeaverUnit::new(
                WeaverConfig {
                    table_latency: lat,
                    ..WeaverConfig::default()
                },
                2,
                4,
            );
            w.reg(0, &[(0, 0, 0, 4)], 0).unwrap();
            w.dec_id(0, 10).ready_at
        };
        let fast = mk(4);
        let slow = mk(160);
        assert_eq!(slow - fast, 156);
    }

    #[test]
    fn skip_reaches_fsm() {
        let mut w = unit();
        w.reg(0, &[(0, 5, 0, 100)], 0).unwrap();
        let r = w.dec_id(0, 5);
        assert_eq!(r.batch.vids, vec![5, 5, 5, 5]);
        w.skip(&[5], 6);
        assert!(w.dec_id(0, 7).batch.exhausted);
    }

    #[test]
    fn counters_track_activity() {
        let mut w = unit();
        w.reg(0, &[(0, 0, 0, 1), (1, 1, 1, 1)], 0).unwrap();
        let _ = w.dec_id(0, 5);
        let (fetches, decs, regs) = w.counters();
        assert_eq!(regs, 2);
        assert_eq!(decs, 1);
        assert!(fetches >= 2);
    }

    #[test]
    fn tracer_sees_tables_and_fsm_transitions() {
        use sparseweaver_trace::{TraceConfig, TraceHandle};

        let mut w = unit();
        let t = TraceHandle::new(TraceConfig::default());
        t.kernel_begin("k");
        w.set_tracer(Some(t.clone()), 3);
        w.reg(0, &[(0, 0, 2, 1), (1, 2, 10, 2)], 0).unwrap();
        let _ = w.dec_id(0, 10);
        let _ = w.dec_loc(0, 20);
        t.kernel_end(30, &Default::default());
        let r = t.report();
        let ops: Vec<&EventData> = r.events.iter().map(|e| &e.data).collect();
        assert!(ops.iter().any(|d| matches!(
            d,
            EventData::WeaverTable {
                op: TableOp::StWrite,
                count: 2
            }
        )));
        assert!(ops.iter().any(|d| matches!(
            d,
            EventData::WeaverTable {
                op: TableOp::StFetch,
                ..
            }
        )));
        assert!(ops.iter().any(|d| matches!(
            d,
            EventData::WeaverTable {
                op: TableOp::DtWrite,
                ..
            }
        )));
        assert!(ops.iter().any(|d| matches!(
            d,
            EventData::WeaverTable {
                op: TableOp::DtRead,
                count: 4
            }
        )));
        // The first decode starts from S0 and the transition chain is
        // contiguous (each `from` equals the previous `to`).
        let chain: Vec<(WeaverState, WeaverState)> = r
            .events
            .iter()
            .filter_map(|e| match e.data {
                EventData::WeaverTransition { from, to } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert!(!chain.is_empty());
        assert_eq!(chain[0].0, WeaverState::S0Init);
        for pair in chain.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
        // Every event carries the core stamp.
        assert!(r
            .events
            .iter()
            .filter(|e| !matches!(
                e.data,
                EventData::KernelLaunch { .. } | EventData::KernelEnd { .. }
            ))
            .all(|e| e.core == 3));
    }

    #[test]
    fn tracer_does_not_change_unit_behavior() {
        let mut plain = unit();
        let mut traced = unit();
        traced.set_tracer(
            Some(sparseweaver_trace::TraceHandle::new(
                sparseweaver_trace::TraceConfig::default(),
            )),
            0,
        );
        plain.reg(0, &[(0, 0, 0, 5), (1, 7, 5, 3)], 0).unwrap();
        traced.reg(0, &[(0, 0, 0, 5), (1, 7, 5, 3)], 0).unwrap();
        for i in 0..4u64 {
            let a = plain.dec_id(0, 10 + i);
            let b = traced.dec_id(0, 10 + i);
            assert_eq!(a, b);
        }
        assert_eq!(plain.counters(), traced.counters());
    }

    #[test]
    fn reset_clears_state() {
        let mut w = unit();
        w.reg(0, &[(0, 0, 0, 1)], 0).unwrap();
        let _ = w.dec_id(0, 5);
        w.reset();
        assert_eq!(w.counters(), (0, 0, 0));
        assert!(w.dec_id(0, 0).batch.exhausted);
    }
}
