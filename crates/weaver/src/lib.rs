//! The Weaver functional unit and its hardware baseline.
//!
//! Weaver is the paper's lightweight per-core hardware that converts sparse
//! edge-gather operations into dense, SIMD-friendly work distributions
//! (Section III-B). It keeps two tables in shared memory:
//!
//! - the **Sparse Workload Information Table (ST)** — one `(VID, loc, deg)`
//!   entry per hardware thread, filled in the registration stage and
//!   indexed by warp ID and thread ID so that an in-order scan yields
//!   vertex-ID order despite out-of-order warp execution;
//! - the **Dense Work ID Table (DT)** — one row of generated edge IDs per
//!   warp, written when a decode request completes and read back by
//!   `WEAVER_DEC_LOC`.
//!
//! Between them sits the Fig. 6 finite state machine with its two small
//! buffers: **CED** (Current Entry Data) holding the ST entry being
//! decoded, and **OD** (Output Data) accumulating one work item per lane.
//! The FSM can fill one OD buffer from multiple low-degree entries
//! (S3→S4→S2) and multiple OD buffers from one high-degree entry
//! (S5→S6→S2).
//!
//! The crate also contains:
//!
//! - [`eghw`] — the *edge-generating hardware* baseline of Case Study 1,
//!   which performs topology and edge-information reads from its own
//!   state machine (and therefore cannot hide memory latency behind
//!   warp-level parallelism);
//! - [`area`] — the parametric FPGA area model reproducing Table IV.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod eghw;
pub mod fsm;
pub mod tables;
pub mod unit;

pub use fsm::{CedState, DecodeBatch, FsmSnapshot, FsmState, WeaverFsm};
pub use tables::{DenseTable, SparseTable, StEntry};
pub use unit::{DecResponse, StOverflow, WeaverConfig, WeaverUnit, WeaverUnitState};

/// The value returned for lanes with no work: the paper's "empty Work ID".
pub const EMPTY_WORK_ID: i64 = -1;
