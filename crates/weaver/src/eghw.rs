//! The edge-generating hardware (EGHW) baseline of Case Study 1.
//!
//! EGHW models the prior hardware schemes (SCU, GraphPEG): a per-core unit
//! that receives only vertex IDs from the GPU, then *itself* reads the
//! graph topology and the edge information from memory and stages complete
//! edge records in a shared-memory buffer that the GPU polls.
//!
//! The crucial difference from Weaver — and the reason SparseWeaver wins by
//! 3.64x in Fig. 18 — is that EGHW's memory reads happen inside a single
//! serial state machine: they cannot be overlapped with each other or
//! hidden behind other warps' execution the way the GPU pipeline hides the
//! latency of ordinary loads. The unit also costs extra shared-memory
//! traffic to stage and re-read the generated edge data.

/// Graph buffer addresses the unit dereferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EghwLayout {
    /// Base address of the CSR offsets array (`u32` entries).
    pub offsets_base: u64,
    /// Base address of the edge target array (`u32` entries).
    pub edges_base: u64,
    /// Base address of the edge weight array (`u32` entries).
    pub weights_base: u64,
}

/// One batch of staged edge records (one per lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EghwBatch {
    /// Base vertex ID per lane (-1 when empty).
    pub vids: Vec<i64>,
    /// Edge index per lane (-1 when empty).
    pub eids: Vec<i64>,
    /// Opposite vertex ID per lane (pre-fetched by the unit).
    pub others: Vec<i64>,
    /// Edge weight per lane (pre-fetched by the unit).
    pub weights: Vec<i64>,
    /// Cycle at which the staged records are visible to the warp.
    pub ready_at: u64,
    /// Whether the work list is exhausted (all lanes -1).
    pub exhausted: bool,
    /// Number of global-memory reads the unit performed for this batch.
    pub unit_reads: u32,
}

#[derive(Debug, Clone, Copy)]
struct Current {
    vid: u32,
    next_eid: u32,
    remaining: u32,
}

/// A complete snapshot of one EGHW unit's mutable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EghwState {
    /// Installed graph buffer addresses.
    pub layout: EghwLayout,
    /// Registered vertex IDs by hardware slot.
    pub slots: Vec<Option<u32>>,
    /// Scan cursor into the slots.
    pub cursor: u64,
    /// The vertex being expanded: `(vid, next_eid, remaining)`.
    pub current: Option<(u32, u32, u32)>,
    /// Whether a registration round is open.
    pub in_registration: bool,
    /// The cycle the unit frees up.
    pub busy_until: u64,
    /// One-line stream buffers (offsets / edges / weights).
    pub line_buf: [Option<u64>; 3],
    /// Total unit-issued memory reads.
    pub total_reads: u64,
}

/// The EGHW unit state.
///
/// Memory is reached through a caller-supplied closure so the unit stays
/// decoupled from the simulator:
/// `read(addr, width) -> (value, latency_in_cycles)`.
#[derive(Debug, Clone)]
pub struct EghwUnit {
    lanes: usize,
    layout: EghwLayout,
    /// Registered vertex IDs by hardware slot (warp * lanes + lane).
    slots: Vec<Option<u32>>,
    cursor: usize,
    current: Option<Current>,
    in_registration: bool,
    busy_until: u64,
    /// One-line stream buffers (offsets / edges / weights), as in SCU's
    /// streaming design: a read that stays within the previously fetched
    /// 64-byte line costs one cycle instead of a memory round trip.
    line_buf: [Option<u64>; 3],
    /// Total unit-issued memory reads.
    pub total_reads: u64,
}

impl EghwUnit {
    /// Creates a unit for a core with `warps` warps of `lanes` lanes.
    pub fn new(warps: usize, lanes: usize) -> Self {
        EghwUnit {
            lanes,
            layout: EghwLayout::default(),
            slots: vec![None; warps * lanes],
            cursor: 0,
            current: None,
            in_registration: false,
            busy_until: 0,
            line_buf: [None; 3],
            total_reads: 0,
        }
    }

    /// Installs the graph buffer addresses for this kernel.
    pub fn set_layout(&mut self, layout: EghwLayout) {
        self.layout = layout;
    }

    /// Registers vertex IDs from `warp` (`(lane, vid)` records). Unlike
    /// Weaver, only the vertex ID crosses the interface; the unit reads
    /// topology itself.
    pub fn reg(&mut self, warp: usize, records: &[(usize, u32)], now: u64) -> u64 {
        if !self.in_registration {
            for s in &mut self.slots {
                *s = None;
            }
            self.cursor = 0;
            self.current = None;
            self.line_buf = [None; 3];
            self.in_registration = true;
        }
        for &(lane, vid) in records {
            self.slots[warp * self.lanes + lane] = Some(vid);
        }
        // Writing vids into the unit's buffer: one cycle per record.
        let start = now.max(self.busy_until);
        self.busy_until = start + records.len() as u64;
        self.busy_until
    }

    /// Produces the next batch of `lanes` edge records, performing the
    /// unit's own (serial, unoverlapped) memory reads through
    /// `read(addr, width, now) -> (value, latency)`. Each read is issued
    /// at the unit's advancing clock — strictly one at a time, which is
    /// exactly the weakness Case Study 1 demonstrates.
    pub fn dec<F>(&mut self, now: u64, mut read: F) -> EghwBatch
    where
        F: FnMut(u64, u64, u64) -> (u64, u64),
    {
        self.in_registration = false;
        let mut t = now.max(self.busy_until);
        let mut vids = vec![-1i64; self.lanes];
        let mut eids = vec![-1i64; self.lanes];
        let mut others = vec![-1i64; self.lanes];
        let mut weights = vec![-1i64; self.lanes];
        let mut filled = 0usize;
        let mut unit_reads = 0u32;

        let line_buf = &mut self.line_buf;
        let mut serial_read = |t: &mut u64, stream: usize, addr: u64, width: u64| -> u64 {
            let line = addr / 64;
            if line_buf[stream] == Some(line) {
                // Stream-buffer hit: the line is already latched.
                let (value, _) = read(addr, width, *t);
                *t += 1;
                return value;
            }
            let (value, lat) = read(addr, width, *t);
            *t += lat; // strictly serial: no overlap between unit reads
            line_buf[stream] = Some(line);
            unit_reads += 1;
            value
        };

        while filled < self.lanes {
            let cur = match &mut self.current {
                Some(c) if c.remaining > 0 => c,
                _ => {
                    // Advance to the next registered vertex.
                    let mut next = None;
                    while self.cursor < self.slots.len() {
                        let slot = self.slots[self.cursor];
                        self.cursor += 1;
                        if let Some(vid) = slot {
                            next = Some(vid);
                            break;
                        }
                    }
                    let Some(vid) = next else { break };
                    // Two topology reads: off[vid], off[vid+1].
                    let lo =
                        serial_read(&mut t, 0, self.layout.offsets_base + 4 * vid as u64, 4) as u32;
                    let hi = serial_read(
                        &mut t,
                        0,
                        self.layout.offsets_base + 4 * (vid as u64 + 1),
                        4,
                    ) as u32;
                    self.current = Some(Current {
                        vid,
                        next_eid: lo,
                        remaining: hi - lo,
                    });
                    continue;
                }
            };
            // One edge-info read + one weight read, then a staging write.
            let eid = cur.next_eid;
            let other = serial_read(&mut t, 1, self.layout.edges_base + 4 * eid as u64, 4);
            let weight = serial_read(&mut t, 2, self.layout.weights_base + 4 * eid as u64, 4);
            t += 1; // shared-buffer staging write
            vids[filled] = cur.vid as i64;
            eids[filled] = eid as i64;
            others[filled] = other as i64;
            weights[filled] = weight as i64;
            cur.next_eid += 1;
            cur.remaining -= 1;
            filled += 1;
        }
        self.busy_until = t;
        self.total_reads += unit_reads as u64;
        EghwBatch {
            vids,
            eids,
            others,
            weights,
            ready_at: t,
            exhausted: filled == 0,
            unit_reads,
        }
    }

    /// Captures the complete mutable state for checkpointing.
    pub fn save_state(&self) -> EghwState {
        EghwState {
            layout: self.layout,
            slots: self.slots.clone(),
            cursor: self.cursor as u64,
            current: self.current.map(|c| (c.vid, c.next_eid, c.remaining)),
            in_registration: self.in_registration,
            busy_until: self.busy_until,
            line_buf: self.line_buf,
            total_reads: self.total_reads,
        }
    }

    /// Restores state captured with [`EghwUnit::save_state`] into a unit
    /// of the same shape (warps × lanes).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the snapshot's slot count
    /// does not match this unit's.
    pub fn restore_state(&mut self, state: &EghwState) -> Result<(), String> {
        if state.slots.len() != self.slots.len() {
            return Err(format!(
                "eghw snapshot has {} slots, configuration needs {}",
                state.slots.len(),
                self.slots.len()
            ));
        }
        self.layout = state.layout;
        self.slots = state.slots.clone();
        self.cursor = state.cursor as usize;
        self.current = state.current.map(|(vid, next_eid, remaining)| Current {
            vid,
            next_eid,
            remaining,
        });
        self.in_registration = state.in_registration;
        self.busy_until = state.busy_until;
        self.line_buf = state.line_buf;
        self.total_reads = state.total_reads;
        Ok(())
    }

    /// Resets the unit between kernels.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.cursor = 0;
        self.current = None;
        self.in_registration = false;
        self.busy_until = 0;
        self.line_buf = [None; 3];
        self.total_reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy memory: offsets at 0, edges at 1000, weights at 2000;
    /// every read costs `lat` cycles.
    fn mem(lat: u64) -> impl FnMut(u64, u64, u64) -> (u64, u64) {
        // Graph: v0 -> {10, 11}, v1 -> {}, v2 -> {12}.
        let offsets = [0u64, 2, 2, 3];
        let edges = [10u64, 11, 12];
        let weights = [7u64, 8, 9];
        move |addr, _w, _now| {
            let v = if addr < 1000 {
                offsets[(addr / 4) as usize]
            } else if addr < 2000 {
                edges[((addr - 1000) / 4) as usize]
            } else {
                weights[((addr - 2000) / 4) as usize]
            };
            (v, lat)
        }
    }

    fn unit() -> EghwUnit {
        let mut u = EghwUnit::new(2, 2);
        u.set_layout(EghwLayout {
            offsets_base: 0,
            edges_base: 1000,
            weights_base: 2000,
        });
        u
    }

    #[test]
    fn produces_complete_edge_records() {
        let mut u = unit();
        u.reg(0, &[(0, 0), (1, 1)], 0);
        u.reg(1, &[(0, 2)], 1);
        let b = u.dec(10, mem(5));
        assert_eq!(b.vids, vec![0, 0]);
        assert_eq!(b.eids, vec![0, 1]);
        assert_eq!(b.others, vec![10, 11]);
        assert_eq!(b.weights, vec![7, 8]);
        let b2 = u.dec(b.ready_at, mem(5));
        assert_eq!(b2.vids, vec![2, -1]); // v1 has no edges
        assert_eq!(b2.others[0], 12);
        assert!(u.dec(b2.ready_at, mem(5)).exhausted);
    }

    #[test]
    fn reads_are_serial() {
        let mut u = unit();
        u.reg(0, &[(0, 0)], 0);
        // v0: both offsets share a line (1 miss + 1 buffered hit), the
        // edge and weight streams miss once each and then hit their
        // stream buffers: 3 serial misses at 50 cycles, plus buffered
        // hits and 2 staging writes.
        let b = u.dec(0, mem(50));
        assert_eq!(b.unit_reads, 3);
        assert!(b.ready_at >= 3 * 50 + 2, "ready_at = {}", b.ready_at);
    }

    #[test]
    fn latency_scales_with_memory_latency() {
        let go = |lat| {
            let mut u = unit();
            u.reg(0, &[(0, 0)], 0);
            u.dec(0, mem(lat)).ready_at
        };
        // Unlike Weaver (Fig. 13 flat), EGHW degrades linearly with memory
        // latency — the paper's core criticism of hardware-side edge
        // generation (3 stream-buffer misses here).
        assert_eq!(go(100) - go(10), 3 * 90);
    }

    #[test]
    fn reregistration_restarts() {
        let mut u = unit();
        u.reg(0, &[(0, 0)], 0);
        let _ = u.dec(0, mem(1));
        u.reg(0, &[(0, 2)], 100);
        let b = u.dec(200, mem(1));
        assert_eq!(b.vids[0], 2);
    }

    #[test]
    fn zero_degree_vertices_are_skipped() {
        let mut u = unit();
        u.reg(0, &[(0, 1)], 0); // v1 has degree 0
        let b = u.dec(0, mem(1));
        assert!(b.exhausted);
        assert_eq!(b.unit_reads, 1); // still pays the (buffered) topology read
    }
}
