//! The FPGA area model (Table IV, Fig. 16).
//!
//! The paper synthesizes the extended Vortex RTL with Quartus Prime Pro
//! for an Intel Stratix 10 and reports:
//!
//! - +678 dedicated logic registers per core (0.045% of the core's
//!   registers) for the Workload Info Table and Work ID Table logic;
//! - +3109 adaptive logic modules (ALMs) per core (2.96%) for the FSM and
//!   instruction support;
//! - a 16-core GPU grows from 580,332 to 591,971 ALMs (+2.01%);
//! - no additional block memory, RAM blocks, or DSP blocks (the tables
//!   live in existing shared memory);
//! - +251 lines of SystemVerilog over a 184,449-line codebase (0.136%).
//!
//! Without an FPGA toolchain we replace synthesis with a parametric model
//! *calibrated to those published data points* (see `DESIGN.md`,
//! substitution 4): base ALMs are linear in core count through the two
//! published configurations, and Weaver ALMs are linear with a shared
//! decode component (the 16-core synthesis shares logic, which is why the
//! paper's 16-core delta is 11,639 rather than 16 x 3109).

/// Published constants this model is calibrated against.
pub mod calibration {
    /// ALMs of the default 1-core Vortex (Table IV).
    pub const BASE_ALM_1: u64 = 105_094;
    /// ALMs of the default 16-core Vortex (Table IV).
    pub const BASE_ALM_16: u64 = 580_332;
    /// ALMs of the 1-core Vortex with SparseWeaver (Table IV).
    pub const SW_ALM_1: u64 = 108_203;
    /// ALMs of the 16-core Vortex with SparseWeaver (Table IV).
    pub const SW_ALM_16: u64 = 591_971;
    /// Dedicated logic registers added per core.
    pub const WEAVER_REGS_PER_CORE: u64 = 678;
    /// Register overhead fraction per core (0.045%).
    pub const REG_OVERHEAD_FRACTION: f64 = 0.00045;
    /// Added SystemVerilog lines.
    pub const SV_LINES_ADDED: u64 = 251;
    /// Baseline SystemVerilog lines.
    pub const SV_LINES_BASE: u64 = 184_449;
}

/// One row of the Table IV report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaRow {
    /// Configuration label, e.g. `"1-core default"`.
    pub config: String,
    /// Total ALMs.
    pub total_alms: u64,
    /// ALM increase over the matching default, as a percentage.
    pub alm_increase_pct: f64,
    /// Block-memory increase (always 0: tables are in shared memory).
    pub block_memory_pct: f64,
    /// RAM-block increase (always 0).
    pub ram_pct: f64,
    /// DSP increase (always 0).
    pub dsp_pct: f64,
}

/// Base Vortex ALMs for `cores` cores (linear through the 1- and 16-core
/// synthesis results; the negative intercept reflects per-core logic that
/// the uncore amortizes at scale).
pub fn base_alms(cores: u32) -> u64 {
    use calibration::*;
    let per_core = (BASE_ALM_16 - BASE_ALM_1) as f64 / 15.0;
    let uncore = BASE_ALM_1 as f64 - per_core;
    (uncore + per_core * cores as f64).round() as u64
}

/// Weaver's ALM cost for `cores` cores (linear through the published 1-
/// and 16-core deltas: a shared decode component plus a per-core part).
pub fn weaver_alms(cores: u32) -> u64 {
    use calibration::*;
    let d1 = (SW_ALM_1 - BASE_ALM_1) as f64;
    let d16 = (SW_ALM_16 - BASE_ALM_16) as f64;
    let per_core = (d16 - d1) / 15.0;
    let shared = d1 - per_core;
    (shared + per_core * cores as f64).round() as u64
}

/// Weaver's dedicated-logic-register cost for `cores` cores.
pub fn weaver_registers(cores: u32) -> u64 {
    calibration::WEAVER_REGS_PER_CORE * cores as u64
}

/// Baseline per-core register count implied by the paper's 0.045% figure.
pub fn base_registers(cores: u32) -> u64 {
    use calibration::*;
    ((WEAVER_REGS_PER_CORE as f64 / REG_OVERHEAD_FRACTION).round() as u64) * cores as u64
}

/// Register overhead as a percentage for `cores` cores.
pub fn register_overhead_pct(cores: u32) -> f64 {
    100.0 * weaver_registers(cores) as f64 / base_registers(cores) as f64
}

/// Generates the Table IV rows for a list of core counts.
pub fn table_iv(core_counts: &[u32]) -> Vec<AreaRow> {
    let mut rows = Vec::new();
    for &cores in core_counts {
        let base = base_alms(cores);
        let with = base + weaver_alms(cores);
        rows.push(AreaRow {
            config: format!("{cores}-core default"),
            total_alms: base,
            alm_increase_pct: 100.0 * weaver_alms(cores) as f64 / base as f64,
            block_memory_pct: 0.0,
            ram_pct: 0.0,
            dsp_pct: 0.0,
        });
        rows.push(AreaRow {
            config: format!("{cores}-core w/ SparseWeaver"),
            total_alms: with,
            alm_increase_pct: 100.0 * weaver_alms(cores) as f64 / base as f64,
            block_memory_pct: 0.0,
            ram_pct: 0.0,
            dsp_pct: 0.0,
        });
    }
    rows
}

/// A per-module ALM breakdown for the Fig. 16 utilization report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockBreakdown {
    /// `(module name, ALMs, added by SparseWeaver?)` rows.
    pub modules: Vec<(String, u64, bool)>,
}

impl BlockBreakdown {
    /// Total ALMs across modules.
    pub fn total(&self) -> u64 {
        self.modules.iter().map(|m| m.1).sum()
    }

    /// ALMs added by SparseWeaver.
    pub fn added(&self) -> u64 {
        self.modules.iter().filter(|m| m.2).map(|m| m.1).sum()
    }
}

/// Produces the per-module utilization breakdown behind Fig. 16.
///
/// The split of the base core follows Vortex's published module structure
/// (fetch/issue/execute/LSU/SFU/L1); the Weaver additions split the
/// calibrated delta between the FSM and the table-index logic.
pub fn block_breakdown(cores: u32, with_weaver: bool) -> BlockBreakdown {
    let base = base_alms(cores) as f64;
    let mut modules = vec![
        ("fetch/decode".to_string(), (base * 0.12) as u64, false),
        ("issue/scoreboard".to_string(), (base * 0.16) as u64, false),
        ("integer ALUs".to_string(), (base * 0.22) as u64, false),
        ("FPU".to_string(), (base * 0.18) as u64, false),
        ("LSU".to_string(), (base * 0.14) as u64, false),
        ("SFU".to_string(), (base * 0.06) as u64, false),
        ("L1 cache control".to_string(), (base * 0.12) as u64, false),
    ];
    let listed: u64 = modules.iter().map(|m| m.1).sum();
    modules.push((
        "interconnect/uncore".to_string(),
        base as u64 - listed,
        false,
    ));
    if with_weaver {
        let add = weaver_alms(cores);
        let fsm = (add as f64 * 0.7) as u64;
        modules.push(("Weaver FSM + ISA decode".to_string(), fsm, true));
        modules.push(("ST/DT index logic".to_string(), add - fsm, true));
    }
    BlockBreakdown { modules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibration::*;

    #[test]
    fn calibration_points_reproduced_exactly() {
        assert_eq!(base_alms(1), BASE_ALM_1);
        assert_eq!(base_alms(16), BASE_ALM_16);
        assert_eq!(base_alms(1) + weaver_alms(1), SW_ALM_1);
        assert_eq!(base_alms(16) + weaver_alms(16), SW_ALM_16);
    }

    #[test]
    fn paper_percentages_match() {
        let rows = table_iv(&[1, 16]);
        // 2.96% for 1 core, 2.01% for 16 cores (Table IV).
        assert!((rows[0].alm_increase_pct - 2.96).abs() < 0.01);
        assert!((rows[2].alm_increase_pct - 2.01).abs() < 0.01);
        assert_eq!(rows[1].total_alms, SW_ALM_1);
        assert_eq!(rows[3].total_alms, SW_ALM_16);
    }

    #[test]
    fn register_overhead_is_0_045_pct() {
        assert!((register_overhead_pct(1) - 0.045).abs() < 0.001);
        assert!((register_overhead_pct(16) - 0.045).abs() < 0.001);
        assert_eq!(weaver_registers(16), 678 * 16);
    }

    #[test]
    fn no_memory_block_overhead() {
        for row in table_iv(&[1, 16]) {
            assert_eq!(row.block_memory_pct, 0.0);
            assert_eq!(row.ram_pct, 0.0);
            assert_eq!(row.dsp_pct, 0.0);
        }
    }

    #[test]
    fn breakdown_sums_to_totals() {
        let b = block_breakdown(1, false);
        assert_eq!(b.total(), base_alms(1));
        assert_eq!(b.added(), 0);
        let bw = block_breakdown(1, true);
        assert_eq!(bw.total(), base_alms(1) + weaver_alms(1));
        assert_eq!(bw.added(), weaver_alms(1));
    }

    #[test]
    fn sv_line_overhead_fraction() {
        let pct = 100.0 * SV_LINES_ADDED as f64 / SV_LINES_BASE as f64;
        assert!((pct - 0.136).abs() < 0.001);
    }
}
