//! Deterministic, seeded fault injection for the SparseWeaver simulator.
//!
//! The fault model covers the transient-fault surface of the paper's
//! hardware/software co-design:
//!
//! - **Register-file flips** (`reg`): a single-bit upset in a register
//!   word of the executing warp, visible to subsequent reads.
//! - **Memory-word flips** (`mem`): a single-bit upset in a word read
//!   from device memory.
//! - **Instruction-fetch flips** (`fetch`): a single-bit upset in the
//!   32-bit instruction word between I-cache and decode.
//! - **Weaver response drops** (`weaver-drop`): the Table-II
//!   request/response handshake never completes — the `WEAVER_DEC_*`
//!   response is lost and the requesting warp would wait forever.
//! - **Weaver response delays** (`weaver-delay`): the response arrives,
//!   but late by a configurable number of cycles.
//!
//! Everything is driven by one [`SplitMix64`] stream seeded from the
//! campaign seed, so a given `(spec, seed)` pair replays byte-identically.
//! The crate deliberately has **no dependencies**: `mem`, `weaver`, and
//! `sim` all link it without cycles.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The classic splitmix64 generator — tiny, fast, and fully deterministic.
///
/// We do not use the vendored `rand` crate here: campaign replays must be
/// byte-identical across versions, so the generator is pinned in-tree.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` (53 bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `rate` (clamped to `[0, 1]`).
    pub fn chance(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            // Still consume a draw so the stream position does not depend
            // on the rate value — this keeps campaigns with different
            // rates comparable under one seed.
            self.next_u64();
            return true;
        }
        self.next_f64() < rate
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for the small bounds used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Derive a child seed for run `index` of a campaign. Mixing through
    /// the generator keeps per-run streams statistically independent.
    pub fn child_seed(campaign_seed: u64, index: u64) -> u64 {
        let mut g = SplitMix64::new(campaign_seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f));
        g.next_u64()
    }

    /// The raw generator state (for checkpointing). Restoring it with
    /// [`SplitMix64::set_state`] resumes the stream at the same position.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a raw generator state captured with [`SplitMix64::state`].
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }
}

/// Which rates are active, parsed from `--inject <spec>`.
///
/// Grammar (clauses comma-separated, all optional):
///
/// ```text
/// reg=<rate>              register-file flip probability per issued instruction
/// mem=<rate>              memory-word flip probability per device read
/// fetch=<rate>            instruction-word flip probability per fetch
/// weaver-drop=<rate>      response-drop probability per Weaver decode request
/// weaver-delay=<rate>:<cycles>   response-delay probability and delay length
/// ```
///
/// Example: `--inject reg=1e-4,weaver-drop=0.5`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Register-file flip probability per issued instruction.
    pub reg_rate: f64,
    /// Memory-word flip probability per device read.
    pub mem_rate: f64,
    /// Instruction-word flip probability per fetch.
    pub fetch_rate: f64,
    /// Response-drop probability per Weaver decode request.
    pub weaver_drop_rate: f64,
    /// Response-delay probability per Weaver decode request.
    pub weaver_delay_rate: f64,
    /// Delay length in cycles when a delay fires.
    pub weaver_delay_cycles: u64,
}

impl FaultSpec {
    /// Parse a `--inject` spec string.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending clause.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is missing `=<rate>`"))?;
            let parse_rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("fault clause `{clause}`: bad rate `{v}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault clause `{clause}`: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            match site {
                "reg" => spec.reg_rate = parse_rate(value)?,
                "mem" => spec.mem_rate = parse_rate(value)?,
                "fetch" => spec.fetch_rate = parse_rate(value)?,
                "weaver-drop" => spec.weaver_drop_rate = parse_rate(value)?,
                "weaver-delay" => {
                    let (rate, cycles) = match value.split_once(':') {
                        Some((r, c)) => {
                            let cycles: u64 = c.parse().map_err(|_| {
                                format!("fault clause `{clause}`: bad cycle count `{c}`")
                            })?;
                            (parse_rate(r)?, cycles)
                        }
                        None => (parse_rate(value)?, 1000),
                    };
                    spec.weaver_delay_rate = rate;
                    spec.weaver_delay_cycles = cycles;
                }
                other => {
                    return Err(format!(
                        "unknown fault site `{other}` (expected reg, mem, fetch, \
                         weaver-drop, or weaver-delay)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Whether any site has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.reg_rate > 0.0
            || self.mem_rate > 0.0
            || self.fetch_rate > 0.0
            || self.weaver_drop_rate > 0.0
            || self.weaver_delay_rate > 0.0
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut clause = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if self.reg_rate > 0.0 {
            clause(f, format!("reg={}", self.reg_rate))?;
        }
        if self.mem_rate > 0.0 {
            clause(f, format!("mem={}", self.mem_rate))?;
        }
        if self.fetch_rate > 0.0 {
            clause(f, format!("fetch={}", self.fetch_rate))?;
        }
        if self.weaver_drop_rate > 0.0 {
            clause(f, format!("weaver-drop={}", self.weaver_drop_rate))?;
        }
        if self.weaver_delay_rate > 0.0 {
            clause(
                f,
                format!(
                    "weaver-delay={}:{}",
                    self.weaver_delay_rate, self.weaver_delay_cycles
                ),
            )?;
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// What the injector decided for one Weaver decode response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeaverFault {
    /// The response arrives normally.
    None,
    /// The response is lost; the warp would wait forever.
    Drop,
    /// The response arrives late by this many cycles.
    Delay(u64),
}

/// Injection counters, mirrored into `metrics.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Register-file bits flipped.
    pub reg_flips: u64,
    /// Memory-word bits flipped.
    pub mem_flips: u64,
    /// Instruction-word bits flipped.
    pub fetch_flips: u64,
    /// Weaver responses dropped.
    pub weaver_drops: u64,
    /// Weaver responses delayed.
    pub weaver_delays: u64,
}

impl FaultCounts {
    /// Total injections across all sites.
    pub fn total(&self) -> u64 {
        self.reg_flips + self.mem_flips + self.fetch_flips + self.weaver_drops + self.weaver_delays
    }
}

/// The deterministic fault injector shared across the device model.
///
/// One injector (behind a [`FaultHandle`]) is distributed to the memory,
/// Weaver unit, and cores — mirroring how `TraceHandle` is wired — so a
/// single RNG stream decides every event in device order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: SplitMix64,
    counts: FaultCounts,
    weaver_faulty: bool,
}

impl FaultInjector {
    /// An injector for `spec` seeded with `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultInjector {
            spec,
            rng: SplitMix64::new(seed),
            counts: FaultCounts::default(),
            weaver_faulty: false,
        }
    }

    /// The active spec.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Cumulative injection counters.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Register-file event: if it fires, returns `(lane, reg, bit)` to
    /// flip in the executing warp's register file. Called once per issued
    /// instruction.
    pub fn reg_event(&mut self, lanes: u64, regs: u64) -> Option<(usize, usize, u32)> {
        if lanes == 0 || regs == 0 || !self.rng.chance(self.spec.reg_rate) {
            return None;
        }
        self.counts.reg_flips += 1;
        let lane = self.rng.below(lanes) as usize;
        let reg = self.rng.below(regs) as usize;
        let bit = self.rng.below(64) as u32;
        Some((lane, reg, bit))
    }

    /// Memory-read event: maybe flip one bit of `value` (a `width`-byte
    /// word read from device memory).
    pub fn corrupt_mem(&mut self, value: u64, width: usize) -> u64 {
        if !self.rng.chance(self.spec.mem_rate) {
            return value;
        }
        self.counts.mem_flips += 1;
        let bit = self.rng.below(8 * width.clamp(1, 8) as u64) as u32;
        value ^ (1u64 << bit)
    }

    /// Instruction-fetch event: maybe flip one bit of the 32-bit
    /// instruction word.
    pub fn corrupt_fetch(&mut self, word: u32) -> u32 {
        if !self.rng.chance(self.spec.fetch_rate) {
            return word;
        }
        self.counts.fetch_flips += 1;
        let bit = self.rng.below(32) as u32;
        word ^ (1u32 << bit)
    }

    /// Weaver protocol event for one decode response. A drop also marks
    /// the unit faulty (sticky until [`FaultInjector::clear_weaver_faulty`]).
    pub fn weaver_response(&mut self) -> WeaverFault {
        if self.rng.chance(self.spec.weaver_drop_rate) {
            self.counts.weaver_drops += 1;
            self.weaver_faulty = true;
            return WeaverFault::Drop;
        }
        if self.rng.chance(self.spec.weaver_delay_rate) {
            self.counts.weaver_delays += 1;
            return WeaverFault::Delay(self.spec.weaver_delay_cycles);
        }
        WeaverFault::None
    }

    /// Whether a response drop has marked the Weaver unit faulty.
    pub fn weaver_faulty(&self) -> bool {
        self.weaver_faulty
    }

    /// Clear the faulty mark before a retry attempt (the fault model is
    /// transient: a fresh request redraws from the stream).
    pub fn clear_weaver_faulty(&mut self) {
        self.weaver_faulty = false;
    }

    /// Captures the injector's mutable state — RNG cursor, cumulative
    /// counters, and the sticky faulty mark — for a checkpoint. The spec
    /// is not part of the state: a restored injector must be built from
    /// the same spec, which the checkpoint layer fingerprints separately.
    pub fn save_state(&self) -> FaultInjectorState {
        FaultInjectorState {
            rng: self.rng.state(),
            counts: self.counts,
            weaver_faulty: self.weaver_faulty,
        }
    }

    /// Restores a state captured with [`FaultInjector::save_state`]; the
    /// RNG stream resumes exactly where the snapshot was taken.
    pub fn restore_state(&mut self, state: &FaultInjectorState) {
        self.rng.set_state(state.rng);
        self.counts = state.counts;
        self.weaver_faulty = state.weaver_faulty;
    }
}

/// The mutable state of a [`FaultInjector`], as captured by
/// [`FaultInjector::save_state`] for crash-safe checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjectorState {
    /// Raw [`SplitMix64`] cursor.
    pub rng: u64,
    /// Cumulative injection counters at snapshot time.
    pub counts: FaultCounts,
    /// Whether a response drop had marked the Weaver unit faulty.
    pub weaver_faulty: bool,
}

/// A cloneable shared handle to one [`FaultInjector`], mirroring
/// `sparseweaver_trace::TraceHandle` (the simulator is single-threaded).
#[derive(Debug, Clone)]
pub struct FaultHandle(Rc<RefCell<FaultInjector>>);

impl FaultHandle {
    /// Wrap an injector in a shared handle.
    pub fn new(injector: FaultInjector) -> Self {
        FaultHandle(Rc::new(RefCell::new(injector)))
    }

    /// Borrow the injector mutably for one event decision.
    pub fn with<R>(&self, f: impl FnOnce(&mut FaultInjector) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Cumulative injection counters.
    pub fn counts(&self) -> FaultCounts {
        self.0.borrow().counts()
    }

    /// Whether a response drop has marked the Weaver unit faulty.
    pub fn weaver_faulty(&self) -> bool {
        self.0.borrow().weaver_faulty()
    }

    /// Clear the faulty mark before a retry attempt.
    pub fn clear_weaver_faulty(&self) {
        self.0.borrow_mut().clear_weaver_faulty();
    }

    /// The active spec.
    pub fn spec(&self) -> FaultSpec {
        self.0.borrow().spec()
    }

    /// See [`FaultInjector::save_state`].
    pub fn save_state(&self) -> FaultInjectorState {
        self.0.borrow().save_state()
    }

    /// See [`FaultInjector::restore_state`].
    pub fn restore_state(&self, state: &FaultInjectorState) {
        self.0.borrow_mut().restore_state(state);
    }
}

/// The four-way classification of one fault-campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The run finished and the output matches the fault-free golden run.
    Masked,
    /// Silent data corruption: the run finished but the output diverges.
    Sdc,
    /// A typed error surfaced the fault (illegal instruction, memory
    /// fault, lint rejection, …) — the desirable failure mode.
    DetectedCrash,
    /// The run deadlocked or hit the cycle limit.
    Hang,
}

impl Outcome {
    /// The stable label used in campaign summaries.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::DetectedCrash => "detected_crash",
            Outcome::Hang => "hang",
        }
    }

    /// Maps an [`Outcome::label`] back to the class; `None` for unknown
    /// labels (a corrupt or future-format campaign journal).
    pub fn from_label(label: &str) -> Option<Outcome> {
        [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::DetectedCrash,
            Outcome::Hang,
        ]
        .into_iter()
        .find(|o| o.label() == label)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Aggregated result of a fault campaign: `runs` seeded executions, each
/// classified into exactly one [`Outcome`] class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// The spec string the campaign ran under.
    pub spec: String,
    /// The campaign seed.
    pub seed: u64,
    /// Total runs executed.
    pub runs: u64,
    /// Runs whose output matched the golden run.
    pub masked: u64,
    /// Runs with silent data corruption.
    pub sdc: u64,
    /// Runs ending in a typed error.
    pub detected_crash: u64,
    /// Runs ending in deadlock or cycle-limit.
    pub hang: u64,
    /// Total faults injected across all runs.
    pub faults_injected: u64,
    /// Weaver retry attempts taken across all runs.
    pub retries: u64,
    /// Runs that fell back to the software `S_wm` schedule.
    pub fallbacks: u64,
}

impl CampaignSummary {
    /// Record one classified run.
    pub fn record(&mut self, outcome: Outcome) {
        self.runs += 1;
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::DetectedCrash => self.detected_crash += 1,
            Outcome::Hang => self.hang += 1,
        }
    }

    /// Every run is classified (the four classes partition `runs`).
    pub fn is_classified(&self) -> bool {
        self.masked + self.sdc + self.detected_crash + self.hang == self.runs
    }

    /// Deterministic JSON rendering — byte-identical for identical
    /// campaigns, so golden files can diff it directly.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"sparseweaver-fault-campaign-v1\",\"spec\":\"{}\",\"seed\":{},\
             \"runs\":{},\"masked\":{},\"sdc\":{},\"detected_crash\":{},\"hang\":{},\
             \"faults_injected\":{},\"retries\":{},\"fallbacks\":{}}}",
            escape(&self.spec),
            self.seed,
            self.runs,
            self.masked,
            self.sdc,
            self.detected_crash,
            self.hang,
            self.faults_injected,
            self.retries,
            self.fallbacks,
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the published splitmix64.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next_u64(), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(1);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
        // rate=1.0 consumed a draw: two generators diverge only by that draw.
        let mut h = SplitMix64::new(1);
        h.next_u64();
        assert_eq!(g.next_u64(), h.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 32, 64, 1000] {
            for _ in 0..50 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn spec_parses_all_sites() {
        let s = FaultSpec::parse("reg=0.1,mem=0.2,fetch=0.3,weaver-drop=0.4,weaver-delay=0.5:77")
            .unwrap();
        assert_eq!(s.reg_rate, 0.1);
        assert_eq!(s.mem_rate, 0.2);
        assert_eq!(s.fetch_rate, 0.3);
        assert_eq!(s.weaver_drop_rate, 0.4);
        assert_eq!(s.weaver_delay_rate, 0.5);
        assert_eq!(s.weaver_delay_cycles, 77);
        assert!(s.is_active());
    }

    #[test]
    fn spec_delay_default_cycles() {
        let s = FaultSpec::parse("weaver-delay=0.25").unwrap();
        assert_eq!(s.weaver_delay_cycles, 1000);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultSpec::parse("bogus=0.1").is_err());
        assert!(FaultSpec::parse("reg").is_err());
        assert!(FaultSpec::parse("reg=nope").is_err());
        assert!(FaultSpec::parse("reg=1.5").is_err());
        assert!(FaultSpec::parse("reg=-0.1").is_err());
        assert!(FaultSpec::parse("weaver-delay=0.1:abc").is_err());
    }

    #[test]
    fn spec_empty_is_inactive() {
        let s = FaultSpec::parse("").unwrap();
        assert!(!s.is_active());
        assert_eq!(s.to_string(), "none");
    }

    #[test]
    fn spec_display_round_trips() {
        let s = FaultSpec::parse("reg=0.1,weaver-drop=0.5").unwrap();
        let again = FaultSpec::parse(&s.to_string()).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn injector_at_rate_one_always_fires() {
        let spec = FaultSpec::parse("reg=1,mem=1,fetch=1").unwrap();
        let mut inj = FaultInjector::new(spec, 9);
        assert!(inj.reg_event(4, 16).is_some());
        assert_ne!(inj.corrupt_mem(0, 8), 0);
        assert_ne!(inj.corrupt_fetch(0), 0);
        let c = inj.counts();
        assert_eq!(c.reg_flips, 1);
        assert_eq!(c.mem_flips, 1);
        assert_eq!(c.fetch_flips, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn injector_at_rate_zero_never_fires() {
        let mut inj = FaultInjector::new(FaultSpec::default(), 9);
        assert!(inj.reg_event(4, 16).is_none());
        assert_eq!(inj.corrupt_mem(0xdead, 8), 0xdead);
        assert_eq!(inj.corrupt_fetch(0xbeef), 0xbeef);
        assert_eq!(inj.weaver_response(), WeaverFault::None);
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn mem_flip_respects_width() {
        let spec = FaultSpec::parse("mem=1").unwrap();
        let mut inj = FaultInjector::new(spec, 3);
        for _ in 0..100 {
            let v = inj.corrupt_mem(0, 1);
            assert!(v < 256, "1-byte read flipped a bit above bit 7: {v:#x}");
        }
    }

    #[test]
    fn drop_marks_unit_faulty_and_clear_resets() {
        let spec = FaultSpec::parse("weaver-drop=1").unwrap();
        let mut inj = FaultInjector::new(spec, 5);
        assert_eq!(inj.weaver_response(), WeaverFault::Drop);
        assert!(inj.weaver_faulty());
        inj.clear_weaver_faulty();
        assert!(!inj.weaver_faulty());
        assert_eq!(inj.counts().weaver_drops, 1);
    }

    #[test]
    fn delay_reports_cycles() {
        let spec = FaultSpec::parse("weaver-delay=1:123").unwrap();
        let mut inj = FaultInjector::new(spec, 5);
        assert_eq!(inj.weaver_response(), WeaverFault::Delay(123));
        assert!(!inj.weaver_faulty());
    }

    #[test]
    fn handle_shares_one_injector() {
        let spec = FaultSpec::parse("fetch=1").unwrap();
        let h = FaultHandle::new(FaultInjector::new(spec, 11));
        let h2 = h.clone();
        h.with(|i| i.corrupt_fetch(0));
        assert_eq!(h2.counts().fetch_flips, 1);
    }

    #[test]
    fn summary_classifies_and_serializes() {
        let mut s = CampaignSummary {
            spec: "reg=0.1".to_string(),
            seed: 42,
            ..CampaignSummary::default()
        };
        s.record(Outcome::Masked);
        s.record(Outcome::Sdc);
        s.record(Outcome::DetectedCrash);
        s.record(Outcome::Hang);
        assert!(s.is_classified());
        let json = s.to_json();
        assert!(json.contains("\"runs\":4"));
        assert!(json.contains("\"masked\":1"));
        assert!(json.contains("\"sdc\":1"));
        assert!(json.contains("\"detected_crash\":1"));
        assert!(json.contains("\"hang\":1"));
        assert!(json.starts_with("{\"schema\":\"sparseweaver-fault-campaign-v1\""));
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(Outcome::Masked.to_string(), "masked");
        assert_eq!(Outcome::Sdc.to_string(), "sdc");
        assert_eq!(Outcome::DetectedCrash.to_string(), "detected_crash");
        assert_eq!(Outcome::Hang.to_string(), "hang");
    }

    #[test]
    fn child_seeds_differ_per_run() {
        let a = SplitMix64::child_seed(42, 0);
        let b = SplitMix64::child_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, SplitMix64::child_seed(42, 0));
    }
}
