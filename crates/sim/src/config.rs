//! GPU configuration presets.

use sparseweaver_mem::HierarchyConfig;
use sparseweaver_weaver::WeaverConfig;

/// Which unit sits behind the `WEAVER_*` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WeaverMode {
    /// The SparseWeaver Weaver unit (registration carries vid/loc/deg;
    /// the GPU performs edge-information loads itself).
    Weaver,
    /// The edge-generating-hardware baseline of Case Study 1 (registration
    /// carries only vids; the unit reads topology and edge info itself and
    /// stages records in shared memory).
    Eghw,
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuConfig {
    /// Number of cores (the paper uses 2 sockets x 3 cores = 6).
    pub num_cores: usize,
    /// Warps per core (32 in the paper).
    pub warps_per_core: usize,
    /// Threads (lanes) per warp (32 in the paper).
    pub threads_per_warp: usize,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Weaver unit configuration.
    pub weaver: WeaverConfig,
    /// Which unit handles `WEAVER_*` instructions.
    pub weaver_mode: WeaverMode,
    /// Per-core shared-memory (scratchpad) size in bytes.
    pub shared_mem_bytes: usize,
    /// Shared-memory access latency in cycles.
    pub shared_latency: u64,
    /// Integer ALU result latency.
    pub alu_latency: u64,
    /// FPU result latency.
    pub fpu_latency: u64,
    /// Architectural registers each resident warp needs slots for, at
    /// most [`sparseweaver_isa::NUM_REGS`]. A kernel whose register
    /// high-water exceeds this cannot run.
    pub regfile_regs_per_warp: usize,
    /// Physical register-file capacity per core, in registers. Divided
    /// by a kernel's register demand it yields the occupancy cap — how
    /// many warps can actually be resident (see
    /// [`GpuConfig::occupancy_cap`]).
    pub regs_per_core: usize,
    /// Safety limit per kernel launch.
    pub max_cycles: u64,
}

impl GpuConfig {
    /// The paper's evaluation machine: 2 sockets x 3 cores, 32 warps/core,
    /// 32 threads/warp, 64KB L1 + 1MB L2 (Section V), with the Weaver
    /// tables' L1 penalty applied when the Weaver schedule is used.
    pub fn vortex_default() -> Self {
        GpuConfig {
            num_cores: 6,
            warps_per_core: 32,
            threads_per_warp: 32,
            hierarchy: HierarchyConfig::vortex_default(6),
            weaver: WeaverConfig::default(),
            weaver_mode: WeaverMode::Weaver,
            shared_mem_bytes: 256 * 1024,
            shared_latency: 2,
            alu_latency: 1,
            fpu_latency: 3,
            regfile_regs_per_warp: sparseweaver_isa::NUM_REGS,
            regs_per_core: sparseweaver_isa::NUM_REGS * 32,
            max_cycles: u64::MAX,
        }
    }

    /// The evaluation configuration: the paper's machine shape (6 cores,
    /// 32 warps, 32 lanes) with the cache hierarchy *scaled to the scaled
    /// datasets* (L1 8KB, L2 128KB).
    ///
    /// The Table III stand-ins are ~200x smaller than the originals; with
    /// the paper's literal 64KB/1MB caches they would be cache-resident,
    /// erasing the memory-boundedness that drives the evaluation (the
    /// paper's graphs are hundreds of times larger than the L2). Scaling
    /// the hierarchy with the data preserves the graph:cache ratio — see
    /// DESIGN.md, substitution 2.
    pub fn evaluation_default() -> Self {
        let mut cfg = Self::vortex_default();
        cfg.hierarchy.l1 = sparseweaver_mem::CacheConfig::new(8 * 1024, 4);
        cfg.hierarchy.l2 = sparseweaver_mem::CacheConfig::new(128 * 1024, 8);
        cfg
    }

    /// The 8-core, 32-warp, 32-thread configuration used for the
    /// work-table-latency sweep (Fig. 13), with evaluation-scaled caches.
    pub fn eight_core() -> Self {
        let mut cfg = Self::evaluation_default();
        cfg.num_cores = 8;
        cfg.hierarchy.num_cores = 8;
        cfg
    }

    /// A scaled-down configuration for fast unit/integration tests.
    pub fn small_test() -> Self {
        let mut h = HierarchyConfig::vortex_default(2);
        h.l1 = sparseweaver_mem::CacheConfig::new(8 * 1024, 4);
        h.l2 = sparseweaver_mem::CacheConfig::new(64 * 1024, 8);
        GpuConfig {
            num_cores: 2,
            warps_per_core: 4,
            threads_per_warp: 4,
            hierarchy: h,
            weaver: WeaverConfig {
                st_capacity: 16,
                ..WeaverConfig::default()
            },
            weaver_mode: WeaverMode::Weaver,
            shared_mem_bytes: 64 * 1024,
            shared_latency: 2,
            alu_latency: 1,
            fpu_latency: 3,
            regfile_regs_per_warp: sparseweaver_isa::NUM_REGS,
            regs_per_core: sparseweaver_isa::NUM_REGS * 4,
            max_cycles: 200_000_000,
        }
    }

    /// A register-file-limited variant of [`GpuConfig::small_test`]: the
    /// same 2-core / 4-warp / 4-lane machine with a register file sized so
    /// that typical kernels (register high-water well above 8) cannot keep
    /// all four warps resident. Used to exercise and demonstrate the
    /// occupancy cap.
    pub fn regfile_limited() -> Self {
        let mut cfg = Self::small_test();
        cfg.regfile_regs_per_warp = 32;
        cfg.regs_per_core = 32;
        cfg
    }

    /// An Ampere-A30-like stand-in for the Fig. 3/4 comparison: more
    /// cores and a larger L2 than the Vortex baseline (cache sizes scaled
    /// with the datasets like [`GpuConfig::evaluation_default`]).
    pub fn ampere_like() -> Self {
        let mut h = HierarchyConfig::vortex_default(16);
        h.l1 = sparseweaver_mem::CacheConfig::new(8 * 1024, 4);
        h.l2 = sparseweaver_mem::CacheConfig::new(256 * 1024, 16);
        let mut cfg = Self::vortex_default();
        cfg.num_cores = 16;
        cfg.hierarchy = h;
        cfg
    }

    /// An Ada-RTX4090-like stand-in: wider still, bigger L2, faster DRAM.
    pub fn ada_like() -> Self {
        let mut h = HierarchyConfig::vortex_default(24);
        h.l1 = sparseweaver_mem::CacheConfig::new(8 * 1024, 4);
        h.l2 = sparseweaver_mem::CacheConfig::new(512 * 1024, 16);
        h.dram_freq_ratio = 1;
        let mut cfg = Self::vortex_default();
        cfg.num_cores = 24;
        cfg.hierarchy = h;
        cfg
    }

    /// Total hardware threads.
    pub fn total_threads(&self) -> usize {
        self.num_cores * self.warps_per_core * self.threads_per_warp
    }

    /// Threads per core.
    pub fn threads_per_core(&self) -> usize {
        self.warps_per_core * self.threads_per_warp
    }

    /// How many warps per core the register file can keep resident for a
    /// kernel with the given register high-water.
    ///
    /// The file holds [`GpuConfig::regs_per_core`] registers; each
    /// resident warp claims one slot per architectural register the
    /// kernel touches (at least 1, at most
    /// [`GpuConfig::regfile_regs_per_warp`]). The cap is clamped to
    /// `1..=warps_per_core`: at least one warp always runs (a kernel
    /// whose demand exceeds the whole file is rejected at launch), and
    /// the scheduler cannot host more warps than exist.
    pub fn occupancy_cap(&self, high_water: usize) -> usize {
        let demand = high_water.clamp(1, self.regfile_regs_per_warp);
        (self.regs_per_core / demand).clamp(1, self.warps_per_core)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if lane count exceeds 64 (mask width), core counts disagree
    /// with the hierarchy, or the Weaver ST capacity is zero.
    pub fn validate(&self) {
        assert!(
            self.threads_per_warp <= 64,
            "at most 64 lanes per warp (mask width)"
        );
        assert!(self.threads_per_warp.is_power_of_two());
        assert_eq!(
            self.num_cores, self.hierarchy.num_cores,
            "hierarchy core count must match"
        );
        assert!(self.weaver.st_capacity > 0);
        assert!(self.num_cores > 0 && self.warps_per_core > 0);
        assert!(
            (1..=sparseweaver_isa::NUM_REGS).contains(&self.regfile_regs_per_warp),
            "regfile_regs_per_warp must be in 1..={}",
            sparseweaver_isa::NUM_REGS
        );
        assert!(
            self.regs_per_core >= self.regfile_regs_per_warp,
            "register file must hold at least one full warp"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        GpuConfig::vortex_default().validate();
        GpuConfig::eight_core().validate();
        GpuConfig::small_test().validate();
        GpuConfig::ampere_like().validate();
        GpuConfig::ada_like().validate();
        GpuConfig::regfile_limited().validate();
    }

    #[test]
    fn default_register_files_never_cap_occupancy() {
        for cfg in [
            GpuConfig::vortex_default(),
            GpuConfig::evaluation_default(),
            GpuConfig::small_test(),
        ] {
            // Even a kernel touching every architectural register keeps
            // the machine fully occupied under the default sizing.
            assert_eq!(
                cfg.occupancy_cap(sparseweaver_isa::NUM_REGS),
                cfg.warps_per_core
            );
        }
    }

    #[test]
    fn occupancy_cap_scales_with_register_demand() {
        let cfg = GpuConfig::regfile_limited();
        assert_eq!(cfg.warps_per_core, 4);
        assert_eq!(cfg.occupancy_cap(0), 4, "zero demand counts as one slot");
        assert_eq!(cfg.occupancy_cap(8), 4);
        assert_eq!(cfg.occupancy_cap(12), 2);
        assert_eq!(cfg.occupancy_cap(16), 2);
        assert_eq!(cfg.occupancy_cap(17), 1);
        assert_eq!(cfg.occupancy_cap(32), 1);
        // Demand beyond the per-warp limit clamps rather than dividing
        // to zero; the launch-time check rejects such kernels.
        assert_eq!(cfg.occupancy_cap(64), 1);
    }

    #[test]
    #[should_panic(expected = "at least one full warp")]
    fn register_file_smaller_than_a_warp_rejected() {
        let mut cfg = GpuConfig::small_test();
        cfg.regs_per_core = 16; // < regfile_regs_per_warp (64)
        cfg.validate();
    }

    #[test]
    fn paper_configuration() {
        let cfg = GpuConfig::vortex_default();
        assert_eq!(cfg.num_cores, 6); // 2 sockets x 3 cores
        assert_eq!(cfg.warps_per_core, 32);
        assert_eq!(cfg.threads_per_warp, 32);
        assert_eq!(cfg.total_threads(), 6 * 32 * 32);
    }

    #[test]
    fn evaluation_default_scales_caches_with_data() {
        let eval = GpuConfig::evaluation_default();
        let paper = GpuConfig::vortex_default();
        // Same machine shape, smaller caches (DESIGN.md substitution 2).
        assert_eq!(eval.num_cores, paper.num_cores);
        assert_eq!(eval.warps_per_core, paper.warps_per_core);
        assert!(eval.hierarchy.l1.size_bytes < paper.hierarchy.l1.size_bytes);
        assert!(eval.hierarchy.l2.size_bytes < paper.hierarchy.l2.size_bytes);
    }

    #[test]
    fn eight_core_configuration() {
        let cfg = GpuConfig::eight_core();
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.hierarchy.num_cores, 8);
        cfg.validate();
    }

    #[test]
    fn nvidia_standins_are_wider() {
        assert!(GpuConfig::ampere_like().num_cores > GpuConfig::vortex_default().num_cores);
        assert!(GpuConfig::ada_like().num_cores > GpuConfig::ampere_like().num_cores);
    }

    #[test]
    #[should_panic(expected = "hierarchy core count")]
    fn mismatched_cores_rejected() {
        let mut cfg = GpuConfig::vortex_default();
        cfg.num_cores = 4;
        cfg.validate();
    }
}
